//! # `t1000 serve` — selection-as-a-service
//!
//! A daemon that accepts concurrent selection/simulation requests over a
//! newline-delimited JSON-RPC protocol (stdio, a Unix socket, or — with
//! `--tcp HOST:PORT` — a TCP listener speaking the identical wire
//! contract) and answers with schema-v6-compatible result documents. The
//! full wire protocol — methods, schemas, error codes, shedding
//! semantics — is specified in `docs/SERVING.md`.
//!
//! The serving pipeline reuses the experiment engine's machinery one
//! request at a time instead of one batch plan at a time:
//!
//! * every program (registry workload or inline `asm`) is analysed once
//!   per process in a shared [`t1000_core::SessionStore`] keyed by
//!   program hash, so the profiling pass and the per-`StrategySpec`
//!   selection memo-cache are warm across clients;
//! * per-request execution goes through
//!   [`CellRunner::run_cell_isolated`]: `catch_unwind` panic isolation,
//!   bounded deterministic retry, cycle fuel, and the per-request
//!   deadline;
//! * work requests (`select`, `run`) fan out onto a bounded worker pool
//!   behind a bounded queue — when the queue is full the request is shed
//!   immediately with a `429`-style [`code::QUEUE_FULL`] error instead of
//!   building an unbounded backlog. Control requests (`status`,
//!   `cache_stats`, `ping`, `shutdown`) are answered inline by the
//!   connection reader and are never queued or shed (`ping` answers even
//!   while draining — it is the remote coordinator's health probe);
//! * `run_shard` — the remote-shard method behind
//!   `t1000 bench --shards N --remote` — executes inline on its
//!   connection's reader thread, streaming the worker wire protocol
//!   ([`t1000_bench::shard::execute_shard`]) back over the same
//!   connection: `selection`/`cell`/`cell_failed` event lines, then the
//!   final id-echoing result envelope. A dedicated connection per
//!   dispatch keeps streams unentangled, and because the reader thread
//!   runs inside the transport's scoped-thread join, `shutdown` drains
//!   in-flight shard streams before the process exits.
//!
//! [`Server::handle_line`] is the transport-free synchronous core, usable
//! for tests and embedding:
//!
//! ```
//! use t1000_cli::serve::{ServeConfig, Server};
//!
//! let server = Server::new(&ServeConfig::default());
//! let request = r#"{"id": 1, "method": "run", "params": {
//!     "asm": "main:\n li $s0, 50\nloop:\n sll $t2, $s0, 3\n xor $t2, $t2, $s0\n andi $t2, $t2, 255\n addiu $s0, $s0, -1\n bgtz $s0, loop\n li $v0, 10\n syscall\n",
//!     "strategy": "selective", "pfus": 2}}"#
//!     .replace('\n', " ");
//! let response = t1000_bench::json::Json::parse(&server.handle_line(&request)).unwrap();
//! assert!(response.get("error").is_none());
//! let result = response.get("result").unwrap();
//! let cell = result.get("cell").unwrap();
//! assert!(cell.get("cycles").and_then(|c| c.as_u64()).unwrap() > 0);
//! // Same program again: the analysis is served from the shared store.
//! server.handle_line(&request);
//! let stats = t1000_bench::json::Json::parse(
//!     &server.handle_line(r#"{"id": 2, "method": "cache_stats"}"#),
//! )
//! .unwrap();
//! let result = stats.get("result").unwrap();
//! assert_eq!(result.get("analyses").and_then(|a| a.as_u64()), Some(1));
//! ```

use crate::args::parse;
use crate::CliError;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use t1000_bench::engine::{CellRunner, FailureCause, RetryPolicy, RunOptions, SelectionRecord};
use t1000_bench::json::Json;
use t1000_bench::plan::{Cell, MachineSpec, SelectionSpec};
use t1000_bench::results::{cell_result_json, selection_json, SCHEMA_VERSION};
use t1000_bench::shard;
use t1000_core::{program_hash, ExtractConfig, SessionStore};
use t1000_isa::Program;
use t1000_workloads::Scale;

/// Typed JSON-RPC error codes (`error.code` in a response; HTTP-flavoured
/// so operators can pattern-match familiar classes). `error.kind` carries
/// the matching snake_case tag. See `docs/SERVING.md`.
pub mod code {
    /// Unparseable request, unknown method, or invalid `params`.
    pub const BAD_REQUEST: u64 = 400;
    /// The request's `deadline_ms` expired before or during execution.
    pub const DEADLINE_EXCEEDED: u64 = 408;
    /// The bounded worker queue is full; the request was shed.
    pub const QUEUE_FULL: u64 = 429;
    /// The cell failed; `error.cause` carries the engine's failure
    /// taxonomy tag (`prepare`, `selection`, `simulate`, `timeout`,
    /// `checksum_mismatch`, `semantics_changed`, `panic`, ...).
    pub const CELL_FAILED: u64 = 500;
    /// The server is draining after a `shutdown` request.
    pub const SHUTTING_DOWN: u64 = 503;
}

/// Profiling-instruction ceiling for inline `asm` programs that do not
/// set `max_instructions` — an untrusted non-terminating program must
/// fail typed instead of pinning a worker forever.
const ADHOC_MAX_INSTRUCTIONS: u64 = 50_000_000;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Bounded queue
// ---------------------------------------------------------------------

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: `try_push` never blocks (load shedding is the
/// caller's job), `pop` blocks until an item arrives or the queue is
/// closed and drained.
struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    takers: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = lock(&self.inner);
        if q.closed || q.items.len() >= self.capacity {
            return Err(item);
        }
        q.items.push_back(item);
        self.takers.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed and
    /// fully drained (already-accepted work still completes).
    fn pop(&self) -> Option<T> {
        let mut q = lock(&self.inner);
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self
                .takers
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock(&self.inner).closed = true;
        self.takers.notify_all();
    }

    fn depth(&self) -> usize {
        lock(&self.inner).items.len()
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum WorkMethod {
    Select,
    Run,
}

/// Key for the warm [`CellRunner`] map. Runners are per-(program,
/// options) because the canonical baseline reference depends on the
/// cycle-fuel and fast-path options it was prepared under.
#[derive(Clone, PartialEq, Eq, Hash)]
enum RunnerKey {
    Workload(&'static str, Scale, RunOptions),
    Adhoc(u64, RunOptions),
}

/// A fully validated `select`/`run` request, ready for a worker.
struct WorkRequest {
    id: Json,
    method: WorkMethod,
    /// `cells[].workload` label: the registry name, or `adhoc` for
    /// inline `asm`.
    label: &'static str,
    scale: Option<Scale>,
    program: Program,
    hash: u64,
    expected: Option<u64>,
    max_instructions: u64,
    selection: SelectionSpec,
    machine: MachineSpec,
    opts: RunOptions,
    deadline: Option<Instant>,
    runner_key: RunnerKey,
}

type Out = Arc<Mutex<Box<dyn Write + Send>>>;

struct Job {
    work: WorkRequest,
    out: Out,
}

enum Routed {
    Inline(Json),
    Work(Box<WorkRequest>),
    /// A validated `run_shard` request: executed inline on the connection
    /// reader thread, streaming its events back over the connection.
    Shard {
        id: Json,
        job: Box<shard::ShardJob>,
    },
}

fn p_get<'a>(params: Option<&'a Json>, key: &str) -> Option<&'a Json> {
    params.and_then(|p| p.get(key))
}

fn p_str<'a>(params: Option<&'a Json>, key: &str) -> Result<Option<&'a str>, String> {
    match p_get(params, key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn p_u64(params: Option<&Json>, key: &str) -> Result<Option<u64>, String> {
    match p_get(params, key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn p_f64(params: Option<&Json>, key: &str) -> Result<Option<f64>, String> {
    match p_get(params, key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn p_bool(params: Option<&Json>, key: &str) -> Result<Option<bool>, String> {
    match p_get(params, key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn parse_work(id: &Json, method: WorkMethod, params: Option<&Json>) -> Result<WorkRequest, String> {
    if let Some(p) = params {
        if !matches!(p, Json::Obj(_)) {
            return Err("`params` must be an object".into());
        }
    }

    // -- Program source: a registry workload or inline assembly. --------
    let workload = p_str(params, "workload")?;
    let asm = p_str(params, "asm")?;
    let (label, scale, program, expected) = match (workload, asm) {
        (Some(_), Some(_)) => return Err("`workload` and `asm` are mutually exclusive".into()),
        (None, None) => return Err("request needs a `workload` name or inline `asm`".into()),
        (Some(name), None) => {
            let scale = match p_str(params, "scale")? {
                None | Some("test") => Scale::Test,
                Some("full") => Scale::Full,
                Some(other) => return Err(format!("`scale` must be test|full, got `{other}`")),
            };
            let Some(label) = t1000_workloads::NAMES.iter().copied().find(|n| *n == name) else {
                return Err(format!(
                    "unknown workload `{name}` (one of {:?})",
                    t1000_workloads::NAMES
                ));
            };
            let w = t1000_workloads::by_name(label, scale)
                .ok_or_else(|| format!("unknown workload `{name}`"))?;
            let program = w.program().map_err(|e| format!("workload `{name}`: {e}"))?;
            (label, Some(scale), program, Some(w.expected_checksum()))
        }
        (None, Some(text)) => {
            let program = t1000_asm::assemble(text).map_err(|e| format!("asm: {e}"))?;
            ("adhoc", None, program, None)
        }
    };

    // -- Strategy axis (defaults mirror `t1000 run`/`select`). ----------
    let pfus = p_u64(params, "pfus")?.unwrap_or(2) as usize;
    let threshold = p_f64(params, "threshold")?.unwrap_or(0.005);
    let lut_budget = p_u64(params, "lut_budget")?.unwrap_or(256) as u32;
    let selection = match p_str(params, "strategy")?.unwrap_or("selective") {
        "baseline" => SelectionSpec::Baseline,
        "greedy" => SelectionSpec::Greedy,
        "selective" => SelectionSpec::selective(Some(pfus), threshold),
        "knapsack" => SelectionSpec::knapsack(lut_budget),
        other => {
            return Err(format!(
                "`strategy` must be baseline|greedy|selective|knapsack, got `{other}`"
            ))
        }
    };
    if method == WorkMethod::Select && selection == SelectionSpec::Baseline {
        return Err("select: strategy `baseline` has no selection job".into());
    }

    // -- Machine axis. --------------------------------------------------
    let machine = match p_get(params, "machine") {
        None => MachineSpec::with_pfus(pfus, 10),
        Some(m) if matches!(m, Json::Obj(_)) => {
            let reconfig = p_u64(Some(m), "reconfig_cycles")?.unwrap_or(10) as u32;
            let base = match m.get("pfus") {
                None => MachineSpec::with_pfus(pfus, reconfig),
                Some(v) if v.as_str() == Some("unlimited") => MachineSpec::unlimited(reconfig),
                Some(v) => match v.as_u64() {
                    Some(n) => MachineSpec::with_pfus(n as usize, reconfig),
                    None => {
                        return Err("`machine.pfus` must be a count or \"unlimited\"".into());
                    }
                },
            };
            // Reconfiguration-hiding knobs (schema v6); defaults keep the
            // legacy blocking-load machine.
            let planes = p_u64(Some(m), "pfu_planes")?.unwrap_or(1) as u32;
            if !(1..=2).contains(&planes) {
                return Err("`machine.pfu_planes` must be 1 or 2".into());
            }
            let prefetch = p_u64(Some(m), "pfu_prefetch")?.unwrap_or(0) as u32;
            let compress = p_f64(Some(m), "conf_compress")?.unwrap_or(0.0);
            if !(compress >= 0.0 && compress.is_finite()) {
                return Err("`machine.conf_compress` must be a non-negative ratio".into());
            }
            base.config_plane(planes, prefetch, compress)
        }
        Some(_) => return Err("`machine` must be an object".into()),
    };

    // -- Limits and deadline. -------------------------------------------
    let opts = RunOptions {
        max_cycles: p_u64(params, "max_cycles")?.unwrap_or(0),
        no_fast_path: p_bool(params, "no_fast_path")?.unwrap_or(false),
    };
    let max_instructions = match p_u64(params, "max_instructions")? {
        Some(n) => n,
        None if expected.is_none() => ADHOC_MAX_INSTRUCTIONS,
        None => 0,
    };
    let deadline =
        p_u64(params, "deadline_ms")?.map(|ms| Instant::now() + Duration::from_millis(ms));

    let hash = program_hash(&program);
    let runner_key = match scale {
        Some(scale) => RunnerKey::Workload(label, scale, opts),
        None => RunnerKey::Adhoc(hash, opts),
    };
    Ok(WorkRequest {
        id: id.clone(),
        method,
        label,
        scale,
        program,
        hash,
        expected,
        max_instructions,
        selection,
        machine,
        opts,
        deadline,
        runner_key,
    })
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

fn ok_response(id: &Json, result: Json) -> Json {
    Json::obj(vec![("id", id.clone()), ("result", result)])
}

fn error_response(
    id: &Json,
    code: u64,
    kind: &str,
    message: &str,
    extra: Vec<(&str, Json)>,
) -> Json {
    let mut e = vec![
        ("code", Json::UInt(code)),
        ("kind", Json::Str(kind.to_string())),
        ("message", Json::Str(message.to_string())),
    ];
    e.extend(extra);
    Json::obj(vec![("id", id.clone()), ("error", Json::obj(e))])
}

fn cell_failure(id: &Json, cause: &FailureCause, attempts: u32) -> Json {
    error_response(
        id,
        code::CELL_FAILED,
        "cell_failed",
        &cause.to_string(),
        vec![
            ("cause", Json::Str(cause.kind().to_string())),
            ("attempts", Json::UInt(u64::from(attempts))),
        ],
    )
}

fn scale_json(scale: Option<Scale>) -> Json {
    match scale {
        Some(Scale::Test) => Json::Str("test".to_string()),
        Some(Scale::Full) => Json::Str("full".to_string()),
        None => Json::Null,
    }
}

fn write_response(out: &Out, resp: &Json) {
    let mut w = lock(out);
    let _ = writeln!(w, "{}", resp.to_string_compact());
    let _ = w.flush();
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Daemon sizing knobs (`--workers`, `--queue`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing `select`/`run` requests.
    pub workers: usize,
    /// Bounded queue capacity; requests beyond it are shed with
    /// [`code::QUEUE_FULL`].
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
        }
    }
}

type RunnerCell = Arc<OnceLock<Result<Arc<CellRunner>, FailureCause>>>;

/// The process-wide serving state: the shared session store, the warm
/// runner map, the bounded work queue, and the request counters that
/// `status` reports. One instance serves every connection; see the
/// module docs for the execution model.
pub struct Server {
    store: SessionStore,
    runners: Mutex<HashMap<RunnerKey, RunnerCell>>,
    queue: BoundedQueue<Job>,
    workers: usize,
    retry: RetryPolicy,
    started: Instant,
    shutting_down: AtomicBool,
    /// Listener to self-connect to on shutdown, waking the blocked
    /// accept loop (set by the socket/TCP transports).
    wake: Mutex<Option<WakeTarget>>,
    received: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    malformed: AtomicU64,
    /// `run_shard` streams currently executing (the drain-on-shutdown
    /// regression test polls this via `status`).
    shard_active: AtomicU64,
    /// `run_shard` streams completed successfully.
    shard_done: AtomicU64,
}

impl Server {
    pub fn new(cfg: &ServeConfig) -> Server {
        Server {
            store: SessionStore::new(),
            runners: Mutex::new(HashMap::new()),
            queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
            workers: cfg.workers.max(1),
            retry: RetryPolicy::default(),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            wake: Mutex::new(None),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            shard_active: AtomicU64::new(0),
            shard_done: AtomicU64::new(0),
        }
    }

    /// True once a `shutdown` request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Handles one request line synchronously — parse, validate, execute
    /// on the calling thread — and returns the response line. This
    /// bypasses the bounded queue (nothing is ever shed), so it is the
    /// embedding/test form; the transports go through the queued path.
    pub fn handle_line(&self, line: &str) -> String {
        let resp = match self.route(line) {
            Routed::Inline(resp) => resp,
            Routed::Work(work) => self.execute(&work),
            Routed::Shard { id, job } => {
                // Streamed method: the "response" is the whole event
                // stream, newline-joined, ending in the final envelope
                // (or the error envelope).
                let mut lines: Vec<String> = Vec::new();
                let outcome = self.run_shard_stream(&id, &job, &mut |doc| {
                    lines.push(doc.to_string_compact());
                    Ok(())
                });
                if let Some(resp) = outcome {
                    self.record(&resp);
                    lines.push(resp.to_string_compact());
                }
                return lines.join("\n");
            }
        };
        self.record(&resp);
        resp.to_string_compact()
    }

    /// Routes one request line from a transport: control methods are
    /// answered inline, work methods are enqueued (or shed). Responses
    /// are written to `out` — possibly out of order relative to other
    /// requests, correlated by `id`.
    fn dispatch(&self, line: &str, out: &Out) {
        match self.route(line) {
            Routed::Inline(resp) => {
                self.record(&resp);
                write_response(out, &resp);
            }
            Routed::Work(work) => {
                let id = work.id.clone();
                let job = Job {
                    work: *work,
                    out: Arc::clone(out),
                };
                if self.queue.try_push(job).is_err() {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    let resp = error_response(
                        &id,
                        code::QUEUE_FULL,
                        "queue_full",
                        "worker queue is full; retry later",
                        vec![],
                    );
                    self.record(&resp);
                    write_response(out, &resp);
                }
            }
            Routed::Shard { id, job } => {
                // Inline on this connection's reader thread: one dispatch
                // per connection means events never interleave, and the
                // transport's scoped join drains us through shutdown.
                let mut emit = |doc: Json| -> Result<(), String> {
                    write_response(out, &doc);
                    Ok(())
                };
                if let Some(resp) = self.run_shard_stream(&id, &job, &mut emit) {
                    self.record(&resp);
                    write_response(out, &resp);
                }
            }
        }
    }

    /// Executes a `run_shard` job, streaming the worker wire protocol
    /// through `emit`. On success the final result envelope has already
    /// been emitted and `None` is returned; on failure the error envelope
    /// to send is returned instead.
    fn run_shard_stream(
        &self,
        id: &Json,
        job: &shard::ShardJob,
        emit: &mut dyn FnMut(Json) -> Result<(), String>,
    ) -> Option<Json> {
        self.shard_active.fetch_add(1, Ordering::Relaxed);
        let result = shard::execute_shard(job, id, emit);
        self.shard_active.fetch_sub(1, Ordering::Relaxed);
        match result {
            Ok(()) => {
                self.shard_done.fetch_add(1, Ordering::Relaxed);
                self.completed.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(msg) => Some(error_response(
                id,
                code::CELL_FAILED,
                "shard_failed",
                &msg,
                vec![],
            )),
        }
    }

    fn route(&self, line: &str) -> Routed {
        self.received.fetch_add(1, Ordering::Relaxed);
        let req = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                self.malformed.fetch_add(1, Ordering::Relaxed);
                return Routed::Inline(error_response(
                    &Json::Null,
                    code::BAD_REQUEST,
                    "bad_request",
                    &format!("unparseable request: {e}"),
                    vec![],
                ));
            }
        };
        let id = req.get("id").cloned().unwrap_or(Json::Null);
        let Some(method) = req.get("method").and_then(Json::as_str) else {
            self.malformed.fetch_add(1, Ordering::Relaxed);
            return Routed::Inline(error_response(
                &id,
                code::BAD_REQUEST,
                "bad_request",
                "request has no `method` string",
                vec![],
            ));
        };
        let work_method = match method {
            "status" => return Routed::Inline(ok_response(&id, self.status_json())),
            "cache_stats" => return Routed::Inline(ok_response(&id, self.cache_stats_json())),
            // The remote coordinator's health probe: answered inline,
            // even while draining — the `shutting_down` flag is how a
            // probing coordinator learns to dispatch elsewhere.
            "ping" => {
                return Routed::Inline(ok_response(
                    &id,
                    Json::obj(vec![
                        ("pong", Json::Bool(true)),
                        ("shutting_down", Json::Bool(self.is_shutting_down())),
                    ]),
                ))
            }
            "run_shard" => {
                if self.is_shutting_down() {
                    return Routed::Inline(error_response(
                        &id,
                        code::SHUTTING_DOWN,
                        "shutting_down",
                        "server is shutting down",
                        vec![],
                    ));
                }
                return match shard::parse_shard_params(req.get("params").unwrap_or(&Json::Null)) {
                    Ok(job) => Routed::Shard {
                        id,
                        job: Box::new(job),
                    },
                    Err(msg) => Routed::Inline(error_response(
                        &id,
                        code::BAD_REQUEST,
                        "bad_request",
                        &msg,
                        vec![],
                    )),
                };
            }
            "shutdown" => {
                self.begin_shutdown();
                return Routed::Inline(ok_response(
                    &id,
                    Json::obj(vec![("shutting_down", Json::Bool(true))]),
                ));
            }
            "select" => WorkMethod::Select,
            "run" => WorkMethod::Run,
            other => {
                return Routed::Inline(error_response(
                    &id,
                    code::BAD_REQUEST,
                    "bad_request",
                    &format!("unknown method `{other}`"),
                    vec![],
                ))
            }
        };
        if self.is_shutting_down() {
            return Routed::Inline(error_response(
                &id,
                code::SHUTTING_DOWN,
                "shutting_down",
                "server is shutting down",
                vec![],
            ));
        }
        match parse_work(&id, work_method, req.get("params")) {
            Ok(work) => Routed::Work(Box::new(work)),
            Err(msg) => Routed::Inline(error_response(
                &id,
                code::BAD_REQUEST,
                "bad_request",
                &msg,
                vec![],
            )),
        }
    }

    /// Executes a validated work request: resolve the warm runner, then
    /// select or simulate under the engine's isolation machinery.
    fn execute(&self, work: &WorkRequest) -> Json {
        if let Some(d) = work.deadline {
            if Instant::now() >= d {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                return error_response(
                    &work.id,
                    code::DEADLINE_EXCEEDED,
                    "deadline_exceeded",
                    "deadline expired before execution started",
                    vec![],
                );
            }
        }
        let runner = match self.runner_for(work) {
            Ok(r) => r,
            Err(cause) => return cell_failure(&work.id, &cause, 0),
        };
        match work.method {
            WorkMethod::Select => match runner.select(&work.selection) {
                Ok(sel) => {
                    let record = SelectionRecord::summarize(
                        work.label,
                        ExtractConfig::default(),
                        work.selection,
                        sel,
                    );
                    ok_response(
                        &work.id,
                        self.envelope(work, "select", |fields| {
                            fields.push(("selection", selection_json(&record)));
                        }),
                    )
                }
                Err(cause) => cell_failure(&work.id, &cause, 0),
            },
            WorkMethod::Run => {
                let cell = Cell::new(work.label, work.selection, work.machine);
                match runner.run_cell_isolated(cell, &work.opts, &self.retry, work.deadline) {
                    Ok(c) => {
                        let speedup = if c.cycles > 0 {
                            Some(runner.baseline_cycles() as f64 / c.cycles as f64)
                        } else {
                            None
                        };
                        let baseline = runner.baseline_cycles();
                        ok_response(
                            &work.id,
                            self.envelope(work, "run", |fields| {
                                fields.push(("baseline_cycles", Json::UInt(baseline)));
                                fields.push(("cell", cell_result_json(&c, speedup)));
                            }),
                        )
                    }
                    Err(e) if e.cause == FailureCause::WallClock => {
                        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        error_response(
                            &work.id,
                            code::DEADLINE_EXCEEDED,
                            "deadline_exceeded",
                            "deadline expired during execution",
                            vec![("attempts", Json::UInt(u64::from(e.attempts)))],
                        )
                    }
                    Err(e) => cell_failure(&work.id, &e.cause, e.attempts),
                }
            }
        }
    }

    /// Shared result-envelope fields (schema marker, program identity).
    fn envelope(
        &self,
        work: &WorkRequest,
        method: &str,
        fill: impl FnOnce(&mut Vec<(&'static str, Json)>),
    ) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("generator", Json::Str("t1000-serve".to_string())),
            ("method", Json::Str(method.to_string())),
            ("scale", scale_json(work.scale)),
            ("program_hash", Json::Str(format!("0x{:016x}", work.hash))),
        ];
        fill(&mut fields);
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Gets or builds the warm [`CellRunner`] for this request's
    /// (program, options) key. The shared store is consulted on every
    /// request — so `cache_stats` observes a hit for each request served
    /// from the warm analysis — but a program is analysed at most once
    /// per process no matter how many runners (or clients) reference it.
    fn runner_for(&self, work: &WorkRequest) -> Result<Arc<CellRunner>, FailureCause> {
        let session = self
            .store
            .get_or_build(
                &work.program,
                ExtractConfig::default(),
                work.max_instructions,
            )
            .map_err(FailureCause::Prepare)?;
        let cell = {
            let mut runners = lock(&self.runners);
            Arc::clone(runners.entry(work.runner_key.clone()).or_default())
        };
        cell.get_or_init(|| {
            CellRunner::from_session(session, work.expected, &work.opts).map(Arc::new)
        })
        .clone()
    }

    /// Counts a finished response (any response carrying `error` is a
    /// failure; specific causes were already counted where they arose).
    fn record(&self, resp: &Json) {
        if resp.get("error").is_some() {
            self.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        self.queue.close();
        // Wake the accept loop so the socket/TCP transport can exit; the
        // dummy connection carries no requests.
        match lock(&self.wake).clone() {
            Some(WakeTarget::Unix(path)) => {
                let _ = UnixStream::connect(path);
            }
            Some(WakeTarget::Tcp(addr)) => {
                let _ = TcpStream::connect(addr);
            }
            None => {}
        }
    }

    fn status_json(&self) -> Json {
        Json::obj(vec![
            (
                "uptime_ms",
                Json::UInt(self.started.elapsed().as_millis() as u64),
            ),
            ("workers", Json::UInt(self.workers as u64)),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::UInt(self.queue.depth() as u64)),
                    ("capacity", Json::UInt(self.queue.capacity as u64)),
                ]),
            ),
            (
                "requests",
                Json::obj(vec![
                    (
                        "received",
                        Json::UInt(self.received.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed",
                        Json::UInt(self.completed.load(Ordering::Relaxed)),
                    ),
                    ("failed", Json::UInt(self.failed.load(Ordering::Relaxed))),
                    ("shed", Json::UInt(self.shed.load(Ordering::Relaxed))),
                    (
                        "deadline_exceeded",
                        Json::UInt(self.deadline_exceeded.load(Ordering::Relaxed)),
                    ),
                    (
                        "malformed",
                        Json::UInt(self.malformed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "shard_streams",
                Json::obj(vec![
                    (
                        "active",
                        Json::UInt(self.shard_active.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed",
                        Json::UInt(self.shard_done.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("shutting_down", Json::Bool(self.is_shutting_down())),
        ])
    }

    fn cache_stats_json(&self) -> Json {
        let s = self.store.stats();
        let sel = self.store.selection_totals();
        Json::obj(vec![
            ("programs", Json::UInt(self.store.len() as u64)),
            ("analyses", Json::UInt(s.analyses)),
            ("session_hits", Json::UInt(s.hits)),
            ("runners", Json::UInt(lock(&self.runners).len() as u64)),
            (
                "selections",
                Json::obj(vec![
                    ("hits", Json::UInt(sel.hits)),
                    ("misses", Json::UInt(sel.misses)),
                    ("compute_secs", Json::Float(sel.compute_secs())),
                ]),
            ),
        ])
    }

    fn summary(&self) -> String {
        format!(
            "served {} request(s): {} completed, {} failed ({} shed, {} deadline-exceeded, {} malformed)",
            self.received.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.deadline_exceeded.load(Ordering::Relaxed),
            self.malformed.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// Where `begin_shutdown` self-connects to unblock the accept loop.
#[derive(Clone)]
enum WakeTarget {
    Unix(String),
    Tcp(SocketAddr),
}

/// The two byte-stream transports, unified so `serve_connection` (and
/// therefore the wire contract) is written exactly once. Both halves of
/// a connection come from `try_clone`; the read timeout lets idle
/// readers notice shutdown.
trait ServeStream: Read + Sized + Send {
    type Writer: Write + Send + 'static;
    fn split_writer(&self) -> std::io::Result<Self::Writer>;
    fn set_timeout(&self, timeout: Duration) -> std::io::Result<()>;
}

impl ServeStream for UnixStream {
    type Writer = UnixStream;
    fn split_writer(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }
    fn set_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

impl ServeStream for TcpStream {
    type Writer = TcpStream;
    fn split_writer(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }
    fn set_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

fn worker_loop(server: &Server) {
    while let Some(job) = server.queue.pop() {
        let resp = server.execute(&job.work);
        server.record(&resp);
        write_response(&job.out, &resp);
    }
}

/// stdio transport: requests on stdin, responses on stdout (stdout stays
/// pure JSONL; diagnostics go to stderr). EOF is a graceful shutdown.
fn serve_stdio(server: &Server) -> Result<String, CliError> {
    let out: Out = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    std::thread::scope(|s| {
        for _ in 0..server.workers {
            s.spawn(|| worker_loop(server));
        }
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            server.dispatch(line.trim(), &out);
            if server.is_shutting_down() {
                break;
            }
        }
        server.queue.close();
    });
    eprintln!("[t1000-serve] {}", server.summary());
    Ok(String::new())
}

/// Unix-socket transport: one reader thread per connection, all feeding
/// the shared worker pool. A stale socket file at `path` is replaced.
fn serve_socket(server: &Server, path: &str) -> Result<String, CliError> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| CliError(format!("serve: cannot bind {path}: {e}")))?;
    *lock(&server.wake) = Some(WakeTarget::Unix(path.to_string()));
    eprintln!(
        "[t1000-serve] listening on {path} ({} worker(s), queue capacity {})",
        server.workers, server.queue.capacity
    );
    std::thread::scope(|s| {
        for _ in 0..server.workers {
            s.spawn(|| worker_loop(server));
        }
        for stream in listener.incoming() {
            if server.is_shutting_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            s.spawn(move || serve_connection(server, stream));
        }
        server.queue.close();
    });
    let _ = std::fs::remove_file(path);
    Ok(format!("[t1000-serve] {}\n", server.summary()))
}

/// TCP transport: same wire contract and connection lifecycle as the Unix
/// socket, reachable from other hosts. A bare port binds loopback
/// (`127.0.0.1:PORT`) — exposing the daemon beyond the local machine is
/// an explicit `HOST:PORT` choice (there is no authentication; see the
/// security note in `docs/SERVING.md`). Port `0` asks the OS for a free
/// port; the chosen address is in the startup banner on stderr.
fn serve_tcp(server: &Server, spec: &str) -> Result<String, CliError> {
    let addr = if spec.contains(':') {
        spec.to_string()
    } else {
        format!("127.0.0.1:{spec}")
    };
    let listener = TcpListener::bind(&addr)
        .map_err(|e| CliError(format!("serve: cannot bind tcp {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError(format!("serve: tcp {addr}: {e}")))?;
    *lock(&server.wake) = Some(WakeTarget::Tcp(local));
    eprintln!(
        "[t1000-serve] listening on tcp://{local} ({} worker(s), queue capacity {})",
        server.workers, server.queue.capacity
    );
    std::thread::scope(|s| {
        for _ in 0..server.workers {
            s.spawn(|| worker_loop(server));
        }
        for stream in listener.incoming() {
            if server.is_shutting_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            s.spawn(move || serve_connection(server, stream));
        }
        server.queue.close();
    });
    Ok(format!("[t1000-serve] {}\n", server.summary()))
}

fn serve_connection<S: ServeStream>(server: &Server, stream: S) {
    // A finite read timeout lets idle connection readers notice shutdown
    // instead of blocking the process exit forever.
    let _ = stream.set_timeout(Duration::from_millis(200));
    let Ok(write_half) = stream.split_writer() else {
        return;
    };
    let out: Out = Arc::new(Mutex::new(Box::new(write_half)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    server.dispatch(line.trim(), &out);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if server.is_shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// `t1000 serve [--socket PATH] [--tcp HOST:PORT] [--workers N] [--queue N]`.
pub fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, crate::SERVE_VALUE_OPTS, crate::SERVE_FLAGS)?;
    if !p.positional.is_empty() {
        return Err(CliError(
            "serve: unexpected positional arguments (options only; see `t1000 help`)".to_string(),
        ));
    }
    let workers = match p.get_u32("workers")? {
        Some(0) => return Err(CliError("serve: --workers must be at least 1".to_string())),
        Some(n) => n as usize,
        None => t1000_bench::engine::num_threads(),
    };
    let queue_capacity = match p.get_u32("queue")? {
        Some(0) => return Err(CliError("serve: --queue must be at least 1".to_string())),
        Some(n) => n as usize,
        None => 64,
    };
    let server = Server::new(&ServeConfig {
        workers,
        queue_capacity,
    });
    match (p.get("socket"), p.get("tcp")) {
        (Some(_), Some(_)) => Err(CliError(
            "serve: --socket and --tcp are mutually exclusive (one listener per daemon)"
                .to_string(),
        )),
        (Some(path), None) => serve_socket(&server, path),
        (None, Some(addr)) => serve_tcp(&server, addr),
        (None, None) => serve_stdio(&server),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(line: &str) -> Json {
        Json::parse(line).unwrap()
    }

    fn result(resp: &Json) -> &Json {
        assert!(
            resp.get("error").is_none(),
            "unexpected error: {}",
            resp.to_string_compact()
        );
        resp.get("result").unwrap()
    }

    fn error_code(resp: &Json) -> u64 {
        resp.get("error")
            .unwrap_or_else(|| panic!("expected error: {}", resp.to_string_compact()))
            .get("code")
            .and_then(Json::as_u64)
            .unwrap()
    }

    fn run_req(workload: &str, strategy: &str, extra: &str) -> String {
        format!(
            r#"{{"id": 1, "method": "run", "params": {{"workload": "{workload}", "strategy": "{strategy}"{extra}}}}}"#
        )
    }

    #[test]
    fn malformed_and_bad_requests_fail_typed() {
        let server = Server::new(&ServeConfig::default());
        let resp = j(&server.handle_line("this is not json"));
        assert_eq!(error_code(&resp), code::BAD_REQUEST);
        assert_eq!(resp.get("id"), Some(&Json::Null));

        let resp = j(&server.handle_line(r#"{"id": 7, "params": {}}"#));
        assert_eq!(error_code(&resp), code::BAD_REQUEST);
        assert_eq!(resp.get("id").and_then(Json::as_u64), Some(7));

        for bad in [
            r#"{"id": 1, "method": "teleport"}"#,
            r#"{"id": 1, "method": "run"}"#,
            r#"{"id": 1, "method": "run", "params": {"workload": "nope"}}"#,
            r#"{"id": 1, "method": "run", "params": {"workload": "gsm_dec", "asm": "x"}}"#,
            r#"{"id": 1, "method": "run", "params": {"workload": "gsm_dec", "strategy": "magic"}}"#,
            r#"{"id": 1, "method": "run", "params": {"workload": "gsm_dec", "scale": "huge"}}"#,
            r#"{"id": 1, "method": "run", "params": {"asm": "main: nonsense"}}"#,
            r#"{"id": 1, "method": "select", "params": {"workload": "gsm_dec", "strategy": "baseline"}}"#,
            r#"{"id": 1, "method": "run", "params": {"workload": "gsm_dec", "machine": {"pfus": "lots"}}}"#,
        ] {
            let resp = j(&server.handle_line(bad));
            assert_eq!(error_code(&resp), code::BAD_REQUEST, "{bad}");
        }

        let status = j(&server.handle_line(r#"{"id": 2, "method": "status"}"#));
        let requests = result(&status).get("requests").unwrap();
        assert_eq!(requests.get("malformed").and_then(Json::as_u64), Some(2));
        assert_eq!(requests.get("failed").and_then(Json::as_u64), Some(11));
        assert_eq!(requests.get("shed").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn run_is_analysed_once_and_reproducible() {
        let server = Server::new(&ServeConfig::default());
        let r1 = j(&server.handle_line(&run_req("gsm_dec", "selective", r#", "pfus": 2"#)));
        let r2 = j(&server.handle_line(&run_req("gsm_dec", "greedy", "")));
        let r3 = j(&server.handle_line(&run_req("gsm_dec", "selective", r#", "pfus": 2"#)));
        for r in [&r1, &r2, &r3] {
            let cell = result(r).get("cell").unwrap();
            assert!(cell.get("cycles").and_then(Json::as_u64).unwrap() > 0);
            assert!(cell.get("attribution").is_some());
        }
        // Identical requests are bit-identical apart from host timing.
        let strip = |r: &Json| {
            let mut cell = result(r).get("cell").unwrap().clone();
            if let Json::Obj(fields) = &mut cell {
                fields.retain(|(k, _)| k != "host_ns" && k != "sim_khz");
            }
            cell.to_string_compact()
        };
        assert_eq!(strip(&r1), strip(&r3));
        assert_ne!(
            result(&r1).get("cell").unwrap().get("cycles"),
            result(&r2).get("cell").unwrap().get("cycles"),
        );

        // One program, one analysis; the repeat hit both caches.
        let stats = j(&server.handle_line(r#"{"id": 9, "method": "cache_stats"}"#));
        let stats = result(&stats);
        assert_eq!(stats.get("programs").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("analyses").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("session_hits").and_then(Json::as_u64), Some(2));
        let sel = stats.get("selections").unwrap();
        assert_eq!(sel.get("misses").and_then(Json::as_u64), Some(2));
        assert_eq!(sel.get("hits").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn select_returns_the_selection_document() {
        let server = Server::new(&ServeConfig::default());
        let resp = j(&server.handle_line(
            r#"{"id": 3, "method": "select", "params": {"workload": "g721_enc", "strategy": "knapsack", "lut_budget": 200}}"#,
        ));
        let result = result(&resp);
        assert_eq!(result.get("method").and_then(Json::as_str), Some("select"));
        let sel = result.get("selection").unwrap();
        assert_eq!(
            sel.get("strategy").and_then(Json::as_str).map(String::from),
            Some("knapsack(luts=200)".to_string())
        );
        assert!(sel.get("num_confs").and_then(Json::as_u64).is_some());
        assert!(sel.get("confs").and_then(Json::as_array).is_some());
    }

    #[test]
    fn zero_deadline_is_shed_deterministically() {
        let server = Server::new(&ServeConfig::default());
        let resp =
            j(&server.handle_line(&run_req("gsm_dec", "selective", r#", "deadline_ms": 0"#)));
        assert_eq!(error_code(&resp), code::DEADLINE_EXCEEDED);
        let status = j(&server.handle_line(r#"{"id": 2, "method": "status"}"#));
        let requests = result(&status).get("requests").unwrap();
        assert_eq!(
            requests.get("deadline_exceeded").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn shutdown_rejects_further_work() {
        let server = Server::new(&ServeConfig::default());
        let resp = j(&server.handle_line(r#"{"id": 1, "method": "shutdown"}"#));
        assert_eq!(
            result(&resp).get("shutting_down").and_then(Json::as_bool),
            Some(true)
        );
        let resp = j(&server.handle_line(&run_req("gsm_dec", "selective", "")));
        assert_eq!(error_code(&resp), code::SHUTTING_DOWN);
        // Control methods still answer while draining.
        let status = j(&server.handle_line(r#"{"id": 3, "method": "status"}"#));
        assert_eq!(
            result(&status).get("shutting_down").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn ping_answers_inline_even_while_draining() {
        let server = Server::new(&ServeConfig::default());
        let resp = j(&server.handle_line(r#"{"id": 1, "method": "ping"}"#));
        let r = result(&resp);
        assert_eq!(r.get("pong").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("shutting_down").and_then(Json::as_bool), Some(false));
        server.handle_line(r#"{"id": 2, "method": "shutdown"}"#);
        let resp = j(&server.handle_line(r#"{"id": 3, "method": "ping"}"#));
        let r = result(&resp);
        assert_eq!(r.get("pong").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("shutting_down").and_then(Json::as_bool), Some(true));
        // run_shard, unlike ping, is refused while draining.
        let resp = j(&server.handle_line(
            r#"{"id": 4, "method": "run_shard", "params": {"plan": "run_all", "scale": "test", "cells": [0]}}"#,
        ));
        assert_eq!(error_code(&resp), code::SHUTTING_DOWN);
    }

    #[test]
    fn run_shard_streams_the_worker_protocol() {
        let server = Server::new(&ServeConfig::default());
        // Bad params earn a single typed 400 line.
        let resp =
            j(&server
                .handle_line(r#"{"id": 1, "method": "run_shard", "params": {"plan": "nope"}}"#));
        assert_eq!(error_code(&resp), code::BAD_REQUEST);
        // A small dispatch: event lines, then an id-echoing envelope.
        let out = server.handle_line(
            r#"{"id": 42, "method": "run_shard", "params": {"plan": "run_all", "scale": "test", "cells": [0, 1], "deterministic": true}}"#,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() >= 2, "{out}");
        let last = j(lines.last().unwrap());
        assert_eq!(last.get("id").and_then(Json::as_u64), Some(42));
        assert!(last.get("result").is_some(), "{out}");
        let status = j(&server.handle_line(r#"{"id": 5, "method": "status"}"#));
        let streams = result(&status).get("shard_streams").unwrap();
        assert_eq!(streams.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(streams.get("active").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn adhoc_asm_programs_share_the_store_by_hash() {
        let server = Server::new(&ServeConfig::default());
        let asm = "main: li $s0, 40 \n loop: sll $t2, $s0, 3 \n xor $t2, $t2, $s0 \n andi $t2, $t2, 255 \n addiu $s0, $s0, -1 \n bgtz $s0, loop \n li $v0, 10 \n syscall";
        let req = format!(
            r#"{{"id": 1, "method": "run", "params": {{"asm": "{}", "pfus": 2}}}}"#,
            asm.replace('\n', "\\n")
        );
        let r1 = j(&server.handle_line(&req));
        let r2 = j(&server.handle_line(&req));
        let cycles = |r: &Json| {
            result(r)
                .get("cell")
                .unwrap()
                .get("cycles")
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(cycles(&r1), cycles(&r2));
        assert_eq!(
            result(&r1).get("cell").unwrap().get("workload"),
            Some(&Json::Str("adhoc".to_string()))
        );
        let stats = j(&server.handle_line(r#"{"id": 9, "method": "cache_stats"}"#));
        assert_eq!(
            result(&stats).get("analyses").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_drains_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
