//! # t1000-cli — the `t1000` command-line driver
//!
//! Subcommands:
//!
//! ```text
//! t1000 asm     <file.s> [--out file.tobj]      assemble to a text object
//! t1000 disasm  <file.s|.tobj>                  disassemble
//! t1000 run     <file.s|.tobj|bench:name> [--pfus N|unlimited] [--reconfig C]
//!               [--greedy] [--threshold F] [--max-instr N] [--scale test|full]
//!               [--stats-json FILE] [--trace FILE] [--attr] [--no-fast-path]
//!                                               select + simulate (+observe)
//! t1000 report  <stats.json>                    render the attribution table
//! t1000 profile <file.s|.tobj>                  sim_profile-style report
//! t1000 select  <file.s|.tobj|bench:name> [--strategy NAME] [--pfus N]
//!               [--greedy] [--threshold F] [--lut-budget N] [--explain]
//!                                               show chosen ext. instructions
//!                                               (--explain: per-pass timing
//!                                               and accept/reject decisions)
//! t1000 bench   <name> [--scale test|full] [--pfus N]
//!                                               run a MediaBench-style kernel
//! t1000 bench   --all [--scale test|full] [--json FILE] [--resume]
//!               [--deterministic] [--inject PLAN] [--max-cycles N]
//!               [--strategies] [--no-fast-path] full experiment suite (engine;
//!                                               --strategies adds the knapsack
//!                                               sweep cells; --no-fast-path
//!                                               disables hot-loop replay)
//!               [--shards N]                    partition the plan across N
//!                                               worker processes and merge a
//!                                               byte-identical artifact
//!               [--remote HOST:PORT,...]        dispatch shards to remote
//!                                               `t1000 serve --tcp` endpoints
//!                                               (fault-tolerant: retry with
//!                                               backoff, health probes, and
//!                                               degradation to local workers)
//!               [--retries N] [--backoff-ms M]  retry policy shared by cell
//!                                               retry and remote connects
//!                                               (env: T1000_RETRY=N[:M])
//! t1000 bench   --validate <BENCH_results.json> [--expect KEY=VALUE,...]
//!                                               re-check a results artifact
//!                                               (+ declarative assertions)
//! t1000 worker                                  shard worker: one run_shard
//!                                               JSON-RPC request on stdin,
//!                                               streamed results on stdout
//!                                               (spawned by bench --shards)
//! t1000 serve   [--socket PATH] [--tcp HOST:PORT] [--workers N] [--queue N]
//!                                               JSON-RPC selection/simulation
//!                                               daemon (docs/SERVING.md)
//! ```
//!
//! All command logic lives in this library so it is unit-testable; the
//! binary is a two-line wrapper.

pub mod args;
pub mod serve;

use args::{parse, ArgError, Parsed};
use std::fmt::Write as _;
use t1000_core::{PipelineTrace, SelectConfig, Selection, Session, StrategySpec};
use t1000_cpu::{CpuConfig, PfuCount};
use t1000_isa::Program;

/// CLI error: message already formatted for the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> CliError {
        CliError(e.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

// Per-subcommand option tables, shared between the `parse` calls and the
// help-drift test so an option cannot exist without `usage()` naming it.
const ASM_VALUE_OPTS: &[&str] = &["out"];
const RUN_VALUE_OPTS: &[&str] = &[
    "pfus",
    "reconfig",
    "threshold",
    "reload-weight",
    "max-instr",
    "stats-json",
    "trace",
    "scale",
    "pfu-planes",
    "pfu-prefetch",
    "conf-compress",
];
const RUN_FLAG_OPTS: &[&str] = &["greedy", "attr", "no-fast-path"];
const SELECT_VALUE_OPTS: &[&str] = &[
    "pfus",
    "threshold",
    "strategy",
    "lut-budget",
    "reload-weight",
    "scale",
];
const SELECT_FLAG_OPTS: &[&str] = &["greedy", "explain"];
const BENCH_VALUE_OPTS: &[&str] = &[
    "scale",
    "pfus",
    "json",
    "validate",
    "inject",
    "max-cycles",
    "expect",
    "shards",
    "remote",
    "retries",
    "backoff-ms",
    "pfu-planes",
    "pfu-prefetch",
    "conf-compress",
];
const BENCH_FLAG_OPTS: &[&str] = &[
    "all",
    "resume",
    "deterministic",
    "strategies",
    "no-fast-path",
];
pub(crate) const SERVE_VALUE_OPTS: &[&str] = &["socket", "tcp", "workers", "queue"];
pub(crate) const SERVE_FLAGS: &[&str] = &[];

/// Entry point: executes `args` and returns the text to print.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first().map(String::as_str) else {
        return Ok(usage());
    };
    let rest = &args[1..];
    match cmd {
        "asm" => cmd_asm(rest),
        "disasm" => cmd_disasm(rest),
        "run" => cmd_run(rest),
        "report" => cmd_report(rest),
        "profile" => cmd_profile(rest),
        "select" => cmd_select(rest),
        "bench" => cmd_bench(rest),
        "worker" => cmd_worker(rest),
        "serve" => serve::cmd_serve(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => err(format!("unknown command `{other}` (try `t1000 help`)")),
    }
}

fn usage() -> String {
    "t1000 — configurable extended instructions toolchain\n\
     usage:\n\
     \x20 t1000 asm     <file.s> [--out file.tobj]\n\
     \x20 t1000 disasm  <file.s|.tobj>\n\
     \x20 t1000 run     <file|bench:name> [--pfus N|unlimited] [--reconfig C] [--greedy] [--threshold F] [--max-instr N]\n\
     \x20               [--reload-weight W] [--pfu-planes 1|2] [--pfu-prefetch N] [--conf-compress R]\n\
     \x20               [--stats-json FILE] [--trace FILE] [--attr] [--scale test|full] [--no-fast-path]\n\
     \x20 t1000 report  <stats.json>\n\
     \x20 t1000 profile <file>\n\
     \x20 t1000 select  <file|bench:name> [--strategy greedy|selective|knapsack] [--pfus N]\n\
     \x20               [--greedy] [--threshold F] [--lut-budget N] [--reload-weight W] [--explain] [--scale test|full]\n\
     \x20 t1000 bench   <name> [--scale test|full] [--pfus N] [--pfu-planes 1|2] [--pfu-prefetch N] [--conf-compress R]\n\
     \x20 t1000 bench   --all [--scale test|full] [--json FILE] [--resume] [--shards N]\n\
     \x20               [--remote HOST:PORT,...] [--retries N] [--backoff-ms M]\n\
     \x20               [--pfu-planes 1|2] [--pfu-prefetch N] [--conf-compress R]\n\
     \x20               [--deterministic] [--inject PLAN] [--max-cycles N] [--strategies] [--no-fast-path]\n\
     \x20 t1000 bench   --validate <BENCH_results.json> [--expect KEY=VALUE,...]\n\
     \x20 t1000 worker  (internal: shard worker spawned by `bench --shards`; JSON-RPC on stdio)\n\
     \x20 t1000 serve   [--socket PATH] [--tcp HOST:PORT] [--workers N] [--queue N]  (JSON-RPC daemon; docs/SERVING.md)\n"
        .to_string()
}

/// Loads a program from assembly (`.s`) or text-object (`.tobj`) source.
fn load(path: &str) -> Result<Program, CliError> {
    let src =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    load_str(path, &src)
}

/// Path-extension dispatch, separated for tests.
fn load_str(path: &str, src: &str) -> Result<Program, CliError> {
    if path.ends_with(".tobj") {
        t1000_isa::read_object(src).map_err(|e| CliError(format!("{path}: {e}")))
    } else {
        t1000_asm::assemble(src).map_err(|e| CliError(format!("{path}: {e}")))
    }
}

fn cmd_asm(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, ASM_VALUE_OPTS, &[])?;
    let [path] = p.positional.as_slice() else {
        return err("asm: expected exactly one input file");
    };
    let program = load(path)?;
    let object = t1000_isa::write_object(&program);
    match p.get("out") {
        Some(out) => {
            std::fs::write(out, &object)
                .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
            Ok(format!(
                "wrote {out}: {} instructions, {} data bytes\n",
                program.len(),
                program.data.len()
            ))
        }
        None => Ok(object),
    }
}

fn cmd_disasm(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, &[], &[])?;
    let [path] = p.positional.as_slice() else {
        return err("disasm: expected exactly one input file");
    };
    Ok(t1000_asm::disassemble(&load(path)?))
}

fn machine_config(p: &Parsed) -> Result<(CpuConfig, Option<usize>), CliError> {
    let (pfus, count) = match p.get("pfus") {
        None => (PfuCount::Fixed(0), None),
        Some("unlimited") => (PfuCount::Unlimited, None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| CliError(format!("--pfus: `{v}` is not a count")))?;
            (PfuCount::Fixed(n), Some(n))
        }
    };
    let mut cfg = CpuConfig {
        pfus,
        ..CpuConfig::default()
    };
    if let Some(c) = p.get_u32("reconfig")? {
        cfg.reconfig_cycles = c;
    }
    if let Some(m) = p.get_u32("max-instr")? {
        cfg.max_instructions = u64::from(m);
    }
    // Reconfiguration-hiding knobs (docs/METRICS.md, schema v6).
    if let Some(n) = p.get_u32("pfu-planes")? {
        if !(1..=2).contains(&n) {
            return err("--pfu-planes must be 1 or 2");
        }
        cfg.pfu_planes = n;
    }
    if let Some(n) = p.get_u32("pfu-prefetch")? {
        cfg.pfu_prefetch = n;
    }
    if let Some(r) = p.get_f64("conf-compress")? {
        if !(r > 0.0 && r.is_finite()) {
            return err("--conf-compress must be a positive ratio (cycles per stream word)");
        }
        cfg.conf_compress = r;
    }
    // Escape hatch for A/B timing comparisons; results are bit-identical
    // either way (docs/FASTPATH.md).
    cfg.fast_path = !p.flag("no-fast-path");
    Ok((cfg, count))
}

fn select_for(session: &Session, p: &Parsed, pfus: Option<usize>) -> Result<Selection, CliError> {
    let threshold = p.get_f64("threshold")?.unwrap_or(0.005);
    Ok(if p.flag("greedy") {
        session.greedy()
    } else {
        session.selective(&SelectConfig {
            pfus,
            gain_threshold: threshold,
            reload_weight: p.get_f64("reload-weight")?.unwrap_or(0.0),
        })
    })
}

/// Resolves `run`'s input: a `.s`/`.tobj` path, or `bench:<name>` for a
/// registry workload (scaled by `--scale`, default `test`).
fn load_target(target: &str, p: &Parsed) -> Result<(String, Program), CliError> {
    let Some(name) = target.strip_prefix("bench:") else {
        return Ok((target.to_string(), load(target)?));
    };
    let scale = match p.get("scale") {
        Some("full") => t1000_workloads::Scale::Full,
        Some("test") | None => t1000_workloads::Scale::Test,
        Some(other) => return err(format!("--scale: `{other}` is not test|full")),
    };
    let Some(w) = t1000_workloads::by_name(name, scale) else {
        return err(format!(
            "unknown benchmark `{name}` (one of {:?})",
            t1000_workloads::NAMES
        ));
    };
    let program = w.program().map_err(|e| CliError(e.to_string()))?;
    Ok((name.to_string(), program))
}

/// One observed timed run: cycle attribution with per-PC counters, plus
/// the JSON-lines event trace when `trace_path` is given.
fn observed_run(
    session: &Session,
    sel: Option<&Selection>,
    cfg: CpuConfig,
    trace_path: Option<&str>,
) -> Result<
    (
        t1000_cpu::RunResult,
        t1000_cpu::CycleAttribution,
        Option<t1000_cpu::PcStalls>,
        Option<u64>,
    ),
    CliError,
> {
    if let Some(path) = trace_path {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
        let mut writer = t1000_bench::runstats::TraceWriter::new(std::io::BufWriter::new(file));
        let run = match sel {
            Some(s) => session.run_with_observed(s, cfg, &mut writer),
            None => session.run_baseline_observed(cfg, &mut writer),
        }
        .map_err(|e| CliError(e.to_string()))?;
        let collector = std::mem::take(&mut writer.collector);
        let events = writer.events_written;
        writer
            .finish()
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let (attr, per_pc) = collector.into_parts();
        Ok((run, attr, per_pc, Some(events)))
    } else {
        let mut sink = t1000_cpu::AttrCollector::with_per_pc();
        let run = match sel {
            Some(s) => session.run_with_observed(s, cfg, &mut sink),
            None => session.run_baseline_observed(cfg, &mut sink),
        }
        .map_err(|e| CliError(e.to_string()))?;
        let (attr, per_pc) = sink.into_parts();
        Ok((run, attr, per_pc, None))
    }
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, RUN_VALUE_OPTS, RUN_FLAG_OPTS)?;
    let [target] = p.positional.as_slice() else {
        return err("run: expected exactly one input (a file or bench:<name>)");
    };
    let (cfg, pfu_count) = machine_config(&p)?;
    let (name, program) = load_target(target, &p)?;
    let has_pfus = cfg.pfus != PfuCount::Fixed(0);
    let stats_json = p.get("stats-json");
    let trace = p.get("trace");
    let observing = stats_json.is_some() || trace.is_some() || p.flag("attr");
    // The profiling run honours --max-instr too, so a non-terminating
    // input errors out instead of hanging.
    let session = Session::with_limits(
        program,
        t1000_core::ExtractConfig::default(),
        cfg.max_instructions,
    )
    .map_err(|e| CliError(e.to_string()))?;

    let mut out = String::new();
    let run = if has_pfus {
        let sel = select_for(&session, &p, pfu_count)?;
        let (base, run) = if observing {
            // The observed variant of verify_selection: the baseline run
            // pins the architectural reference, the fused run is traced.
            let base = session
                .run_baseline(CpuConfig::baseline())
                .map_err(|e| CliError(e.to_string()))?;
            let run = observed_run(&session, Some(&sel), cfg, trace)?;
            if base.sys != run.0.sys {
                return err(format!("{name}: fused run changed architectural results"));
            }
            (base, run)
        } else {
            let (base, run) = session
                .verify_selection(&sel, cfg)
                .map_err(|e| CliError(e.to_string()))?;
            (base, (run, Default::default(), None, None))
        };
        writeln!(out, "extended instructions: {}", sel.num_confs()).unwrap();
        writeln!(
            out,
            "baseline: {} cycles | T1000: {} cycles | speedup {:.3}x",
            base.timing.cycles,
            run.0.timing.cycles,
            run.0.speedup_over(&base)
        )
        .unwrap();
        run
    } else if observing {
        observed_run(&session, None, cfg, trace)?
    } else {
        let run = session
            .run_baseline(cfg)
            .map_err(|e| CliError(e.to_string()))?;
        (run, Default::default(), None, None)
    };
    let (run, attr, per_pc, events) = run;
    write_run_stats(&mut out, &run);

    if observing {
        debug_assert!(attr.checks_out() && attr.total_cycles == run.timing.cycles);
        let analysis = session.analysis();
        let loops = per_pc
            .as_ref()
            .map(|per_pc| {
                t1000_bench::runstats::loop_attrs(
                    session.program(),
                    &analysis.cfg,
                    &analysis.profile,
                    per_pc,
                )
            })
            .unwrap_or_default();
        if let Some(path) = stats_json {
            let doc = t1000_bench::runstats::run_stats_json(&name, &run, Some(&attr), &loops);
            std::fs::write(path, doc.to_string_pretty())
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            writeln!(out, "wrote {path}").unwrap();
        }
        if let Some(path) = trace {
            writeln!(out, "wrote {path} ({} events)", events.unwrap_or(0)).unwrap();
        }
        if p.flag("attr") {
            out.push_str(&t1000_bench::runstats::render_attr_table(&attr));
            out.push_str(&t1000_bench::runstats::render_loop_table(
                &loops,
                attr.total_cycles,
                8,
            ));
        }
    }
    Ok(out)
}

/// `t1000 report <stats.json>`: renders the attribution table from a
/// document previously written by `run --stats-json`.
fn cmd_report(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, &[], &[])?;
    let [path] = p.positional.as_slice() else {
        return err("report: expected exactly one stats JSON file");
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let doc =
        t1000_bench::json::Json::parse(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    t1000_bench::runstats::report_from_stats(&doc).map_err(|e| CliError(format!("{path}: {e}")))
}

fn write_run_stats(out: &mut String, run: &t1000_cpu::RunResult) {
    let t = &run.timing;
    writeln!(
        out,
        "cycles {} | instrs {} | base IPC {:.2} | ext execs {} | reconfigs {}",
        t.cycles, t.base_instructions, t.base_ipc, t.pfu.ext_executed, t.pfu.reconfigurations
    )
    .unwrap();
    writeln!(
        out,
        "il1 miss {:.2}% | dl1 miss {:.2}% | ul2 miss {:.2}%",
        100.0 * t.mem.il1.miss_rate(),
        100.0 * t.mem.dl1.miss_rate(),
        100.0 * t.mem.ul2.miss_rate()
    )
    .unwrap();
    if let Some(code) = run.sys.exit_code {
        writeln!(out, "exit {code} | checksum 0x{:016x}", run.sys.checksum).unwrap();
    }
    if !run.sys.output.is_empty() {
        writeln!(out, "--- program output ---").unwrap();
        out.push_str(&run.sys.output);
    }
}

fn cmd_profile(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, &[], &[])?;
    let [path] = p.positional.as_slice() else {
        return err("profile: expected exactly one input file");
    };
    let program = load(path)?;
    let cfg = t1000_profile::Cfg::build(&program).map_err(|e| CliError(e.to_string()))?;
    let profile =
        t1000_profile::ExecProfile::collect(&program, 0).map_err(|e| CliError(e.to_string()))?;
    Ok(t1000_profile::report::render(&program, &cfg, &profile))
}

/// Resolves `select`'s strategy from `--strategy`/`--greedy`/`--pfus`/
/// `--threshold`/`--lut-budget`/`--reload-weight` into the pipeline's
/// [`StrategySpec`].
fn strategy_spec_for(p: &Parsed, pfus: Option<usize>) -> Result<StrategySpec, CliError> {
    let threshold = p.get_f64("threshold")?.unwrap_or(0.005);
    let reload_weight = p.get_f64("reload-weight")?.unwrap_or(0.0);
    let cfg = SelectConfig {
        pfus,
        gain_threshold: threshold,
        reload_weight,
    };
    let name = match p.get("strategy") {
        Some(s) => s,
        None if p.flag("greedy") => "greedy",
        None => "selective",
    };
    match name {
        "greedy" => Ok(StrategySpec::Greedy),
        "selective" => Ok(StrategySpec::selective(&cfg)),
        "knapsack" => {
            let budget = p.get_u32("lut-budget")?.unwrap_or(256);
            Ok(StrategySpec::knapsack_reload(budget, reload_weight))
        }
        other => err(format!(
            "--strategy: `{other}` is not one of greedy|selective|knapsack"
        )),
    }
}

/// Renders `--explain`: the per-pass timing/output table followed by the
/// per-candidate accept/reject decisions.
fn render_trace(out: &mut String, trace: &PipelineTrace) {
    writeln!(out, "pipeline for strategy `{}`:", trace.strategy).unwrap();
    writeln!(out, "{:<32} {:>9} {:>7}  note", "pass", "time", "items").unwrap();
    for pass in &trace.passes {
        writeln!(
            out,
            "{:<32} {:>6} us {:>7}  {}",
            pass.name, pass.micros, pass.items, pass.note
        )
        .unwrap();
    }
    writeln!(out, "total: {} us", trace.total_micros()).unwrap();
    if !trace.decisions.is_empty() {
        writeln!(out, "decisions:").unwrap();
        for d in &trace.decisions {
            writeln!(
                out,
                "  {} pc=0x{:05x} len {}: {}",
                if d.accepted { "accept" } else { "reject" },
                d.pc,
                d.len,
                d.reason
            )
            .unwrap();
        }
    }
    writeln!(out).unwrap();
}

fn cmd_select(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, SELECT_VALUE_OPTS, SELECT_FLAG_OPTS)?;
    let [target] = p.positional.as_slice() else {
        return err("select: expected exactly one input (a file or bench:<name>)");
    };
    let pfus = p.get_u32("pfus")?.map(|n| n as usize);
    let (_, program) = load_target(target, &p)?;
    let session = Session::new(program).map_err(|e| CliError(e.to_string()))?;
    let spec = strategy_spec_for(&p, pfus.or(Some(4)))?;

    let mut out = String::new();
    let sel = if p.flag("explain") {
        let (sel, trace) = session.explain(&spec);
        render_trace(&mut out, &trace);
        sel
    } else {
        session.select(&spec)
    };
    writeln!(
        out,
        "{} configuration(s), {} site(s)",
        sel.num_confs(),
        sel.fusion.num_sites()
    )
    .unwrap();
    for c in &sel.confs {
        writeln!(
            out,
            "conf {:>2}: len {} | {} site(s) | {:>3} LUTs depth {} @ {:>2} bits | latency {} | gain ~{}",
            c.conf, c.seq_len, c.num_sites, c.cost.luts, c.cost.depth, c.width, c.latency, c.total_gain
        )
        .unwrap();
        for i in &c.canon.skeleton {
            writeln!(out, "    {i}").unwrap();
        }
    }
    Ok(out)
}

/// `t1000 worker`: the shard-worker half of `bench --all --shards N`.
/// Reads one `run_shard` JSON-RPC request on stdin and streams per-cell
/// results on stdout; spawned (never typed by hand) by the coordinator.
fn cmd_worker(args: &[String]) -> Result<String, CliError> {
    if !args.is_empty() {
        return err("worker: takes no arguments (it reads one JSON-RPC request on stdin)");
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    match t1000_bench::shard::run_worker(stdin.lock(), &mut stdout) {
        0 => Ok(String::new()),
        _ => err("worker: bad request (error envelope written to stdout)"),
    }
}

fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let p = parse(args, BENCH_VALUE_OPTS, BENCH_FLAG_OPTS)?;
    let scale = match p.get("scale") {
        Some("full") => t1000_workloads::Scale::Full,
        Some("test") | None => t1000_workloads::Scale::Test,
        Some(other) => return err(format!("--scale: `{other}` is not test|full")),
    };
    if let Some(path) = p.get("validate") {
        return bench_validate(path, p.get("expect"));
    }
    if p.get("expect").is_some() {
        return err("bench: --expect requires --validate FILE");
    }
    let shards = match p.get_u32("shards")? {
        Some(0) => return err("bench: --shards must be at least 1"),
        Some(n) => Some(n as usize),
        None => None,
    };
    let remotes: Vec<String> = match p.get("remote") {
        Some(spec) => {
            let list: Vec<String> = spec
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect();
            if list.is_empty() {
                return err("bench: --remote needs at least one HOST:PORT");
            }
            list
        }
        None => Vec::new(),
    };
    let planes = match p.get_u32("pfu-planes")? {
        Some(n) if !(1..=2).contains(&n) => return err("--pfu-planes must be 1 or 2"),
        Some(n) => n,
        None => 1,
    };
    let prefetch = p.get_u32("pfu-prefetch")?.unwrap_or(0);
    let compress = match p.get_f64("conf-compress")? {
        Some(r) if !(r > 0.0 && r.is_finite()) => {
            return err("--conf-compress must be a positive ratio (cycles per stream word)");
        }
        Some(r) => r,
        None => 0.0,
    };
    if p.flag("all") {
        if !remotes.is_empty() && shards.is_none() {
            return err("bench: --remote requires --shards N");
        }
        let config = engine_config(&p)?;
        return bench_all(
            scale,
            p.get("json"),
            &config,
            p.flag("strategies"),
            shards,
            &remotes,
            (planes, prefetch, compress),
        );
    }
    if shards.is_some() {
        return err("bench: --shards requires --all");
    }
    if !remotes.is_empty() {
        return err("bench: --remote requires --all (and --shards N)");
    }
    if p.get("retries").is_some() || p.get("backoff-ms").is_some() {
        return err("bench: --retries/--backoff-ms require --all");
    }
    if p.flag("strategies") {
        return err("bench: --strategies requires --all");
    }
    if p.flag("resume") {
        return err("bench: --resume requires --all (and --json FILE for the checkpoint)");
    }
    let [name] = p.positional.as_slice() else {
        return err(format!(
            "bench: expected one benchmark name (one of {:?}), --all, or --validate FILE",
            t1000_workloads::NAMES
        ));
    };
    let Some(w) = t1000_workloads::by_name(name, scale) else {
        return err(format!(
            "unknown benchmark `{name}` (one of {:?})",
            t1000_workloads::NAMES
        ));
    };
    let pfus = p.get_u32("pfus")?.map(|n| n as usize).unwrap_or(2);
    let program = w.program().map_err(|e| CliError(e.to_string()))?;
    let session = Session::new(program).map_err(|e| CliError(e.to_string()))?;
    let base = session
        .run_baseline(CpuConfig::baseline())
        .map_err(|e| CliError(e.to_string()))?;
    if base.sys.checksum != w.expected_checksum() {
        return err(format!(
            "{name}: simulator checksum diverges from reference"
        ));
    }
    let sel = session.selective(&SelectConfig {
        pfus: Some(pfus),
        gain_threshold: 0.005,
        ..SelectConfig::default()
    });
    let mut cfg = CpuConfig::with_pfus(pfus);
    cfg.pfu_planes = planes;
    cfg.pfu_prefetch = prefetch;
    cfg.conf_compress = compress;
    let run = session
        .run_with(&sel, cfg)
        .map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "{name} ({:?}): baseline {} cycles, T1000/{pfus}-PFU {} cycles, speedup {:.3}x, {} confs, checksum ok\n",
        scale,
        base.timing.cycles,
        run.timing.cycles,
        run.speedup_over(&base),
        sel.num_confs()
    ))
}

/// Assembles the engine's robustness configuration from CLI flags and
/// their environment fallbacks (`T1000_INJECT`, `T1000_MAX_CYCLES`,
/// `T1000_WALL_LIMIT_MS`, `T1000_RETRY`).
///
/// The retry policy resolves lowest-precedence first: the built-in
/// default, then `T1000_RETRY=N[:M]`, then the explicit `--retries N`
/// and `--backoff-ms M` flags. The same policy governs local cell
/// retry and the remote shard transport's connect/backoff schedule.
fn engine_config(p: &Parsed) -> Result<t1000_bench::engine::EngineConfig, CliError> {
    let mut retry = t1000_bench::engine::RetryPolicy::default();
    if let Ok(spec) = std::env::var(t1000_bench::engine::RETRY_ENV) {
        retry = t1000_bench::engine::RetryPolicy::parse_spec(&spec)
            .map_err(|e| CliError(format!("{}: {e}", t1000_bench::engine::RETRY_ENV)))?;
    }
    if let Some(n) = p.get_u32("retries")? {
        if n == 0 {
            return err("--retries must be at least 1");
        }
        retry.max_attempts = n;
    }
    if let Some(v) = p.get("backoff-ms") {
        let ms = v
            .parse::<u64>()
            .map_err(|_| CliError(format!("--backoff-ms: `{v}` is not milliseconds")))?;
        retry.backoff_override_ms = Some(ms);
    }
    let faults = match p.get("inject") {
        Some(text) => t1000_bench::fault::FaultPlan::parse(text)
            .map_err(|e| CliError(format!("--inject: {e}")))?,
        None => t1000_bench::fault::FaultPlan::from_env()
            .map_err(|e| CliError(format!("T1000_INJECT: {e}")))?,
    };
    let max_cycles = match p.get("max-cycles") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CliError(format!("--max-cycles: `{v}` is not a cycle count")))?,
        None => match std::env::var("T1000_MAX_CYCLES") {
            Ok(v) => v
                .parse::<u64>()
                .map_err(|_| CliError(format!("T1000_MAX_CYCLES: `{v}` is not a cycle count")))?,
            Err(_) => 0,
        },
    };
    let wall_limit = match std::env::var("T1000_WALL_LIMIT_MS") {
        Ok(v) => Some(std::time::Duration::from_millis(v.parse::<u64>().map_err(
            |_| CliError(format!("T1000_WALL_LIMIT_MS: `{v}` is not milliseconds")),
        )?)),
        Err(_) => None,
    };
    Ok(t1000_bench::engine::EngineConfig {
        retry,
        max_cycles,
        wall_limit,
        faults,
        deterministic: p.flag("deterministic"),
        no_fast_path: p.flag("no-fast-path"),
        resume: p.flag("resume"),
        // The checkpoint path is wired in bench_all once --json is known.
        ..Default::default()
    })
}

/// `bench --all`: the full experiment suite through the shared engine,
/// optionally writing the `BENCH_results.json` artifact. Cells that fail
/// are tabulated and the command exits nonzero; completed cells are
/// checkpointed next to the artifact so `--resume` can pick them up.
fn bench_all(
    scale: t1000_workloads::Scale,
    json: Option<&str>,
    config: &t1000_bench::engine::EngineConfig,
    strategies: bool,
    shards: Option<usize>,
    remotes: &[String],
    (planes, prefetch, compress): (u32, u32, f64),
) -> Result<String, CliError> {
    let mut config = config.clone();
    let checkpoint = json.map(|path| std::path::PathBuf::from(format!("{path}.partial")));
    if config.resume && checkpoint.is_none() {
        return err("bench: --resume needs --json FILE (the checkpoint lives at FILE.partial)");
    }
    config.checkpoint = checkpoint.clone();

    let plan_name = if strategies {
        "run_all_strategies"
    } else {
        "run_all"
    };
    let mut plan = if strategies {
        t1000_bench::plan::run_all_plan_with_strategies()
    } else {
        t1000_bench::plan::run_all_plan()
    };
    // Default knobs keep the untouched plan object, so the artifact stays
    // byte-identical to pre-v6 runs (cell order included).
    if (planes, prefetch, compress) != (1, 0, 0.0) {
        plan = plan.with_config_plane(planes, prefetch, compress);
    }
    let (run, sidecar) = match shards {
        Some(n) => {
            let sharded =
                t1000_bench::shard::run_sharded(&plan, plan_name, scale, n, &config, remotes)
                    .map_err(|e| CliError(format!("bench: {e}")))?;
            (sharded.run, Some(sharded.sidecar))
        }
        None => (
            t1000_bench::engine::execute_with(&plan, scale, &config),
            None,
        ),
    };
    if let Some(path) = json {
        t1000_bench::results::write_json_with_retry(
            &run,
            std::path::Path::new(path),
            &config.retry,
            &config.faults,
        )
        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        if let Some(sidecar) = &sidecar {
            let sidecar_path = format!("{path}.shards.json");
            std::fs::write(&sidecar_path, sidecar.to_string_pretty())
                .map_err(|e| CliError(format!("cannot write {sidecar_path}: {e}")))?;
        }
    }
    let mut out = t1000_bench::results::render_markdown(&run);
    let s = &run.stats;
    writeln!(out).unwrap();
    writeln!(
        out,
        "Engine: {} cells requested, {} simulated ({} deduped), {} selection jobs, {} threads.",
        s.cells_requested, s.cells_simulated, s.cells_deduped, s.selection_jobs, s.threads
    )
    .unwrap();
    if s.cells_restored > 0 {
        writeln!(
            out,
            "Resume: {} cell(s) restored from checkpoint.",
            s.cells_restored
        )
        .unwrap();
    }
    if let Some(sidecar) = &sidecar {
        let u = |k: &str| {
            sidecar
                .get(k)
                .and_then(t1000_bench::json::Json::as_u64)
                .unwrap_or(0)
        };
        let retried = sidecar
            .get("retried_cells")
            .and_then(t1000_bench::json::Json::as_array)
            .map_or(0, <[t1000_bench::json::Json]>::len);
        writeln!(
            out,
            "Sharded: {} worker process(es), {} crash(es), {retried} cell(s) retried.",
            u("shards"),
            u("worker_crashes"),
        )
        .unwrap();
        if u("remotes") > 0 {
            let degradations = sidecar
                .get("degradations")
                .and_then(t1000_bench::json::Json::as_array)
                .map_or(0, <[t1000_bench::json::Json]>::len);
            writeln!(
                out,
                "Remote: {} endpoint(s), {degradations} degradation event(s).",
                u("remotes"),
            )
            .unwrap();
        }
    }
    if let Some(path) = json {
        writeln!(
            out,
            "Wrote {path} (schema v{}).",
            t1000_bench::results::SCHEMA_VERSION
        )
        .unwrap();
        if sidecar.is_some() {
            writeln!(out, "Wrote {path}.shards.json (shard topology).").unwrap();
        }
    }
    if run.failures.is_empty() {
        // Healthy run: the artifact is complete, so the checkpoint is
        // dead weight.
        if let Some(cp) = &checkpoint {
            let _ = std::fs::remove_file(cp);
        }
        Ok(out)
    } else {
        // The artifact (if any) records the failures; print everything we
        // rendered, then refuse a clean exit with the failure table.
        print!("{out}");
        Err(CliError(t1000_bench::results::render_failures(
            &run.failures,
        )))
    }
}

/// `bench --validate FILE [--expect KEY=VALUE,...]`: re-checks a
/// `BENCH_results.json` artifact against the schema and the recomputed
/// Rust reference checksums, then any declarative `--expect` assertions
/// (the robust replacement for grepping the JSON in CI).
fn bench_validate(path: &str, expect: Option<&str>) -> Result<String, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let summary = t1000_bench::results::validate_artifact(&text)
        .map_err(|e| CliError(format!("{path}: INVALID: {e}")))?;
    let failed = if summary.failed_cells > 0 {
        format!(" {} failed cell(s) recorded,", summary.failed_cells)
    } else {
        String::new()
    };
    let mut out = format!(
        "{path}: OK (schema v{}, scale {}, {} workloads, {} cells,{failed} all checksums match the Rust reference)\n",
        t1000_bench::results::SCHEMA_VERSION,
        summary.scale,
        summary.workloads,
        summary.cells
    );
    if let Some(spec) = expect {
        // Topology keys (`shards=N`) assert on the coordinator's sidecar,
        // written next to the artifact by `bench --all --shards N`.
        let sidecar = std::fs::read_to_string(format!("{path}.shards.json")).ok();
        let satisfied =
            t1000_bench::results::check_expectations_with(&text, sidecar.as_deref(), spec)
                .map_err(|e| CliError(format!("{path}: EXPECTATION FAILED: {e}")))?;
        writeln!(
            out,
            "expectations: {} satisfied ({})",
            satisfied.len(),
            satisfied.join(", ")
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str, content: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("t1000_cli_test_{}_{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const KERNEL: &str = "
main:
    li  $s0, 300
    li  $t0, 3
    li  $t1, 5
loop:
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t1, $t1, $t2
    andi $t1, $t1, 1023
    addiu $s0, $s0, -1
    bgtz $s0, loop
    move $a0, $t1
    li   $v0, 30
    syscall
    li   $a0, 0
    li   $v0, 10
    syscall
";

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("usage:"));
        assert!(run(&s(&["help"])).unwrap().contains("t1000 bench"));
    }

    /// Golden test pinning `t1000 --help` byte-for-byte: any help change
    /// must be deliberate (and mirrored in the docs).
    #[test]
    fn help_output_matches_the_golden_text() {
        let golden = "t1000 — configurable extended instructions toolchain\n\
usage:\n\
\x20 t1000 asm     <file.s> [--out file.tobj]\n\
\x20 t1000 disasm  <file.s|.tobj>\n\
\x20 t1000 run     <file|bench:name> [--pfus N|unlimited] [--reconfig C] [--greedy] [--threshold F] [--max-instr N]\n\
\x20               [--reload-weight W] [--pfu-planes 1|2] [--pfu-prefetch N] [--conf-compress R]\n\
\x20               [--stats-json FILE] [--trace FILE] [--attr] [--scale test|full] [--no-fast-path]\n\
\x20 t1000 report  <stats.json>\n\
\x20 t1000 profile <file>\n\
\x20 t1000 select  <file|bench:name> [--strategy greedy|selective|knapsack] [--pfus N]\n\
\x20               [--greedy] [--threshold F] [--lut-budget N] [--reload-weight W] [--explain] [--scale test|full]\n\
\x20 t1000 bench   <name> [--scale test|full] [--pfus N] [--pfu-planes 1|2] [--pfu-prefetch N] [--conf-compress R]\n\
\x20 t1000 bench   --all [--scale test|full] [--json FILE] [--resume] [--shards N]\n\
\x20               [--remote HOST:PORT,...] [--retries N] [--backoff-ms M]\n\
\x20               [--pfu-planes 1|2] [--pfu-prefetch N] [--conf-compress R]\n\
\x20               [--deterministic] [--inject PLAN] [--max-cycles N] [--strategies] [--no-fast-path]\n\
\x20 t1000 bench   --validate <BENCH_results.json> [--expect KEY=VALUE,...]\n\
\x20 t1000 worker  (internal: shard worker spawned by `bench --shards`; JSON-RPC on stdio)\n\
\x20 t1000 serve   [--socket PATH] [--tcp HOST:PORT] [--workers N] [--queue N]  (JSON-RPC daemon; docs/SERVING.md)\n";
        assert_eq!(run(&s(&["--help"])).unwrap(), golden);
        assert_eq!(run(&s(&["help"])).unwrap(), golden);
    }

    /// Anti-drift check: every option a subcommand parses must be named
    /// in `usage()` (the tables are shared with the `parse` calls, so an
    /// undocumented option cannot slip in).
    #[test]
    fn every_parsed_option_appears_in_usage() {
        let usage = usage();
        let tables: &[(&str, &[&str])] = &[
            ("asm", ASM_VALUE_OPTS),
            ("run", RUN_VALUE_OPTS),
            ("run", RUN_FLAG_OPTS),
            ("select", SELECT_VALUE_OPTS),
            ("select", SELECT_FLAG_OPTS),
            ("bench", BENCH_VALUE_OPTS),
            ("bench", BENCH_FLAG_OPTS),
            ("serve", SERVE_VALUE_OPTS),
            ("serve", SERVE_FLAGS),
        ];
        for (cmd, opts) in tables {
            for opt in *opts {
                assert!(
                    usage.contains(&format!("--{opt}")),
                    "{cmd}: --{opt} is parsed but missing from usage()"
                );
            }
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn asm_emits_an_object_that_disasm_reads() {
        let src = tmp("asm.s", KERNEL);
        let obj_text = run(&s(&["asm", &src])).unwrap();
        assert!(obj_text.starts_with("T1000OBJ v1"));
        let obj = tmp("asm.tobj", &obj_text);
        let listing = run(&s(&["disasm", &obj])).unwrap();
        assert!(listing.contains("addu $t2, $t2, $t1"), "{listing}");
    }

    #[test]
    fn run_reports_speedup_and_checksum() {
        let src = tmp("run.s", KERNEL);
        let out = run(&s(&["run", &src, "--pfus", "2"])).unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("checksum 0x"), "{out}");
        // Baseline-only run.
        let out = run(&s(&["run", &src])).unwrap();
        assert!(out.contains("IPC"), "{out}");
        assert!(!out.contains("speedup"));
    }

    #[test]
    fn profile_shows_hot_loop() {
        let src = tmp("prof.s", KERNEL);
        let out = run(&s(&["profile", &src])).unwrap();
        assert!(out.contains("hottest blocks:"), "{out}");
        assert!(out.contains("loops (innermost first):"), "{out}");
    }

    #[test]
    fn select_lists_configurations() {
        let src = tmp("sel.s", KERNEL);
        let out = run(&s(&["select", &src, "--pfus", "2"])).unwrap();
        assert!(out.contains("conf  0"), "{out}");
        assert!(out.contains("LUTs"), "{out}");
        let greedy = run(&s(&["select", &src, "--greedy"])).unwrap();
        assert!(greedy.contains("configuration"), "{greedy}");
    }

    #[test]
    fn select_explain_prints_the_pass_table_and_decisions() {
        let src = tmp("sel_explain.s", KERNEL);
        let out = run(&s(&[
            "select",
            &src,
            "--strategy",
            "selective",
            "--pfus",
            "2",
            "--explain",
        ]))
        .unwrap();
        assert!(out.contains("pipeline for strategy `selective"), "{out}");
        for pass in [
            "BuildAnalysis",
            "ExtractMaximalSites",
            "ProfileWeights",
            "SelectStrategy(selective)",
            "LowerFusionMap",
        ] {
            assert!(out.contains(pass), "missing pass {pass}: {out}");
        }
        assert!(out.contains("decisions:"), "{out}");
        assert!(out.contains("accept") || out.contains("reject"), "{out}");
        // `--explain` must not change what gets selected.
        let plain = run(&s(&["select", &src, "--pfus", "2"])).unwrap();
        assert!(out.ends_with(&plain), "explain diverges from plain output");
    }

    #[test]
    fn select_supports_strategy_names_and_registry_targets() {
        let out = run(&s(&[
            "select",
            "bench:g721_enc",
            "--strategy",
            "knapsack",
            "--lut-budget",
            "200",
            "--explain",
        ]))
        .unwrap();
        assert!(out.contains("SelectStrategy(knapsack)"), "{out}");
        assert!(out.contains("configuration"), "{out}");
        let src = tmp("sel_strat.s", KERNEL);
        let e = run(&s(&["select", &src, "--strategy", "simulated-annealing"])).unwrap_err();
        assert!(e.0.contains("--strategy"), "{e}");
    }

    #[test]
    fn bench_runs_a_registry_kernel() {
        let out = run(&s(&["bench", "g721_enc", "--scale", "test"])).unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("checksum ok"), "{out}");
        assert!(run(&s(&["bench", "nope"])).is_err());
    }

    #[test]
    fn bench_all_emits_report_and_validating_artifact() {
        let json = std::env::temp_dir().join(format!(
            "t1000_cli_test_{}_results.json",
            std::process::id()
        ));
        let json = json.to_string_lossy().into_owned();
        let out = run(&s(&["bench", "--all", "--scale", "test", "--json", &json])).unwrap();
        assert!(out.contains("# T1000 experiment report"), "{out}");
        assert!(out.contains("## Figure 6"), "{out}");
        assert!(out.contains("Engine: "), "{out}");

        // The artifact it just wrote must validate...
        let ok = run(&s(&["bench", "--validate", &json])).unwrap();
        assert!(ok.contains("OK"), "{ok}");

        // ...and a corrupted copy must not.
        let text = std::fs::read_to_string(&json).unwrap();
        let bad = tmp(
            "bad_results.json",
            &text.replacen("\"cycles\"", "\"cycels\"", 1),
        );
        assert!(run(&s(&["bench", "--validate", &bad])).is_err());
        let _ = std::fs::remove_file(&json);
    }

    #[test]
    fn bench_all_reports_injected_failures_and_exits_nonzero() {
        let json = std::env::temp_dir().join(format!(
            "t1000_cli_test_{}_faulted.json",
            std::process::id()
        ));
        let json = json.to_string_lossy().into_owned();
        // Cell 2 panics on every attempt; cell 6 loses all its PFU
        // configurations and must degrade to scalar execution.
        let e = run(&s(&[
            "bench",
            "--all",
            "--scale",
            "test",
            "--json",
            &json,
            "--deterministic",
            "--inject",
            "panic@2,pfu@6",
        ]))
        .unwrap_err();
        assert!(e.0.contains("FAILED"), "{}", e.0);
        assert!(e.0.contains("panic"), "{}", e.0);

        // The artifact still validates: the panic is owned up to in
        // failed_cells, and the degraded cell's results are checksum-true.
        let ok = run(&s(&["bench", "--validate", &json])).unwrap();
        assert!(ok.contains("OK"), "{ok}");
        assert!(ok.contains("failed cell(s)"), "{ok}");
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(
            text.contains("\"cause\": \"panic\""),
            "missing failure record"
        );
        let _ = std::fs::remove_file(&json);
        let _ = std::fs::remove_file(format!("{json}.partial"));
    }

    #[test]
    fn no_fast_path_is_bit_identical_from_the_cli() {
        let src = tmp("nofast.s", KERNEL);
        let fast = run(&s(&["run", &src, "--pfus", "2"])).unwrap();
        let slow = run(&s(&["run", &src, "--pfus", "2", "--no-fast-path"])).unwrap();
        assert_eq!(fast, slow, "fast path changed user-visible output");
    }

    #[test]
    fn bench_validate_expect_asserts_on_the_artifact() {
        let json =
            std::env::temp_dir().join(format!("t1000_cli_test_{}_expect.json", std::process::id()));
        let json = json.to_string_lossy().into_owned();
        let out = run(&s(&["bench", "--all", "--scale", "test", "--json", &json])).unwrap();
        assert!(out.contains("# T1000 experiment report"), "{out}");

        let ok = run(&s(&[
            "bench",
            "--validate",
            &json,
            "--expect",
            "scale=test,retries=0,failed_cells=0,strategy=selective(pfus=2,threshold=0.005)",
        ]))
        .unwrap();
        assert!(ok.contains("expectations: 4 satisfied"), "{ok}");

        let e = run(&s(&["bench", "--validate", &json, "--expect", "retries=9"])).unwrap_err();
        assert!(e.0.contains("EXPECTATION FAILED"), "{}", e.0);

        // --expect without --validate is a usage error.
        let e = run(&s(&["bench", "--all", "--expect", "retries=0"])).unwrap_err();
        assert!(e.0.contains("--expect requires --validate"), "{}", e.0);
        let _ = std::fs::remove_file(&json);
        let _ = std::fs::remove_file(format!("{json}.partial"));
    }

    #[test]
    fn bench_strategies_requires_all() {
        let e = run(&s(&["bench", "g721_enc", "--strategies"])).unwrap_err();
        assert!(e.0.contains("--strategies"), "{e}");
    }

    #[test]
    fn bench_shards_requires_all_and_a_positive_count() {
        let e = run(&s(&["bench", "g721_enc", "--shards", "2"])).unwrap_err();
        assert!(e.0.contains("--shards requires --all"), "{e}");
        let e = run(&s(&["bench", "--all", "--shards", "0"])).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        let e = run(&s(&["bench", "--all", "--shards", "many"])).unwrap_err();
        assert!(e.0.contains("--shards"), "{e}");
        // `worker` is stdin-driven and takes no arguments.
        let e = run(&s(&["worker", "extra"])).unwrap_err();
        assert!(e.0.contains("worker"), "{e}");
    }

    #[test]
    fn bench_remote_and_retry_flags_are_guarded() {
        // --remote rides the shard coordinator, so it needs --all --shards.
        let e = run(&s(&["bench", "g721_enc", "--remote", "h:1"])).unwrap_err();
        assert!(e.0.contains("--remote requires --all"), "{e}");
        let e = run(&s(&["bench", "--all", "--remote", "h:1"])).unwrap_err();
        assert!(e.0.contains("--remote requires --shards"), "{e}");
        // An endpoint list of only separators/whitespace is empty.
        let e = run(&s(&["bench", "--all", "--shards", "2", "--remote", " , "])).unwrap_err();
        assert!(e.0.contains("at least one HOST:PORT"), "{e}");
        // Retry knobs configure the engine, which only --all drives.
        let e = run(&s(&["bench", "g721_enc", "--retries", "5"])).unwrap_err();
        assert!(e.0.contains("require --all"), "{e}");
        let e = run(&s(&["bench", "g721_enc", "--backoff-ms", "7"])).unwrap_err();
        assert!(e.0.contains("require --all"), "{e}");
        let e = run(&s(&["bench", "--all", "--retries", "0"])).unwrap_err();
        assert!(e.0.contains("--retries must be at least 1"), "{e}");
        let e = run(&s(&["bench", "--all", "--backoff-ms", "soon"])).unwrap_err();
        assert!(e.0.contains("--backoff-ms"), "{e}");
    }

    #[test]
    fn bench_rejects_malformed_robustness_flags() {
        let e = run(&s(&["bench", "--all", "--inject", "boom@1"])).unwrap_err();
        assert!(e.0.contains("--inject"), "{}", e.0);
        let e = run(&s(&["bench", "--all", "--max-cycles", "lots"])).unwrap_err();
        assert!(e.0.contains("--max-cycles"), "{}", e.0);
        // --resume without --all (or without --json) has no checkpoint.
        assert!(run(&s(&["bench", "g721_enc", "--resume"])).is_err());
        assert!(run(&s(&["bench", "--all", "--resume"])).is_err());
    }

    #[test]
    fn run_emits_stats_json_and_report_reads_it() {
        let src = tmp("stats.s", KERNEL);
        let json = tmp("stats.json", "");
        let out = run(&s(&[
            "run",
            &src,
            "--pfus",
            "2",
            "--stats-json",
            &json,
            "--attr",
        ]))
        .unwrap();
        assert!(out.contains("cycle attribution"), "{out}");
        assert!(out.contains("busy"), "{out}");
        assert!(out.contains(&format!("wrote {json}")), "{out}");

        // The document round-trips through the validator and `report`.
        let text = std::fs::read_to_string(&json).unwrap();
        let doc = t1000_bench::json::Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(t1000_bench::json::Json::as_str),
            Some(t1000_bench::runstats::RUN_STATS_SCHEMA)
        );
        let cycles = doc.get("cycles").and_then(t1000_bench::json::Json::as_u64);
        t1000_bench::runstats::validate_attribution(doc.get("attribution").unwrap(), cycles)
            .unwrap();
        let report = run(&s(&["report", &json])).unwrap();
        assert!(report.contains("cycle attribution"), "{report}");
        let _ = std::fs::remove_file(&json);
    }

    #[test]
    fn run_traces_events_as_json_lines() {
        let src = tmp("trace.s", KERNEL);
        let trace = tmp("trace.jsonl", "");
        let out = run(&s(&["run", &src, "--pfus", "2", "--trace", &trace])).unwrap();
        assert!(out.contains("events)"), "{out}");
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(!text.is_empty());
        for line in text.lines().take(50) {
            let e = t1000_bench::json::Json::parse(line).unwrap();
            assert!(e
                .get("type")
                .and_then(t1000_bench::json::Json::as_str)
                .is_some());
        }
        // The selective selection at 2 PFUs stays resident: the trace must
        // contain configuration loads and (usually) hits.
        assert!(text.contains("\"conf_load\""), "no conf_load in trace");
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn run_accepts_registry_workloads() {
        let out = run(&s(&["run", "bench:g721_enc", "--attr"])).unwrap();
        assert!(out.contains("cycle attribution"), "{out}");
        assert!(run(&s(&["run", "bench:nope"])).is_err());
        assert!(run(&s(&["run", "bench:g721_enc", "--scale", "huge"])).is_err());
    }

    #[test]
    fn report_rejects_non_stats_documents() {
        let not_stats = tmp("not_stats.json", "{\"schema\": \"other\"}");
        assert!(run(&s(&["report", &not_stats])).is_err());
        let missing = tmp(
            "missing_attr.json",
            "{\"schema\": \"t1000.run-stats\", \"cycles\": 5}",
        );
        let e = run(&s(&["report", &missing])).unwrap_err();
        assert!(e.0.contains("attribution"), "{e}");
    }

    #[test]
    fn run_rejects_bad_machine_options() {
        let src = tmp("bad.s", KERNEL);
        assert!(run(&s(&["run", &src, "--pfus", "many"])).is_err());
        assert!(run(&s(&["run", &src, "--reconfig", "x"])).is_err());
    }

    #[test]
    fn max_instr_guards_infinite_programs() {
        let src = tmp("inf.s", "main: j main\n");
        let e = run(&s(&["run", &src, "--max-instr", "5000"])).unwrap_err();
        assert!(e.0.contains("limit"), "{e}");
    }
}
