//! Minimal option parsing for the CLI (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: positional arguments plus `--key value` /
/// `--flag` options.
#[derive(Debug, Default)]
pub struct Parsed {
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Parsing error with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parses `args`; `value_opts` lists options that take a value, `flag_opts`
/// those that do not.
pub fn parse(args: &[String], value_opts: &[&str], flag_opts: &[&str]) -> Result<Parsed, ArgError> {
    let mut out = Parsed::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if flag_opts.contains(&name) {
                out.flags.push(name.to_string());
            } else if value_opts.contains(&name) {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                out.options.insert(name.to_string(), v.clone());
            } else {
                return Err(ArgError(format!("unknown option --{name}")));
            }
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// String option value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Integer option value.
    pub fn get_u32(&self, name: &str) -> Result<Option<u32>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("--{name}: `{v}` is not an integer"))),
        }
    }

    /// Float option value.
    pub fn get_f64(&self, name: &str) -> Result<Option<f64>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("--{name}: `{v}` is not a number"))),
        }
    }

    /// Whether a flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_options_and_flags_separate() {
        let p = parse(
            &s(&["run", "a.s", "--pfus", "2", "--greedy"]),
            &["pfus"],
            &["greedy"],
        )
        .unwrap();
        assert_eq!(p.positional, vec!["run", "a.s"]);
        assert_eq!(p.get("pfus"), Some("2"));
        assert!(p.flag("greedy"));
        assert!(!p.flag("selective"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = parse(&s(&["--pfus"]), &["pfus"], &[]).unwrap_err();
        assert!(e.0.contains("requires a value"));
    }

    #[test]
    fn unknown_option_is_an_error() {
        let e = parse(&s(&["--bogus"]), &["pfus"], &["greedy"]).unwrap_err();
        assert!(e.0.contains("unknown option"));
    }

    #[test]
    fn numeric_accessors_validate() {
        let p = parse(&s(&["--pfus", "zz"]), &["pfus"], &[]).unwrap();
        assert!(p.get_u32("pfus").is_err());
        let p = parse(&s(&["--pfus", "4"]), &["pfus"], &[]).unwrap();
        assert_eq!(p.get_u32("pfus").unwrap(), Some(4));
        assert_eq!(p.get_u32("absent").unwrap(), None);
    }
}
