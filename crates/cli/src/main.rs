//! `t1000` — command-line driver for the T1000 toolchain.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match t1000_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("t1000: {e}");
            std::process::exit(1);
        }
    }
}
