//! End-to-end tests for `t1000 serve`: a real daemon process, concurrent
//! Unix-socket clients, the shared analysis cache, deadline shedding,
//! malformed requests, graceful shutdown, and the stdio transport.
//! The wire protocol these exercise is specified in `docs/SERVING.md`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use t1000_bench::engine::{CellRunner, RunOptions};
use t1000_bench::json::Json;
use t1000_bench::plan::{Cell, MachineSpec, SelectionSpec};
use t1000_bench::results::cell_result_json;
use t1000_core::ExtractConfig;
use t1000_workloads::Scale;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_t1000")
}

struct Daemon {
    child: Child,
    path: std::path::PathBuf,
}

impl Daemon {
    fn spawn(name: &str) -> Daemon {
        let path =
            std::env::temp_dir().join(format!("t1000_serve_{}_{name}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let child = Command::new(bin())
            .args([
                "serve",
                "--socket",
                path.to_str().unwrap(),
                "--workers",
                "3",
                "--queue",
                "8",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        // Daemon's Drop kills and reaps the child on every exit path.
        let daemon = Daemon { child, path };
        for _ in 0..200 {
            if UnixStream::connect(&daemon.path).is_ok() {
                return daemon;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!(
            "daemon did not start listening on {}",
            daemon.path.display()
        );
    }

    /// One request over a fresh connection; returns the parsed response.
    fn request(&self, line: &str) -> Json {
        let mut stream = UnixStream::connect(&self.path).expect("connect");
        writeln!(stream, "{line}").expect("send");
        stream.flush().expect("flush");
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response `{resp}`: {e}"))
    }

    fn wait_for_exit(&mut self, limit: Duration) -> bool {
        let deadline = std::time::Instant::now() + limit;
        while std::time::Instant::now() < deadline {
            if self.child.try_wait().expect("try_wait").is_some() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.path);
    }
}

fn result(resp: &Json) -> &Json {
    assert!(
        resp.get("error").is_none(),
        "unexpected error: {}",
        resp.to_string_compact()
    );
    resp.get("result").expect("result")
}

fn error_code(resp: &Json) -> u64 {
    resp.get("error")
        .unwrap_or_else(|| panic!("expected error: {}", resp.to_string_compact()))
        .get("code")
        .and_then(Json::as_u64)
        .expect("error.code")
}

/// Drops the host-timing fields (`host_ns`, `sim_khz`) — the only
/// nondeterministic content in a cell document.
fn strip_timing(cell: &Json) -> String {
    let mut cell = cell.clone();
    if let Json::Obj(fields) = &mut cell {
        fields.retain(|(k, _)| k != "host_ns" && k != "sim_khz");
    }
    cell.to_string_compact()
}

#[test]
fn concurrent_clients_share_one_analysis_and_match_t1000_run() {
    let daemon = Daemon::spawn("conc");

    // N concurrent clients, same workload x different strategies.
    let strategies = [
        r#""strategy": "selective", "pfus": 2"#,
        r#""strategy": "selective", "pfus": 1"#,
        r#""strategy": "greedy""#,
        r#""strategy": "knapsack", "lut_budget": 200"#,
    ];
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = strategies
            .iter()
            .enumerate()
            .map(|(i, strat)| {
                let daemon = &daemon;
                s.spawn(move || {
                    daemon.request(&format!(
                        r#"{{"id": {i}, "method": "run", "params": {{"workload": "gsm_dec", {strat}}}}}"#
                    ))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.get("id").and_then(Json::as_u64), Some(i as u64));
        let cell = result(resp).get("cell").expect("cell");
        assert!(cell.get("cycles").and_then(Json::as_u64).unwrap() > 0);
        assert!(cell.get("attribution").is_some());
    }

    // Exactly one analysis for the program, however many clients.
    let stats = daemon.request(r#"{"id": 10, "method": "cache_stats"}"#);
    let stats = result(&stats);
    assert_eq!(stats.get("programs").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("analyses").and_then(Json::as_u64), Some(1));
    assert!(stats.get("session_hits").and_then(Json::as_u64).unwrap() >= 3);

    // The served document is bit-identical (modulo host timing) to the
    // same cell executed in-process through the engine's CellRunner.
    let opts = RunOptions::default();
    let runner =
        CellRunner::for_workload("gsm_dec", ExtractConfig::default(), Scale::Test, &opts).unwrap();
    let cell = Cell::new(
        "gsm_dec",
        SelectionSpec::selective_std(Some(2)),
        MachineSpec::with_pfus(2, 10),
    );
    let local = runner.run_cell(cell, &opts).unwrap();
    let speedup = runner.baseline_cycles() as f64 / local.cycles as f64;
    let want = cell_result_json(&local, Some(speedup));
    let served = result(&responses[0]).get("cell").unwrap();
    assert_eq!(strip_timing(served), strip_timing(&want));
    assert_eq!(
        result(&responses[0])
            .get("baseline_cycles")
            .and_then(Json::as_u64),
        Some(runner.baseline_cycles())
    );

    // ...and to the same cell run via `t1000 run bench:gsm_dec --pfus 2`.
    let out = Command::new(bin())
        .args(["run", "bench:gsm_dec", "--pfus", "2"])
        .output()
        .expect("t1000 run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("baseline: "))
        .unwrap_or_else(|| panic!("no baseline line in: {text}"));
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let cli_baseline: u64 = tokens[1].parse().unwrap();
    let cli_cycles: u64 = tokens[5].parse().unwrap();
    assert_eq!(
        result(&responses[0])
            .get("baseline_cycles")
            .and_then(Json::as_u64),
        Some(cli_baseline)
    );
    assert_eq!(
        served.get("cycles").and_then(Json::as_u64),
        Some(cli_cycles)
    );
}

#[test]
fn deadline_shed_and_malformed_requests() {
    let daemon = Daemon::spawn("errs");

    // An already-expired deadline is shed deterministically.
    let resp = daemon.request(
        r#"{"id": 1, "method": "run", "params": {"workload": "gsm_dec", "deadline_ms": 0}}"#,
    );
    assert_eq!(error_code(&resp), 408);

    // Unparseable request: id null, typed 400.
    let resp = daemon.request("{not json");
    assert_eq!(error_code(&resp), 400);
    assert_eq!(resp.get("id"), Some(&Json::Null));

    // Structurally invalid requests: typed 400 with the id echoed.
    for bad in [
        r#"{"id": 2, "method": "run"}"#,
        r#"{"id": 3, "method": "run", "params": {"workload": "nope"}}"#,
        r#"{"id": 4, "method": "frobnicate"}"#,
    ] {
        let resp = daemon.request(bad);
        assert_eq!(error_code(&resp), 400, "{bad}");
        assert!(resp.get("id").and_then(Json::as_u64).is_some());
    }

    let status = daemon.request(r#"{"id": 5, "method": "status"}"#);
    let requests = result(&status).get("requests").unwrap();
    assert_eq!(
        requests.get("deadline_exceeded").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(requests.get("malformed").and_then(Json::as_u64), Some(1));
    assert!(requests.get("failed").and_then(Json::as_u64).unwrap() >= 5);
}

#[test]
fn shutdown_drains_and_exits() {
    let mut daemon = Daemon::spawn("down");
    let resp = daemon.request(r#"{"id": 1, "method": "shutdown"}"#);
    assert_eq!(
        result(&resp).get("shutting_down").and_then(Json::as_bool),
        Some(true)
    );
    assert!(daemon.wait_for_exit(Duration::from_secs(10)), "no exit");
}

/// Regression test for shutdown-vs-`run_shard` draining: a `shutdown`
/// received while a shard stream is mid-flight must let the stream run to
/// its final result envelope before the process exits (the coordinator
/// would otherwise see a torn stream and burn a retry wave).
#[test]
fn shutdown_drains_inflight_run_shard() {
    let mut daemon = Daemon::spawn("drain");

    // Connection A carries the shard stream; we deliberately do not read
    // from it until after shutdown has been requested elsewhere.
    let mut shard_conn = UnixStream::connect(&daemon.path).expect("connect shard stream");
    writeln!(
        shard_conn,
        r#"{{"id": 7, "method": "run_shard", "params": {{"plan": "run_all", "scale": "test", "cells": [0, 1, 2, 3, 4, 5], "deterministic": true}}}}"#
    )
    .expect("send run_shard");
    shard_conn.flush().expect("flush");

    // Wait until the daemon reports the stream as in-flight (or, if the
    // machine is fast enough to finish it already, as completed).
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = daemon.request(r#"{"id": 1, "method": "status"}"#);
        let streams = result(&status).get("shard_streams").expect("shard_streams");
        let active = streams.get("active").and_then(Json::as_u64).unwrap_or(0);
        let done = streams.get("completed").and_then(Json::as_u64).unwrap_or(0);
        if active > 0 || done > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "run_shard never showed up in status: {}",
            status.to_string_compact()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Health probe still answers inline, then order the shutdown.
    let pong = daemon.request(r#"{"id": 2, "method": "ping"}"#);
    assert_eq!(
        result(&pong).get("pong").and_then(Json::as_bool),
        Some(true)
    );
    let down = daemon.request(r#"{"id": 3, "method": "shutdown"}"#);
    assert_eq!(
        result(&down).get("shutting_down").and_then(Json::as_bool),
        Some(true)
    );

    // The in-flight stream must still deliver every event line and the
    // final id-echoing envelope.
    let mut reader = BufReader::new(shard_conn);
    let mut cells = 0u64;
    let envelope = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("stream read") > 0,
            "shard stream was torn by shutdown after {cells} cell(s)"
        );
        let doc = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        if doc.get("method").and_then(Json::as_str) == Some("cell") {
            cells += 1;
        }
        if doc.get("result").is_some() {
            break doc;
        }
    };
    assert_eq!(envelope.get("id").and_then(Json::as_u64), Some(7));
    assert_eq!(
        result(&envelope).get("cells").and_then(Json::as_u64),
        Some(6)
    );
    assert_eq!(cells, 6, "every assigned cell streams an event line");

    assert!(
        daemon.wait_for_exit(Duration::from_secs(30)),
        "daemon did not exit after draining the shard stream"
    );
}

/// The TCP transport speaks the identical wire contract as the Unix
/// socket: bind loopback on an OS-assigned port (parsed from the startup
/// banner), run a scripted session over `TcpStream`, shut down cleanly.
#[test]
fn tcp_transport_speaks_the_same_wire_contract() {
    let mut child = Command::new(bin())
        .args(["serve", "--tcp", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tcp daemon");
    // The banner carries the OS-chosen port: "... listening on tcp://ADDR ...".
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("banner") == 0 {
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon exited before announcing its TCP address");
        }
        if let Some(rest) = line.split("listening on tcp://").nth(1) {
            break rest.split_whitespace().next().expect("addr").to_string();
        }
    };

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ask = |line: &str| -> Json {
        writeln!(stream, "{line}").expect("send");
        stream.flush().expect("flush");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response `{resp}`: {e}"))
    };

    let status = ask(r#"{"id": 1, "method": "status"}"#);
    assert!(result(&status).get("uptime_ms").is_some());

    let run = ask(
        r#"{"id": 2, "method": "run", "params": {"workload": "gsm_dec", "strategy": "selective", "pfus": 2}}"#,
    );
    let cell = result(&run).get("cell").expect("cell");
    assert!(cell.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(
        cell.get("checksum").and_then(Json::as_str).map(str::len),
        Some(18)
    );

    let resp = ask("{not json");
    assert_eq!(error_code(&resp), 400);

    let down = ask(r#"{"id": 3, "method": "shutdown"}"#);
    assert_eq!(
        result(&down).get("shutting_down").and_then(Json::as_bool),
        Some(true)
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("tcp daemon did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success());
}

#[test]
fn stdio_transport_runs_a_scripted_session() {
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stdio daemon");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    // Lockstep request/response, as in docs/SERVING.md's transcript.
    let mut ask = |line: &str| -> Json {
        writeln!(stdin, "{line}").expect("send");
        stdin.flush().expect("flush");
        let mut resp = String::new();
        stdout.read_line(&mut resp).expect("recv");
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response `{resp}`: {e}"))
    };

    let status = ask(r#"{"id": 1, "method": "status"}"#);
    assert!(result(&status).get("uptime_ms").is_some());

    let run = ask(
        r#"{"id": 2, "method": "run", "params": {"workload": "gsm_dec", "strategy": "selective", "pfus": 2}}"#,
    );
    let cell = result(&run).get("cell").expect("cell");
    assert!(cell.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(
        cell.get("checksum").and_then(Json::as_str).map(str::len),
        Some(18) // 0x + 16 hex digits
    );

    let stats = ask(r#"{"id": 3, "method": "cache_stats"}"#);
    assert_eq!(
        result(&stats).get("analyses").and_then(Json::as_u64),
        Some(1)
    );

    let down = ask(r#"{"id": 4, "method": "shutdown"}"#);
    assert_eq!(
        result(&down).get("shutting_down").and_then(Json::as_bool),
        Some(true)
    );
    drop(stdin);
    let status = child.wait().expect("wait");
    assert!(status.success());
}
