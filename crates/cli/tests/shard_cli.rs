//! End-to-end tests for `t1000 bench --all --shards N`: a real
//! coordinator spawning real `t1000 worker` processes, checked against
//! the in-process engine for byte-identity of the merged artifact —
//! including under worker crashes (`--inject abort@N`) and
//! resume-under-sharding (`--resume` after an interrupted run).

use std::process::Command;
use std::sync::OnceLock;
use t1000_bench::engine::{execute_with, EngineConfig};
use t1000_bench::json::Json;
use t1000_bench::plan::run_all_plan;
use t1000_bench::results::to_json;
use t1000_workloads::Scale;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_t1000")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("t1000_shard_{}_{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// The canonical single-process artifact text (`--deterministic`, test
/// scale), computed once in-process for every test in this binary.
fn reference() -> &'static str {
    static REF: OnceLock<String> = OnceLock::new();
    REF.get_or_init(|| {
        let config = EngineConfig {
            deterministic: true,
            ..EngineConfig::default()
        };
        let run = execute_with(&run_all_plan(), Scale::Test, &config);
        assert!(run.failures.is_empty(), "reference run must be healthy");
        to_json(&run).to_string_pretty()
    })
}

/// Runs `t1000 bench --all --scale test --deterministic --json <path>`
/// with `extra` appended; returns (success, stdout+stderr).
fn bench_all(path: &str, extra: &[&str]) -> (bool, String) {
    let mut args = vec![
        "bench",
        "--all",
        "--scale",
        "test",
        "--deterministic",
        "--json",
        path,
    ];
    args.extend_from_slice(extra);
    let out = Command::new(bin()).args(&args).output().expect("run bench");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn sidecar(path: &str) -> Json {
    Json::parse(&read(&format!("{path}.shards.json"))).expect("sidecar parses")
}

fn cleanup(path: &str) {
    for p in [
        path.to_string(),
        format!("{path}.partial"),
        format!("{path}.shards.json"),
    ] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sharded_artifacts_are_byte_identical_to_single_process() {
    for shards in ["1", "3"] {
        let path = tmp(&format!("identity_{shards}.json"));
        let (ok, log) = bench_all(&path, &["--shards", shards]);
        assert!(ok, "--shards {shards} failed:\n{log}");
        assert!(log.contains("Sharded:"), "{log}");
        assert_eq!(
            read(&path),
            reference(),
            "--shards {shards} artifact diverges from the single-process one"
        );

        let sc = sidecar(&path);
        assert_eq!(
            sc.get("kind").and_then(Json::as_str),
            Some("t1000.bench-shards")
        );
        assert_eq!(
            sc.get("shards").and_then(Json::as_u64),
            Some(shards.parse().unwrap())
        );
        assert_eq!(sc.get("worker_crashes").and_then(Json::as_u64), Some(0));
        cleanup(&path);
    }
}

#[test]
fn expect_asserts_shard_topology_via_the_sidecar() {
    let path = tmp("expect.json");
    let (ok, log) = bench_all(&path, &["--shards", "2"]);
    assert!(ok, "{log}");

    let out = Command::new(bin())
        .args([
            "bench",
            "--validate",
            &path,
            "--expect",
            "shards=2,total_sim_khz=0,failed_cells=0,scale=test",
        ])
        .output()
        .expect("validate");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(out.status.success(), "{text}");
    assert!(text.contains("expectations: 4 satisfied"), "{text}");

    // A wrong shard count is a typed expectation failure.
    let out = Command::new(bin())
        .args(["bench", "--validate", &path, "--expect", "shards=4"])
        .output()
        .expect("validate");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(text.contains("sidecar records 2"), "{text}");

    // Without the sidecar, `shards=` cannot be asserted at all.
    std::fs::remove_file(format!("{path}.shards.json")).unwrap();
    let out = Command::new(bin())
        .args(["bench", "--validate", &path, "--expect", "shards=2"])
        .output()
        .expect("validate");
    assert!(!out.status.success());
    cleanup(&path);
}

/// A worker killed mid-shard by an injected `abort` is detected by the
/// coordinator, its unfinished cells are retried on a replacement worker,
/// and the healed artifact is byte-identical to an uninterrupted run —
/// the crash shows up only in the sidecar.
#[test]
fn worker_crash_is_retried_and_heals_to_the_identical_artifact() {
    let path = tmp("healed.json");
    let (ok, log) = bench_all(&path, &["--shards", "2", "--inject", "abort@3"]);
    assert!(ok, "healed run must succeed:\n{log}");
    assert!(log.contains("retrying on a fresh worker"), "{log}");
    assert_eq!(read(&path), reference(), "healed artifact diverges");

    let sc = sidecar(&path);
    assert!(sc.get("worker_crashes").and_then(Json::as_u64).unwrap() >= 1);
    assert!(
        !sc.get("retried_cells")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "sidecar must list the retried cells"
    );
    cleanup(&path);
}

/// Resume under sharding: an interrupted run's checkpoint feeds the
/// coordinator, which only assigns the missing cells to workers — and
/// still reproduces the uninterrupted artifact byte-for-byte.
#[test]
fn resume_skips_checkpointed_cells_and_reproduces_the_artifact() {
    let path = tmp("resume.json");
    // Interrupted run: cell 2 panics on every attempt, so the command
    // exits nonzero but leaves every other cell in the checkpoint.
    let (ok, log) = bench_all(&path, &["--inject", "panic@2x3"]);
    assert!(!ok, "injected run should report the failure:\n{log}");
    assert!(
        std::path::Path::new(&format!("{path}.partial")).exists(),
        "interrupted run must leave its checkpoint"
    );

    // Sharded resume: restored cells are never assigned to a worker.
    let (ok, log) = bench_all(&path, &["--shards", "2", "--resume"]);
    assert!(ok, "resumed run failed:\n{log}");
    assert_eq!(read(&path), reference(), "resumed artifact diverges");

    let restored = sidecar(&path)
        .get("cells_restored")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(restored > 0, "resume restored nothing");
    cleanup(&path);
}
