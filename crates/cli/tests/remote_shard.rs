//! End-to-end tests for `t1000 bench --all --shards N --remote ...`: a
//! real coordinator dispatching shards to real `t1000 serve --tcp`
//! daemons over loopback, checked for byte-identity against the
//! in-process engine — including under injected network faults
//! (`net@shard`, `netdrop@shard`) and a dead endpoint, where the
//! degradation ladder must heal the run without changing a byte of the
//! artifact.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use t1000_bench::engine::{execute_with, EngineConfig};
use t1000_bench::json::Json;
use t1000_bench::plan::run_all_plan;
use t1000_bench::results::to_json;
use t1000_workloads::Scale;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_t1000")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("t1000_remote_{}_{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// The canonical single-process artifact text (`--deterministic`, test
/// scale), computed once in-process for every test in this binary.
fn reference() -> &'static str {
    static REF: OnceLock<String> = OnceLock::new();
    REF.get_or_init(|| {
        let config = EngineConfig {
            deterministic: true,
            ..EngineConfig::default()
        };
        let run = execute_with(&run_all_plan(), Scale::Test, &config);
        assert!(run.failures.is_empty(), "reference run must be healthy");
        to_json(&run).to_string_pretty()
    })
}

/// A `t1000 serve --tcp 127.0.0.1:0` daemon on an OS-assigned loopback
/// port, parsed from the startup banner. Killed (and reaped) on drop.
struct Endpoint {
    child: Child,
    addr: String,
}

impl Endpoint {
    fn spawn() -> Endpoint {
        let mut child = Command::new(bin())
            .args(["serve", "--tcp", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn serve endpoint");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            if stderr.read_line(&mut line).expect("banner") == 0 {
                let _ = child.kill();
                let _ = child.wait();
                panic!("endpoint exited before announcing its TCP address");
            }
            if let Some(rest) = line.split("listening on tcp://").nth(1) {
                break rest.split_whitespace().next().expect("addr").to_string();
            }
        };
        // Drain the rest of stderr in the background so the daemon never
        // blocks on a full pipe while streaming shard after shard.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while stderr.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        Endpoint { child, addr }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs `t1000 bench --all --scale test --deterministic --json <path>`
/// with `extra` appended; returns (success, stdout+stderr).
fn bench_all(path: &str, extra: &[&str]) -> (bool, String) {
    let mut args = vec![
        "bench",
        "--all",
        "--scale",
        "test",
        "--deterministic",
        "--json",
        path,
    ];
    args.extend_from_slice(extra);
    let out = Command::new(bin()).args(&args).output().expect("run bench");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn sidecar(path: &str) -> Json {
    Json::parse(&read(&format!("{path}.shards.json"))).expect("sidecar parses")
}

fn degradations(sc: &Json) -> Vec<String> {
    sc.get("degradations")
        .and_then(Json::as_array)
        .expect("degradations array")
        .iter()
        .map(|d| d.as_str().expect("degradation string").to_string())
        .collect()
}

fn cleanup(path: &str) {
    for p in [
        path.to_string(),
        format!("{path}.partial"),
        format!("{path}.shards.json"),
    ] {
        let _ = std::fs::remove_file(p);
    }
}

/// Two healthy loopback endpoints, four shards round-robined across
/// them: the merged artifact is byte-identical to the single-process
/// run, the sidecar records the topology, and `--expect remotes=2`
/// asserts it through `bench --validate`.
#[test]
fn remote_artifacts_are_byte_identical_and_validated() {
    let a = Endpoint::spawn();
    let b = Endpoint::spawn();
    let remote = format!("{},{}", a.addr, b.addr);
    let path = tmp("identity.json");

    let (ok, log) = bench_all(&path, &["--shards", "4", "--remote", &remote]);
    assert!(ok, "remote run failed:\n{log}");
    assert!(log.contains("Remote: 2 endpoint(s)"), "{log}");
    assert_eq!(read(&path), reference(), "remote artifact diverges");

    let sc = sidecar(&path);
    assert_eq!(sc.get("remotes").and_then(Json::as_u64), Some(2));
    assert!(
        degradations(&sc).is_empty(),
        "healthy run degraded: {}",
        sc.to_string_compact()
    );
    let endpoints = sc.get("endpoints").and_then(Json::as_array).unwrap();
    assert_eq!(endpoints.len(), 2);
    let dispatches: u64 = endpoints
        .iter()
        .map(|e| e.get("dispatches").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(
        dispatches,
        4,
        "every shard must go over the wire: {}",
        sc.to_string_compact()
    );

    let out = Command::new(bin())
        .args([
            "bench",
            "--validate",
            &path,
            "--expect",
            "remotes=2,shards=4,failed_cells=0",
        ])
        .output()
        .expect("validate");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(out.status.success(), "{text}");
    assert!(text.contains("expectations: 3 satisfied"), "{text}");
    cleanup(&path);
}

/// Chaos round: shard 1's stream is cut mid-flight (`netdrop@1`). The
/// coordinator's merge accounting spots the unaccounted cells and
/// re-dispatches them to a surviving endpoint; the healed artifact is
/// byte-identical and the sidecar records the degradation.
#[test]
fn mid_stream_disconnect_heals_to_the_identical_artifact() {
    let a = Endpoint::spawn();
    let b = Endpoint::spawn();
    let remote = format!("{},{}", a.addr, b.addr);
    let path = tmp("netdrop.json");

    let (ok, log) = bench_all(
        &path,
        &[
            "--shards",
            "2",
            "--remote",
            &remote,
            "--inject",
            "netdrop@1",
        ],
    );
    assert!(ok, "healed run must succeed:\n{log}");
    assert!(log.contains("retrying on surviving endpoint"), "{log}");
    assert_eq!(read(&path), reference(), "healed artifact diverges");

    let sc = sidecar(&path);
    let degr = degradations(&sc);
    assert!(
        degr.iter().any(|d| d.starts_with("remote_retry:tcp://")),
        "expected a remote retry rung, got {degr:?}"
    );
    assert!(
        sc.get("worker_crashes").and_then(Json::as_u64).unwrap() >= 1,
        "{}",
        sc.to_string_compact()
    );
    assert!(
        !sc.get("retried_cells")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "sidecar must list the retried cells"
    );
    cleanup(&path);
}

/// Connect-refusal chaos: shard 0's first two connect attempts fail
/// (`net@0x2`), the third — still inside the transport's retry/backoff
/// loop — succeeds. No degradation rung fires; the sidecar counts the
/// connect retries.
#[test]
fn connect_refusal_is_retried_with_backoff() {
    let a = Endpoint::spawn();
    let path = tmp("netretry.json");

    let (ok, log) = bench_all(
        &path,
        &[
            "--shards",
            "2",
            "--remote",
            &a.addr,
            "--inject",
            "net@0x2",
            "--backoff-ms",
            "1",
        ],
    );
    assert!(ok, "retried run must succeed:\n{log}");
    assert_eq!(read(&path), reference(), "retried artifact diverges");

    let sc = sidecar(&path);
    assert!(
        degradations(&sc).is_empty(),
        "no rung should fire: {}",
        sc.to_string_compact()
    );
    let endpoints = sc.get("endpoints").and_then(Json::as_array).unwrap();
    assert!(
        endpoints[0]
            .get("connect_retries")
            .and_then(Json::as_u64)
            .unwrap()
            >= 2,
        "{}",
        sc.to_string_compact()
    );
    cleanup(&path);
}

/// A dead endpoint (connection refused on every attempt) exhausts the
/// remote rungs and the coordinator degrades to local child workers —
/// still producing the byte-identical artifact.
#[test]
fn dead_endpoint_degrades_to_local_workers() {
    let path = tmp("dead.json");
    let (ok, log) = bench_all(
        &path,
        &[
            "--shards",
            "2",
            "--remote",
            "127.0.0.1:1",
            "--retries",
            "2",
            "--backoff-ms",
            "1",
        ],
    );
    assert!(ok, "degraded run must succeed:\n{log}");
    assert!(log.contains("retrying on a fresh worker"), "{log}");
    assert_eq!(read(&path), reference(), "degraded artifact diverges");

    let sc = sidecar(&path);
    assert!(
        degradations(&sc).contains(&"local_fallback".to_string()),
        "{}",
        sc.to_string_compact()
    );
    assert_eq!(sc.get("remotes").and_then(Json::as_u64), Some(1));
    cleanup(&path);
}
