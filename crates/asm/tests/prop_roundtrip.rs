//! Property tests for the assembler: random structured programs assemble,
//! disassemble, and re-assemble to identical machine code.

use proptest::prelude::*;
use t1000_asm::{assemble, disassemble};

/// A random straight-line ALU statement using temporaries only.
fn arb_alu_line() -> impl Strategy<Value = String> {
    let reg = (8u8..16).prop_map(|n| format!("$t{}", n - 8));
    let r3 = prop::sample::select(vec![
        "addu", "subu", "and", "or", "xor", "nor", "slt", "sltu",
    ]);
    let sh = prop::sample::select(vec!["sll", "srl", "sra"]);
    let im = prop::sample::select(vec!["addiu", "andi", "ori", "xori", "slti"]);
    prop_oneof![
        (r3, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(m, a, b, c)| format!("    {m} {a}, {b}, {c}")),
        (sh, reg.clone(), reg.clone(), 0u32..32)
            .prop_map(|(m, a, b, s)| format!("    {m} {a}, {b}, {s}")),
        (im, reg.clone(), reg.clone(), 0i32..0x7fff)
            .prop_map(|(m, a, b, v)| format!("    {m} {a}, {b}, {v}")),
        (reg.clone(), 0i32..0x7fff).prop_map(|(a, v)| format!("    lui {a}, {v}")),
    ]
}

/// A random program: a label, a body of ALU lines, a loop-back branch, exit.
fn arb_program() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_alu_line(), 1..40).prop_map(|body| {
        format!(
            "main:\n    li $t0, 100\nloop:\n{}\n    addiu $t0, $t0, -1\n    bne $t0, $zero, loop\n    li $v0, 10\n    syscall\n",
            body.join("\n")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assemble_disassemble_reassemble_is_stable(src in arb_program()) {
        let p1 = assemble(&src).expect("generated program must assemble");
        let text = disassemble(&p1);
        let p2 = assemble(&text).expect("disassembly must re-assemble");
        prop_assert_eq!(p1.text, p2.text);
        prop_assert_eq!(p1.text_base, p2.text_base);
    }

    #[test]
    fn label_addresses_are_monotone_in_source_order(n in 1usize..20) {
        let mut src = String::from("main:\n");
        for i in 0..n {
            src.push_str(&format!("l{i}:\n    nop\n"));
        }
        src.push_str("    syscall\n");
        let p = assemble(&src).unwrap();
        let mut prev = None;
        for i in 0..n {
            let a = p.symbol(&format!("l{i}")).unwrap();
            if let Some(pa) = prev {
                prop_assert!(a > pa);
            }
            prev = Some(a);
        }
    }
}
