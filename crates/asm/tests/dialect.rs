//! Integration tests for the assembler dialect: every mnemonic, every
//! directive, and the diagnostic quality a user depends on.

use t1000_asm::{assemble, disassemble};
use t1000_isa::{Op, Reg};

#[test]
fn every_real_mnemonic_assembles() {
    let src = "
.data
word: .word 42
.text
main:
    add   $t0, $t1, $t2
    addu  $t0, $t1, $t2
    sub   $t0, $t1, $t2
    subu  $t0, $t1, $t2
    and   $t0, $t1, $t2
    or    $t0, $t1, $t2
    xor   $t0, $t1, $t2
    nor   $t0, $t1, $t2
    slt   $t0, $t1, $t2
    sltu  $t0, $t1, $t2
    sll   $t0, $t1, 3
    srl   $t0, $t1, 3
    sra   $t0, $t1, 3
    sllv  $t0, $t1, $t2
    srlv  $t0, $t1, $t2
    srav  $t0, $t1, $t2
    addi  $t0, $t1, -5
    addiu $t0, $t1, -5
    slti  $t0, $t1, 7
    sltiu $t0, $t1, 7
    andi  $t0, $t1, 7
    ori   $t0, $t1, 7
    xori  $t0, $t1, 7
    lui   $t0, 0x1234
    mult  $t1, $t2
    multu $t1, $t2
    div   $t1, $t2
    divu  $t1, $t2
    mfhi  $t0
    mflo  $t0
    mthi  $t1
    mtlo  $t1
    lb    $t0, 0($t1)
    lbu   $t0, 1($t1)
    lh    $t0, 2($t1)
    lhu   $t0, 4($t1)
    lw    $t0, 8($t1)
    sb    $t0, 0($t1)
    sh    $t0, 2($t1)
    sw    $t0, 4($t1)
    beq   $t0, $t1, main
    bne   $t0, $t1, main
    blez  $t0, main
    bgtz  $t0, main
    bltz  $t0, main
    bgez  $t0, main
    j     main
    jal   main
    jr    $ra
    jalr  $t1
    jalr  $t0, $t1
    ext   $t0, $t1, $t2, 7
    syscall
    break
";
    let p = assemble(src).unwrap();
    assert!(p.len() > 50);
}

#[test]
fn every_pseudo_expands_correctly() {
    let src = "
main:
    nop
    move $t0, $t1
    not  $t0, $t1
    neg  $t0, $t1
    li   $t0, 123456789
    la   $t0, main
    b    main
    beqz $t0, main
    bnez $t0, main
    blt  $t0, $t1, main
    bge  $t0, $t1, main
    bgt  $t0, $t1, main
    ble  $t0, $t1, main
";
    let p = assemble(src).unwrap();
    let decoded = p.decode_all().unwrap();
    // nop is sll $0,$0,0
    assert_eq!(decoded[0].1, t1000_isa::Instr::NOP);
    // move is addu with $zero source.
    assert_eq!(decoded[1].1.op, Op::Addu);
    assert!(decoded[1].1.rs.is_zero());
    // li of a 27-bit constant takes lui+ori.
    assert_eq!(decoded[4].1.op, Op::Lui);
    assert_eq!(decoded[5].1.op, Op::Ori);
    // Each cmp-branch pseudo expands to slt + branch through $at.
    let slt_count = decoded.iter().filter(|(_, i)| i.op == Op::Slt).count();
    assert_eq!(slt_count, 4);
    for (_, i) in decoded.iter().filter(|(_, i)| i.op == Op::Slt) {
        assert_eq!(i.rd, Reg::AT);
    }
}

#[test]
fn round_trip_of_a_real_workload_is_stable() {
    // The biggest assembly source we have: mpeg2_dec.
    let w = t1000_workloads::by_name("mpeg2_dec", t1000_workloads::Scale::Test).unwrap();
    let p1 = assemble(&w.asm).unwrap();
    let p2 = assemble(&disassemble(&p1)).unwrap();
    assert_eq!(p1.text, p2.text);
}

#[test]
fn all_workload_sources_assemble_without_at_clobber_hazards() {
    // $at is reserved for pseudo expansion; workload sources must not use
    // it directly (keeps them portable to strict assemblers).
    for w in t1000_workloads::all(t1000_workloads::Scale::Test) {
        assert!(!w.asm.contains("$at"), "{} uses $at directly", w.name);
        assemble(&w.asm).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn error_messages_are_actionable() {
    let cases = [
        ("main: addu $t0, $t1\n", "expects 3 operands"),
        ("main: lw $t0, 4($nope)\n", "bad base register"),
        ("main: sll $t0, $t1, 99\n", "out of range"),
        ("main: j faraway\n", "undefined label"),
        ("dup: nop\ndup: nop\n", "duplicate label"),
        ("main: .bogus 1\n", "unknown directive"),
        ("main: frob $t0\n", "unknown mnemonic"),
    ];
    for (src, expect) in cases {
        let e = assemble(src).unwrap_err();
        assert!(
            e.to_string().contains(expect),
            "source {src:?} produced `{e}`, expected to contain `{expect}`"
        );
    }
}

#[test]
fn branch_range_limits_are_enforced() {
    // A branch 40,000 instructions away exceeds the 16-bit word offset.
    let mut src = String::from("main: beq $t0, $t1, far\n");
    for _ in 0..40_000 {
        src.push_str("    nop\n");
    }
    src.push_str("far: nop\n");
    let e = assemble(&src).unwrap_err();
    assert!(e.to_string().contains("out of range"), "{e}");
}

#[test]
fn data_and_text_can_interleave() {
    let p = assemble(
        "
.data
a: .word 1
.text
main: la $t0, a
      lw $t1, 0($t0)
.data
b: .word 2
.text
      la $t2, b
      li $v0, 10
      syscall
",
    )
    .unwrap();
    assert_eq!(p.symbol("b").unwrap(), p.symbol("a").unwrap() + 4);
    assert!(p.len() >= 7);
}
