//! Line-oriented tokenizer for T1000 assembly.
//!
//! Grammar is deliberately simple: one statement per line, of the form
//! `[label:] [mnemonic operands...] [# comment]`. Operands are separated by
//! commas; memory operands use `imm(reg)` syntax. `#`, `;` and `//` start
//! comments.

use crate::error::{AsmError, AsmResult};

/// One tokenized source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Line {
    /// 1-based line number in the source.
    pub num: usize,
    /// Labels defined on this line (a line may carry several, e.g. `a: b:`).
    pub labels: Vec<String>,
    /// Mnemonic or directive (directives keep their leading dot).
    pub mnemonic: Option<String>,
    /// Comma-separated operand strings, trimmed.
    pub operands: Vec<String>,
}

fn strip_comment(s: &str) -> &str {
    let mut end = s.len();
    for (i, c) in s.char_indices() {
        if c == '#' || c == ';' {
            end = i;
            break;
        }
        if c == '/' && s[i + 1..].starts_with('/') {
            end = i;
            break;
        }
    }
    &s[..end]
}

/// Tokenizes the whole source. Blank/comment-only lines are dropped.
pub fn tokenize(src: &str) -> AsmResult<Vec<Line>> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let num = idx + 1;
        let mut text = strip_comment(raw).trim();
        let mut labels = Vec::new();
        // Peel off leading `name:` labels.
        while let Some(colon) = text.find(':') {
            let head = text[..colon].trim();
            if head.is_empty() {
                return Err(AsmError::new(num, "empty label"));
            }
            if !head
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
                || head.contains(char::is_whitespace)
            {
                break; // not a label; ':' belongs to something else
            }
            labels.push(head.to_string());
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            if !labels.is_empty() {
                out.push(Line {
                    num,
                    labels,
                    mnemonic: None,
                    operands: Vec::new(),
                });
            }
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(sp) => (&text[..sp], text[sp..].trim()),
            None => (text, ""),
        };
        let operands = if rest.is_empty() {
            Vec::new()
        } else if mnemonic == ".asciiz" || mnemonic == ".ascii" {
            // String operand: keep verbatim (a single operand).
            vec![rest.to_string()]
        } else {
            rest.split(',').map(|o| o.trim().to_string()).collect()
        };
        if operands.iter().any(|o| o.is_empty()) {
            return Err(AsmError::new(num, "empty operand"));
        }
        out.push(Line {
            num,
            labels,
            mnemonic: Some(mnemonic.to_ascii_lowercase()),
            operands,
        });
    }
    Ok(out)
}

/// Parses an integer literal: decimal, `0x…` hex, `0b…` binary, optional
/// leading `-`, or a `'c'` character literal.
pub fn parse_int(s: &str, line: usize) -> AsmResult<i64> {
    let t = s.trim();
    if let Some(body) = t.strip_prefix('\'').and_then(|b| b.strip_suffix('\'')) {
        let mut chars = body.chars();
        let c = match (chars.next(), chars.next(), chars.next()) {
            (Some('\\'), Some('n'), None) => '\n',
            (Some('\\'), Some('t'), None) => '\t',
            (Some('\\'), Some('0'), None) => '\0',
            (Some('\\'), Some('\\'), None) => '\\',
            (Some(c), None, _) => c,
            _ => return Err(AsmError::new(line, format!("bad char literal {t}"))),
        };
        return Ok(c as i64);
    }
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| AsmError::new(line, format!("bad integer literal `{s}`")))?;
    Ok(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_mnemonics_and_operands_split() {
        let lines = tokenize("start:  addu $v0, $v1, $a0  # sum\n\nloop: done:\n  j loop").unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].labels, vec!["start"]);
        assert_eq!(lines[0].mnemonic.as_deref(), Some("addu"));
        assert_eq!(lines[0].operands, vec!["$v0", "$v1", "$a0"]);
        assert_eq!(lines[1].labels, vec!["loop", "done"]);
        assert_eq!(lines[1].mnemonic, None);
        assert_eq!(lines[2].operands, vec!["loop"]);
    }

    #[test]
    fn comments_in_all_styles_are_stripped() {
        for src in ["nop # x", "nop ; x", "nop // x"] {
            let l = tokenize(src).unwrap();
            assert_eq!(l[0].mnemonic.as_deref(), Some("nop"));
            assert!(l[0].operands.is_empty());
        }
    }

    #[test]
    fn memory_operands_stay_joined() {
        let l = tokenize("lw $t0, 8($sp)").unwrap();
        assert_eq!(l[0].operands, vec!["$t0", "8($sp)"]);
    }

    #[test]
    fn empty_label_is_an_error() {
        assert!(tokenize(" : nop").is_err());
    }

    #[test]
    fn trailing_comma_is_an_error() {
        assert!(tokenize("addu $1, $2,").is_err());
    }

    #[test]
    fn integer_literals_parse() {
        assert_eq!(parse_int("42", 1).unwrap(), 42);
        assert_eq!(parse_int("-7", 1).unwrap(), -7);
        assert_eq!(parse_int("0x10", 1).unwrap(), 16);
        assert_eq!(parse_int("-0x10", 1).unwrap(), -16);
        assert_eq!(parse_int("0b101", 1).unwrap(), 5);
        assert_eq!(parse_int("'A'", 1).unwrap(), 65);
        assert_eq!(parse_int("'\\n'", 1).unwrap(), 10);
        assert!(parse_int("zz", 1).is_err());
    }

    #[test]
    fn mnemonics_are_lowercased() {
        let l = tokenize("ADDU $1, $2, $3").unwrap();
        assert_eq!(l[0].mnemonic.as_deref(), Some("addu"));
    }
}
