//! Two-pass assembler: source text → [`Program`].
//!
//! Pass 1 walks the token stream assigning addresses to labels (pseudo-
//! instruction expansions have deterministic sizes, so this is exact).
//! Pass 2 emits encoded words with all label references resolved.

use crate::error::{AsmError, AsmResult};
use crate::lexer::{parse_int, tokenize, Line};
use std::collections::BTreeMap;
use t1000_isa::program::{DATA_BASE, TEXT_BASE};
use t1000_isa::{encode, Instr, Op, Program, Reg};

/// Assembles source text into a program image.
pub fn assemble(src: &str) -> AsmResult<Program> {
    Assembler::new().assemble(src)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

struct Assembler {
    text_base: u32,
    data_base: u32,
    symbols: BTreeMap<String, u32>,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            symbols: BTreeMap::new(),
        }
    }

    fn assemble(mut self, src: &str) -> AsmResult<Program> {
        let lines = tokenize(src)?;
        self.pass1(&lines)?;
        self.pass2(&lines)
    }

    /// Pass 1: compute label addresses.
    fn pass1(&mut self, lines: &[Line]) -> AsmResult<()> {
        let mut section = Section::Text;
        let mut text_pc = self.text_base;
        let mut data_pc = self.data_base;
        for line in lines {
            let pc = match section {
                Section::Text => &mut text_pc,
                Section::Data => &mut data_pc,
            };
            // Apply implicit alignment of data directives *before* binding
            // labels, so a label names the aligned datum.
            if section == Section::Data {
                if let Some(m) = line.mnemonic.as_deref() {
                    match m {
                        ".word" => *pc = align_up(*pc, 4),
                        ".half" => *pc = align_up(*pc, 2),
                        _ => {}
                    }
                }
            }
            for label in &line.labels {
                if self.symbols.insert(label.clone(), *pc).is_some() {
                    return Err(AsmError::new(
                        line.num,
                        format!("duplicate label `{label}`"),
                    ));
                }
            }
            let Some(m) = line.mnemonic.as_deref() else {
                continue;
            };
            if let Some(dir) = m.strip_prefix('.') {
                match dir {
                    "text" => {
                        section = Section::Text;
                        if let Some(a) = line.operands.first() {
                            // An explicit address is only honoured before any
                            // code has been emitted: pass 2 lays the segment
                            // out contiguously, so a mid-stream re-base would
                            // silently misplace code.
                            if text_pc != self.text_base {
                                return Err(AsmError::new(
                                    line.num,
                                    ".text with an address must precede all instructions",
                                ));
                            }
                            text_pc = parse_int(a, line.num)? as u32;
                            self.text_base = text_pc;
                        }
                    }
                    "data" => {
                        section = Section::Data;
                        if let Some(a) = line.operands.first() {
                            if data_pc != self.data_base {
                                return Err(AsmError::new(
                                    line.num,
                                    ".data with an address must precede all data",
                                ));
                            }
                            data_pc = parse_int(a, line.num)? as u32;
                            self.data_base = data_pc;
                        }
                    }
                    "word" => data_pc += 4 * line.operands.len() as u32,
                    "half" => data_pc += 2 * line.operands.len() as u32,
                    "byte" => data_pc += line.operands.len() as u32,
                    "space" => data_pc += parse_int(&line.operands[0], line.num)? as u32,
                    "align" => {
                        let n = parse_int(&line.operands[0], line.num)? as u32;
                        let pc = match section {
                            Section::Text => &mut text_pc,
                            Section::Data => &mut data_pc,
                        };
                        *pc = align_up(*pc, 1 << n);
                    }
                    "asciiz" | "ascii" => {
                        let s = parse_string(&line.operands[0], line.num)?;
                        data_pc += s.len() as u32 + u32::from(dir == "asciiz");
                    }
                    "globl" | "global" | "entry" => {}
                    _ => return Err(AsmError::new(line.num, format!("unknown directive `{m}`"))),
                }
            } else {
                if section != Section::Text {
                    return Err(AsmError::new(line.num, "instruction outside .text"));
                }
                text_pc += 4 * instr_size(m, &line.operands, line.num)?;
            }
        }
        Ok(())
    }

    /// Pass 2: emit text and data with labels resolved.
    fn pass2(&mut self, lines: &[Line]) -> AsmResult<Program> {
        let mut section = Section::Text;
        let mut text: Vec<u32> = Vec::new();
        let mut text_pc = self.text_base;
        let mut data: Vec<u8> = Vec::new();
        let mut data_pc = self.data_base;
        let mut entry: Option<u32> = None;

        for line in lines {
            let Some(m) = line.mnemonic.as_deref() else {
                continue;
            };
            if let Some(dir) = m.strip_prefix('.') {
                match dir {
                    "text" => section = Section::Text,
                    "data" => section = Section::Data,
                    "entry" => {
                        let a = self.lookup(&line.operands[0], line.num)?;
                        entry = Some(a);
                    }
                    "globl" | "global" => {}
                    _ if section == Section::Data => {
                        self.emit_data(dir, line, &mut data, &mut data_pc)?
                    }
                    "align" => {
                        // .align in .text pads with nops.
                        let n = parse_int(&line.operands[0], line.num)? as u32;
                        while !text_pc.is_multiple_of(1 << n) {
                            text.push(encode(&Instr::NOP));
                            text_pc += 4;
                        }
                    }
                    _ => {
                        return Err(AsmError::new(
                            line.num,
                            format!("directive `{m}` outside .data"),
                        ))
                    }
                }
                continue;
            }
            if section != Section::Text {
                return Err(AsmError::new(line.num, "instruction outside .text"));
            }
            let instrs = self.expand(m, &line.operands, text_pc, line.num)?;
            for i in &instrs {
                text.push(encode(i));
                text_pc += 4;
            }
        }

        let entry = entry
            .or_else(|| self.symbols.get("main").copied())
            .unwrap_or(self.text_base);
        Ok(Program {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data,
            entry,
            symbols: std::mem::take(&mut self.symbols),
        })
    }

    fn emit_data(
        &self,
        dir: &str,
        line: &Line,
        data: &mut Vec<u8>,
        data_pc: &mut u32,
    ) -> AsmResult<()> {
        let pad_to = |data: &mut Vec<u8>, pc: &mut u32, align: u32| {
            while !(*pc).is_multiple_of(align) {
                data.push(0);
                *pc += 1;
            }
        };
        match dir {
            "word" => {
                pad_to(data, data_pc, 4);
                for operand in &line.operands {
                    let v = self.value(operand, line.num)?;
                    data.extend_from_slice(&(v as u32).to_le_bytes());
                    *data_pc += 4;
                }
            }
            "half" => {
                pad_to(data, data_pc, 2);
                for operand in &line.operands {
                    let v = self.value(operand, line.num)?;
                    data.extend_from_slice(&(v as u16).to_le_bytes());
                    *data_pc += 2;
                }
            }
            "byte" => {
                for operand in &line.operands {
                    let v = self.value(operand, line.num)?;
                    data.push(v as u8);
                    *data_pc += 1;
                }
            }
            "space" => {
                let n = parse_int(&line.operands[0], line.num)? as u32;
                data.extend(std::iter::repeat_n(0u8, n as usize));
                *data_pc += n;
            }
            "align" => {
                let n = parse_int(&line.operands[0], line.num)? as u32;
                pad_to(data, data_pc, 1 << n);
            }
            "asciiz" | "ascii" => {
                let s = parse_string(&line.operands[0], line.num)?;
                data.extend_from_slice(s.as_bytes());
                *data_pc += s.len() as u32;
                if dir == "asciiz" {
                    data.push(0);
                    *data_pc += 1;
                }
            }
            _ => {
                return Err(AsmError::new(
                    line.num,
                    format!("unknown directive `.{dir}`"),
                ))
            }
        }
        Ok(())
    }

    fn lookup(&self, name: &str, line: usize) -> AsmResult<u32> {
        self.symbols
            .get(name)
            .copied()
            .ok_or_else(|| AsmError::new(line, format!("undefined label `{name}`")))
    }

    /// An operand that is either an integer literal or a label.
    fn value(&self, s: &str, line: usize) -> AsmResult<i64> {
        if let Ok(v) = parse_int(s, line) {
            return Ok(v);
        }
        self.lookup(s, line).map(|a| a as i64)
    }

    /// Expands one statement into concrete instructions at address `pc`.
    fn expand(&self, m: &str, ops: &[String], pc: u32, line: usize) -> AsmResult<Vec<Instr>> {
        let reg = |s: &str| -> AsmResult<Reg> {
            Reg::parse(s).ok_or_else(|| AsmError::new(line, format!("bad register `{s}`")))
        };
        let arity = |n: usize| -> AsmResult<()> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError::new(
                    line,
                    format!("`{m}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };
        // Signed-immediate ops: accept [-0x8000, 0x7fff] plus the common
        // assembler convention of writing 0x8000..=0xffff for the same bit
        // patterns (reinterpreted as negative).
        let imm16 = |v: i64| -> AsmResult<i32> {
            match v {
                -0x8000..=0x7fff => Ok(v as i32),
                0x8000..=0xffff => Ok((v - 0x1_0000) as i32),
                _ => Err(AsmError::new(
                    line,
                    format!("immediate {v} does not fit in 16 bits"),
                )),
            }
        };
        // Zero-extended ops: accept [0, 0xffff] plus negative bit patterns.
        let uimm16 = |v: i64| -> AsmResult<i32> {
            match v {
                0..=0xffff => Ok(v as i32),
                -0x8000..=-1 => Ok((v + 0x1_0000) as i32),
                _ => Err(AsmError::new(
                    line,
                    format!("immediate {v} does not fit in 16 bits"),
                )),
            }
        };
        // Branch displacement from the *end* of the branch instruction.
        let branch_off = |target: u32, at_pc: u32| -> AsmResult<i32> {
            let delta = target as i64 - (at_pc as i64 + 4);
            if delta % 4 != 0 {
                return Err(AsmError::new(line, "unaligned branch target"));
            }
            let words = delta / 4;
            if !(-(1 << 15)..(1 << 15)).contains(&words) {
                return Err(AsmError::new(line, "branch target out of range"));
            }
            Ok(words as i32)
        };

        use Op::*;
        let three_r = |op: Op| -> AsmResult<Vec<Instr>> {
            arity(3)?;
            Ok(vec![Instr::rtype(
                op,
                reg(&ops[0])?,
                reg(&ops[1])?,
                reg(&ops[2])?,
            )])
        };
        let shift_c = |op: Op| -> AsmResult<Vec<Instr>> {
            arity(3)?;
            let sh = parse_int(&ops[2], line)?;
            if !(0..32).contains(&sh) {
                return Err(AsmError::new(
                    line,
                    format!("shift amount {sh} out of range"),
                ));
            }
            Ok(vec![Instr::shift(
                op,
                reg(&ops[0])?,
                reg(&ops[1])?,
                sh as u32,
            )])
        };
        let shift_v = |op: Op| -> AsmResult<Vec<Instr>> {
            arity(3)?;
            // sllv rd, rt, rs — value in rt, amount in rs.
            let (rd, rt, rs) = (reg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?);
            Ok(vec![Instr {
                op,
                rd,
                rs,
                rt,
                imm: 0,
                target: 0,
            }])
        };
        let itype = |op: Op| -> AsmResult<Vec<Instr>> {
            arity(3)?;
            let v = self.value(&ops[2], line)?;
            let imm = if matches!(op, Op::Andi | Op::Ori | Op::Xori) {
                uimm16(v)?
            } else {
                imm16(v)?
            };
            Ok(vec![Instr::itype(op, reg(&ops[0])?, reg(&ops[1])?, imm)])
        };
        let mem = |op: Op| -> AsmResult<Vec<Instr>> {
            arity(2)?;
            let (off, base) = parse_mem(&ops[1], line)?;
            Ok(vec![Instr::itype(op, reg(&ops[0])?, base, imm16(off)?)])
        };
        let br2 = |op: Op| -> AsmResult<Vec<Instr>> {
            arity(3)?;
            let t = self.value(&ops[2], line)? as u32;
            Ok(vec![Instr {
                op,
                rd: Reg::ZERO,
                rs: reg(&ops[0])?,
                rt: reg(&ops[1])?,
                imm: branch_off(t, pc)?,
                target: 0,
            }])
        };
        let br1 = |op: Op| -> AsmResult<Vec<Instr>> {
            arity(2)?;
            let t = self.value(&ops[1], line)? as u32;
            Ok(vec![Instr {
                op,
                rd: Reg::ZERO,
                rs: reg(&ops[0])?,
                rt: Reg::ZERO,
                imm: branch_off(t, pc)?,
                target: 0,
            }])
        };
        // Compare-and-branch pseudos: slt into $at, then branch on $at.
        let cmp_br = |swap: bool, br: Op| -> AsmResult<Vec<Instr>> {
            arity(3)?;
            let (a, b) = (reg(&ops[0])?, reg(&ops[1])?);
            let (x, y) = if swap { (b, a) } else { (a, b) };
            let t = self.value(&ops[2], line)? as u32;
            Ok(vec![
                Instr::rtype(Slt, Reg::AT, x, y),
                Instr {
                    op: br,
                    rd: Reg::ZERO,
                    rs: Reg::AT,
                    rt: Reg::ZERO,
                    imm: branch_off(t, pc + 4)?,
                    target: 0,
                },
            ])
        };

        match m {
            "add" => three_r(Add),
            "addu" => three_r(Addu),
            "sub" => three_r(Sub),
            "subu" => three_r(Subu),
            "and" => three_r(And),
            "or" => three_r(Or),
            "xor" => three_r(Xor),
            "nor" => three_r(Nor),
            "slt" => three_r(Slt),
            "sltu" => three_r(Sltu),
            "sll" => shift_c(Sll),
            "srl" => shift_c(Srl),
            "sra" => shift_c(Sra),
            "sllv" => shift_v(Sllv),
            "srlv" => shift_v(Srlv),
            "srav" => shift_v(Srav),
            "addi" => itype(Addi),
            "addiu" => itype(Addiu),
            "slti" => itype(Slti),
            "sltiu" => itype(Sltiu),
            "andi" => itype(Andi),
            "ori" => itype(Ori),
            "xori" => itype(Xori),
            "lui" => {
                arity(2)?;
                let v = self.value(&ops[1], line)?;
                Ok(vec![Instr::itype(
                    Lui,
                    reg(&ops[0])?,
                    Reg::ZERO,
                    uimm16(v)?,
                )])
            }
            "mult" | "multu" | "div" | "divu" => {
                arity(2)?;
                let op = match m {
                    "mult" => Mult,
                    "multu" => Multu,
                    "div" => Div,
                    _ => Divu,
                };
                Ok(vec![Instr {
                    op,
                    rd: Reg::ZERO,
                    rs: reg(&ops[0])?,
                    rt: reg(&ops[1])?,
                    imm: 0,
                    target: 0,
                }])
            }
            "mfhi" | "mflo" => {
                arity(1)?;
                let op = if m == "mfhi" { Mfhi } else { Mflo };
                Ok(vec![Instr {
                    op,
                    rd: reg(&ops[0])?,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                }])
            }
            "mthi" | "mtlo" => {
                arity(1)?;
                let op = if m == "mthi" { Mthi } else { Mtlo };
                Ok(vec![Instr {
                    op,
                    rd: Reg::ZERO,
                    rs: reg(&ops[0])?,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                }])
            }
            "lb" => mem(Lb),
            "lbu" => mem(Lbu),
            "lh" => mem(Lh),
            "lhu" => mem(Lhu),
            "lw" => mem(Lw),
            "sb" => mem(Sb),
            "sh" => mem(Sh),
            "sw" => mem(Sw),
            "beq" => br2(Beq),
            "bne" => br2(Bne),
            "blez" => br1(Blez),
            "bgtz" => br1(Bgtz),
            "bltz" => br1(Bltz),
            "bgez" => br1(Bgez),
            "j" | "jal" => {
                arity(1)?;
                let t = self.value(&ops[0], line)? as u32;
                if !t.is_multiple_of(4) {
                    return Err(AsmError::new(line, "unaligned jump target"));
                }
                let op = if m == "j" { J } else { Jal };
                Ok(vec![Instr {
                    op,
                    rd: Reg::ZERO,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: (t >> 2) & 0x03ff_ffff,
                }])
            }
            "jr" => {
                arity(1)?;
                Ok(vec![Instr {
                    op: Jr,
                    rd: Reg::ZERO,
                    rs: reg(&ops[0])?,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                }])
            }
            "jalr" => {
                let (rd, rs) = match ops.len() {
                    1 => (Reg::RA, reg(&ops[0])?),
                    2 => (reg(&ops[0])?, reg(&ops[1])?),
                    _ => return Err(AsmError::new(line, "`jalr` expects 1 or 2 operands")),
                };
                Ok(vec![Instr {
                    op: Jalr,
                    rd,
                    rs,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                }])
            }
            "syscall" => Ok(vec![Instr {
                op: Syscall,
                ..Instr::NOP
            }]),
            "break" => Ok(vec![Instr {
                op: Break,
                ..Instr::NOP
            }]),
            "ext" => {
                arity(4)?;
                let conf = parse_int(&ops[3], line)?;
                if !(0..(1 << 11)).contains(&conf) {
                    return Err(AsmError::new(line, "conf id out of range (11 bits)"));
                }
                Ok(vec![Instr::ext(
                    conf as u16,
                    reg(&ops[0])?,
                    reg(&ops[1])?,
                    reg(&ops[2])?,
                )])
            }
            // ---- pseudo-instructions ----
            "nop" => {
                arity(0)?;
                Ok(vec![Instr::NOP])
            }
            "move" => {
                arity(2)?;
                Ok(vec![Instr::rtype(
                    Addu,
                    reg(&ops[0])?,
                    Reg::ZERO,
                    reg(&ops[1])?,
                )])
            }
            "not" => {
                arity(2)?;
                Ok(vec![Instr::rtype(
                    Nor,
                    reg(&ops[0])?,
                    reg(&ops[1])?,
                    Reg::ZERO,
                )])
            }
            "neg" | "negu" => {
                arity(2)?;
                Ok(vec![Instr::rtype(
                    Subu,
                    reg(&ops[0])?,
                    Reg::ZERO,
                    reg(&ops[1])?,
                )])
            }
            "li" => {
                arity(2)?;
                let rd = reg(&ops[0])?;
                let v = parse_int(&ops[1], line)?;
                Ok(expand_li(rd, v, line)?)
            }
            "la" => {
                arity(2)?;
                let rd = reg(&ops[0])?;
                let a = self.value(&ops[1], line)? as u32;
                Ok(vec![
                    Instr::itype(Lui, rd, Reg::ZERO, (a >> 16) as i32),
                    Instr::itype(Ori, rd, rd, (a & 0xffff) as i32),
                ])
            }
            "b" => {
                arity(1)?;
                let t = self.value(&ops[0], line)? as u32;
                Ok(vec![Instr {
                    op: Beq,
                    rd: Reg::ZERO,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    imm: branch_off(t, pc)?,
                    target: 0,
                }])
            }
            "beqz" | "bnez" => {
                arity(2)?;
                let op = if m == "beqz" { Beq } else { Bne };
                let t = self.value(&ops[1], line)? as u32;
                Ok(vec![Instr {
                    op,
                    rd: Reg::ZERO,
                    rs: reg(&ops[0])?,
                    rt: Reg::ZERO,
                    imm: branch_off(t, pc)?,
                    target: 0,
                }])
            }
            "blt" => cmp_br(false, Bne),
            "bge" => cmp_br(false, Beq),
            "bgt" => cmp_br(true, Bne),
            "ble" => cmp_br(true, Beq),
            _ => Err(AsmError::new(line, format!("unknown mnemonic `{m}`"))),
        }
    }
}

/// Number of words a statement expands to (used by pass 1).
fn instr_size(m: &str, ops: &[String], line: usize) -> AsmResult<u32> {
    Ok(match m {
        "la" | "blt" | "bge" | "bgt" | "ble" => 2,
        "li" => {
            let v = parse_int(ops.get(1).map(String::as_str).unwrap_or(""), line)?;
            expand_li(Reg::AT, v, line)?.len() as u32
        }
        _ => 1,
    })
}

/// `li rd, imm` expansion: one instruction when the constant fits a 16-bit
/// field, otherwise `lui` + `ori`.
fn expand_li(rd: Reg, v: i64, line: usize) -> AsmResult<Vec<Instr>> {
    if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
        return Err(AsmError::new(
            line,
            format!("constant {v} does not fit in 32 bits"),
        ));
    }
    let w = v as u32;
    if (-(1 << 15)..(1 << 15)).contains(&v) {
        return Ok(vec![Instr::itype(Op::Addiu, rd, Reg::ZERO, v as i32)]);
    }
    if (0..(1 << 16)).contains(&v) {
        return Ok(vec![Instr::itype(Op::Ori, rd, Reg::ZERO, v as i32)]);
    }
    let mut out = vec![Instr::itype(Op::Lui, rd, Reg::ZERO, (w >> 16) as i32)];
    if w & 0xffff != 0 {
        out.push(Instr::itype(Op::Ori, rd, rd, (w & 0xffff) as i32));
    }
    Ok(out)
}

/// Parses `imm(reg)`, `(reg)`, or `imm` memory-operand syntax.
fn parse_mem(s: &str, line: usize) -> AsmResult<(i64, Reg)> {
    if let Some(open) = s.find('(') {
        let close = s
            .rfind(')')
            .ok_or_else(|| AsmError::new(line, format!("missing `)` in `{s}`")))?;
        let off = s[..open].trim();
        let base = Reg::parse(s[open + 1..close].trim())
            .ok_or_else(|| AsmError::new(line, format!("bad base register in `{s}`")))?;
        let off = if off.is_empty() {
            0
        } else {
            parse_int(off, line)?
        };
        Ok((off, base))
    } else {
        Ok((parse_int(s, line)?, Reg::ZERO))
    }
}

/// Parses a double-quoted string literal with `\n`, `\t`, `\0`, `\\`, `\"`
/// escapes.
fn parse_string(s: &str, line: usize) -> AsmResult<String> {
    let body = s
        .trim()
        .strip_prefix('"')
        .and_then(|b| b.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, format!("expected string literal, got `{s}`")))?;
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            other => return Err(AsmError::new(line, format!("bad escape `\\{other:?}`"))),
        }
    }
    Ok(out)
}

fn align_up(v: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_isa::program::TEXT_BASE;

    #[test]
    fn minimal_program_assembles() {
        let p = assemble("main: addiu $v0, $zero, 10\n      syscall\n").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.entry, TEXT_BASE);
        let i = p.instr_at(TEXT_BASE).unwrap();
        assert_eq!(i.op, Op::Addiu);
    }

    #[test]
    fn branches_resolve_forward_and_backward() {
        let p = assemble(
            "loop: addiu $t0, $t0, 1\n bne $t0, $t1, loop\n beq $t0, $t1, done\n nop\ndone: syscall\n",
        )
        .unwrap();
        let bne = p.instr_at(TEXT_BASE + 4).unwrap();
        assert_eq!(bne.imm, -2); // back to loop
        let beq = p.instr_at(TEXT_BASE + 8).unwrap();
        assert_eq!(beq.imm, 1); // skip the nop
    }

    #[test]
    fn li_expansion_sizes_match_pass1() {
        let p = assemble("main: li $t0, 5\n li $t1, 0x12345678\n li $t2, 0xffff\nafter: nop\n")
            .unwrap();
        // 1 + 2 + 1 instructions before `after`.
        assert_eq!(p.symbol("after"), Some(TEXT_BASE + 16));
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn li_lui_only_when_low_half_zero() {
        let p = assemble("li $t0, 0x10000\n").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.instr_at(TEXT_BASE).unwrap().op, Op::Lui);
    }

    #[test]
    fn la_loads_data_address() {
        let p = assemble(".data\nbuf: .space 8\n.text\nmain: la $a0, buf\n").unwrap();
        let lui = p.instr_at(TEXT_BASE).unwrap();
        let ori = p.instr_at(TEXT_BASE + 4).unwrap();
        let addr = ((lui.imm as u32) << 16) | (ori.imm as u32);
        assert_eq!(Some(addr), p.symbol("buf"));
    }

    #[test]
    fn data_directives_lay_out_correctly() {
        let p = assemble(
            ".data\na: .byte 1, 2\nb: .half 0x1234\nc: .word 0xdeadbeef\nd: .asciiz \"hi\"\n",
        )
        .unwrap();
        let base = p.data_base;
        assert_eq!(p.symbol("a"), Some(base));
        assert_eq!(p.symbol("b"), Some(base + 2)); // aligned to 2
        assert_eq!(p.symbol("c"), Some(base + 4)); // aligned to 4
        assert_eq!(p.symbol("d"), Some(base + 8));
        assert_eq!(&p.data[0..2], &[1, 2]);
        assert_eq!(&p.data[2..4], &0x1234u16.to_le_bytes());
        assert_eq!(&p.data[4..8], &0xdeadbeefu32.to_le_bytes());
        assert_eq!(&p.data[8..11], b"hi\0");
    }

    #[test]
    fn word_can_reference_labels() {
        let p = assemble(".data\nptr: .word tgt\ntgt: .word 7\n").unwrap();
        let tgt = p.symbol("tgt").unwrap();
        assert_eq!(&p.data[0..4], &tgt.to_le_bytes());
    }

    #[test]
    fn mem_operand_forms() {
        let p = assemble("lw $t0, 8($sp)\nlw $t1, ($sp)\n").unwrap();
        assert_eq!(p.instr_at(TEXT_BASE).unwrap().imm, 8);
        assert_eq!(p.instr_at(TEXT_BASE + 4).unwrap().imm, 0);
    }

    #[test]
    fn cmp_branch_pseudos_expand_to_two_instructions() {
        let p = assemble("main: blt $t0, $t1, main\n").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.instr_at(TEXT_BASE).unwrap().op, Op::Slt);
        let br = p.instr_at(TEXT_BASE + 4).unwrap();
        assert_eq!(br.op, Op::Bne);
        assert_eq!(br.imm, -2);
    }

    #[test]
    fn ext_instruction_assembles() {
        let p = assemble("ext $v0, $a0, $a1, 42\n").unwrap();
        let i = p.instr_at(TEXT_BASE).unwrap();
        assert_eq!(i.op, Op::Ext);
        assert_eq!(i.conf(), 42);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus $1\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("addu $1, $2\n").unwrap_err();
        assert!(e.msg.contains("expects 3 operands"));
        let e = assemble("j undefined_label\n").unwrap_err();
        assert!(e.msg.contains("undefined label"));
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.msg.contains("duplicate label"));
    }

    #[test]
    fn immediate_range_checks() {
        assert!(assemble("addiu $1, $2, 0x8000").is_ok()); // 32768 fits unsigned-style reinterp
        assert!(assemble("addiu $1, $2, 0x10000").is_err());
        assert!(assemble("sll $1, $2, 32").is_err());
    }

    #[test]
    fn entry_defaults_to_main_or_directive() {
        let p = assemble("start: nop\nmain: nop\n").unwrap();
        assert_eq!(p.entry, TEXT_BASE + 4);
        let p = assemble(".entry start\nstart: nop\nmain: nop\n").unwrap();
        assert_eq!(p.entry, TEXT_BASE);
    }

    #[test]
    fn instruction_in_data_section_rejected() {
        assert!(assemble(".data\nnop\n").is_err());
    }
}
