//! Assembler diagnostics.

use std::fmt;

/// An assembly error with source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl AsmError {
    pub fn new(line: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Result alias used throughout the assembler.
pub type AsmResult<T> = Result<T, AsmError>;
