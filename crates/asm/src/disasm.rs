//! Disassembler producing re-assemblable source text.
//!
//! Branch and jump targets are rendered as generated `L_<addr>` labels so
//! the output can be fed back through [`crate::assemble`]; the round trip
//! is exercised by property tests.

use std::collections::BTreeSet;
use t1000_isa::{Instr, Op, Program};

/// Disassembles a full program into assembly source text.
pub fn disassemble(p: &Program) -> String {
    let decoded: Vec<(u32, Instr)> = p.decode_all().expect("program contains undecodable words");

    // Collect every control-flow target that lands inside the text segment.
    let mut targets: BTreeSet<u32> = BTreeSet::new();
    for &(pc, i) in &decoded {
        if i.op.is_branch() {
            targets.insert(i.branch_target(pc));
        } else if matches!(i.op, Op::J | Op::Jal) {
            targets.insert(i.jump_target(pc));
        }
    }
    targets.retain(|t| p.contains_pc(*t));

    let mut out = String::new();
    out.push_str(&format!(".text 0x{:x}\n", p.text_base));
    for &(pc, i) in &decoded {
        if targets.contains(&pc) {
            out.push_str(&format!("L_{pc:x}:\n"));
        }
        out.push_str("    ");
        out.push_str(&render(pc, &i, p));
        out.push('\n');
    }
    out
}

/// Renders one instruction, using labels for in-text control transfers.
pub fn render(pc: u32, i: &Instr, p: &Program) -> String {
    use Op::*;
    match i.op {
        Beq | Bne => {
            let t = i.branch_target(pc);
            format!(
                "{} {}, {}, {}",
                i.op.mnemonic(),
                i.rs,
                i.rt,
                label_or_addr(t, p)
            )
        }
        Blez | Bgtz | Bltz | Bgez => {
            let t = i.branch_target(pc);
            format!("{} {}, {}", i.op.mnemonic(), i.rs, label_or_addr(t, p))
        }
        J | Jal => {
            let t = i.jump_target(pc);
            format!("{} {}", i.op.mnemonic(), label_or_addr(t, p))
        }
        _ => i.to_string(),
    }
}

fn label_or_addr(t: u32, p: &Program) -> String {
    if p.contains_pc(t) {
        format!("L_{t:x}")
    } else {
        format!("0x{t:x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    #[test]
    fn round_trip_preserves_encoding() {
        let src = "\
main:
    addiu $t0, $zero, 8
loop:
    addiu $t0, $t0, -1
    sll $t1, $t0, 2
    addu $t2, $t2, $t1
    bne $t0, $zero, loop
    jal helper
    j end
helper:
    jr $ra
end:
    syscall
";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.text, p2.text, "round-trip changed encodings:\n{text}");
    }

    #[test]
    fn branch_targets_become_labels() {
        let p = assemble("main: bne $t0, $zero, main\n nop\n").unwrap();
        let text = disassemble(&p);
        assert!(text.contains("L_400000:"), "{text}");
        assert!(text.contains("bne $t0, $zero, L_400000"), "{text}");
    }

    #[test]
    fn out_of_text_targets_render_as_addresses() {
        // A jump to an address beyond the text segment.
        let p = assemble("main: j 0x400100\n").unwrap();
        let text = disassemble(&p);
        assert!(text.contains("j 0x400100"), "{text}");
    }
}
