//! # t1000-asm — assembler and disassembler for the T1000 ISA
//!
//! A two-pass assembler for a MIPS-flavoured assembly dialect
//! (`.text`/`.data` sections, labels, the usual data directives, and a set
//! of convenience pseudo-instructions), plus a disassembler whose output is
//! re-assemblable. All T1000 workloads (`t1000-workloads`) are written in
//! this dialect.
//!
//! ```
//! let program = t1000_asm::assemble("
//! main:
//!     li   $t0, 6
//!     li   $t1, 7
//!     mult $t0, $t1
//!     mflo $a0
//!     li   $v0, 10      # exit(42)
//!     syscall
//! ").unwrap();
//! assert_eq!(program.len(), 6);
//! ```

pub mod assembler;
pub mod disasm;
pub mod error;
pub mod lexer;

pub use assembler::assemble;
pub use disasm::disassemble;
pub use error::{AsmError, AsmResult};
