//! Behavioural tests of the out-of-order pipeline model against
//! first-principles cycle counts on tiny hand-analysed programs.

use t1000_asm::assemble;
use t1000_cpu::{simulate, CpuConfig, PfuCount};
use t1000_isa::FusionMap;

fn cycles(src: &str, cfg: CpuConfig) -> u64 {
    let p = assemble(src).unwrap();
    simulate(&p, &FusionMap::new(), cfg).unwrap().timing.cycles
}

/// A warmed loop iteration bounded by its loop-carried dependence chain:
/// the measured cycles-per-iteration must match the chain depth.
#[test]
fn loop_carried_chain_sets_the_iteration_time() {
    for depth in [1usize, 2, 4, 6] {
        let mut body = String::new();
        for _ in 0..depth {
            body.push_str("    addu $t0, $t0, $t1\n");
        }
        let src = format!(
            "main:\n    li $s0, 2000\n    li $t0, 1\n    li $t1, 1\nloop:\n{body}    addiu $s0, $s0, -1\n    bgtz $s0, loop\n    li $v0, 10\n    syscall\n"
        );
        let total = cycles(&src, CpuConfig::baseline());
        let per_iter = total as f64 / 2000.0;
        assert!(
            (per_iter - depth as f64).abs() < 0.75,
            "depth {depth}: measured {per_iter:.2} cycles/iter"
        );
    }
}

/// Multiply latency (3 cycles) appears on dependent chains.
#[test]
fn multiply_latency_is_observable() {
    let mul = "
main:
    li $s0, 1000
    li $t0, 3
loop:
    mult $t0, $t0
    mflo $t0
    andi $t0, $t0, 255
    ori  $t0, $t0, 1
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li $v0, 10
    syscall
";
    let add = &mul
        .replace("mult $t0, $t0", "addu $t9, $t0, $t0")
        .replace("mflo $t0", "addu $t0, $t9, $zero");
    let c_mul = cycles(mul, CpuConfig::baseline());
    let c_add = cycles(add, CpuConfig::baseline());
    assert!(
        c_mul >= c_add + 1500,
        "3-cycle multiplies must cost ≈2 extra cycles/iter: {c_mul} vs {c_add}"
    );
}

/// ALU-port contention: 5 independent ALU ops per cycle cannot all issue
/// on 4 ALUs even though fetch could supply them.
#[test]
fn alu_ports_limit_issue() {
    let mut body = String::new();
    for i in 0..8 {
        body.push_str(&format!("    addiu $t{}, $zero, {}\n", i % 8, i));
    }
    let src = format!(
        "main:\n    li $s0, 1000\nloop:\n{body}    addiu $s0, $s0, -1\n    bgtz $s0, loop\n    li $v0, 10\n    syscall\n"
    );
    let four = cycles(&src, CpuConfig::baseline());
    let two = {
        let mut c = CpuConfig::baseline();
        c.int_alus = 2;
        cycles(&src, c)
    };
    assert!(
        two > four,
        "halving ALUs must cost cycles ({two} vs {four})"
    );
}

/// The LSQ bounds memory parallelism: a tiny LSQ on a load-heavy loop is
/// slower than the default.
#[test]
fn lsq_capacity_matters_for_memory_streams() {
    let src = "
.data
buf: .space 4096
.text
main:
    li  $s0, 500
    la  $t9, buf
loop:
    lw  $t0, 0($t9)
    lw  $t1, 4($t9)
    lw  $t2, 8($t9)
    lw  $t3, 12($t9)
    sw  $t0, 16($t9)
    sw  $t1, 20($t9)
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li $v0, 10
    syscall
";
    let big = cycles(src, CpuConfig::baseline());
    let small = {
        let mut c = CpuConfig::baseline();
        c.lsq_size = 2;
        cycles(src, c)
    };
    assert!(small > big, "2-entry LSQ must throttle ({small} vs {big})");
}

/// Syscalls serialize the pipeline: a syscall-per-iteration loop is far
/// slower than the same loop without.
#[test]
fn syscalls_serialize() {
    let chatty = "
main:
    li $s0, 200
loop:
    move $a0, $s0
    li  $v0, 30
    syscall
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li $v0, 10
    syscall
";
    let quiet = "
main:
    li $s0, 200
loop:
    move $a0, $s0
    addiu $t0, $s0, 0
    addu  $t1, $t0, $a0
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li $v0, 10
    syscall
";
    let c_chatty = cycles(chatty, CpuConfig::baseline());
    let c_quiet = cycles(quiet, CpuConfig::baseline());
    assert!(
        c_chatty as f64 > 1.5 * c_quiet as f64,
        "window-draining syscalls must dominate ({c_chatty} vs {c_quiet})"
    );
}

/// A PFU-less machine and a PFU machine with no fused sites time
/// identically: PFUs are invisible until used.
#[test]
fn unused_pfus_are_free() {
    let src = "
main:
    li $s0, 500
loop:
    addu $t0, $t0, $t1
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li $v0, 10
    syscall
";
    let a = cycles(src, CpuConfig::baseline());
    let b = cycles(
        src,
        CpuConfig {
            pfus: PfuCount::Fixed(4),
            ..CpuConfig::default()
        },
    );
    assert_eq!(a, b);
}
