//! Property tests for the simulator: the functional core against an
//! independent mini-interpreter, and timing-model sanity laws.

use proptest::prelude::*;
use t1000_asm::assemble;
use t1000_cpu::{execute, simulate, CpuConfig};
use t1000_isa::FusionMap;

/// Straight-line random ALU programs over $t0..$t5, checked against a
/// direct Rust evaluation of the same operations.
#[derive(Clone, Debug)]
enum Stmt {
    R3(&'static str, u8, u8, u8),
    Sh(&'static str, u8, u8, u32),
    Imm(&'static str, u8, u8, i32),
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (
            prop::sample::select(vec![
                "addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"
            ]),
            0u8..6,
            0u8..6,
            0u8..6
        )
            .prop_map(|(m, d, s, t)| Stmt::R3(m, d, s, t)),
        (
            prop::sample::select(vec!["sll", "srl", "sra"]),
            0u8..6,
            0u8..6,
            0u32..32
        )
            .prop_map(|(m, d, t, sh)| Stmt::Sh(m, d, t, sh)),
        (
            prop::sample::select(vec!["addiu", "andi", "ori", "xori", "slti", "sltiu"]),
            0u8..6,
            0u8..6,
            0i32..0x7fff
        )
            .prop_map(|(m, d, s, v)| Stmt::Imm(m, d, s, v)),
    ]
}

fn to_asm(stmts: &[Stmt]) -> String {
    let mut src = String::from("main:\n");
    for (i, init) in [3i32, -5, 100, 0x7ff, -1, 42].iter().enumerate() {
        src.push_str(&format!("    li $t{i}, {init}\n"));
    }
    for s in stmts {
        match s {
            Stmt::R3(m, d, a, b) => src.push_str(&format!("    {m} $t{d}, $t{a}, $t{b}\n")),
            Stmt::Sh(m, d, t, sh) => src.push_str(&format!("    {m} $t{d}, $t{t}, {sh}\n")),
            Stmt::Imm(m, d, s_, v) => src.push_str(&format!("    {m} $t{d}, $t{s_}, {v}\n")),
        }
    }
    for i in 0..6 {
        src.push_str(&format!(
            "    move $a0, $t{i}\n    li $v0, 30\n    syscall\n"
        ));
    }
    src.push_str("    li $a0, 0\n    li $v0, 10\n    syscall\n");
    src
}

/// Independent evaluation (deliberately written differently from the
/// simulator's exec_alu).
fn oracle(stmts: &[Stmt]) -> [u32; 6] {
    let mut r: [u32; 6] = [3, (-5i32) as u32, 100, 0x7ff, u32::MAX, 42];
    for s in stmts {
        match *s {
            Stmt::R3(m, d, a, b) => {
                let (x, y) = (r[a as usize], r[b as usize]);
                r[d as usize] = match m {
                    "addu" => x.wrapping_add(y),
                    "subu" => x.wrapping_sub(y),
                    "and" => x & y,
                    "or" => x | y,
                    "xor" => x ^ y,
                    "nor" => !(x | y),
                    "slt" => ((x as i32) < (y as i32)) as u32,
                    "sltu" => (x < y) as u32,
                    _ => unreachable!(),
                };
            }
            Stmt::Sh(m, d, t, sh) => {
                let x = r[t as usize];
                r[d as usize] = match m {
                    "sll" => x << sh,
                    "srl" => x >> sh,
                    "sra" => ((x as i32) >> sh) as u32,
                    _ => unreachable!(),
                };
            }
            Stmt::Imm(m, d, s_, v) => {
                let x = r[s_ as usize];
                r[d as usize] = match m {
                    "addiu" => x.wrapping_add(v as u32),
                    "andi" => x & (v as u32),
                    "ori" => x | (v as u32),
                    "xori" => x ^ (v as u32),
                    "slti" => ((x as i32) < v) as u32,
                    "sltiu" => (x < v as u32) as u32,
                    _ => unreachable!(),
                };
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn functional_core_matches_an_independent_oracle(
        stmts in prop::collection::vec(arb_stmt(), 1..40),
    ) {
        let p = assemble(&to_asm(&stmts)).unwrap();
        let (sys, _) = execute(&p, &FusionMap::new(), 1_000_000).unwrap();
        // Recompute the expected checksum from the oracle's registers.
        let mut expect = t1000_cpu::SyscallState::new();
        for v in oracle(&stmts) {
            expect.execute(30, v).unwrap();
        }
        prop_assert_eq!(sys.checksum, expect.checksum);
    }

    #[test]
    fn timing_is_deterministic(stmts in prop::collection::vec(arb_stmt(), 1..30)) {
        let p = assemble(&to_asm(&stmts)).unwrap();
        let a = simulate(&p, &FusionMap::new(), CpuConfig::baseline()).unwrap();
        let b = simulate(&p, &FusionMap::new(), CpuConfig::baseline()).unwrap();
        prop_assert_eq!(a.timing.cycles, b.timing.cycles);
        prop_assert_eq!(a.timing.slots, b.timing.slots);
    }

    #[test]
    fn cycles_bound_instructions_from_both_sides(
        stmts in prop::collection::vec(arb_stmt(), 1..30),
    ) {
        let p = assemble(&to_asm(&stmts)).unwrap();
        let r = simulate(&p, &FusionMap::new(), CpuConfig::baseline()).unwrap();
        // A 4-wide machine commits at most 4 per cycle...
        prop_assert!(r.timing.cycles * 4 >= r.timing.base_instructions);
        // ...and straight-line ALU code cannot take more than a few
        // hundred cycles per instruction even with cold caches.
        prop_assert!(r.timing.cycles < r.timing.base_instructions * 100 + 10_000);
    }

    #[test]
    fn bigger_windows_never_hurt(stmts in prop::collection::vec(arb_stmt(), 5..30)) {
        let p = assemble(&to_asm(&stmts)).unwrap();
        let small = {
            let mut c = CpuConfig::baseline();
            c.ruu_size = 8;
            c.lsq_size = 4;
            simulate(&p, &FusionMap::new(), c).unwrap()
        };
        let big = simulate(&p, &FusionMap::new(), CpuConfig::baseline()).unwrap();
        prop_assert!(
            big.timing.cycles <= small.timing.cycles,
            "64-entry RUU ({}) beat by 8-entry ({})",
            big.timing.cycles,
            small.timing.cycles
        );
    }
}
