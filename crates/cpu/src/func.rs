//! Functional (architectural) core.
//!
//! Executes instructions with exact ISA semantics against a register file
//! and [`Memory`]. The timing model never computes values: the functional
//! core runs ahead, producing a stream of [`DynInstr`] records (an
//! "execute-at-fetch" trace, as in SimpleScalar), which the out-of-order
//! model consumes. This split also gives the paper's *perfect branch
//! prediction* for free: fetch simply follows the architecturally executed
//! path.
//!
//! Fusion is applied here: when the PC lands on a
//! [`FusedSite`](t1000_isa::ext::FusedSite), the whole
//! sequence executes architecturally (bit-identical results) but a single
//! `DynInstr` of class `Pfu` is emitted.

use crate::syscall::SyscallState;
use t1000_isa::{FusionMap, Instr, Op, OpClass, Program, Reg};
use t1000_mem::Memory;

/// One dynamic (committed-path) instruction record.
#[derive(Clone, Debug)]
pub struct DynInstr {
    /// PC of the (first) instruction.
    pub pc: u32,
    /// The decoded instruction (for fused records, the *first* of the
    /// sequence; `fused_len > 1` marks fusion).
    pub instr: Instr,
    /// Number of base instructions this record covers (1 = not fused).
    pub fused_len: u32,
    /// PFU configuration id for fused records.
    pub conf: Option<u16>,
    /// Functional-unit class used by the timing model.
    pub class: OpClass,
    /// Execution latency on its functional unit.
    pub latency: u32,
    /// Destination general-purpose register, if any.
    pub gpr_def: Option<Reg>,
    /// Source general-purpose registers (≤ 2).
    pub gpr_uses: [Option<Reg>; 2],
    /// Whether HI/LO is written / read.
    pub hilo_def: bool,
    pub hilo_use: bool,
    /// Memory reference, if any: (byte address, is_write).
    pub mem: Option<(u32, bool)>,
    /// Source operand values (for bitwidth profiling).
    pub src_vals: [u32; 2],
    /// Result value written to `gpr_def` (for bitwidth profiling).
    pub result: Option<u32>,
    /// For conditional branches: whether the branch was taken. `None`
    /// for everything else.
    pub taken: Option<bool>,
    /// Whether this instruction terminated the program.
    pub exits: bool,
}

/// Functional execution error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// PC left the text segment.
    PcOutOfRange(u32),
    /// Undecodable instruction word.
    Decode(u32, u32),
    /// Misaligned load/store.
    Unaligned { pc: u32, addr: u32, width: u32 },
    /// Unknown syscall selector.
    BadSyscall { pc: u32, code: u32 },
    /// Committed-instruction budget exhausted.
    InstrLimit(u64),
    /// Simulation-cycle fuel exhausted (see
    /// [`CpuConfig::max_cycles`](crate::config::CpuConfig::max_cycles)).
    CycleLimit(u64),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "PC 0x{pc:x} outside text segment"),
            ExecError::Decode(pc, w) => write!(f, "undecodable word 0x{w:08x} at 0x{pc:x}"),
            ExecError::Unaligned { pc, addr, width } => {
                write!(
                    f,
                    "misaligned {width}-byte access to 0x{addr:x} at 0x{pc:x}"
                )
            }
            ExecError::BadSyscall { pc, code } => {
                write!(f, "unknown syscall {code} at 0x{pc:x}")
            }
            ExecError::InstrLimit(n) => write!(f, "instruction limit {n} exceeded"),
            ExecError::CycleLimit(n) => write!(f, "cycle fuel {n} exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Architectural machine state plus the program it runs.
pub struct FuncCore<'a> {
    program: &'a Program,
    fusion: &'a FusionMap,
    /// General-purpose registers.
    pub regs: [u32; 32],
    pub hi: u32,
    pub lo: u32,
    pub pc: u32,
    /// Memory image (owned: each run gets a fresh copy of the program's
    /// initial state).
    pub mem: Memory,
    /// Captured syscall effects.
    pub sys: SyscallState,
    /// Committed base instructions (fused sequences count their full
    /// length, so this is identical across fusion configurations).
    pub icount: u64,
    /// Fused-site visits that fell back to scalar execution because the
    /// site's PFU configuration is marked faulted (graceful degradation).
    pub conf_fault_fallbacks: u64,
    /// PFU configurations whose loads are injected to fail.
    faulted_confs: std::collections::HashSet<u16>,
    finished: bool,
}

impl<'a> FuncCore<'a> {
    /// Creates a core at the program entry with a loaded memory image and
    /// an initialised stack pointer.
    pub fn new(program: &'a Program, fusion: &'a FusionMap) -> FuncCore<'a> {
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = t1000_isa::program::STACK_TOP;
        regs[Reg::GP.index()] = program.data_base;
        FuncCore {
            program,
            fusion,
            regs,
            hi: 0,
            lo: 0,
            pc: program.entry,
            mem: Memory::with_program(program),
            sys: SyscallState::new(),
            icount: 0,
            conf_fault_fallbacks: 0,
            faulted_confs: std::collections::HashSet::new(),
            finished: false,
        }
    }

    /// Marks PFU configurations as failed-to-load. Any fused site using
    /// one of them falls back to executing its original scalar sequence —
    /// graceful degradation: an extended instruction is semantically
    /// identical to the base sequence it replaced, so architectural
    /// results are unchanged and the run merely pays the sequence's true
    /// latency. Fallbacks are counted in
    /// [`conf_fault_fallbacks`](FuncCore::conf_fault_fallbacks).
    pub fn inject_conf_faults(&mut self, confs: impl IntoIterator<Item = u16>) {
        self.faulted_confs.extend(confs);
    }

    /// Whether the program has exited.
    pub fn finished(&self) -> bool {
        self.finished
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Executes one *dynamic* instruction: either a single base instruction
    /// or, when the PC starts a fused site, the whole fused sequence.
    /// Returns `None` once the program has finished.
    pub fn step(&mut self) -> Result<Option<DynInstr>, ExecError> {
        if self.finished {
            return Ok(None);
        }
        if let Some(site) = self.fusion.site_at(self.pc) {
            if self.faulted_confs.contains(&site.conf) {
                // The site's configuration failed to load: execute the
                // first constituent unfused. The following PCs are not
                // site starts, so the rest of the sequence also runs
                // scalar, at its true latency.
                self.conf_fault_fallbacks += 1;
                return self.step_one().map(Some);
            }
            // Sites come from the selector, which only fuses runs inside a
            // basic block of the same program; a hand-built FusionMap whose
            // site extends past the text segment is a programming error and
            // panics in `instr_at` rather than returning an ExecError.
            let site = site.clone();
            let start_pc = self.pc;
            let in0 = site.inputs.first().copied();
            let in1 = site.inputs.get(1).copied();
            let src_vals = [
                in0.map_or(0, |r| self.reg(r)),
                in1.map_or(0, |r| self.reg(r)),
            ];
            let first = self
                .program
                .instr_at(start_pc)
                .map_err(|e| ExecError::Decode(start_pc, e.word))?;
            // Execute every constituent architecturally. The selector
            // guarantees the sequence is pure ALU straight-line code, so
            // control cannot leave it mid-way.
            for k in 0..site.len {
                let pc = start_pc + 4 * k;
                let i = self
                    .program
                    .instr_at(pc)
                    .map_err(|e| ExecError::Decode(pc, e.word))?;
                debug_assert!(
                    i.op.is_pfu_candidate(),
                    "fused site at 0x{start_pc:x} contains non-ALU op {:?}",
                    i.op
                );
                let r = self.exec_alu(&i);
                self.set_reg(i.def().unwrap_or(Reg::ZERO), r);
                self.icount += 1;
            }
            self.pc = site.end_pc();
            let latency = self.fusion.def(site.conf).map_or(1, |d| d.pfu_latency);
            return Ok(Some(DynInstr {
                pc: start_pc,
                instr: first,
                fused_len: site.len,
                conf: Some(site.conf),
                class: OpClass::Pfu,
                latency,
                gpr_def: Some(site.output),
                gpr_uses: [in0, in1],
                hilo_def: false,
                hilo_use: false,
                mem: None,
                src_vals,
                result: Some(self.reg(site.output)),
                taken: None,
                exits: false,
            }));
        }
        self.step_one().map(Some)
    }

    /// Executes exactly one base instruction (no fusion).
    pub fn step_one(&mut self) -> Result<DynInstr, ExecError> {
        if !self.program.contains_pc(self.pc) {
            return Err(ExecError::PcOutOfRange(self.pc));
        }
        let pc = self.pc;
        let i = self
            .program
            .instr_at(pc)
            .map_err(|e| ExecError::Decode(pc, e.word))?;
        self.icount += 1;

        let mut uses_iter = i.uses();
        let u0 = uses_iter.next();
        let u1 = uses_iter.next();
        let src_vals = [u0.map_or(0, |r| self.reg(r)), u1.map_or(0, |r| self.reg(r))];

        let mut rec = DynInstr {
            pc,
            instr: i,
            fused_len: 1,
            conf: None,
            class: i.op.class(),
            latency: i.op.latency(),
            gpr_def: i.def(),
            gpr_uses: [u0, u1],
            hilo_def: i.writes_hilo(),
            hilo_use: i.reads_hilo(),
            mem: None,
            src_vals,
            result: None,
            taken: None,
            exits: false,
        };

        let mut next_pc = pc.wrapping_add(4);
        use Op::*;
        match i.op {
            // ---- ALU ----
            op if op.is_pfu_candidate() => {
                let v = self.exec_alu(&i);
                self.set_reg(i.def().unwrap_or(Reg::ZERO), v);
                rec.result = Some(v);
            }
            // ---- multiply / divide / HI-LO ----
            Mult => {
                let p = (self.reg(i.rs) as i32 as i64) * (self.reg(i.rt) as i32 as i64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Multu => {
                let p = (self.reg(i.rs) as u64) * (self.reg(i.rt) as u64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Div => {
                let (a, b) = (self.reg(i.rs) as i32, self.reg(i.rt) as i32);
                // MIPS leaves HI/LO unpredictable on divide-by-zero; we
                // define a deterministic result so runs are reproducible.
                if b == 0 {
                    self.lo = u32::MAX;
                    self.hi = a as u32;
                } else {
                    self.lo = a.wrapping_div(b) as u32;
                    self.hi = a.wrapping_rem(b) as u32;
                }
            }
            Divu => {
                let (a, b) = (self.reg(i.rs), self.reg(i.rt));
                match a.checked_div(b) {
                    Some(q) => {
                        self.lo = q;
                        self.hi = a % b;
                    }
                    None => {
                        self.lo = u32::MAX;
                        self.hi = a;
                    }
                }
            }
            Mfhi => {
                let v = self.hi;
                self.set_reg(i.rd, v);
                rec.result = Some(v);
            }
            Mflo => {
                let v = self.lo;
                self.set_reg(i.rd, v);
                rec.result = Some(v);
            }
            Mthi => self.hi = self.reg(i.rs),
            Mtlo => self.lo = self.reg(i.rs),
            // ---- memory ----
            Lb | Lbu | Lh | Lhu | Lw => {
                let addr = self.reg(i.rs).wrapping_add(i.imm as u32);
                let v = self.load(pc, i.op, addr)?;
                self.set_reg(i.rt, v);
                rec.mem = Some((addr, false));
                rec.result = Some(v);
            }
            Sb | Sh | Sw => {
                let addr = self.reg(i.rs).wrapping_add(i.imm as u32);
                self.store(pc, i.op, addr, self.reg(i.rt))?;
                rec.mem = Some((addr, true));
            }
            // ---- control ----
            Beq => {
                if self.reg(i.rs) == self.reg(i.rt) {
                    next_pc = i.branch_target(pc);
                }
            }
            Bne => {
                if self.reg(i.rs) != self.reg(i.rt) {
                    next_pc = i.branch_target(pc);
                }
            }
            Blez => {
                if (self.reg(i.rs) as i32) <= 0 {
                    next_pc = i.branch_target(pc);
                }
            }
            Bgtz => {
                if (self.reg(i.rs) as i32) > 0 {
                    next_pc = i.branch_target(pc);
                }
            }
            Bltz => {
                if (self.reg(i.rs) as i32) < 0 {
                    next_pc = i.branch_target(pc);
                }
            }
            Bgez => {
                if (self.reg(i.rs) as i32) >= 0 {
                    next_pc = i.branch_target(pc);
                }
            }
            J => next_pc = i.jump_target(pc),
            Jal => {
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                next_pc = i.jump_target(pc);
            }
            Jr => next_pc = self.reg(i.rs),
            Jalr => {
                let t = self.reg(i.rs);
                self.set_reg(i.rd, pc.wrapping_add(4));
                next_pc = t;
            }
            // ---- system ----
            Syscall => {
                let code = self.reg(Reg::V0);
                let arg = self.reg(Reg::A0);
                let done = self
                    .sys
                    .execute(code, arg)
                    .map_err(|e| ExecError::BadSyscall { pc, code: e.code })?;
                if done {
                    self.finished = true;
                    rec.exits = true;
                }
            }
            Break => {
                self.finished = true;
                rec.exits = true;
            }
            Ext => {
                // A literal `ext` opcode in the text (as opposed to a
                // fusion-map site) has no skeleton to execute; treat as a
                // decode-class error — the selector never emits these.
                return Err(ExecError::Decode(pc, t1000_isa::encode(&i)));
            }
            _ => unreachable!("op {:?} not covered", i.op),
        }

        if i.op.is_branch() {
            rec.taken = Some(next_pc != pc.wrapping_add(4));
        }
        self.pc = next_pc;
        Ok(rec)
    }

    /// Pure ALU evaluation (shared by normal and fused execution).
    fn exec_alu(&self, i: &Instr) -> u32 {
        use Op::*;
        let rs = self.reg(i.rs);
        let rt = self.reg(i.rt);
        match i.op {
            Sll => rt << (i.imm as u32 & 31),
            Srl => rt >> (i.imm as u32 & 31),
            Sra => ((rt as i32) >> (i.imm as u32 & 31)) as u32,
            Sllv => rt << (rs & 31),
            Srlv => rt >> (rs & 31),
            Srav => ((rt as i32) >> (rs & 31)) as u32,
            // `add`/`addi` are modelled without overflow traps (their
            // wrapping behaviour matches `addu`/`addiu`).
            Add | Addu => rs.wrapping_add(rt),
            Sub | Subu => rs.wrapping_sub(rt),
            And => rs & rt,
            Or => rs | rt,
            Xor => rs ^ rt,
            Nor => !(rs | rt),
            Slt => u32::from((rs as i32) < (rt as i32)),
            Sltu => u32::from(rs < rt),
            Addi | Addiu => rs.wrapping_add(i.imm as u32),
            Slti => u32::from((rs as i32) < i.imm),
            Sltiu => u32::from(rs < i.imm as u32),
            Andi => rs & (i.imm as u32 & 0xffff),
            Ori => rs | (i.imm as u32 & 0xffff),
            Xori => rs ^ (i.imm as u32 & 0xffff),
            Lui => (i.imm as u32 & 0xffff) << 16,
            _ => unreachable!("{:?} is not an ALU op", i.op),
        }
    }

    fn load(&mut self, pc: u32, op: Op, addr: u32) -> Result<u32, ExecError> {
        use Op::*;
        Ok(match op {
            Lb => self.mem.read_u8(addr) as i8 as i32 as u32,
            Lbu => self.mem.read_u8(addr) as u32,
            Lh => {
                self.check_align(pc, addr, 2)?;
                self.mem.read_u16(addr) as i16 as i32 as u32
            }
            Lhu => {
                self.check_align(pc, addr, 2)?;
                self.mem.read_u16(addr) as u32
            }
            Lw => {
                self.check_align(pc, addr, 4)?;
                self.mem.read_u32(addr)
            }
            _ => unreachable!(),
        })
    }

    fn store(&mut self, pc: u32, op: Op, addr: u32, v: u32) -> Result<(), ExecError> {
        use Op::*;
        match op {
            Sb => self.mem.write_u8(addr, v as u8),
            Sh => {
                self.check_align(pc, addr, 2)?;
                self.mem.write_u16(addr, v as u16)
            }
            Sw => {
                self.check_align(pc, addr, 4)?;
                self.mem.write_u32(addr, v)
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    fn check_align(&self, pc: u32, addr: u32, width: u32) -> Result<(), ExecError> {
        if !addr.is_multiple_of(width) {
            Err(ExecError::Unaligned { pc, addr, width })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_asm::assemble;

    fn run(src: &str) -> FuncCore<'_> {
        // Leak the program so the core can borrow it in tests.
        let p = Box::leak(Box::new(assemble(src).unwrap()));
        let fusion = Box::leak(Box::new(FusionMap::new()));
        let mut core = FuncCore::new(p, fusion);
        let mut steps = 0;
        while !core.finished() {
            core.step().unwrap();
            steps += 1;
            assert!(steps < 1_000_000, "runaway test program");
        }
        core
    }

    #[test]
    fn arithmetic_and_exit() {
        let c = run("
main:
    li   $t0, 6
    li   $t1, 7
    mult $t0, $t1
    mflo $a0
    li   $v0, 1
    syscall          # print 42
    li   $v0, 10
    syscall
");
        assert_eq!(c.sys.output, "42\n");
        assert_eq!(c.sys.exit_code, Some(42));
    }

    #[test]
    fn loop_sums_correctly() {
        let c = run("
main:
    li   $t0, 10      # n
    li   $t1, 0       # sum
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bgtz $t0, loop
    move $a0, $t1
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
");
        assert_eq!(c.sys.output, "55\n");
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let c = run("
.data
buf: .space 16
.text
main:
    la   $t0, buf
    li   $t1, -2
    sw   $t1, 0($t0)
    lh   $t2, 0($t0)   # low halfword of -2 = 0xfffe → -2
    lbu  $t3, 1($t0)   # 0xff
    addu $a0, $t2, $t3
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
");
        assert_eq!(c.sys.output, format!("{}\n", -2 + 0xff));
    }

    #[test]
    fn shifts_and_compares() {
        let c = run("
main:
    li   $t0, -8
    sra  $t1, $t0, 1    # -4
    srl  $t2, $t0, 28   # 0xf
    slt  $t3, $t0, $zero # 1
    addu $a0, $t1, $t2
    addu $a0, $a0, $t3
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
");
        assert_eq!(c.sys.output, format!("{}\n", -4 + 0xf + 1));
    }

    #[test]
    fn division_semantics() {
        let c = run("
main:
    li  $t0, -7
    li  $t1, 2
    div $t0, $t1
    mflo $t2           # -3 (truncating)
    mfhi $t3           # -1
    addu $a0, $t2, $t3
    li  $v0, 1
    syscall
    li  $v0, 10
    syscall
");
        assert_eq!(c.sys.output, "-4\n");
    }

    #[test]
    fn jal_and_jr_call_return() {
        let c = run("
main:
    li   $a0, 5
    jal  double
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
double:
    addu $a0, $a0, $a0
    jr   $ra
");
        assert_eq!(c.sys.output, "10\n");
    }

    #[test]
    fn zero_register_is_immutable() {
        let c = run("
main:
    addiu $zero, $zero, 5
    move  $a0, $zero
    li    $v0, 1
    syscall
    li    $v0, 10
    syscall
");
        assert_eq!(c.sys.output, "0\n");
    }

    #[test]
    fn fused_site_produces_identical_architecture_state() {
        let src = "
main:
    li   $t0, 0x123
    li   $t1, 0x456
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t2, $t2, $t0
    move $a0, $t2
    li   $v0, 30
    syscall            # checksum
    li   $v0, 10
    syscall
";
        let p = assemble(src).unwrap();
        let base = FusionMap::new();
        let mut plain = FuncCore::new(&p, &base);
        while !plain.finished() {
            plain.step().unwrap();
        }

        // Fuse the three ALU ops (sll/addu/xor) at main+8(li is 1 word each).
        let start = p.text_base + 8;
        let mut fused = FusionMap::new();
        let skeleton: Vec<Instr> = (0..3).map(|k| p.instr_at(start + 4 * k).unwrap()).collect();
        fused.define(t1000_isa::ConfDef {
            conf: 0,
            skeleton,
            base_cycles: 3,
            pfu_latency: 1,
        });
        fused.add_site(t1000_isa::FusedSite {
            pc: start,
            len: 3,
            conf: 0,
            inputs: vec![Reg::parse("t0").unwrap(), Reg::parse("t1").unwrap()],
            output: Reg::parse("t2").unwrap(),
        });
        let mut core = FuncCore::new(&p, &fused);
        let mut dyn_count = 0;
        let mut saw_pfu = false;
        while !core.finished() {
            let rec = core.step().unwrap().unwrap();
            if rec.class == OpClass::Pfu {
                saw_pfu = true;
                assert_eq!(rec.fused_len, 3);
                assert_eq!(rec.conf, Some(0));
            }
            dyn_count += 1;
        }
        assert!(saw_pfu);
        assert_eq!(
            core.sys.checksum, plain.sys.checksum,
            "fusion must not change results"
        );
        assert_eq!(core.icount, plain.icount, "base icount is fusion-invariant");
        assert_eq!(dyn_count, plain.icount - 2, "three ops became one slot");
    }

    #[test]
    fn pc_escape_is_reported() {
        let p = assemble("main: nop\n").unwrap();
        let fusion = FusionMap::new();
        let mut c = FuncCore::new(&p, &fusion);
        c.step().unwrap();
        assert!(matches!(c.step_one(), Err(ExecError::PcOutOfRange(_))));
    }

    #[test]
    fn misaligned_word_access_is_reported() {
        let p = assemble("main: li $t0, 2\n lw $t1, 0($t0)\n").unwrap();
        let fusion = FusionMap::new();
        let mut c = FuncCore::new(&p, &fusion);
        c.step().unwrap(); // li
        let e = c.step_one().unwrap_err();
        assert!(matches!(e, ExecError::Unaligned { width: 4, .. }));
    }
}
