//! One-call simulation entry points combining the functional core and the
//! timing model.

use crate::config::CpuConfig;
use crate::func::{ExecError, FuncCore};
use crate::observe::{NullSink, TraceSink};
use crate::ooo::{OooCore, TimingStats};
use crate::syscall::SyscallState;
use t1000_isa::{FusionMap, Program};

/// The complete result of simulating one program on one machine
/// configuration.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Timing statistics (cycles, IPC, PFU and cache behaviour).
    pub timing: TimingStats,
    /// Architectural side effects (output, checksum, exit code).
    pub sys: SyscallState,
}

impl RunResult {
    /// Execution-time speedup of this run relative to `baseline`
    /// (>1 = faster), the metric of the paper's Figures 2 and 6.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.timing.cycles as f64 / self.timing.cycles as f64
    }
}

/// Simulates `program` (with extended instructions per `fusion`) on the
/// machine described by `cfg`, running it to completion.
pub fn simulate(
    program: &Program,
    fusion: &FusionMap,
    cfg: CpuConfig,
) -> Result<RunResult, ExecError> {
    simulate_with(program, fusion, cfg, &mut NullSink)
}

/// Like [`simulate`], but reporting cycle attribution and pipeline events
/// to `sink` (see [`crate::observe`]). Pass an
/// [`AttrCollector`](crate::observe::AttrCollector) to learn where the
/// cycles went:
///
/// ```
/// use t1000_cpu::{simulate_with, AttrCollector, CpuConfig};
/// use t1000_isa::FusionMap;
///
/// let program = t1000_asm::assemble("
/// main:
///     li $t0, 100
/// loop:
///     addu $t1, $t1, $t0
///     addiu $t0, $t0, -1
///     bgtz $t0, loop
///     li $v0, 10
///     syscall
/// ").unwrap();
/// let mut sink = AttrCollector::new();
/// let run = simulate_with(&program, &FusionMap::new(), CpuConfig::baseline(), &mut sink).unwrap();
/// let attr = &sink.attr;
/// assert_eq!(attr.total_cycles, run.timing.cycles);
/// assert!(attr.checks_out()); // busy + Σ stalls == total, always
/// ```
pub fn simulate_with<S: TraceSink>(
    program: &Program,
    fusion: &FusionMap,
    cfg: CpuConfig,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    simulate_with_faults(program, fusion, cfg, &[], sink)
}

/// Like [`simulate_with`], but with the PFU configurations in
/// `faulted_confs` injected to fail their loads. Every fused-site visit
/// using a faulted configuration gracefully degrades: the original scalar
/// sequence executes instead (paying its true multi-instruction latency),
/// and the visit is counted in [`crate::pfu::PfuStats::load_faults`].
/// Architectural
/// results are bit-identical to the fused path by construction — an
/// extended instruction is semantically equal to the sequence it replaced.
pub fn simulate_with_faults<S: TraceSink>(
    program: &Program,
    fusion: &FusionMap,
    cfg: CpuConfig,
    faulted_confs: &[u16],
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    let mut func = FuncCore::new(program, fusion);
    func.inject_conf_faults(faulted_confs.iter().copied());
    let limit = cfg.max_instructions;
    let mut ooo = OooCore::new(cfg);
    // Per-configuration stream sizes (recorded by the selector from the
    // hardware-cost model) feed the reload-traffic counter always, and
    // the reload latencies when stream compression is enabled.
    if let Some(max_conf) = fusion.defs().map(|d| d.conf).max() {
        let mut words = vec![0u32; max_conf as usize + 1];
        for d in fusion.defs() {
            if let Some(w) = fusion.stream_words(d.conf) {
                words[d.conf as usize] = w;
            }
        }
        let load_cycles = (cfg.conf_compress > 0.0).then(|| {
            words
                .iter()
                .map(|&w| {
                    // Configurations with no recorded stream size keep
                    // the flat latency.
                    if w == 0 {
                        cfg.reconfig_cycles
                    } else {
                        crate::pfu::compressed_reload_cycles(w, cfg.conf_compress)
                    }
                })
                .collect()
        });
        ooo.set_conf_tables(words, load_cycles);
    }
    let mut timing = ooo.run_with(
        || {
            if limit != 0 && func.icount >= limit {
                return Err(ExecError::InstrLimit(limit));
            }
            func.step()
        },
        sink,
    )?;
    timing.pfu.load_faults = func.conf_fault_fallbacks;
    Ok(RunResult {
        timing,
        sys: func.sys,
    })
}

/// Functionally executes `program` without timing (fast path for
/// profiling, differential tests and checksum oracles).
pub fn execute(
    program: &Program,
    fusion: &FusionMap,
    max_instructions: u64,
) -> Result<(SyscallState, u64), ExecError> {
    let mut func = FuncCore::new(program, fusion);
    while !func.finished() {
        if max_instructions != 0 && func.icount >= max_instructions {
            return Err(ExecError::InstrLimit(max_instructions));
        }
        func.step()?;
    }
    Ok((func.sys, func.icount))
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_asm::assemble;

    #[test]
    fn simulate_and_execute_agree_on_architecture() {
        let p = assemble(
            "
main:
    li   $t0, 25
    li   $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bgtz $t0, loop
    move $a0, $t1
    li   $v0, 30
    syscall
    li   $v0, 10
    syscall
",
        )
        .unwrap();
        let fusion = FusionMap::new();
        let timed = simulate(&p, &fusion, CpuConfig::baseline()).unwrap();
        let (sys, icount) = execute(&p, &fusion, 0).unwrap();
        assert_eq!(timed.sys, sys);
        assert_eq!(timed.timing.base_instructions, icount);
        assert!(timed.timing.cycles > 0);
    }

    #[test]
    fn instruction_limit_aborts_infinite_loops() {
        let p = assemble("main: j main\n").unwrap();
        let fusion = FusionMap::new();
        let mut cfg = CpuConfig::baseline();
        cfg.max_instructions = 10_000;
        assert!(matches!(
            simulate(&p, &fusion, cfg),
            Err(ExecError::InstrLimit(10_000))
        ));
        assert!(execute(&p, &fusion, 5_000).is_err());
    }

    #[test]
    fn cycle_fuel_aborts_divergent_runs() {
        let p = assemble("main: j main\n").unwrap();
        let fusion = FusionMap::new();
        let mut cfg = CpuConfig::baseline();
        cfg.max_cycles = 1_000;
        assert!(matches!(
            simulate(&p, &fusion, cfg),
            Err(ExecError::CycleLimit(1_000))
        ));
        // A terminating program well under the budget is unaffected.
        let q = assemble("main:\n li $v0, 10\n syscall\n").unwrap();
        let mut roomy = CpuConfig::baseline();
        roomy.max_cycles = 1_000_000;
        let fueled = simulate(&q, &fusion, roomy).unwrap();
        let free = simulate(&q, &fusion, CpuConfig::baseline()).unwrap();
        assert_eq!(fueled.timing.cycles, free.timing.cycles);
    }

    #[test]
    fn speedup_metric_is_ratio_of_cycles() {
        let p = assemble("main:\n li $v0, 10\n syscall\n").unwrap();
        let fusion = FusionMap::new();
        let a = simulate(&p, &fusion, CpuConfig::baseline()).unwrap();
        let b = a.clone();
        assert!((a.speedup_over(&b) - 1.0).abs() < 1e-12);
    }
}
