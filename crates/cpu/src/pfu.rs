//! Programmable-functional-unit state for the timing model.
//!
//! Each PFU holds one configuration, identified by the `Conf` tag of the
//! extended instruction that loaded it (paper §2.2). At decode the tag is
//! compared against the resident configurations: a hit dispatches normally;
//! a miss selects a victim PFU by LRU and starts a configuration load.
//! While loading, the PFU can execute nothing.
//!
//! ## Config planes
//!
//! On the paper's machine every load blocks for a flat `reconfig_cycles`.
//! This module generalises that scalar into a *config-plane model*
//! (LUTstructions-style reconfiguration hiding):
//!
//! * **Double-buffered planes** (`planes >= 2`): each PFU gains a shadow
//!   configuration plane. A miss starts the load into the shadow plane
//!   while the active plane keeps executing its current configuration;
//!   the planes swap when the load lands (see [`PfuArray::set_planes`]).
//! * **Next-config prefetch** ([`PfuArray::prefetch`]): the core may start
//!   loads for upcoming `Conf` tags it sees in the fetch queue, so the
//!   reload cost overlaps useful execution. Cycles of a prefetched load
//!   that overlapped execution are counted as *hidden*, the remainder the
//!   demand had to wait for as *exposed* (see [`PfuStats`]).
//! * **Per-configuration load latency** ([`PfuArray::set_load_cycles`]):
//!   the latency of each load can be derived from the configuration's
//!   compressed stream size (words) instead of the global scalar; see
//!   [`compressed_reload_cycles`].
//!
//! With the default knobs (`planes == 1`, no prefetch, no latency table)
//! the arithmetic below is bit-identical to the original flat model.

use crate::config::PfuCount;
use t1000_isa::ConfId;

/// Configuration replacement policy across PFUs. The paper uses LRU
/// (§2.2); FIFO and random are provided for the replacement-policy
/// ablation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PfuReplacement {
    /// Least-recently-used configuration is evicted (the paper's policy).
    #[default]
    Lru,
    /// Oldest-loaded configuration is evicted.
    Fifo,
    /// A pseudo-random (deterministic xorshift) victim is evicted.
    Random,
}

/// Statistics about PFU usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PfuStats {
    /// Extended instructions executed.
    pub ext_executed: u64,
    /// Configuration loads performed, prefetches included (the thrashing
    /// metric).
    pub reconfigurations: u64,
    /// Tag-check hits (configuration already resident or in flight).
    pub conf_hits: u64,
    /// Configuration loads that failed (fault injection): each such site
    /// visit fell back to the scalar sequence instead of the fused form.
    /// Zero on a healthy machine.
    pub load_faults: u64,
    /// Demands whose configuration a prefetch had already loaded (or was
    /// still loading) — each saved part or all of a blocking reload.
    pub prefetch_hits: u64,
    /// Reload cycles that overlapped execution instead of blocking a
    /// demand: the portion of each prefetched load that had already
    /// elapsed when its configuration was first demanded. Only loads that
    /// served a demand are counted; abandoned prefetches contribute
    /// nothing.
    pub hidden_reload_cycles: u64,
    /// Reload cycles a demand actually waited for: the full latency of
    /// every demand-initiated load plus the not-yet-elapsed remainder of
    /// prefetched loads demanded mid-flight.
    pub exposed_reload_cycles: u64,
    /// Configuration-stream words transferred by all loads (prefetches
    /// included), from the per-configuration stream-size table. Zero when
    /// no table is installed.
    pub stream_words: u64,
}

/// A configuration load in flight on a PFU's shadow plane
/// (`planes >= 2` only). The active plane keeps executing until the load
/// lands and the planes swap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ShadowLoad {
    conf: ConfId,
    /// Cycle the load started.
    started_at: u64,
    /// Cycle the load lands (planes swap at or after this).
    ready_at: u64,
    /// Whether a prefetch (not a demand) started the load — decides the
    /// hidden/exposed split when the configuration is demanded.
    prefetched: bool,
}

#[derive(Clone, Copy, Debug)]
struct PfuSlot {
    conf: Option<ConfId>,
    /// Cycle at which the configuration (re)load completes.
    ready_at: u64,
    /// Cycle at which the configuration was loaded (FIFO key).
    loaded_at: u64,
    /// Cycle of the most recent use (LRU key).
    last_use: u64,
    /// In-flight background load on the shadow plane (`planes >= 2`).
    shadow: Option<ShadowLoad>,
    /// The active configuration was loaded by a prefetch and has not been
    /// demanded yet (prefetch-hit accounting on first demand).
    prefetched: bool,
}

/// The array of PFUs.
#[derive(Clone)]
pub struct PfuArray {
    slots: Vec<PfuSlot>,
    unlimited: bool,
    reconfig_cycles: u32,
    /// Configuration planes per PFU: 1 = the paper's blocking model,
    /// 2 = double-buffered (shadow plane loads in the background).
    planes: u32,
    replacement: PfuReplacement,
    rng: u64,
    stats: PfuStats,
    /// Resident set for unlimited mode (every conf loads exactly once).
    resident: std::collections::HashSet<ConfId>,
    /// Per-configuration load latencies (indexed by `ConfId`); confs
    /// beyond the table fall back to the flat `reconfig_cycles`.
    load_cycles: Vec<u32>,
    /// Per-configuration stream sizes in words (indexed by `ConfId`),
    /// feeding [`PfuStats::stream_words`]; missing entries count zero.
    words: Vec<u32>,
    /// Unlimited-mode prefetches in flight: conf → (started_at, ready_at).
    pending: std::collections::HashMap<ConfId, (u64, u64)>,
}

/// Outcome of requesting a configuration at dispatch time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PfuRequest {
    /// Configuration resident; the instruction may issue when its operands
    /// are ready (at or after the returned cycle, which accounts for an
    /// in-flight load of the same configuration).
    Ready { at: u64 },
    /// No PFU exists on this machine (baseline superscalar).
    NoPfu,
}

/// Like [`PfuRequest`], but distinguishing hits from configuration loads
/// and naming the evicted configuration — the detail the event trace
/// reports. [`PfuArray::request`] is the collapsed view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PfuOutcome {
    /// Tag check hit; execution may begin at `at` (later than "now" only
    /// while the same configuration's load is still in flight).
    Hit { at: u64 },
    /// Tag check missed: a configuration load starts now and completes at
    /// `at`, displacing `evicted` (if the victim PFU held one). With
    /// double-buffered planes the displaced configuration stays usable
    /// until the load lands.
    Load { at: u64, evicted: Option<ConfId> },
    /// No PFU exists on this machine (baseline superscalar).
    NoPfu,
}

/// Cycles to transfer a `words`-word configuration stream compressed by
/// `ratio` (0 < ratio ≤ 1, smaller = better compression) at one word per
/// cycle — the per-configuration reload latency under `--conf-compress`.
/// Always at least one cycle.
pub fn compressed_reload_cycles(words: u32, ratio: f64) -> u32 {
    ((words as f64 * ratio).ceil() as u32).max(1)
}

impl PfuArray {
    /// Builds the array with LRU replacement (the paper's policy).
    /// `PfuCount::Fixed(0)` models the baseline machine.
    pub fn new(count: PfuCount, reconfig_cycles: u32) -> PfuArray {
        PfuArray::with_replacement(count, reconfig_cycles, PfuReplacement::Lru)
    }

    /// Builds the array with an explicit replacement policy.
    pub fn with_replacement(
        count: PfuCount,
        reconfig_cycles: u32,
        replacement: PfuReplacement,
    ) -> PfuArray {
        let (n, unlimited) = match count {
            PfuCount::Fixed(n) => (n, false),
            PfuCount::Unlimited => (0, true),
        };
        PfuArray {
            slots: vec![
                PfuSlot {
                    conf: None,
                    ready_at: 0,
                    loaded_at: 0,
                    last_use: 0,
                    shadow: None,
                    prefetched: false,
                };
                n
            ],
            unlimited,
            reconfig_cycles,
            planes: 1,
            replacement,
            rng: 0x0123_4567_89ab_cdef,
            stats: PfuStats::default(),
            resident: std::collections::HashSet::new(),
            load_cycles: Vec::new(),
            words: Vec::new(),
            pending: std::collections::HashMap::new(),
        }
    }

    /// Sets the number of configuration planes per PFU (clamped to at
    /// least 1). Two planes double-buffer loads: the active configuration
    /// keeps executing while the shadow plane loads.
    pub fn set_planes(&mut self, planes: u32) {
        self.planes = planes.max(1);
    }

    /// Installs per-configuration load latencies (indexed by `ConfId`).
    /// Configurations beyond the table keep the flat `reconfig_cycles`.
    pub fn set_load_cycles(&mut self, table: Vec<u32>) {
        self.load_cycles = table;
    }

    /// Installs per-configuration stream sizes in words (indexed by
    /// `ConfId`), feeding the [`PfuStats::stream_words`] counter.
    pub fn set_stream_words(&mut self, table: Vec<u32>) {
        self.words = table;
    }

    fn latency_of(&self, conf: ConfId) -> u64 {
        self.load_cycles
            .get(conf as usize)
            .copied()
            .unwrap_or(self.reconfig_cycles) as u64
    }

    fn words_of(&self, conf: ConfId) -> u64 {
        self.words.get(conf as usize).copied().unwrap_or(0) as u64
    }

    /// Picks an eviction victim among `cands` (slot indices) by the
    /// configured policy. With all slots as candidates this is exactly
    /// the original flat-model selection.
    fn pick_victim(&mut self, cands: &[usize]) -> usize {
        match self.replacement {
            PfuReplacement::Lru => cands
                .iter()
                .copied()
                .min_by_key(|&i| self.slots[i].last_use.max(self.slots[i].ready_at))
                .unwrap_or(0),
            PfuReplacement::Fifo => cands
                .iter()
                .copied()
                .min_by_key(|&i| self.slots[i].loaded_at)
                .unwrap_or(0),
            PfuReplacement::Random => {
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                let pick =
                    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % cands.len().max(1) as u64) as usize;
                cands.get(pick).copied().unwrap_or(0)
            }
        }
    }

    /// Swaps every landed shadow load into its active plane
    /// (`planes >= 2`). The displaced configuration is evicted here — it
    /// stayed usable for the whole load.
    fn settle(&mut self, now: u64) {
        for s in &mut self.slots {
            if let Some(sh) = s.shadow {
                if sh.ready_at <= now {
                    s.shadow = None;
                    s.conf = Some(sh.conf);
                    s.ready_at = sh.ready_at;
                    s.loaded_at = sh.started_at;
                    s.last_use = sh.ready_at;
                    s.prefetched = sh.prefetched;
                }
            }
        }
    }

    /// Begins loading `conf` in the background if it is absent and a
    /// plane is free, returning the completion cycle when a load started.
    /// Driven by upcoming `Conf` tags in the fetch queue
    /// (`--pfu-prefetch N`). With a single plane a prefetch may only fill
    /// an empty PFU; with double-buffered planes it loads into a free
    /// shadow plane, picking the victim the demand path would pick.
    pub fn prefetch(&mut self, conf: ConfId, now: u64) -> Option<u64> {
        if self.unlimited {
            if self.resident.contains(&conf) || self.pending.contains_key(&conf) {
                return None;
            }
            let lat = self.latency_of(conf);
            self.stats.reconfigurations += 1;
            self.stats.stream_words += self.words_of(conf);
            self.pending.insert(conf, (now, now + lat));
            return Some(now + lat);
        }
        if self.slots.is_empty() {
            return None;
        }
        if self.planes >= 2 {
            self.settle(now);
        }
        let in_flight = |s: &PfuSlot| s.shadow.is_some_and(|sh| sh.conf == conf);
        if self
            .slots
            .iter()
            .any(|s| s.conf == Some(conf) || in_flight(s))
        {
            return None;
        }
        let lat = self.latency_of(conf);
        if self.planes >= 2 {
            let free: Vec<usize> = (0..self.slots.len())
                .filter(|&i| self.slots[i].shadow.is_none())
                .collect();
            if free.is_empty() {
                return None; // every shadow plane is already loading
            }
            let idx = free
                .iter()
                .copied()
                .find(|&i| self.slots[i].conf.is_none())
                .unwrap_or_else(|| self.pick_victim(&free));
            self.stats.reconfigurations += 1;
            self.stats.stream_words += self.words_of(conf);
            self.slots[idx].shadow = Some(ShadowLoad {
                conf,
                started_at: now,
                ready_at: now + lat,
                prefetched: true,
            });
            Some(now + lat)
        } else {
            let idx = (0..self.slots.len()).find(|&i| self.slots[i].conf.is_none())?;
            self.stats.reconfigurations += 1;
            self.stats.stream_words += self.words_of(conf);
            let slot = &mut self.slots[idx];
            slot.conf = Some(conf);
            slot.ready_at = now + lat;
            slot.loaded_at = now;
            slot.last_use = now;
            slot.prefetched = true;
            Some(now + lat)
        }
    }

    /// Requests configuration `conf` at cycle `now`, loading it if absent.
    /// Returns the earliest cycle at which an extended instruction using it
    /// may begin execution.
    pub fn request(&mut self, conf: ConfId, now: u64) -> PfuRequest {
        match self.request_outcome(conf, now) {
            PfuOutcome::Hit { at } | PfuOutcome::Load { at, .. } => PfuRequest::Ready { at },
            PfuOutcome::NoPfu => PfuRequest::NoPfu,
        }
    }

    /// [`PfuArray::request`] with the hit/load distinction and eviction
    /// victim preserved, for event tracing.
    pub fn request_outcome(&mut self, conf: ConfId, now: u64) -> PfuOutcome {
        self.stats.ext_executed += 1;
        if self.unlimited {
            // Every configuration gets its own PFU; first use still pays
            // the (possibly zero) load, subsequent uses always hit. A
            // prefetch already in flight turns the first use into a hit
            // that waits out the load's remainder.
            if let Some((started_at, ready_at)) = self.pending.remove(&conf) {
                self.resident.insert(conf);
                self.stats.conf_hits += 1;
                self.stats.prefetch_hits += 1;
                let total = ready_at - started_at;
                let exposed = ready_at.saturating_sub(now).min(total);
                self.stats.hidden_reload_cycles += total - exposed;
                self.stats.exposed_reload_cycles += exposed;
                return PfuOutcome::Hit {
                    at: ready_at.max(now),
                };
            }
            if self.resident.insert(conf) {
                self.stats.reconfigurations += 1;
                let lat = self.latency_of(conf);
                self.stats.stream_words += self.words_of(conf);
                self.stats.exposed_reload_cycles += lat;
                return PfuOutcome::Load {
                    at: now + lat,
                    evicted: None,
                };
            }
            self.stats.conf_hits += 1;
            return PfuOutcome::Hit { at: now };
        }
        if self.slots.is_empty() {
            return PfuOutcome::NoPfu;
        }
        if self.planes >= 2 {
            self.settle(now);
        }
        if let Some(slot) = self.slots.iter_mut().find(|s| s.conf == Some(conf)) {
            self.stats.conf_hits += 1;
            if slot.prefetched {
                // First demand of a prefetched configuration: split its
                // load into the part that overlapped execution (hidden)
                // and the remainder this demand waits for (exposed).
                slot.prefetched = false;
                let total = slot.ready_at - slot.loaded_at;
                let exposed = slot.ready_at.saturating_sub(now).min(total);
                self.stats.prefetch_hits += 1;
                self.stats.hidden_reload_cycles += total - exposed;
                self.stats.exposed_reload_cycles += exposed;
            }
            slot.last_use = now.max(slot.last_use);
            return PfuOutcome::Hit {
                at: slot.ready_at.max(now),
            };
        }
        // Shadow plane already loading this configuration? Swap it in
        // early: the demand waits only for the load's remainder.
        if self.planes >= 2 {
            let mut found = None;
            for (i, s) in self.slots.iter().enumerate() {
                if let Some(sh) = s.shadow {
                    if sh.conf == conf {
                        found = Some((i, sh));
                        break;
                    }
                }
            }
            if let Some((i, sh)) = found {
                let slot = &mut self.slots[i];
                slot.shadow = None;
                slot.conf = Some(conf);
                slot.ready_at = sh.ready_at;
                slot.loaded_at = sh.started_at;
                slot.last_use = now.max(sh.ready_at);
                slot.prefetched = false;
                self.stats.conf_hits += 1;
                if sh.prefetched {
                    let total = sh.ready_at - sh.started_at;
                    let exposed = sh.ready_at.saturating_sub(now).min(total);
                    self.stats.prefetch_hits += 1;
                    self.stats.hidden_reload_cycles += total - exposed;
                    self.stats.exposed_reload_cycles += exposed;
                }
                return PfuOutcome::Hit {
                    at: sh.ready_at.max(now),
                };
            }
        }
        // Miss: evict a victim, preferring never-used (empty) slots.
        // A slot still loading is not recently used, but evicting it
        // mid-load would lose the in-flight configuration, so `ready_at`
        // counts as a use for the LRU key.
        self.stats.reconfigurations += 1;
        let lat = self.latency_of(conf);
        self.stats.stream_words += self.words_of(conf);
        self.stats.exposed_reload_cycles += lat;
        if self.planes >= 2 {
            // Double-buffered: load into the victim's shadow plane; its
            // active configuration stays usable until the load lands.
            let free: Vec<usize> = (0..self.slots.len())
                .filter(|&i| self.slots[i].shadow.is_none())
                .collect();
            let victim_idx = match free.iter().copied().find(|&i| self.slots[i].conf.is_none()) {
                Some(i) => i,
                None if !free.is_empty() => self.pick_victim(&free),
                // All shadow planes busy: abandon the LRU victim's
                // in-flight load (its words were already counted).
                None => {
                    let all: Vec<usize> = (0..self.slots.len()).collect();
                    self.pick_victim(&all)
                }
            };
            let slot = &mut self.slots[victim_idx];
            let evicted = slot.conf;
            slot.shadow = Some(ShadowLoad {
                conf,
                started_at: now,
                ready_at: now + lat,
                prefetched: false,
            });
            return PfuOutcome::Load {
                at: now + lat,
                evicted,
            };
        }
        let victim_idx = match (0..self.slots.len()).find(|&i| self.slots[i].conf.is_none()) {
            Some(i) => i,
            None => {
                let all: Vec<usize> = (0..self.slots.len()).collect();
                self.pick_victim(&all)
            }
        };
        let victim = &mut self.slots[victim_idx];
        let evicted = victim.conf;
        victim.conf = Some(conf);
        victim.ready_at = now + lat;
        victim.loaded_at = now;
        victim.last_use = now;
        victim.prefetched = false;
        PfuOutcome::Load {
            at: victim.ready_at,
            evicted,
        }
    }

    /// Whether `conf` is currently resident on an active plane
    /// (tag-check without side effects; used by tests and debug dumps).
    pub fn is_resident(&self, conf: ConfId) -> bool {
        if self.unlimited {
            self.resident.contains(&conf)
        } else {
            self.slots.iter().any(|s| s.conf == Some(conf))
        }
    }

    /// Usage statistics.
    pub fn stats(&self) -> PfuStats {
        self.stats
    }

    /// Resets statistics (configuration residency is preserved), matching
    /// [`Cache::reset_stats`](t1000_mem::Cache::reset_stats).
    pub fn reset_stats(&mut self) {
        self.stats = PfuStats::default();
    }

    /// Steady-state equivalence with a snapshot `base` for the hot-loop
    /// replay fast path. The period between `base` and `self` must be
    /// load-free (tag checks all hit, so residency, `rng` and the
    /// reconfiguration count are untouched), and each slot's cycle-domain
    /// timestamps either shifted uniformly by `dc` (slots the period
    /// used) or stayed at a stale value not newer than the snapshot cycle
    /// `stale` (slots it never touched). Any in-flight shadow load or
    /// unlimited-mode pending prefetch blocks convergence — replaying
    /// past a load's landing cycle would miss the plane swap.
    pub(crate) fn steady_eq(&self, base: &PfuArray, dc: u64, stale: u64) -> bool {
        let ts = |t: u64, b: u64| t == b + dc || (t == b && b <= stale);
        self.stats.reconfigurations == base.stats.reconfigurations
            && self.stats.load_faults == base.stats.load_faults
            && self.stats.prefetch_hits == base.stats.prefetch_hits
            && self.stats.hidden_reload_cycles == base.stats.hidden_reload_cycles
            && self.stats.exposed_reload_cycles == base.stats.exposed_reload_cycles
            && self.stats.stream_words == base.stats.stream_words
            && self.rng == base.rng
            && self.pending.is_empty()
            && base.pending.is_empty()
            && self.resident.len() == base.resident.len()
            && self.slots.len() == base.slots.len()
            && self.slots.iter().zip(&base.slots).all(|(s, b)| {
                s.conf == b.conf
                    && s.shadow.is_none()
                    && b.shadow.is_none()
                    && s.prefetched == b.prefetched
                    && (s.ready_at == b.ready_at && b.ready_at <= stale)
                    && (s.loaded_at == b.loaded_at && b.loaded_at <= stale)
                    && ts(s.last_use, b.last_use)
            })
    }

    /// Advances by `iters` repetitions of the load-free period between
    /// `base` and `self` whose cycle span is `dc` and whose snapshot
    /// cycle is `stale` (requires [`PfuArray::steady_eq`]). Bit-identical
    /// to simulating the period's tag-check hits `iters` more times.
    /// The config-plane counters need no scaling: a load-free period
    /// leaves them untouched (enforced by `steady_eq`).
    pub(crate) fn fast_forward(&mut self, base: &PfuArray, iters: u64, dc: u64, stale: u64) {
        let shift = dc * iters;
        for s in &mut self.slots {
            if s.last_use > stale {
                s.last_use += shift;
            }
        }
        self.stats.ext_executed += (self.stats.ext_executed - base.stats.ext_executed) * iters;
        self.stats.conf_hits += (self.stats.conf_hits - base.stats.conf_hits) * iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_machine_rejects_ext_instructions() {
        let mut a = PfuArray::new(PfuCount::Fixed(0), 10);
        assert_eq!(a.request(1, 100), PfuRequest::NoPfu);
    }

    #[test]
    fn first_use_pays_reconfiguration() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        assert_eq!(a.request(1, 100), PfuRequest::Ready { at: 110 });
        assert_eq!(a.request(1, 120), PfuRequest::Ready { at: 120 });
        assert_eq!(a.stats().reconfigurations, 1);
        assert_eq!(a.stats().conf_hits, 1);
    }

    #[test]
    fn in_flight_load_delays_immediate_reuse() {
        let mut a = PfuArray::new(PfuCount::Fixed(1), 10);
        assert_eq!(a.request(1, 100), PfuRequest::Ready { at: 110 });
        // Same conf requested again before the load finishes: waits for it.
        assert_eq!(a.request(1, 105), PfuRequest::Ready { at: 110 });
    }

    #[test]
    fn two_pfus_hold_two_configurations() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.request(1, 0);
        a.request(2, 1);
        assert!(a.is_resident(1));
        assert!(a.is_resident(2));
        // Steady-state alternation: all hits.
        let s0 = a.stats().reconfigurations;
        for t in 10..20 {
            a.request(1 + (t % 2) as u16, t);
        }
        assert_eq!(a.stats().reconfigurations, s0);
    }

    #[test]
    fn three_confs_on_two_pfus_thrash_via_lru() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        let mut now = 0u64;
        let mut reconfs = 0;
        for round in 0..10 {
            for conf in [1u16, 2, 3] {
                let before = a.stats().reconfigurations;
                let PfuRequest::Ready { at } = a.request(conf, now) else {
                    panic!()
                };
                now = at + 1;
                if a.stats().reconfigurations > before {
                    reconfs += 1;
                }
                let _ = round;
            }
        }
        // Round-robin over 3 confs with 2 slots under LRU misses every time.
        assert_eq!(reconfs, 30, "LRU must thrash on cyclic access");
    }

    #[test]
    fn unlimited_mode_loads_each_conf_once() {
        let mut a = PfuArray::new(PfuCount::Unlimited, 10);
        for t in 0..100u64 {
            a.request((t % 7) as u16, t);
        }
        assert_eq!(a.stats().reconfigurations, 7);
        assert_eq!(a.stats().ext_executed, 100);
    }

    #[test]
    fn fifo_evicts_oldest_load_even_if_hot() {
        let mut a = PfuArray::with_replacement(PfuCount::Fixed(2), 0, PfuReplacement::Fifo);
        a.request(1, 0); // loaded first
        a.request(2, 1);
        a.request(1, 2); // conf 1 is hot...
        a.request(1, 3);
        a.request(3, 4); // ...but FIFO still evicts it
        assert!(!a.is_resident(1), "FIFO must evict the oldest load");
        assert!(a.is_resident(2) && a.is_resident(3));
        // Under LRU the same pattern keeps conf 1.
        let mut b = PfuArray::with_replacement(PfuCount::Fixed(2), 0, PfuReplacement::Lru);
        b.request(1, 0);
        b.request(2, 1);
        b.request(1, 2);
        b.request(1, 3);
        b.request(3, 4);
        assert!(b.is_resident(1), "LRU must keep the hot configuration");
        assert!(!b.is_resident(2));
    }

    #[test]
    fn random_replacement_is_deterministic_and_valid() {
        let run = || {
            let mut a = PfuArray::with_replacement(PfuCount::Fixed(2), 0, PfuReplacement::Random);
            let mut trace = Vec::new();
            for t in 0..50u64 {
                a.request((t % 5) as u16, t);
                trace.push((0..5).map(|c| a.is_resident(c)).collect::<Vec<_>>());
            }
            (trace, a.stats())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "same seed, same evictions");
        assert_eq!(s1, s2);
        // Exactly two configurations resident once both slots are filled.
        for snap in &t1[2..] {
            assert_eq!(snap.iter().filter(|&&r| r).count(), 2);
        }
    }

    #[test]
    fn request_outcome_reports_hits_loads_and_victims() {
        let mut a = PfuArray::new(PfuCount::Fixed(1), 10);
        assert_eq!(
            a.request_outcome(1, 0),
            PfuOutcome::Load {
                at: 10,
                evicted: None
            }
        );
        assert_eq!(a.request_outcome(1, 20), PfuOutcome::Hit { at: 20 });
        assert_eq!(
            a.request_outcome(2, 30),
            PfuOutcome::Load {
                at: 40,
                evicted: Some(1)
            }
        );
        let mut none = PfuArray::new(PfuCount::Fixed(0), 10);
        assert_eq!(none.request_outcome(1, 0), PfuOutcome::NoPfu);
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.request(1, 0);
        a.request(1, 20);
        a.reset_stats();
        assert_eq!(a.stats(), PfuStats::default());
        assert!(a.is_resident(1), "residency must survive the reset");
        // Next request is a hit, counted from zero.
        assert_eq!(a.request(1, 30), PfuRequest::Ready { at: 30 });
        assert_eq!(a.stats().conf_hits, 1);
        assert_eq!(a.stats().reconfigurations, 0);
    }

    /// Regression guard for the `request`/`request_outcome` dedup: since
    /// `request` is a thin wrapper collapsing `request_outcome`, driving
    /// two identically-configured arrays through the same hit/miss/evict
    /// sequence via either entry point must agree at every step — same
    /// ready cycles, same residency, same statistics.
    #[test]
    fn request_and_request_outcome_agree_on_hit_miss_evict_sequences() {
        let configs = [
            (PfuCount::Fixed(0), 10, PfuReplacement::Lru),
            (PfuCount::Fixed(1), 10, PfuReplacement::Lru),
            (PfuCount::Fixed(2), 10, PfuReplacement::Lru),
            (PfuCount::Fixed(2), 0, PfuReplacement::Fifo),
            (PfuCount::Fixed(2), 7, PfuReplacement::Random),
            (PfuCount::Unlimited, 10, PfuReplacement::Lru),
        ];
        for (count, reconfig, policy) in configs {
            let mut via_request = PfuArray::with_replacement(count, reconfig, policy);
            let mut via_outcome = PfuArray::with_replacement(count, reconfig, policy);
            let mut now = 0u64;
            // A thrashing sequence over 5 confs: hits, misses and
            // evictions all occur on the 1- and 2-slot arrays.
            for t in 0..60u64 {
                let conf = (t % 5) as ConfId;
                let collapsed = via_request.request(conf, now);
                let detailed = via_outcome.request_outcome(conf, now);
                let expected = match detailed {
                    PfuOutcome::Hit { at } | PfuOutcome::Load { at, .. } => {
                        PfuRequest::Ready { at }
                    }
                    PfuOutcome::NoPfu => PfuRequest::NoPfu,
                };
                assert_eq!(
                    collapsed, expected,
                    "step {t} diverged under {count:?}/{policy:?}"
                );
                for c in 0..5 {
                    assert_eq!(
                        via_request.is_resident(c),
                        via_outcome.is_resident(c),
                        "residency of conf {c} diverged at step {t} under {count:?}/{policy:?}"
                    );
                }
                if let PfuRequest::Ready { at } = collapsed {
                    now = now.max(at) + 1;
                } else {
                    now += 1;
                }
            }
            assert_eq!(
                via_request.stats(),
                via_outcome.stats(),
                "stats diverged under {count:?}/{policy:?}"
            );
        }
    }

    #[test]
    fn lru_prefers_empty_slots() {
        let mut a = PfuArray::new(PfuCount::Fixed(3), 5);
        a.request(1, 0);
        a.request(2, 1);
        a.request(3, 2); // must land in the empty slot, keeping 1 and 2
        assert!(a.is_resident(1) && a.is_resident(2) && a.is_resident(3));
    }

    // ----------------------------------------------------------------
    // Config-plane model
    // ----------------------------------------------------------------

    #[test]
    fn double_buffer_keeps_active_conf_usable_during_load() {
        let mut a = PfuArray::new(PfuCount::Fixed(1), 10);
        a.set_planes(2);
        a.request(1, 0); // shadow load, lands at 10
        a.request(1, 20); // settles the swap; conf 1 active
        assert!(a.is_resident(1));
        // Miss on conf 2: load goes to the shadow plane, conf 1 stays
        // usable until the load lands.
        assert_eq!(
            a.request_outcome(2, 30),
            PfuOutcome::Load {
                at: 40,
                evicted: Some(1)
            }
        );
        assert_eq!(a.request_outcome(1, 35), PfuOutcome::Hit { at: 35 });
        // Once the load lands, the planes swap and conf 1 is gone.
        a.request(2, 50);
        assert!(a.is_resident(2));
        assert!(!a.is_resident(1));
    }

    #[test]
    fn prefetch_hides_the_whole_reload_when_early_enough() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.set_planes(2);
        assert_eq!(a.prefetch(1, 0), Some(10));
        // Demanded after the load landed: a plain hit, fully hidden.
        assert_eq!(a.request_outcome(1, 25), PfuOutcome::Hit { at: 25 });
        let s = a.stats();
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.hidden_reload_cycles, 10);
        assert_eq!(s.exposed_reload_cycles, 0);
        assert_eq!(s.reconfigurations, 1);
    }

    #[test]
    fn prefetch_demanded_mid_flight_splits_hidden_and_exposed() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.set_planes(2);
        assert_eq!(a.prefetch(1, 0), Some(10));
        // Demanded at 4: 4 cycles overlapped, 6 remain exposed.
        assert_eq!(a.request_outcome(1, 4), PfuOutcome::Hit { at: 10 });
        let s = a.stats();
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.hidden_reload_cycles, 4);
        assert_eq!(s.exposed_reload_cycles, 6);
    }

    #[test]
    fn single_plane_prefetch_fills_only_empty_pfus() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.request(1, 0);
        a.request(2, 1);
        // Both PFUs occupied: a single-plane machine cannot prefetch.
        assert_eq!(a.prefetch(3, 5), None);
        let mut b = PfuArray::new(PfuCount::Fixed(2), 10);
        b.request(1, 0);
        assert_eq!(b.prefetch(2, 5), Some(15));
        // Mid-flight demand of the prefetched conf waits out the rest.
        assert_eq!(b.request_outcome(2, 8), PfuOutcome::Hit { at: 15 });
        let s = b.stats();
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.hidden_reload_cycles, 3);
        assert_eq!(s.exposed_reload_cycles, 10 + 7);
    }

    #[test]
    fn prefetch_of_resident_or_in_flight_conf_is_a_no_op() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.set_planes(2);
        a.request(1, 0);
        assert_eq!(a.prefetch(1, 2), None, "already loading");
        a.request(1, 20);
        assert_eq!(a.prefetch(1, 25), None, "already resident");
        assert_eq!(a.stats().reconfigurations, 1);
    }

    #[test]
    fn unlimited_mode_prefetch_loads_once_and_hits_on_demand() {
        let mut a = PfuArray::new(PfuCount::Unlimited, 10);
        assert_eq!(a.prefetch(3, 0), Some(10));
        assert_eq!(a.prefetch(3, 1), None, "pending prefetch deduplicates");
        assert_eq!(a.request_outcome(3, 12), PfuOutcome::Hit { at: 12 });
        assert_eq!(a.request_outcome(3, 13), PfuOutcome::Hit { at: 13 });
        let s = a.stats();
        assert_eq!(s.reconfigurations, 1);
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.hidden_reload_cycles, 10);
    }

    #[test]
    fn per_conf_load_cycles_override_the_flat_scalar() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.set_load_cycles(vec![3, 25]);
        assert_eq!(a.request(0, 0), PfuRequest::Ready { at: 3 });
        assert_eq!(a.request(1, 10), PfuRequest::Ready { at: 35 });
        // Confs beyond the table fall back to the flat reconfig_cycles.
        assert_eq!(a.request(7, 100), PfuRequest::Ready { at: 110 });
        assert_eq!(a.stats().exposed_reload_cycles, 3 + 25 + 10);
    }

    #[test]
    fn stream_words_accumulate_from_the_table() {
        let mut a = PfuArray::new(PfuCount::Fixed(1), 10);
        a.set_stream_words(vec![40, 60]);
        a.request(0, 0);
        a.request(1, 100); // evicts conf 0
        a.request(0, 200); // reloads conf 0
        assert_eq!(a.stats().stream_words, 40 + 60 + 40);
    }

    #[test]
    fn compressed_reload_cycles_rounds_up_and_floors_at_one() {
        assert_eq!(compressed_reload_cycles(100, 0.25), 25);
        assert_eq!(compressed_reload_cycles(10, 0.24), 3);
        assert_eq!(compressed_reload_cycles(10, 1.0), 10);
        assert_eq!(compressed_reload_cycles(0, 0.5), 1);
        assert_eq!(compressed_reload_cycles(1, 0.01), 1);
    }

    /// The config-plane defaults must reproduce the flat model exactly:
    /// an array with `planes == 1`, no prefetch and no latency table is
    /// driven through a thrashing sequence and must agree step-for-step
    /// with the documented flat arithmetic.
    #[test]
    fn default_knobs_reproduce_the_flat_model() {
        for policy in [
            PfuReplacement::Lru,
            PfuReplacement::Fifo,
            PfuReplacement::Random,
        ] {
            let mut a = PfuArray::with_replacement(PfuCount::Fixed(2), 9, policy);
            let mut now = 0u64;
            let mut expect_exposed = 0u64;
            for t in 0..40u64 {
                let conf = (t % 3) as ConfId;
                let before = a.stats().reconfigurations;
                match a.request_outcome(conf, now) {
                    PfuOutcome::Hit { at } => now = at + 1,
                    PfuOutcome::Load { at, .. } => {
                        assert_eq!(at, now + 9, "flat latency under {policy:?}");
                        expect_exposed += 9;
                        now = at + 1;
                    }
                    PfuOutcome::NoPfu => panic!(),
                }
                let _ = before;
            }
            let s = a.stats();
            assert_eq!(s.exposed_reload_cycles, expect_exposed);
            assert_eq!(s.hidden_reload_cycles, 0);
            assert_eq!(s.prefetch_hits, 0);
            assert_eq!(s.stream_words, 0);
        }
    }
}
