//! Programmable-functional-unit state for the timing model.
//!
//! Each PFU holds one configuration, identified by the `Conf` tag of the
//! extended instruction that loaded it (paper §2.2). At decode the tag is
//! compared against the resident configurations: a hit dispatches normally;
//! a miss selects a victim PFU by LRU and starts a configuration load that
//! takes `reconfig_cycles`. While loading, the PFU can execute nothing.

use crate::config::PfuCount;
use t1000_isa::ConfId;

/// Configuration replacement policy across PFUs. The paper uses LRU
/// (§2.2); FIFO and random are provided for the replacement-policy
/// ablation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PfuReplacement {
    /// Least-recently-used configuration is evicted (the paper's policy).
    #[default]
    Lru,
    /// Oldest-loaded configuration is evicted.
    Fifo,
    /// A pseudo-random (deterministic xorshift) victim is evicted.
    Random,
}

/// Statistics about PFU usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PfuStats {
    /// Extended instructions executed.
    pub ext_executed: u64,
    /// Configuration loads performed (the thrashing metric).
    pub reconfigurations: u64,
    /// Tag-check hits (configuration already resident).
    pub conf_hits: u64,
    /// Configuration loads that failed (fault injection): each such site
    /// visit fell back to the scalar sequence instead of the fused form.
    /// Zero on a healthy machine.
    pub load_faults: u64,
}

#[derive(Clone, Copy, Debug)]
struct PfuSlot {
    conf: Option<ConfId>,
    /// Cycle at which the configuration (re)load completes.
    ready_at: u64,
    /// Cycle at which the configuration was loaded (FIFO key).
    loaded_at: u64,
    /// Cycle of the most recent use (LRU key).
    last_use: u64,
}

/// The array of PFUs.
#[derive(Clone)]
pub struct PfuArray {
    slots: Vec<PfuSlot>,
    unlimited: bool,
    reconfig_cycles: u32,
    replacement: PfuReplacement,
    rng: u64,
    stats: PfuStats,
    /// Resident set for unlimited mode (every conf loads exactly once).
    resident: std::collections::HashSet<ConfId>,
}

/// Outcome of requesting a configuration at dispatch time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PfuRequest {
    /// Configuration resident; the instruction may issue when its operands
    /// are ready (at or after the returned cycle, which accounts for an
    /// in-flight load of the same configuration).
    Ready { at: u64 },
    /// No PFU exists on this machine (baseline superscalar).
    NoPfu,
}

/// Like [`PfuRequest`], but distinguishing hits from configuration loads
/// and naming the evicted configuration — the detail the event trace
/// reports. [`PfuArray::request`] is the collapsed view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PfuOutcome {
    /// Tag check hit; execution may begin at `at` (later than "now" only
    /// while the same configuration's load is still in flight).
    Hit { at: u64 },
    /// Tag check missed: a configuration load starts now and completes at
    /// `at`, displacing `evicted` (if the victim PFU held one).
    Load { at: u64, evicted: Option<ConfId> },
    /// No PFU exists on this machine (baseline superscalar).
    NoPfu,
}

impl PfuArray {
    /// Builds the array with LRU replacement (the paper's policy).
    /// `PfuCount::Fixed(0)` models the baseline machine.
    pub fn new(count: PfuCount, reconfig_cycles: u32) -> PfuArray {
        PfuArray::with_replacement(count, reconfig_cycles, PfuReplacement::Lru)
    }

    /// Builds the array with an explicit replacement policy.
    pub fn with_replacement(
        count: PfuCount,
        reconfig_cycles: u32,
        replacement: PfuReplacement,
    ) -> PfuArray {
        let (n, unlimited) = match count {
            PfuCount::Fixed(n) => (n, false),
            PfuCount::Unlimited => (0, true),
        };
        PfuArray {
            slots: vec![
                PfuSlot {
                    conf: None,
                    ready_at: 0,
                    loaded_at: 0,
                    last_use: 0
                };
                n
            ],
            unlimited,
            reconfig_cycles,
            replacement,
            rng: 0x0123_4567_89ab_cdef,
            stats: PfuStats::default(),
            resident: std::collections::HashSet::new(),
        }
    }

    /// Requests configuration `conf` at cycle `now`, loading it if absent.
    /// Returns the earliest cycle at which an extended instruction using it
    /// may begin execution.
    pub fn request(&mut self, conf: ConfId, now: u64) -> PfuRequest {
        match self.request_outcome(conf, now) {
            PfuOutcome::Hit { at } | PfuOutcome::Load { at, .. } => PfuRequest::Ready { at },
            PfuOutcome::NoPfu => PfuRequest::NoPfu,
        }
    }

    /// [`PfuArray::request`] with the hit/load distinction and eviction
    /// victim preserved, for event tracing.
    pub fn request_outcome(&mut self, conf: ConfId, now: u64) -> PfuOutcome {
        self.stats.ext_executed += 1;
        if self.unlimited {
            // Every configuration gets its own PFU; first use still pays
            // the (possibly zero) load, subsequent uses always hit.
            if self.resident.insert(conf) {
                self.stats.reconfigurations += 1;
                return PfuOutcome::Load {
                    at: now + self.reconfig_cycles as u64,
                    evicted: None,
                };
            }
            self.stats.conf_hits += 1;
            return PfuOutcome::Hit { at: now };
        }
        if self.slots.is_empty() {
            return PfuOutcome::NoPfu;
        }
        if let Some(slot) = self.slots.iter_mut().find(|s| s.conf == Some(conf)) {
            self.stats.conf_hits += 1;
            slot.last_use = now.max(slot.last_use);
            return PfuOutcome::Hit {
                at: slot.ready_at.max(now),
            };
        }
        // Miss: evict a victim, preferring never-used (empty) slots.
        // A slot still loading is not recently used, but evicting it
        // mid-load would lose the in-flight configuration, so `ready_at`
        // counts as a use for the LRU key.
        self.stats.reconfigurations += 1;
        let victim_idx = match (0..self.slots.len()).find(|&i| self.slots[i].conf.is_none()) {
            Some(i) => i,
            None => match self.replacement {
                PfuReplacement::Lru => (0..self.slots.len())
                    .min_by_key(|&i| self.slots[i].last_use.max(self.slots[i].ready_at))
                    .unwrap_or(0),
                PfuReplacement::Fifo => (0..self.slots.len())
                    .min_by_key(|&i| self.slots[i].loaded_at)
                    .unwrap_or(0),
                PfuReplacement::Random => {
                    let mut x = self.rng;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    self.rng = x;
                    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % self.slots.len() as u64) as usize
                }
            },
        };
        let victim = &mut self.slots[victim_idx];
        let evicted = victim.conf;
        victim.conf = Some(conf);
        victim.ready_at = now + self.reconfig_cycles as u64;
        victim.loaded_at = now;
        victim.last_use = now;
        PfuOutcome::Load {
            at: victim.ready_at,
            evicted,
        }
    }

    /// Whether `conf` is currently resident (tag-check without side
    /// effects; used by tests and debug dumps).
    pub fn is_resident(&self, conf: ConfId) -> bool {
        if self.unlimited {
            self.resident.contains(&conf)
        } else {
            self.slots.iter().any(|s| s.conf == Some(conf))
        }
    }

    /// Usage statistics.
    pub fn stats(&self) -> PfuStats {
        self.stats
    }

    /// Resets statistics (configuration residency is preserved), matching
    /// [`Cache::reset_stats`](t1000_mem::Cache::reset_stats).
    pub fn reset_stats(&mut self) {
        self.stats = PfuStats::default();
    }

    /// Steady-state equivalence with a snapshot `base` for the hot-loop
    /// replay fast path. The period between `base` and `self` must be
    /// load-free (tag checks all hit, so residency, `rng` and the
    /// reconfiguration count are untouched), and each slot's cycle-domain
    /// timestamps either shifted uniformly by `dc` (slots the period
    /// used) or stayed at a stale value not newer than the snapshot cycle
    /// `stale` (slots it never touched).
    pub(crate) fn steady_eq(&self, base: &PfuArray, dc: u64, stale: u64) -> bool {
        let ts = |t: u64, b: u64| t == b + dc || (t == b && b <= stale);
        self.stats.reconfigurations == base.stats.reconfigurations
            && self.stats.load_faults == base.stats.load_faults
            && self.rng == base.rng
            && self.resident.len() == base.resident.len()
            && self.slots.len() == base.slots.len()
            && self.slots.iter().zip(&base.slots).all(|(s, b)| {
                s.conf == b.conf
                    && (s.ready_at == b.ready_at && b.ready_at <= stale)
                    && (s.loaded_at == b.loaded_at && b.loaded_at <= stale)
                    && ts(s.last_use, b.last_use)
            })
    }

    /// Advances by `iters` repetitions of the load-free period between
    /// `base` and `self` whose cycle span is `dc` and whose snapshot
    /// cycle is `stale` (requires [`PfuArray::steady_eq`]). Bit-identical
    /// to simulating the period's tag-check hits `iters` more times.
    pub(crate) fn fast_forward(&mut self, base: &PfuArray, iters: u64, dc: u64, stale: u64) {
        let shift = dc * iters;
        for s in &mut self.slots {
            if s.last_use > stale {
                s.last_use += shift;
            }
        }
        self.stats.ext_executed += (self.stats.ext_executed - base.stats.ext_executed) * iters;
        self.stats.conf_hits += (self.stats.conf_hits - base.stats.conf_hits) * iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_machine_rejects_ext_instructions() {
        let mut a = PfuArray::new(PfuCount::Fixed(0), 10);
        assert_eq!(a.request(1, 100), PfuRequest::NoPfu);
    }

    #[test]
    fn first_use_pays_reconfiguration() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        assert_eq!(a.request(1, 100), PfuRequest::Ready { at: 110 });
        assert_eq!(a.request(1, 120), PfuRequest::Ready { at: 120 });
        assert_eq!(a.stats().reconfigurations, 1);
        assert_eq!(a.stats().conf_hits, 1);
    }

    #[test]
    fn in_flight_load_delays_immediate_reuse() {
        let mut a = PfuArray::new(PfuCount::Fixed(1), 10);
        assert_eq!(a.request(1, 100), PfuRequest::Ready { at: 110 });
        // Same conf requested again before the load finishes: waits for it.
        assert_eq!(a.request(1, 105), PfuRequest::Ready { at: 110 });
    }

    #[test]
    fn two_pfus_hold_two_configurations() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.request(1, 0);
        a.request(2, 1);
        assert!(a.is_resident(1));
        assert!(a.is_resident(2));
        // Steady-state alternation: all hits.
        let s0 = a.stats().reconfigurations;
        for t in 10..20 {
            a.request(1 + (t % 2) as u16, t);
        }
        assert_eq!(a.stats().reconfigurations, s0);
    }

    #[test]
    fn three_confs_on_two_pfus_thrash_via_lru() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        let mut now = 0u64;
        let mut reconfs = 0;
        for round in 0..10 {
            for conf in [1u16, 2, 3] {
                let before = a.stats().reconfigurations;
                let PfuRequest::Ready { at } = a.request(conf, now) else {
                    panic!()
                };
                now = at + 1;
                if a.stats().reconfigurations > before {
                    reconfs += 1;
                }
                let _ = round;
            }
        }
        // Round-robin over 3 confs with 2 slots under LRU misses every time.
        assert_eq!(reconfs, 30, "LRU must thrash on cyclic access");
    }

    #[test]
    fn unlimited_mode_loads_each_conf_once() {
        let mut a = PfuArray::new(PfuCount::Unlimited, 10);
        for t in 0..100u64 {
            a.request((t % 7) as u16, t);
        }
        assert_eq!(a.stats().reconfigurations, 7);
        assert_eq!(a.stats().ext_executed, 100);
    }

    #[test]
    fn fifo_evicts_oldest_load_even_if_hot() {
        let mut a = PfuArray::with_replacement(PfuCount::Fixed(2), 0, PfuReplacement::Fifo);
        a.request(1, 0); // loaded first
        a.request(2, 1);
        a.request(1, 2); // conf 1 is hot...
        a.request(1, 3);
        a.request(3, 4); // ...but FIFO still evicts it
        assert!(!a.is_resident(1), "FIFO must evict the oldest load");
        assert!(a.is_resident(2) && a.is_resident(3));
        // Under LRU the same pattern keeps conf 1.
        let mut b = PfuArray::with_replacement(PfuCount::Fixed(2), 0, PfuReplacement::Lru);
        b.request(1, 0);
        b.request(2, 1);
        b.request(1, 2);
        b.request(1, 3);
        b.request(3, 4);
        assert!(b.is_resident(1), "LRU must keep the hot configuration");
        assert!(!b.is_resident(2));
    }

    #[test]
    fn random_replacement_is_deterministic_and_valid() {
        let run = || {
            let mut a = PfuArray::with_replacement(PfuCount::Fixed(2), 0, PfuReplacement::Random);
            let mut trace = Vec::new();
            for t in 0..50u64 {
                a.request((t % 5) as u16, t);
                trace.push((0..5).map(|c| a.is_resident(c)).collect::<Vec<_>>());
            }
            (trace, a.stats())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "same seed, same evictions");
        assert_eq!(s1, s2);
        // Exactly two configurations resident once both slots are filled.
        for snap in &t1[2..] {
            assert_eq!(snap.iter().filter(|&&r| r).count(), 2);
        }
    }

    #[test]
    fn request_outcome_reports_hits_loads_and_victims() {
        let mut a = PfuArray::new(PfuCount::Fixed(1), 10);
        assert_eq!(
            a.request_outcome(1, 0),
            PfuOutcome::Load {
                at: 10,
                evicted: None
            }
        );
        assert_eq!(a.request_outcome(1, 20), PfuOutcome::Hit { at: 20 });
        assert_eq!(
            a.request_outcome(2, 30),
            PfuOutcome::Load {
                at: 40,
                evicted: Some(1)
            }
        );
        let mut none = PfuArray::new(PfuCount::Fixed(0), 10);
        assert_eq!(none.request_outcome(1, 0), PfuOutcome::NoPfu);
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let mut a = PfuArray::new(PfuCount::Fixed(2), 10);
        a.request(1, 0);
        a.request(1, 20);
        a.reset_stats();
        assert_eq!(a.stats(), PfuStats::default());
        assert!(a.is_resident(1), "residency must survive the reset");
        // Next request is a hit, counted from zero.
        assert_eq!(a.request(1, 30), PfuRequest::Ready { at: 30 });
        assert_eq!(a.stats().conf_hits, 1);
        assert_eq!(a.stats().reconfigurations, 0);
    }

    /// Regression guard for the `request`/`request_outcome` dedup: since
    /// `request` is a thin wrapper collapsing `request_outcome`, driving
    /// two identically-configured arrays through the same hit/miss/evict
    /// sequence via either entry point must agree at every step — same
    /// ready cycles, same residency, same statistics.
    #[test]
    fn request_and_request_outcome_agree_on_hit_miss_evict_sequences() {
        let configs = [
            (PfuCount::Fixed(0), 10, PfuReplacement::Lru),
            (PfuCount::Fixed(1), 10, PfuReplacement::Lru),
            (PfuCount::Fixed(2), 10, PfuReplacement::Lru),
            (PfuCount::Fixed(2), 0, PfuReplacement::Fifo),
            (PfuCount::Fixed(2), 7, PfuReplacement::Random),
            (PfuCount::Unlimited, 10, PfuReplacement::Lru),
        ];
        for (count, reconfig, policy) in configs {
            let mut via_request = PfuArray::with_replacement(count, reconfig, policy);
            let mut via_outcome = PfuArray::with_replacement(count, reconfig, policy);
            let mut now = 0u64;
            // A thrashing sequence over 5 confs: hits, misses and
            // evictions all occur on the 1- and 2-slot arrays.
            for t in 0..60u64 {
                let conf = (t % 5) as ConfId;
                let collapsed = via_request.request(conf, now);
                let detailed = via_outcome.request_outcome(conf, now);
                let expected = match detailed {
                    PfuOutcome::Hit { at } | PfuOutcome::Load { at, .. } => {
                        PfuRequest::Ready { at }
                    }
                    PfuOutcome::NoPfu => PfuRequest::NoPfu,
                };
                assert_eq!(
                    collapsed, expected,
                    "step {t} diverged under {count:?}/{policy:?}"
                );
                for c in 0..5 {
                    assert_eq!(
                        via_request.is_resident(c),
                        via_outcome.is_resident(c),
                        "residency of conf {c} diverged at step {t} under {count:?}/{policy:?}"
                    );
                }
                if let PfuRequest::Ready { at } = collapsed {
                    now = now.max(at) + 1;
                } else {
                    now += 1;
                }
            }
            assert_eq!(
                via_request.stats(),
                via_outcome.stats(),
                "stats diverged under {count:?}/{policy:?}"
            );
        }
    }

    #[test]
    fn lru_prefers_empty_slots() {
        let mut a = PfuArray::new(PfuCount::Fixed(3), 5);
        a.request(1, 0);
        a.request(2, 1);
        a.request(3, 2); // must land in the empty slot, keeping 1 and 2
        assert!(a.is_resident(1) && a.is_resident(2) && a.is_resident(3));
    }
}
