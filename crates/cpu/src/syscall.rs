//! System-call interface of the simulated machine.
//!
//! Calling convention: `$v0` selects the service, `$a0` carries the
//! argument. Output is captured into in-memory buffers so tests and the
//! differential harness can assert on it. The `ChecksumUpdate` service
//! folds a word into a running FNV-style accumulator — every workload ends
//! by reporting its architectural checksum through it, which is how we
//! prove that fusing sequences into extended instructions preserves
//! semantics bit-for-bit.

/// Syscall numbers (MIPS-like where applicable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Syscall {
    /// `$v0 = 1`: print `$a0` as a signed decimal integer.
    PrintInt,
    /// `$v0 = 10`: exit with code `$a0`.
    Exit,
    /// `$v0 = 11`: print the low byte of `$a0` as a character.
    PrintChar,
    /// `$v0 = 30`: fold `$a0` into the running checksum.
    ChecksumUpdate,
}

impl Syscall {
    /// Decodes the `$v0` selector.
    pub fn from_code(code: u32) -> Option<Syscall> {
        match code {
            1 => Some(Syscall::PrintInt),
            10 => Some(Syscall::Exit),
            11 => Some(Syscall::PrintChar),
            30 => Some(Syscall::ChecksumUpdate),
            _ => None,
        }
    }
}

/// Captured side effects of a program run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyscallState {
    /// Everything printed by `PrintInt`/`PrintChar`.
    pub output: String,
    /// Running checksum maintained by `ChecksumUpdate`.
    pub checksum: u64,
    /// Exit code, once `Exit` has been called.
    pub exit_code: Option<u32>,
}

impl SyscallState {
    /// Creates a fresh state with the FNV-1a offset basis as the checksum
    /// seed.
    pub fn new() -> SyscallState {
        SyscallState {
            checksum: 0xcbf2_9ce4_8422_2325,
            ..SyscallState::default()
        }
    }

    /// Executes one syscall. Returns `true` when the program has exited.
    pub fn execute(&mut self, code: u32, arg: u32) -> Result<bool, BadSyscall> {
        match Syscall::from_code(code).ok_or(BadSyscall { code })? {
            Syscall::PrintInt => {
                self.output.push_str(&(arg as i32).to_string());
                self.output.push('\n');
            }
            Syscall::PrintChar => self.output.push((arg & 0xff) as u8 as char),
            Syscall::ChecksumUpdate => {
                // FNV-1a over the four little-endian bytes of the argument.
                for b in arg.to_le_bytes() {
                    self.checksum ^= u64::from(b);
                    self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            Syscall::Exit => {
                self.exit_code = Some(arg);
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Error raised on an unknown `$v0` selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BadSyscall {
    pub code: u32,
}

impl std::fmt::Display for BadSyscall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown syscall code {}", self.code)
    }
}

impl std::error::Error for BadSyscall {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_services_append_to_output() {
        let mut s = SyscallState::new();
        assert_eq!(s.execute(1, -5i32 as u32), Ok(false));
        assert_eq!(s.execute(11, b'x' as u32), Ok(false));
        assert_eq!(s.output, "-5\nx");
    }

    #[test]
    fn exit_sets_code_and_stops() {
        let mut s = SyscallState::new();
        assert_eq!(s.execute(10, 3), Ok(true));
        assert_eq!(s.exit_code, Some(3));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = SyscallState::new();
        a.execute(30, 1).unwrap();
        a.execute(30, 2).unwrap();
        let mut b = SyscallState::new();
        b.execute(30, 2).unwrap();
        b.execute(30, 1).unwrap();
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn unknown_codes_are_reported() {
        let mut s = SyscallState::new();
        assert_eq!(s.execute(99, 0), Err(BadSyscall { code: 99 }));
    }
}
