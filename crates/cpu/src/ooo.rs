//! Cycle-level out-of-order timing model.
//!
//! Models the paper's evaluation machine (§2.2, §3.1): a 4-wide
//! fetch/decode/issue/commit superscalar with a Register Update Unit
//! (RUU [Sohi 90]) — a unified reorder buffer that renames registers and
//! holds pending results — plus a load/store queue, realistic caches and
//! TLBs, perfect branch prediction, and the PFU array.
//!
//! The model is trace-driven from the functional core ("execute-at-fetch"):
//! values are already known, so this module only decides *when* things
//! happen. Perfect branch prediction falls out naturally — fetch follows
//! the committed path.
//!
//! Pipeline per cycle (processed in reverse order so a stage sees the
//! previous cycle's downstream state): commit → issue/execute → dispatch
//! (rename + PFU tag check) → fetch.

use crate::branch::{BranchStats, Predictor};
use crate::config::CpuConfig;
use crate::func::{DynInstr, ExecError};
use crate::observe::{CycleClass, NullSink, StallCause, TraceEvent, TraceSink};
use crate::pfu::{PfuArray, PfuOutcome, PfuStats};
use std::collections::VecDeque;
#[cfg(test)]
use t1000_isa::Reg;
use t1000_isa::{ConfId, OpClass};
use t1000_mem::{MemHierarchy, MemStats};

mod fast_path;

pub use fast_path::FastPathStats;

/// Final statistics of a timed run.
#[derive(Clone, Debug)]
pub struct TimingStats {
    /// Total execution time in cycles.
    pub cycles: u64,
    /// Dynamic instruction slots committed (fused sequences count once).
    pub slots: u64,
    /// Base (unfused) instructions represented by those slots.
    pub base_instructions: u64,
    /// Instructions per cycle, counted in *base* instructions so it is
    /// comparable across fusion configurations.
    pub base_ipc: f64,
    /// PFU usage statistics.
    pub pfu: PfuStats,
    /// Memory system statistics.
    pub mem: MemStats,
    /// Cycles fetch was stalled waiting on the I-cache.
    pub fetch_stall_cycles: u64,
    /// Branch prediction statistics.
    pub branch: BranchStats,
    /// Hot-loop replay fast-path counters (all zero when disabled).
    pub fast: FastPathStats,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EntryState {
    /// Dispatched, operands or resources still pending.
    Waiting,
    /// Issued; the result is available (and the entry committable) once
    /// `complete_at` is reached — all latencies are fixed at issue time,
    /// so no separate in-flight state is needed.
    Done,
}

struct RuuEntry {
    rec: DynInstr,
    state: EntryState,
    /// Producer sequence numbers this entry waits on (gpr×2 + HI/LO).
    deps: [Option<u64>; 3],
    /// Earliest cycle the PFU configuration is ready (ext only).
    pfu_ready_at: u64,
    /// Completion cycle (valid once issued).
    complete_at: u64,
    /// Issue cycle (valid once issued).
    issued_at: u64,
    /// Sequence number of the previous memory operation (memory ops issue
    /// in program order relative to each other).
    prev_mem: Option<u64>,
}

/// The out-of-order engine. Feed it dynamic records via [`OooCore::run`].
pub struct OooCore {
    cfg: CpuConfig,
    mem: MemHierarchy,
    pfus: PfuArray,
    predictor: Predictor,
    cycle: u64,
    /// RUU window: entries indexed by `seq - head_seq`.
    window: VecDeque<RuuEntry>,
    head_seq: u64,
    next_seq: u64,
    /// Latest producer seq per architectural register.
    reg_producer: [Option<u64>; 32],
    hilo_producer: Option<u64>,
    /// Seq of the most recently dispatched memory op.
    last_mem_seq: Option<u64>,
    /// Number of load/store entries currently in the window (LSQ occupancy).
    lsq_used: usize,
    /// Fetch queue between the fetcher and dispatch.
    fetch_queue: VecDeque<DynInstr>,
    /// Cycle until which dispatch is stalled on a PFU configuration load
    /// (the paper's decode-stage tag check: a missing configuration must be
    /// loaded "before the extended instruction can be issued", §2.2).
    dispatch_ready_at: u64,
    /// Cycle until which fetch is stalled on an I-cache miss.
    fetch_ready_at: u64,
    /// Why fetch is stalled (attribution only; valid while
    /// `cycle < fetch_ready_at`) and the PC that caused it.
    fetch_stall_cause: StallCause,
    fetch_stall_pc: u32,
    /// Cache line of the most recent instruction fetch.
    last_fetch_line: Option<u32>,
    /// Statistics.
    slots: u64,
    base_instructions: u64,
    fetch_stall_cycles: u64,
    /// Set once the trace source is exhausted.
    drained: bool,
    /// Hot-loop replay fast path (see `ooo/fast_path.rs`).
    fast: fast_path::FastPath,
}

impl OooCore {
    /// Builds a timing core.
    pub fn new(cfg: CpuConfig) -> OooCore {
        let mut pfus =
            PfuArray::with_replacement(cfg.pfus, cfg.reconfig_cycles, cfg.pfu_replacement);
        pfus.set_planes(cfg.pfu_planes);
        OooCore {
            mem: MemHierarchy::new(cfg.mem),
            pfus,
            predictor: Predictor::new(cfg.branch),
            fast: fast_path::FastPath::new(cfg.fast_path),
            cfg,
            cycle: 0,
            window: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            reg_producer: [None; 32],
            hilo_producer: None,
            last_mem_seq: None,
            lsq_used: 0,
            fetch_queue: VecDeque::new(),
            dispatch_ready_at: 0,
            fetch_ready_at: 0,
            fetch_stall_cause: StallCause::FrontendEmpty,
            fetch_stall_pc: 0,
            last_fetch_line: None,
            slots: 0,
            base_instructions: 0,
            fetch_stall_cycles: 0,
            drained: false,
        }
    }

    /// Runs the pipeline to completion over the record stream produced by
    /// `source`. `source` returns `None` when the program has finished.
    ///
    /// The error type must absorb [`ExecError`] so the cycle-fuel
    /// watchdog ([`CpuConfig::max_cycles`]) can abort divergent runs.
    pub fn run<E: From<ExecError>>(
        self,
        source: impl FnMut() -> Result<Option<DynInstr>, E>,
    ) -> Result<TimingStats, E> {
        self.run_with(source, &mut NullSink)
    }

    /// Like [`OooCore::run`], but reporting cycle attribution and
    /// pipeline events to `sink`. Monomorphized per sink type: with
    /// [`NullSink`] every instrumentation branch is compiled out and this
    /// *is* the uninstrumented pipeline.
    pub fn run_with<E: From<ExecError>, S: TraceSink>(
        mut self,
        mut source: impl FnMut() -> Result<Option<DynInstr>, E>,
        sink: &mut S,
    ) -> Result<TimingStats, E> {
        if S::EVENTS {
            // Trace events carry absolute cycle numbers; replayed
            // iterations would have to rewrite them. Event tracing wants
            // every cycle simulated anyway, so the fast path stands down.
            self.fast.enabled = false;
        }
        loop {
            // An iteration boundary (fetch pulled a taken branch last
            // cycle) is handled before anything else, so a converged loop
            // replays from exactly this between-cycles state — and the
            // fuel check below still fires at the precise cycle it would
            // have without the fast path.
            if self.fast.enabled {
                if let Some(pc) = self.fast.pending_boundary.take() {
                    self.fast_boundary::<E, S>(pc, &mut source, sink)?;
                }
            }
            if self.cfg.max_cycles != 0 && self.cycle >= self.cfg.max_cycles {
                // Out of fuel: a workload that has not drained by now is
                // treated as divergent and aborted instead of hanging the
                // caller (the engine maps this to a `Timeout` failure).
                return Err(ExecError::CycleLimit(self.cfg.max_cycles).into());
            }
            let slots_before = self.slots;
            self.commit();
            // Classify eagerly (the pre-issue state is what stalled this
            // cycle) but record only if the loop does not break below, so
            // classified cycles match counted cycles one-for-one.
            let class = if S::ATTR {
                Some(self.classify((self.slots - slots_before) as u32))
            } else {
                None
            };
            self.issue(sink);
            self.dispatch(sink);
            self.fetch(&mut source, sink)?;
            if self.drained && self.window.is_empty() && self.fetch_queue.is_empty() {
                break;
            }
            if let Some(class) = class {
                sink.cycle(class);
                if self.fast.enabled {
                    self.fast.saw_class(class);
                }
            }
            self.cycle += 1;
            debug_assert!(
                self.cycle < (self.base_instructions + 10_000) * 1_000 + 1_000_000,
                "timing model deadlock at cycle {}",
                self.cycle
            );
        }
        let base_ipc = if self.cycle == 0 {
            0.0
        } else {
            self.base_instructions as f64 / self.cycle as f64
        };
        Ok(TimingStats {
            cycles: self.cycle,
            slots: self.slots,
            base_instructions: self.base_instructions,
            base_ipc,
            pfu: self.pfus.stats(),
            mem: self.mem.stats(),
            fetch_stall_cycles: self.fetch_stall_cycles,
            branch: self.predictor.stats(),
            fast: self.fast.stats(),
        })
    }

    fn entry(&self, seq: u64) -> Option<&RuuEntry> {
        self.window.get((seq.checked_sub(self.head_seq)?) as usize)
    }

    /// Commit up to `commit_width` completed entries in order.
    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            match self.window.front() {
                Some(e) if e.state == EntryState::Done && e.complete_at <= self.cycle => {}
                _ => break,
            }
            let Some(e) = self.window.pop_front() else {
                break;
            };
            if e.rec.mem.is_some() {
                self.lsq_used -= 1;
            }
            self.slots += 1;
            self.base_instructions += u64::from(e.rec.fused_len);
            self.head_seq += 1;
        }
    }

    /// Classifies the cycle that just performed `commits` commits. Called
    /// between commit and issue, so "the oldest in-flight instruction"
    /// means the window head as the issue stage is about to see it. Total
    /// order of the cascade is documented on [`StallCause`].
    ///
    /// The busy path is the common case by far and inlines into the main
    /// loop; the stall cascade stays out of line so instrumented builds
    /// keep the hot loop small.
    #[inline]
    fn classify(&self, commits: u32) -> CycleClass {
        if commits > 0 {
            let commit_bound = commits == self.cfg.commit_width
                && matches!(
                    self.window.front(),
                    Some(e) if e.state == EntryState::Done && e.complete_at <= self.cycle
                );
            return CycleClass::Busy {
                commits,
                commit_bound,
            };
        }
        self.classify_stall()
    }

    /// The zero-commit half of [`OooCore::classify`].
    #[cold]
    fn classify_stall(&self) -> CycleClass {
        let Some(head) = self.window.front() else {
            // Empty window: the backend starved. Charge dispatch's
            // configuration-load hold first, then a stalled fetch, then
            // the residual ramp/drain bucket.
            let (cause, pc) = if self.cycle < self.dispatch_ready_at {
                (StallCause::Reconfig, self.fetch_queue.front().map(|r| r.pc))
            } else if self.cycle < self.fetch_ready_at {
                (self.fetch_stall_cause, Some(self.fetch_stall_pc))
            } else {
                (StallCause::FrontendEmpty, None)
            };
            return CycleClass::Stall { cause, pc };
        };
        let pc = Some(head.rec.pc);
        let cause = match head.state {
            EntryState::Waiting => {
                if head.pfu_ready_at > self.cycle {
                    StallCause::Reconfig
                } else if head.deps.iter().flatten().any(|&dep| {
                    matches!(
                        self.entry(dep),
                        Some(p) if p.state == EntryState::Waiting || p.complete_at > self.cycle
                    )
                }) {
                    StallCause::DataDep
                } else {
                    StallCause::FuContention
                }
            }
            // Done with complete_at > cycle, else commit would have
            // retired it.
            EntryState::Done => {
                if head.rec.mem.is_some() {
                    // A memory access blocks the head. Backpressure
                    // outranks the access latency: a full LSQ/window means
                    // dispatch is also blocked behind this op.
                    if self.lsq_used >= self.cfg.lsq_size {
                        StallCause::LsqFull
                    } else if self.window.len() >= self.cfg.ruu_size {
                        StallCause::WindowFull
                    } else {
                        StallCause::MemData
                    }
                } else if self.window.len() > 1
                    && self
                        .window
                        .iter()
                        .skip(1)
                        .all(|e| e.state == EntryState::Waiting)
                {
                    // Everything younger waits on operands while the head
                    // executes: the window is serialized by a dependence
                    // chain, not by the head's latency alone.
                    StallCause::DataDep
                } else {
                    StallCause::ExecLatency
                }
            }
        };
        CycleClass::Stall { cause, pc }
    }

    /// Issue ready entries oldest-first, respecting FU counts.
    fn issue<S: TraceSink>(&mut self, sink: &mut S) {
        let mut issued = 0;
        let mut alu_used = 0;
        let mut mult_used = 0;
        let mut mem_used = 0;
        let mut pfu_used = 0;
        let pfu_ports = self.cfg.pfus.limit().unwrap_or(usize::MAX) as u32;

        for idx in 0..self.window.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let e = &self.window[idx];
            if e.state != EntryState::Waiting {
                continue;
            }
            // Operand readiness: all producers done by now.
            let mut ready = true;
            for dep in e.deps.iter().flatten() {
                // Producer still in the window must have completed; a
                // producer already committed has its value available.
                if let Some(p) = self.entry(*dep) {
                    if p.state == EntryState::Waiting || p.complete_at > self.cycle {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                continue;
            }
            let rec_class = e.rec.class;
            // Structural hazards.
            match rec_class {
                OpClass::IntAlu | OpClass::Ctrl | OpClass::Sys => {
                    if alu_used >= self.cfg.int_alus {
                        continue;
                    }
                }
                OpClass::IntMult => {
                    if mult_used >= self.cfg.mult_units {
                        continue;
                    }
                }
                OpClass::Load | OpClass::Store => {
                    if mem_used >= self.cfg.mem_ports {
                        continue;
                    }
                    // Memory ops begin execution in program order.
                    if let Some(prev) = self.window[idx].prev_mem {
                        match self.entry(prev) {
                            Some(p) if p.state == EntryState::Waiting => continue,
                            Some(p) if p.issued_at > self.cycle => continue,
                            _ => {}
                        }
                    }
                }
                OpClass::Pfu => {
                    if pfu_used >= pfu_ports {
                        continue;
                    }
                    if self.window[idx].pfu_ready_at > self.cycle {
                        continue;
                    }
                }
            }
            // Issue it.
            let latency = match rec_class {
                OpClass::Load | OpClass::Store => {
                    let Some((addr, is_write)) = self.window[idx].rec.mem else {
                        unreachable!("load/store records carry a memory access");
                    };
                    let lat = self.mem.data(addr, is_write);
                    if S::EVENTS && lat > self.cfg.mem.l1_hit {
                        sink.event(TraceEvent::CacheMiss {
                            cycle: self.cycle,
                            addr,
                            fetch: false,
                            write: is_write,
                            latency: lat,
                        });
                    }
                    lat
                }
                _ => self.window[idx].rec.latency,
            };
            let e = &mut self.window[idx];
            e.issued_at = self.cycle;
            e.complete_at = self.cycle + latency as u64;
            // All latencies are fixed at issue time, so the entry goes
            // straight to Done with a future `complete_at`; consumers and
            // the commit stage both gate on that timestamp.
            e.state = EntryState::Done;
            issued += 1;
            match rec_class {
                OpClass::IntAlu | OpClass::Ctrl | OpClass::Sys => alu_used += 1,
                OpClass::IntMult => mult_used += 1,
                OpClass::Load | OpClass::Store => mem_used += 1,
                OpClass::Pfu => pfu_used += 1,
            }
        }
    }

    /// Installs the per-configuration stream-size and (optional) load
    /// latency tables, both indexed by `ConfId` — derived by the machine
    /// layer from the fusion map's hardware-cost data. Must be called
    /// before the run starts.
    pub fn set_conf_tables(&mut self, words: Vec<u32>, load_cycles: Option<Vec<u32>>) {
        self.pfus.set_stream_words(words);
        if let Some(table) = load_cycles {
            self.pfus.set_load_cycles(table);
        }
    }

    /// Next-config prefetch (`--pfu-prefetch N`): scan the fetch queue
    /// for the first N *distinct* upcoming `Conf` tags and start
    /// background loads for any that are absent. Runs even while
    /// dispatch is held on a demand load — overlapping that hold with
    /// the next configuration's transfer is the point.
    fn prefetch_confs<S: TraceSink>(&mut self, sink: &mut S) {
        let depth = self.cfg.pfu_prefetch as usize;
        let mut upcoming: Vec<ConfId> = Vec::with_capacity(depth);
        for rec in &self.fetch_queue {
            if let Some(conf) = rec.conf {
                if !upcoming.contains(&conf) {
                    upcoming.push(conf);
                    if upcoming.len() >= depth {
                        break;
                    }
                }
            }
        }
        for conf in upcoming {
            if let Some(ready_at) = self.pfus.prefetch(conf, self.cycle) {
                if S::EVENTS {
                    sink.event(TraceEvent::ConfPrefetch {
                        cycle: self.cycle,
                        conf,
                        ready_at,
                    });
                }
            }
        }
    }

    /// Move instructions from the fetch queue into the RUU, renaming their
    /// source operands to producer sequence numbers.
    fn dispatch<S: TraceSink>(&mut self, sink: &mut S) {
        if self.cfg.pfu_prefetch > 0 {
            self.prefetch_confs(sink);
        }
        if self.cycle < self.dispatch_ready_at {
            return;
        }
        for _ in 0..self.cfg.dispatch_width {
            let Some(rec) = self.fetch_queue.front() else {
                break;
            };
            if self.window.len() >= self.cfg.ruu_size {
                break;
            }
            if rec.mem.is_some() && self.lsq_used >= self.cfg.lsq_size {
                break;
            }
            // Syscalls serialize: they dispatch into an empty window and
            // nothing dispatches behind them this cycle.
            if rec.class == OpClass::Sys && !self.window.is_empty() {
                break;
            }
            let Some(rec) = self.fetch_queue.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut deps = [None, None, None];
            for (k, r) in rec.gpr_uses.iter().flatten().enumerate() {
                deps[k] = self.reg_producer[r.index()];
            }
            if rec.hilo_use {
                deps[2] = self.hilo_producer;
            }

            // The tag check happens once, here at dispatch (paper §2.2).
            // If later dispatches evict this configuration before the
            // instruction issues, we do not re-charge a reload — a small
            // optimism shared by trace-driven models; the dispatch stall
            // below keeps it rare.
            let pfu_ready_at = if let Some(conf) = rec.conf {
                let outcome = self.pfus.request_outcome(conf, self.cycle);
                if S::EVENTS {
                    match outcome {
                        PfuOutcome::Hit { .. } => sink.event(TraceEvent::ConfHit {
                            cycle: self.cycle,
                            pc: rec.pc,
                            conf,
                        }),
                        PfuOutcome::Load { at, evicted } => sink.event(TraceEvent::ConfLoad {
                            cycle: self.cycle,
                            pc: rec.pc,
                            conf,
                            evicted,
                            ready_at: at,
                        }),
                        PfuOutcome::NoPfu => {}
                    }
                }
                match outcome {
                    PfuOutcome::Hit { at } | PfuOutcome::Load { at, .. } => {
                        if at > self.cycle {
                            // Configuration load in progress: decode holds
                            // younger instructions until it completes.
                            self.dispatch_ready_at = at;
                        }
                        at
                    }
                    PfuOutcome::NoPfu => {
                        panic!("extended instruction reached a machine with no PFUs")
                    }
                }
            } else {
                0
            };

            let prev_mem = if rec.mem.is_some() {
                let p = self.last_mem_seq;
                self.last_mem_seq = Some(seq);
                self.lsq_used += 1;
                p
            } else {
                None
            };

            if let Some(d) = rec.gpr_def {
                self.reg_producer[d.index()] = Some(seq);
            }
            if rec.hilo_def {
                self.hilo_producer = Some(seq);
            }
            let is_sys = rec.class == OpClass::Sys;
            self.window.push_back(RuuEntry {
                rec,
                state: EntryState::Waiting,
                deps,
                pfu_ready_at,
                complete_at: 0,
                issued_at: 0,
                prev_mem,
            });
            if is_sys || self.cycle < self.dispatch_ready_at {
                break;
            }
        }
    }

    /// Fetch up to `fetch_width` records from the trace into the fetch
    /// queue, charging I-cache latency per new cache line.
    fn fetch<E, S: TraceSink>(
        &mut self,
        source: &mut impl FnMut() -> Result<Option<DynInstr>, E>,
        sink: &mut S,
    ) -> Result<(), E> {
        if self.drained {
            return Ok(());
        }
        if self.cycle < self.fetch_ready_at {
            self.fetch_stall_cycles += 1;
            return Ok(());
        }
        let line_bytes = self.cfg.mem.il1.line_bytes;
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.len() >= self.cfg.fetch_queue {
                break;
            }
            let Some(rec) = self.next_record(&mut *source)? else {
                self.drained = true;
                break;
            };
            let line = rec.pc / line_bytes;
            if self.last_fetch_line != Some(line) {
                self.last_fetch_line = Some(line);
                let lat = self.mem.fetch(rec.pc);
                if lat > self.cfg.mem.l1_hit {
                    // Miss: stall further fetch until the line returns.
                    // Instructions already taken from this line in the
                    // current cycle stay in the queue (a mild optimism,
                    // applied identically to every machine configuration).
                    self.fetch_ready_at = self.cycle + lat as u64;
                    if S::ATTR {
                        self.fetch_stall_cause = StallCause::IcacheFetch;
                        self.fetch_stall_pc = rec.pc;
                    }
                    if S::EVENTS {
                        sink.event(TraceEvent::CacheMiss {
                            cycle: self.cycle,
                            addr: rec.pc,
                            fetch: true,
                            write: false,
                            latency: lat,
                        });
                    }
                }
            }
            let was_ctrl = rec.class == OpClass::Ctrl;
            // Conditional branches consult the predictor; a misprediction
            // stalls fetch for the redirect penalty (the trace itself stays
            // on the committed path — wrong-path fetch is modelled as lost
            // fetch cycles, the standard trace-driven approximation).
            if let Some(taken) = rec.taken {
                // Direction heuristics key on the branch displacement:
                // negative = backward (loop-closing).
                let backward = rec.instr.imm < 0;
                let penalty = self.predictor.observe(rec.pc, taken, backward);
                if penalty > 0 {
                    let redirect_until = self.cycle + 1 + u64::from(penalty);
                    if S::ATTR && redirect_until > self.fetch_ready_at {
                        self.fetch_stall_cause = StallCause::BranchRedirect;
                        self.fetch_stall_pc = rec.pc;
                    }
                    self.fetch_ready_at = self.fetch_ready_at.max(redirect_until);
                    if S::EVENTS {
                        sink.event(TraceEvent::BranchRedirect {
                            cycle: self.cycle,
                            pc: rec.pc,
                            penalty,
                        });
                    }
                }
            }
            self.fetch_queue.push_back(rec);
            if was_ctrl {
                // One control transfer per fetch cycle (even perfectly
                // predicted, the fetch unit redirects at most once).
                break;
            }
        }
        Ok(())
    }

    /// Read-only view of the PFU statistics mid-run (used by tests).
    pub fn pfu_stats(&self) -> PfuStats {
        self.pfus.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FuncCore;
    use t1000_asm::assemble;
    use t1000_isa::{FusionMap, Program};

    fn time_program(src: &str, cfg: CpuConfig) -> TimingStats {
        let p = assemble(src).unwrap();
        time(&p, &FusionMap::new(), cfg)
    }

    fn time(p: &Program, fusion: &FusionMap, cfg: CpuConfig) -> TimingStats {
        let mut core = FuncCore::new(p, fusion);
        let ooo = OooCore::new(cfg);
        ooo.run(|| core.step()).unwrap()
    }

    const EXIT: &str = "
    li $v0, 10
    syscall
";

    #[test]
    fn empty_exit_program_finishes() {
        let s = time_program(&format!("main:{EXIT}"), CpuConfig::baseline());
        assert_eq!(s.base_instructions, 2);
        assert!(s.cycles > 0);
    }

    /// A loop that executes `body` 500 times, so the I-cache is warm and
    /// IPC reflects the steady state.
    fn hot_loop(body: &str) -> String {
        format!("main:\n    li $s0, 500\nloop:\n{body}    addiu $s0, $s0, -1\n    bgtz $s0, loop\n{EXIT}")
    }

    #[test]
    fn independent_ops_reach_high_ipc() {
        // 16 independent single-cycle ops per iteration on a 4-wide machine.
        let mut body = String::new();
        for i in 0..16 {
            body.push_str(&format!("    addiu $t{}, $zero, {}\n", i % 4, i));
        }
        let s = time_program(&hot_loop(&body), CpuConfig::baseline());
        assert!(
            s.base_ipc > 2.5,
            "independent ALU stream should sustain near fetch width, got {}",
            s.base_ipc
        );
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        // A 16-deep loop-carried dependent chain: ≈1 IPC regardless of width.
        let mut body = String::new();
        for _ in 0..16 {
            body.push_str("    addu $t0, $t0, $t0\n");
        }
        let s = time_program(&hot_loop(&body), CpuConfig::baseline());
        assert!(
            s.base_ipc < 1.4,
            "dependent chain must be ≈1 IPC, got {}",
            s.base_ipc
        );
    }

    #[test]
    fn loads_cost_more_when_missing_cache() {
        // Stride through 64 KiB: every access a new line, many L1 misses.
        let miss = "
main:
    li   $t0, 0x10000000
    li   $t1, 2048
loop:
    lw   $t2, 0($t0)
    addiu $t0, $t0, 32
    addiu $t1, $t1, -1
    bgtz $t1, loop
";
        let hit = "
main:
    li   $t0, 0x10000000
    li   $t1, 2048
loop:
    lw   $t2, 0($t0)
    addiu $t1, $t1, -1
    bgtz $t1, loop
";
        let s_miss = time_program(&format!("{miss}{EXIT}"), CpuConfig::baseline());
        let s_hit = time_program(&format!("{hit}{EXIT}"), CpuConfig::baseline());
        assert!(
            s_miss.cycles > s_hit.cycles * 2,
            "streaming misses ({}) must be much slower than hits ({})",
            s_miss.cycles,
            s_hit.cycles
        );
        assert!(s_miss.mem.dl1.misses > 1000);
    }

    #[test]
    fn fusion_speeds_up_dependent_chains() {
        // Hot loop with a 4-op dependent chain; fusing it to one slot must
        // reduce cycles.
        let src = "
main:
    li   $s0, 5000
    li   $t0, 3
    li   $t1, 5
loop:
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t2, $t2, $t0
    srl  $t2, $t2, 1
    addu $t1, $t1, $t2
    addiu $s0, $s0, -1
    bgtz $s0, loop
    move $a0, $t1
    li   $v0, 30
    syscall
";
        let src = format!("{src}{EXIT}");
        let p = assemble(&src).unwrap();
        let base = time(&p, &FusionMap::new(), CpuConfig::baseline());

        // Fuse the 4 chain ops at loop start.
        let start = p.symbol("loop").unwrap();
        let skeleton: Vec<_> = (0..4).map(|k| p.instr_at(start + 4 * k).unwrap()).collect();
        let mut fusion = FusionMap::new();
        fusion.define(t1000_isa::ConfDef {
            conf: 0,
            skeleton,
            base_cycles: 4,
            pfu_latency: 1,
        });
        fusion.add_site(t1000_isa::FusedSite {
            pc: start,
            len: 4,
            conf: 0,
            inputs: vec![Reg::parse("t0").unwrap(), Reg::parse("t1").unwrap()],
            output: Reg::parse("t2").unwrap(),
        });
        let fused = time(&p, &fusion, CpuConfig::with_pfus(1));
        assert_eq!(fused.base_instructions, base.base_instructions);
        assert!(
            fused.cycles < base.cycles,
            "fused {} vs base {}",
            fused.cycles,
            base.cycles
        );
        assert_eq!(fused.pfu.reconfigurations, 1, "one config load, then hits");
        assert_eq!(fused.pfu.ext_executed, 5000);
    }

    #[test]
    fn thrashing_reconfiguration_hurts() {
        // Two alternating distinct sequences on ONE PFU: every execution
        // reconfigures; performance must collapse below baseline.
        let src = "
main:
    li   $s0, 2000
    li   $t0, 3
    li   $t1, 5
loop:
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t3, $t1, $t0
    srl  $t3, $t3, 2
    addu $t1, $t1, $t2
    addu $t1, $t1, $t3
    addiu $s0, $s0, -1
    bgtz $s0, loop
";
        let src = format!("{src}{EXIT}");
        let p = assemble(&src).unwrap();
        let base = time(&p, &FusionMap::new(), CpuConfig::baseline());

        let start = p.symbol("loop").unwrap();
        let mut fusion = FusionMap::new();
        for (conf, at) in [(0u16, start), (1u16, start + 8)] {
            let skeleton: Vec<_> = (0..2).map(|k| p.instr_at(at + 4 * k).unwrap()).collect();
            fusion.define(t1000_isa::ConfDef {
                conf,
                skeleton,
                base_cycles: 2,
                pfu_latency: 1,
            });
            fusion.add_site(t1000_isa::FusedSite {
                pc: at,
                len: 2,
                conf,
                inputs: vec![Reg::parse("t0").unwrap(), Reg::parse("t1").unwrap()],
                output: Reg::parse(if conf == 0 { "t2" } else { "t3" }).unwrap(),
            });
        }
        let thrash = time(&p, &fusion, CpuConfig::with_pfus(1).reconfig(10));
        assert!(
            thrash.cycles > base.cycles,
            "thrashing ({}) must be slower than baseline ({})",
            thrash.cycles,
            base.cycles
        );
        assert!(thrash.pfu.reconfigurations as f64 > 0.9 * 4000.0);

        // With two PFUs both configs stay resident: thrashing vanishes and
        // performance returns to (at least) baseline level. The fused
        // chains here are off the loop-carried critical path, so parity —
        // not speedup — is the expectation.
        let two = time(&p, &fusion, CpuConfig::with_pfus(2).reconfig(10));
        assert!(
            two.cycles * 2 < thrash.cycles,
            "resident configs ({}) must beat thrashing ({})",
            two.cycles,
            thrash.cycles
        );
        assert!(
            two.cycles as f64 <= base.cycles as f64 * 1.02,
            "two {} base {}",
            two.cycles,
            base.cycles
        );
        assert_eq!(two.pfu.reconfigurations, 2);
    }

    #[test]
    fn base_instruction_count_is_fusion_invariant() {
        let src =
            format!("main:\n    li $t0, 7\n    sll $t1, $t0, 2\n    addu $t1, $t1, $t0\n{EXIT}");
        let p = assemble(&src).unwrap();
        let base = time(&p, &FusionMap::new(), CpuConfig::baseline());
        let start = p.text_base + 4;
        let skeleton: Vec<_> = (0..2).map(|k| p.instr_at(start + 4 * k).unwrap()).collect();
        let mut fusion = FusionMap::new();
        fusion.define(t1000_isa::ConfDef {
            conf: 0,
            skeleton,
            base_cycles: 2,
            pfu_latency: 1,
        });
        fusion.add_site(t1000_isa::FusedSite {
            pc: start,
            len: 2,
            conf: 0,
            inputs: vec![Reg::parse("t0").unwrap()],
            output: Reg::parse("t1").unwrap(),
        });
        let fused = time(&p, &fusion, CpuConfig::with_pfus(1));
        assert_eq!(base.base_instructions, fused.base_instructions);
        assert_eq!(fused.slots, base.slots - 1);
    }

    #[test]
    fn bimodal_prediction_costs_cycles_on_hard_branches() {
        use crate::branch::BranchModel;
        // Data-dependent alternating branch inside a hot loop.
        let src = "
main:
    li   $s0, 500
    li   $t1, 0
loop:
    andi $t0, $s0, 1
    beq  $t0, $zero, even
    addiu $t1, $t1, 3
    j    next
even:
    addiu $t1, $t1, 5
next:
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li   $v0, 10
    syscall
";
        let perfect = time_program(src, CpuConfig::baseline());
        let mut cfg = CpuConfig::baseline();
        cfg.branch = BranchModel::Bimodal {
            entries: 1024,
            penalty: 6,
        };
        let bimodal = time_program(src, cfg);
        assert_eq!(perfect.branch.mispredictions, 0);
        assert!(
            bimodal.branch.mispredictions > 200,
            "alternating branch must miss"
        );
        assert!(
            bimodal.cycles > perfect.cycles + 1000,
            "mispredictions must cost cycles ({} vs {})",
            bimodal.cycles,
            perfect.cycles
        );
    }

    #[test]
    fn bimodal_is_cheap_on_loop_branches() {
        use crate::branch::BranchModel;
        let src = &hot_loop(
            "    addu $t0, $t0, $t0
",
        );
        let perfect = time_program(src, CpuConfig::baseline());
        let mut cfg = CpuConfig::baseline();
        cfg.branch = BranchModel::Bimodal {
            entries: 1024,
            penalty: 6,
        };
        let bimodal = time_program(src, cfg);
        assert!(
            bimodal.branch.accuracy() > 0.95,
            "loop branches predict well"
        );
        assert!(
            bimodal.cycles < perfect.cycles + perfect.cycles / 10,
            "well-predicted loops should cost ≈ nothing extra"
        );
    }

    #[test]
    fn multicycle_ext_instructions_have_longer_latency() {
        // A fused chain with an artificially long PFU latency must be
        // slower than the same chain at 1 cycle when it is loop-carried.
        let src = "
main:
    li   $s0, 2000
    li   $t0, 3
    li   $t1, 5
loop:
    sll  $t2, $t1, 1
    xor  $t2, $t2, $t0
    andi $t2, $t2, 1023
    addu $t1, $t1, $t2
    andi $t1, $t1, 2047
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li   $v0, 10
    syscall
";
        let p = assemble(src).unwrap();
        let start = p.symbol("loop").unwrap();
        let skeleton: Vec<_> = (0..5).map(|k| p.instr_at(start + 4 * k).unwrap()).collect();
        let timed = |latency: u32| {
            let mut fusion = FusionMap::new();
            fusion.define(t1000_isa::ConfDef {
                conf: 0,
                skeleton: skeleton.clone(),
                base_cycles: 5,
                pfu_latency: latency,
            });
            fusion.add_site(t1000_isa::FusedSite {
                pc: start,
                len: 5,
                conf: 0,
                inputs: vec![Reg::parse("t0").unwrap(), Reg::parse("t1").unwrap()],
                output: Reg::parse("t1").unwrap(),
            });
            time(&p, &fusion, CpuConfig::with_pfus(1))
        };
        let fast = timed(1);
        let slow = timed(3);
        assert!(
            slow.cycles + 100 >= fast.cycles + 2 * 2000,
            "2 extra latency cycles per iteration must show up ({} vs {})",
            slow.cycles,
            fast.cycles
        );
    }

    fn time_attr(
        p: &Program,
        fusion: &FusionMap,
        cfg: CpuConfig,
    ) -> (TimingStats, crate::observe::CycleAttribution) {
        let mut core = FuncCore::new(p, fusion);
        let mut sink = crate::observe::AttrCollector::new();
        let ooo = OooCore::new(cfg);
        let stats = ooo.run_with(|| core.step(), &mut sink).unwrap();
        (stats, sink.attr)
    }

    #[test]
    fn attribution_partitions_cycles_and_matches_unobserved_run() {
        let src = hot_loop("    addu $t0, $t0, $t0\n    lw $t1, 0($sp)\n");
        let p = assemble(&src).unwrap();
        let fusion = FusionMap::new();
        let plain = time(&p, &fusion, CpuConfig::baseline());
        let (observed, attr) = time_attr(&p, &fusion, CpuConfig::baseline());
        assert_eq!(
            observed.cycles, plain.cycles,
            "observation must not perturb timing"
        );
        assert_eq!(attr.total_cycles, observed.cycles);
        assert!(
            attr.checks_out(),
            "busy + stalls must equal total: {attr:?}"
        );
        assert!(attr.busy_cycles > 0);
    }

    #[test]
    fn dependent_chain_is_attributed_to_data_dependence() {
        use crate::observe::StallCause;
        // A serial multiply chain: each `mult` (3 cycles) feeds the next via
        // `mflo`, so most cycles commit nothing. Those zero-commit cycles
        // land on the operand-wait side of the taxonomy: DataDep while the
        // head waits for its producer, ExecLatency while the head itself is
        // still in the multiplier.
        let mut body = String::new();
        for _ in 0..8 {
            body.push_str("    mult $t0, $t0\n    mflo $t0\n");
        }
        let p = assemble(&hot_loop(&body)).unwrap();
        let (stats, attr) = time_attr(&p, &FusionMap::new(), CpuConfig::baseline());
        assert!(attr.checks_out());
        let chain = attr.stall(StallCause::DataDep) + attr.stall(StallCause::ExecLatency);
        assert!(
            chain > stats.cycles / 3,
            "a loop-carried multiply chain must stall on operands: {attr:?}"
        );
        assert!(attr.stall(StallCause::DataDep) > 0, "{attr:?}");
    }

    #[test]
    fn streaming_misses_are_attributed_to_memory() {
        use crate::observe::StallCause;
        let src = "
main:
    li   $t0, 0x10000000
    li   $t1, 2048
loop:
    lw   $t2, 0($t0)
    addu $t3, $t3, $t2
    addiu $t0, $t0, 32
    addiu $t1, $t1, -1
    bgtz $t1, loop
    li   $v0, 10
    syscall
";
        let p = assemble(src).unwrap();
        let (stats, attr) = time_attr(&p, &FusionMap::new(), CpuConfig::baseline());
        assert!(attr.checks_out());
        let mem_side = attr.stall(StallCause::MemData)
            + attr.stall(StallCause::WindowFull)
            + attr.stall(StallCause::LsqFull);
        assert!(
            mem_side > stats.cycles / 4,
            "D-cache misses must dominate the stall budget: {attr:?}"
        );
    }

    #[test]
    fn thrashing_is_attributed_to_reconfiguration() {
        use crate::observe::StallCause;
        // Same program as `thrashing_reconfiguration_hurts`: alternating
        // configurations on one PFU reconfigure every iteration.
        let src = "
main:
    li   $s0, 2000
    li   $t0, 3
    li   $t1, 5
loop:
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t3, $t1, $t0
    srl  $t3, $t3, 2
    addu $t1, $t1, $t2
    addu $t1, $t1, $t3
    addiu $s0, $s0, -1
    bgtz $s0, loop
";
        let src = format!("{src}{EXIT}");
        let p = assemble(&src).unwrap();
        let start = p.symbol("loop").unwrap();
        let mut fusion = FusionMap::new();
        for (conf, at) in [(0u16, start), (1u16, start + 8)] {
            let skeleton: Vec<_> = (0..2).map(|k| p.instr_at(at + 4 * k).unwrap()).collect();
            fusion.define(t1000_isa::ConfDef {
                conf,
                skeleton,
                base_cycles: 2,
                pfu_latency: 1,
            });
            fusion.add_site(t1000_isa::FusedSite {
                pc: at,
                len: 2,
                conf,
                inputs: vec![Reg::parse("t0").unwrap(), Reg::parse("t1").unwrap()],
                output: Reg::parse(if conf == 0 { "t2" } else { "t3" }).unwrap(),
            });
        }
        let (thrash, attr1) = time_attr(&p, &fusion, CpuConfig::with_pfus(1).reconfig(10));
        let (_, attr2) = time_attr(&p, &fusion, CpuConfig::with_pfus(2).reconfig(10));
        assert!(attr1.checks_out() && attr2.checks_out());
        assert!(
            attr1.stall(StallCause::Reconfig) > thrash.cycles / 3,
            "thrashing must show up as reconfiguration stalls: {attr1:?}"
        );
        assert!(
            attr2.stall(StallCause::Reconfig) < attr1.stall(StallCause::Reconfig) / 10,
            "resident configurations must erase the reconfiguration stalls \
             ({} vs {})",
            attr2.stall(StallCause::Reconfig),
            attr1.stall(StallCause::Reconfig)
        );
    }

    #[test]
    fn mispredictions_are_attributed_to_branch_redirects() {
        use crate::branch::BranchModel;
        use crate::observe::StallCause;
        let src = "
main:
    li   $s0, 500
    li   $t1, 0
loop:
    andi $t0, $s0, 1
    beq  $t0, $zero, even
    addiu $t1, $t1, 3
    j    next
even:
    addiu $t1, $t1, 5
next:
    addiu $s0, $s0, -1
    bgtz $s0, loop
    li   $v0, 10
    syscall
";
        let p = assemble(src).unwrap();
        let mut cfg = CpuConfig::baseline();
        cfg.branch = BranchModel::Bimodal {
            entries: 1024,
            penalty: 6,
        };
        let (stats, attr) = time_attr(&p, &FusionMap::new(), cfg);
        assert!(attr.checks_out());
        assert!(stats.branch.mispredictions > 200);
        assert!(
            attr.stall(StallCause::BranchRedirect) > stats.branch.mispredictions,
            "each redirect stalls fetch for several cycles: {attr:?}"
        );
    }

    #[test]
    fn per_pc_attribution_points_at_the_stalling_instruction() {
        let mut body = String::new();
        for _ in 0..8 {
            body.push_str("    mult $t0, $t0\n    mflo $t0\n");
        }
        let src = hot_loop(&body);
        let p = assemble(&src).unwrap();
        let fusion = FusionMap::new();
        let mut core = FuncCore::new(&p, &fusion);
        let mut sink = crate::observe::AttrCollector::with_per_pc();
        OooCore::new(CpuConfig::baseline())
            .run_with(|| core.step(), &mut sink)
            .unwrap();
        let per_pc = sink.per_pc().unwrap();
        let loop_start = p.symbol("loop").unwrap();
        let in_loop: u64 = per_pc
            .iter()
            .filter(|(&pc, _)| pc >= loop_start)
            .map(|(_, s)| s.iter().sum::<u64>())
            .sum();
        let total: u64 = per_pc.values().map(|s| s.iter().sum::<u64>()).sum();
        assert!(total > 0);
        assert!(
            in_loop * 10 > total * 9,
            "stalls must concentrate in the hot loop ({in_loop}/{total})"
        );
        assert!(
            total <= sink.attr.stall_cycles(),
            "per-PC counters are a breakdown of the aggregate"
        );
    }

    /// The same configuration with the replay fast path forced off.
    fn no_fast(mut cfg: CpuConfig) -> CpuConfig {
        cfg.fast_path = false;
        cfg
    }

    /// Asserts two runs produced bit-identical timing results (everything
    /// except the fast-path counters themselves).
    fn assert_identical(a: &TimingStats, b: &TimingStats) {
        assert_eq!(a.cycles, b.cycles, "cycles diverged");
        assert_eq!(a.slots, b.slots, "slots diverged");
        assert_eq!(a.base_instructions, b.base_instructions);
        assert_eq!(a.pfu, b.pfu, "PFU stats diverged");
        assert_eq!(a.mem, b.mem, "memory stats diverged");
        assert_eq!(a.fetch_stall_cycles, b.fetch_stall_cycles);
        assert_eq!(a.branch, b.branch, "branch stats diverged");
    }

    #[test]
    fn fast_path_engages_and_is_bit_identical() {
        // A mix of steady loops: ALU-bound, dependence-bound, and one
        // with a (cache-resident) load.
        let mut wide = String::new();
        for i in 0..12 {
            wide.push_str(&format!("    addiu $t{}, $zero, {}\n", i % 4, i));
        }
        for body in [
            "    addu $t0, $t0, $t0\n",
            wide.as_str(),
            "    lw $t1, 0($sp)\n    addu $t0, $t0, $t1\n",
            "    mult $t0, $t0\n    mflo $t0\n",
        ] {
            let p = assemble(&hot_loop(body)).unwrap();
            let fast = time(&p, &FusionMap::new(), CpuConfig::baseline());
            let slow = time(&p, &FusionMap::new(), no_fast(CpuConfig::baseline()));
            assert_identical(&fast, &slow);
            assert!(
                fast.fast.replayed_iters > 400,
                "a 500-iteration steady loop must mostly replay, got {:?}",
                fast.fast
            );
            assert_eq!(fast.fast.steady_loops, fast.fast.deopts);
            assert_eq!(slow.fast, crate::FastPathStats::default());
        }
    }

    #[test]
    fn fast_path_is_bit_identical_with_pfus() {
        // The fused hot loop from `fusion_speeds_up_dependent_chains`:
        // steady state has resident configurations and PFU hits.
        let src = "
main:
    li   $s0, 5000
    li   $t0, 3
    li   $t1, 5
loop:
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t2, $t2, $t0
    srl  $t2, $t2, 1
    addu $t1, $t1, $t2
    addiu $s0, $s0, -1
    bgtz $s0, loop
";
        let src = format!("{src}{EXIT}");
        let p = assemble(&src).unwrap();
        let start = p.symbol("loop").unwrap();
        let skeleton: Vec<_> = (0..4).map(|k| p.instr_at(start + 4 * k).unwrap()).collect();
        let mut fusion = FusionMap::new();
        fusion.define(t1000_isa::ConfDef {
            conf: 0,
            skeleton,
            base_cycles: 4,
            pfu_latency: 1,
        });
        fusion.add_site(t1000_isa::FusedSite {
            pc: start,
            len: 4,
            conf: 0,
            inputs: vec![Reg::parse("t0").unwrap(), Reg::parse("t1").unwrap()],
            output: Reg::parse("t2").unwrap(),
        });
        let fast = time(&p, &fusion, CpuConfig::with_pfus(1));
        let slow = time(&p, &fusion, no_fast(CpuConfig::with_pfus(1)));
        assert_identical(&fast, &slow);
        assert!(fast.fast.replayed_iters > 4000, "{:?}", fast.fast);
    }

    #[test]
    fn fast_path_is_bit_identical_under_bimodal_prediction() {
        use crate::branch::BranchModel;
        // The loop branch saturates its counter; the steady state is
        // redirect-free and must converge.
        let src = hot_loop("    addu $t0, $t0, $t0\n");
        let p = assemble(&src).unwrap();
        let mut cfg = CpuConfig::baseline();
        cfg.branch = BranchModel::Bimodal {
            entries: 1024,
            penalty: 6,
        };
        let fast = time(&p, &FusionMap::new(), cfg);
        let slow = time(&p, &FusionMap::new(), no_fast(cfg));
        assert_identical(&fast, &slow);
        assert!(fast.fast.replayed_iters > 400, "{:?}", fast.fast);
    }

    #[test]
    fn fast_path_preserves_cycle_attribution() {
        let src = hot_loop("    addu $t0, $t0, $t0\n    lw $t1, 0($sp)\n");
        let p = assemble(&src).unwrap();
        let fusion = FusionMap::new();
        let (fast, fast_attr) = time_attr(&p, &fusion, CpuConfig::baseline());
        let (slow, slow_attr) = time_attr(&p, &fusion, no_fast(CpuConfig::baseline()));
        assert_identical(&fast, &slow);
        assert!(fast.fast.replayed_iters > 400, "{:?}", fast.fast);
        assert!(fast_attr.checks_out());
        assert_eq!(fast_attr, slow_attr, "per-cause attribution diverged");
    }

    #[test]
    fn fast_path_respects_the_cycle_limit() {
        let src = hot_loop("    addu $t0, $t0, $t0\n");
        let p = assemble(&src).unwrap();
        let fusion = FusionMap::new();
        let limited = |fast_path: bool| {
            let mut cfg = CpuConfig::baseline();
            cfg.fast_path = fast_path;
            cfg.max_cycles = 300;
            let mut core = FuncCore::new(&p, &fusion);
            let mut sink = crate::observe::AttrCollector::new();
            let err = OooCore::new(cfg)
                .run_with(|| core.step(), &mut sink)
                .unwrap_err();
            (err, sink.attr)
        };
        let (fast_err, fast_attr) = limited(true);
        let (slow_err, slow_attr) = limited(false);
        assert_eq!(fast_err, ExecError::CycleLimit(300));
        assert_eq!(fast_err, slow_err);
        assert_eq!(
            fast_attr, slow_attr,
            "attribution up to the fuel limit must match"
        );
    }

    #[test]
    fn fast_path_deopts_on_mid_loop_disturbance_and_reconverges() {
        // A fused hot loop whose configuration is fault-injected midway:
        // the PFU reload (and subsequent scalar fallback) perturbs the
        // steady state; replay must de-opt, resimulate the disturbance
        // accurately, converge again, and still match the slow path bit
        // for bit.
        let src = "
main:
    li   $s0, 5000
    li   $t0, 3
    li   $t1, 5
loop:
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t2, $t2, $t0
    srl  $t2, $t2, 1
    addu $t1, $t1, $t2
    addiu $s0, $s0, -1
    bgtz $s0, loop
";
        let src = format!("{src}{EXIT}");
        let p = assemble(&src).unwrap();
        let start = p.symbol("loop").unwrap();
        let skeleton: Vec<_> = (0..4).map(|k| p.instr_at(start + 4 * k).unwrap()).collect();
        let mut fusion = FusionMap::new();
        fusion.define(t1000_isa::ConfDef {
            conf: 0,
            skeleton,
            base_cycles: 4,
            pfu_latency: 1,
        });
        fusion.add_site(t1000_isa::FusedSite {
            pc: start,
            len: 4,
            conf: 0,
            inputs: vec![Reg::parse("t0").unwrap(), Reg::parse("t1").unwrap()],
            output: Reg::parse("t2").unwrap(),
        });
        let run = |cfg: CpuConfig| {
            let mut core = FuncCore::new(&p, &fusion);
            let mut injected = false;
            OooCore::new(cfg)
                .run(|| {
                    // Deep in the steady state, fault the configuration:
                    // the next fused site falls back to scalar execution.
                    if !injected && core.icount > 10_000 {
                        injected = true;
                        core.inject_conf_faults([0u16]);
                    }
                    core.step()
                })
                .unwrap()
        };
        let fast = run(CpuConfig::with_pfus(1));
        let slow = run(no_fast(CpuConfig::with_pfus(1)));
        assert_identical(&fast, &slow);
        assert!(
            fast.fast.deopts >= 2,
            "the disturbance must force an extra de-opt/re-converge cycle: {:?}",
            fast.fast
        );
        assert!(fast.fast.replayed_iters > 3000, "{:?}", fast.fast);
    }

    #[test]
    fn event_sinks_disable_the_fast_path() {
        struct EventSink(Vec<TraceEvent>);
        impl TraceSink for EventSink {
            const EVENTS: bool = true;
            const ATTR: bool = false;
            fn event(&mut self, e: TraceEvent) {
                self.0.push(e);
            }
        }
        let src = hot_loop("    addu $t0, $t0, $t0\n");
        let p = assemble(&src).unwrap();
        let fusion = FusionMap::new();
        let mut core = FuncCore::new(&p, &fusion);
        let mut sink = EventSink(Vec::new());
        let stats = OooCore::new(CpuConfig::baseline())
            .run_with(|| core.step(), &mut sink)
            .unwrap();
        assert_eq!(
            stats.fast,
            crate::FastPathStats::default(),
            "events need absolute cycles; replay must stand down"
        );
        let plain = time(&p, &FusionMap::new(), CpuConfig::baseline());
        assert_eq!(stats.cycles, plain.cycles);
    }

    #[test]
    fn narrower_machine_is_slower() {
        let mut body = String::new();
        for i in 0..12 {
            body.push_str(&format!("    addiu $t{}, $zero, 1\n", i % 4));
        }
        let src = hot_loop(&body);
        let wide = time_program(&src, CpuConfig::baseline());
        let narrow = {
            let mut c = CpuConfig::baseline();
            c.fetch_width = 1;
            c.dispatch_width = 1;
            c.issue_width = 1;
            c.commit_width = 1;
            time_program(&src, c)
        };
        assert!(
            narrow.cycles > wide.cycles * 2,
            "narrow {} wide {}",
            narrow.cycles,
            wide.cycles
        );
    }
}
