//! Steady-state hot-loop replay fast path.
//!
//! The paper's workloads spend almost all of their time in deterministic
//! hot loops, yet the cycle-level model re-simulates every pipeline stage
//! on every iteration. This module detects when a loop's per-iteration
//! behaviour has *converged* — the machine state at two consecutive
//! iteration boundaries is identical up to uniform shifts of the cycle,
//! sequence-number and cache-tick clocks, and the iteration was
//! *event-free* (no cache/TLB misses, no PFU configuration loads or
//! evictions, no branch redirects) — and then replays the recorded
//! per-iteration deltas instead of simulating stages, de-opting back to
//! the cycle-accurate path the moment the instruction stream deviates
//! from the recorded segment.
//!
//! # Why this is bit-identical
//!
//! The timing model is a deterministic function of (a) its own state and
//! (b) the incoming dynamic-record stream; pulling a record has no timing
//! side effects (all timing mutation happens inside the pipeline stages).
//! If the state at boundary *B* equals the state at boundary *A* advanced
//! by one iteration's uniform clock shifts ([`Snapshot`] comparison, plus
//! the component checks `MemHierarchy::steady_eq`, `PfuArray::steady_eq`
//! and `Predictor::steady_eq`), and the records pulled after *B* carry
//! the same timing-relevant fields as the recorded segment *A→B*
//! ([`TimingKey`], verified record-by-record during replay), then by
//! induction the simulation from *B* reproduces the simulation from *A*
//! shifted by one period — so cycles, every stall-cause classification,
//! and all statistics advance by exactly the recorded deltas. The moment
//! a pulled record's key deviates (loop exit, a faulted configuration
//! falling back to scalar code, any control change), the pulled records
//! are queued for the accurate fetch path and the frozen state is
//! advanced by the replayed iteration count ([`OooCore`] fix-up below),
//! bit-identically to having simulated them.
//!
//! The fast path is disabled under event-tracing sinks
//! ([`TraceSink::EVENTS`]): trace events carry absolute cycle numbers,
//! and a replayed iteration would have to rewrite them; full-fidelity
//! tracing wants the accurate path anyway.
//!
//! [`TraceSink::EVENTS`]: crate::observe::TraceSink::EVENTS

use super::{EntryState, OooCore, RuuEntry};
use crate::branch::Predictor;
use crate::func::DynInstr;
use crate::observe::{CycleClass, StallCause};
use crate::pfu::PfuArray;
use std::collections::{HashMap, VecDeque};
use t1000_isa::{OpClass, Reg};
use t1000_mem::MemHierarchy;

/// Boundary visits before a loop is considered hot enough to observe.
const HOT_THRESHOLD: u32 = 3;
/// Consecutive non-converging iterations before an observation is
/// abandoned (each costs a state snapshot and comparison).
const MAX_SLIDES: u32 = 8;
/// Cap on recorded records per iteration; longer loop bodies stay on the
/// accurate path.
const MAX_SEG: usize = 65_536;
/// Cap on recorded cycle classifications per iteration.
const MAX_CLASSES: usize = 262_144;
/// Cap on distinct loop headers tracked.
const MAX_LOOPS: usize = 512;

/// Fast-path effectiveness counters, reported in
/// [`TimingStats`](super::TimingStats). All zero when the fast path is
/// disabled (or never converged); the timing results themselves are
/// bit-identical either way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Times a loop converged and entered steady-state replay.
    pub steady_loops: u64,
    /// Loop iterations replayed from recorded deltas instead of being
    /// simulated stage-by-stage.
    pub replayed_iters: u64,
    /// Times replay de-opted back to the cycle-accurate path.
    pub deopts: u64,
}

/// The timing-relevant fields of a [`DynInstr`]. Two records with equal
/// keys are indistinguishable to the timing model: architectural values
/// (`src_vals`, `result`) never influence *when* anything happens.
#[derive(Clone, PartialEq)]
pub(crate) struct TimingKey {
    pc: u32,
    class: OpClass,
    latency: u32,
    fused_len: u32,
    conf: Option<u16>,
    gpr_def: Option<Reg>,
    gpr_uses: [Option<Reg>; 2],
    hilo_def: bool,
    hilo_use: bool,
    mem: Option<(u32, bool)>,
    taken: Option<bool>,
}

impl TimingKey {
    fn of(r: &DynInstr) -> TimingKey {
        TimingKey {
            pc: r.pc,
            class: r.class,
            latency: r.latency,
            fused_len: r.fused_len,
            conf: r.conf,
            gpr_def: r.gpr_def,
            gpr_uses: r.gpr_uses,
            hilo_def: r.hilo_def,
            hilo_use: r.hilo_use,
            mem: r.mem,
            taken: r.taken,
        }
    }
}

/// A producer reference canonicalized against the window head: committed
/// producers all behave identically (their results are available, and
/// `entry()` resolves them to `None`), so only in-window offsets matter.
#[derive(Clone, Copy, PartialEq)]
enum SeqRef {
    None,
    Committed,
    Rel(u64),
}

fn seq_ref(seq: Option<u64>, head: u64) -> SeqRef {
    match seq {
        None => SeqRef::None,
        Some(s) if s < head => SeqRef::Committed,
        Some(s) => SeqRef::Rel(s - head),
    }
}

/// Canonical form of one RUU entry at a boundary.
struct EntrySnap {
    key: TimingKey,
    done: bool,
    deps: [SeqRef; 3],
    prev_mem: SeqRef,
    pfu_ready_at: u64,
    complete_at: u64,
    issued_at: u64,
}

impl EntrySnap {
    fn of(e: &RuuEntry, head: u64) -> EntrySnap {
        EntrySnap {
            key: TimingKey::of(&e.rec),
            done: e.state == EntryState::Done,
            deps: [
                seq_ref(e.deps[0], head),
                seq_ref(e.deps[1], head),
                seq_ref(e.deps[2], head),
            ],
            prev_mem: seq_ref(e.prev_mem, head),
            pfu_ready_at: e.pfu_ready_at,
            complete_at: e.complete_at,
            issued_at: e.issued_at,
        }
    }

    /// Does `e` (at a boundary `dc` cycles later, with snapshot cycle
    /// `stale`) equal this snapshot up to the uniform shifts?
    fn matches(&self, e: &RuuEntry, head: u64, dc: u64, stale: u64) -> bool {
        let ts = |t: u64, b: u64| t == b + dc || (t == b && b <= stale);
        self.done == (e.state == EntryState::Done)
            && self.deps[0] == seq_ref(e.deps[0], head)
            && self.deps[1] == seq_ref(e.deps[1], head)
            && self.deps[2] == seq_ref(e.deps[2], head)
            && self.prev_mem == seq_ref(e.prev_mem, head)
            && ts(e.pfu_ready_at, self.pfu_ready_at)
            && ts(e.complete_at, self.complete_at)
            && ts(e.issued_at, self.issued_at)
            && self.key == TimingKey::of(&e.rec)
    }
}

/// Full machine state captured at an iteration boundary (the top of the
/// cycle after fetch pulled a taken branch).
struct Snapshot {
    cycle: u64,
    next_seq: u64,
    slots: u64,
    base_instructions: u64,
    fetch_stall_cycles: u64,
    lsq_used: usize,
    dispatch_ready_at: u64,
    fetch_ready_at: u64,
    fetch_stall_cause: StallCause,
    fetch_stall_pc: u32,
    last_fetch_line: Option<u32>,
    window: Vec<EntrySnap>,
    fetch_queue: Vec<TimingKey>,
    reg_producer: [SeqRef; 32],
    hilo_producer: SeqRef,
    last_mem_seq: SeqRef,
    mem: MemHierarchy,
    pfus: PfuArray,
    predictor: Predictor,
}

/// Per-iteration deltas of a converged loop.
struct Deltas {
    dc: u64,
    dseq: u64,
    dslots: u64,
    dbase: u64,
    dfsc: u64,
}

/// An observation in progress: a snapshot at boundary *A* plus the
/// record segment and cycle classifications accumulated since.
struct Obs {
    loop_pc: u32,
    slides: u32,
    overflow: bool,
    snap: Box<Snapshot>,
    seg: Vec<TimingKey>,
    classes: Vec<CycleClass>,
}

/// Hotness and back-off bookkeeping for one loop-closing branch PC.
struct LoopInfo {
    boundaries: u32,
    failures: u32,
    next_observe_at: u32,
}

/// Fast-path controller state embedded in [`OooCore`].
pub(crate) struct FastPath {
    /// Master switch ([`CpuConfig::fast_path`], and off under
    /// event-tracing sinks).
    ///
    /// [`CpuConfig::fast_path`]: crate::config::CpuConfig::fast_path
    pub(super) enabled: bool,
    /// Loop-closing branch PC seen by fetch last cycle, if any.
    pub(super) pending_boundary: Option<u32>,
    /// Records pulled from the source during a failed replay, to be
    /// consumed by the accurate fetch path before touching the source.
    pub(super) pending: VecDeque<DynInstr>,
    /// The source returned `None` during replay; never call it again.
    pub(super) done: bool,
    loops: HashMap<u32, LoopInfo>,
    active: Option<Obs>,
    stats: FastPathStats,
}

impl FastPath {
    pub(super) fn new(enabled: bool) -> FastPath {
        FastPath {
            enabled,
            pending_boundary: None,
            pending: VecDeque::new(),
            done: false,
            loops: HashMap::new(),
            active: None,
            stats: FastPathStats::default(),
        }
    }

    pub(super) fn stats(&self) -> FastPathStats {
        self.stats
    }

    /// Records one pulled dynamic record into the active observation and
    /// flags iteration boundaries (any taken branch; non-loop branches
    /// simply never get hot).
    pub(super) fn saw_record(&mut self, rec: &DynInstr) {
        if let Some(obs) = self.active.as_mut() {
            if obs.seg.len() >= MAX_SEG {
                obs.overflow = true;
            } else {
                obs.seg.push(TimingKey::of(rec));
            }
        }
        if rec.taken == Some(true) {
            self.pending_boundary = Some(rec.pc);
        }
    }

    /// Records one cycle classification into the active observation.
    pub(super) fn saw_class(&mut self, class: CycleClass) {
        if let Some(obs) = self.active.as_mut() {
            if obs.classes.len() >= MAX_CLASSES {
                obs.overflow = true;
            } else {
                obs.classes.push(class);
            }
        }
    }

    /// Abandons the active observation and backs off its loop
    /// exponentially, so a loop that keeps almost-converging does not
    /// keep paying for snapshots.
    fn fail(&mut self, loop_pc: u32) {
        self.active = None;
        if let Some(info) = self.loops.get_mut(&loop_pc) {
            info.failures += 1;
            let backoff = 16u32 << info.failures.min(10);
            info.next_observe_at = info.boundaries.saturating_add(backoff);
        }
    }
}

impl OooCore {
    /// Fetch's view of the record stream: records queued by a de-opted
    /// replay drain first, then the live source. Also feeds the active
    /// observation and flags iteration boundaries.
    pub(super) fn next_record<E>(
        &mut self,
        source: &mut impl FnMut() -> Result<Option<DynInstr>, E>,
    ) -> Result<Option<DynInstr>, E> {
        if let Some(rec) = self.fast.pending.pop_front() {
            if self.fast.enabled {
                self.fast.saw_record(&rec);
            }
            return Ok(Some(rec));
        }
        if self.fast.done {
            return Ok(None);
        }
        let rec = source()?;
        match &rec {
            Some(rec) if self.fast.enabled => self.fast.saw_record(rec),
            Some(_) => {}
            None => self.fast.done = true,
        }
        Ok(rec)
    }

    /// Handles an iteration boundary: advance hotness counters, start or
    /// continue an observation, and — once converged — replay iterations
    /// until the stream deviates.
    pub(super) fn fast_boundary<E, S: crate::observe::TraceSink>(
        &mut self,
        loop_pc: u32,
        source: &mut impl FnMut() -> Result<Option<DynInstr>, E>,
        sink: &mut S,
    ) -> Result<(), E> {
        match self.fast.active.as_ref().map(|o| (o.loop_pc, o.overflow)) {
            Some((pc, overflow)) if pc == loop_pc => {
                if overflow {
                    self.fast.fail(loop_pc);
                } else if let Some(d) = self.check_steady() {
                    self.replay::<E, S>(d, source, sink)?;
                } else {
                    self.slide(loop_pc);
                }
            }
            Some(_) => {
                // Another loop's boundary while observing (e.g. a nested
                // inner loop): just count it.
                self.bump_loop(loop_pc);
            }
            None => {
                if self.bump_loop(loop_pc) {
                    let snap = Box::new(self.snapshot());
                    self.fast.active = Some(Obs {
                        loop_pc,
                        slides: 0,
                        overflow: false,
                        snap,
                        seg: Vec::new(),
                        classes: Vec::new(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Counts a boundary visit; returns true when the loop is due for
    /// observation.
    fn bump_loop(&mut self, loop_pc: u32) -> bool {
        if self.fast.loops.len() >= MAX_LOOPS && !self.fast.loops.contains_key(&loop_pc) {
            return false;
        }
        let info = self.fast.loops.entry(loop_pc).or_insert(LoopInfo {
            boundaries: 0,
            failures: 0,
            next_observe_at: HOT_THRESHOLD,
        });
        info.boundaries = info.boundaries.saturating_add(1);
        info.boundaries >= info.next_observe_at
    }

    /// Re-anchors the active observation at the current boundary (the
    /// previous iteration had not converged yet), or abandons it after
    /// too many attempts.
    fn slide(&mut self, loop_pc: u32) {
        let slides = match self.fast.active.as_mut() {
            Some(obs) => {
                obs.slides += 1;
                obs.slides
            }
            None => return,
        };
        if slides > MAX_SLIDES {
            self.fast.fail(loop_pc);
            return;
        }
        let snap = Box::new(self.snapshot());
        if let Some(obs) = self.fast.active.as_mut() {
            obs.snap = snap;
            obs.seg.clear();
            obs.classes.clear();
        }
    }

    fn snapshot(&self) -> Snapshot {
        let head = self.head_seq;
        let mut reg_producer = [SeqRef::None; 32];
        for (r, p) in reg_producer.iter_mut().zip(&self.reg_producer) {
            *r = seq_ref(*p, head);
        }
        Snapshot {
            cycle: self.cycle,
            next_seq: self.next_seq,
            slots: self.slots,
            base_instructions: self.base_instructions,
            fetch_stall_cycles: self.fetch_stall_cycles,
            lsq_used: self.lsq_used,
            dispatch_ready_at: self.dispatch_ready_at,
            fetch_ready_at: self.fetch_ready_at,
            fetch_stall_cause: self.fetch_stall_cause,
            fetch_stall_pc: self.fetch_stall_pc,
            last_fetch_line: self.last_fetch_line,
            window: self.window.iter().map(|e| EntrySnap::of(e, head)).collect(),
            fetch_queue: self.fetch_queue.iter().map(TimingKey::of).collect(),
            reg_producer,
            hilo_producer: seq_ref(self.hilo_producer, head),
            last_mem_seq: seq_ref(self.last_mem_seq, head),
            mem: self.mem.clone(),
            pfus: self.pfus.clone(),
            predictor: self.predictor.clone(),
        }
    }

    /// Compares the live state against the active observation's snapshot
    /// modulo the uniform clock shifts. `Some(deltas)` means the loop has
    /// converged and the deltas describe one full iteration.
    fn check_steady(&self) -> Option<Deltas> {
        let obs = self.fast.active.as_ref()?;
        let s = &obs.snap;
        if self.drained || self.fast.done || !self.fast.pending.is_empty() || obs.seg.is_empty() {
            return None;
        }
        let dc = self.cycle.checked_sub(s.cycle)?;
        let dseq = self.next_seq.checked_sub(s.next_seq)?;
        if dc == 0 || dseq == 0 {
            return None;
        }
        let stale = s.cycle;
        let ts = |t: u64, b: u64| t == b + dc || (t == b && b <= stale);
        let head = self.head_seq;
        let ok = self.window.len() == s.window.len()
            && self.fetch_queue.len() == s.fetch_queue.len()
            && self.lsq_used == s.lsq_used
            && ts(self.dispatch_ready_at, s.dispatch_ready_at)
            && ts(self.fetch_ready_at, s.fetch_ready_at)
            && self.fetch_stall_cause == s.fetch_stall_cause
            && self.fetch_stall_pc == s.fetch_stall_pc
            && self.last_fetch_line == s.last_fetch_line
            && seq_ref(self.hilo_producer, head) == s.hilo_producer
            && seq_ref(self.last_mem_seq, head) == s.last_mem_seq
            && self
                .reg_producer
                .iter()
                .zip(&s.reg_producer)
                .all(|(p, b)| seq_ref(*p, head) == *b)
            && self
                .window
                .iter()
                .zip(&s.window)
                .all(|(e, b)| b.matches(e, head, dc, stale))
            && self
                .fetch_queue
                .iter()
                .zip(&s.fetch_queue)
                .all(|(r, b)| TimingKey::of(r) == *b)
            && self.mem.steady_eq(&s.mem)
            && self.pfus.steady_eq(&s.pfus, dc, stale)
            && self.predictor.steady_eq(&s.predictor);
        if !ok {
            return None;
        }
        Some(Deltas {
            dc,
            dseq,
            dslots: self.slots - s.slots,
            dbase: self.base_instructions - s.base_instructions,
            dfsc: self.fetch_stall_cycles - s.fetch_stall_cycles,
        })
    }

    /// Replays whole iterations by applying the recorded deltas, pulling
    /// and verifying one segment of records per iteration, until a record
    /// deviates from the recorded keys (or the stream/fuel runs out).
    /// Then fixes the frozen state up by the replayed period count and
    /// de-opts to the accurate path.
    fn replay<E, S: crate::observe::TraceSink>(
        &mut self,
        d: Deltas,
        source: &mut impl FnMut() -> Result<Option<DynInstr>, E>,
        sink: &mut S,
    ) -> Result<(), E> {
        let Some(obs) = self.fast.active.take() else {
            return Ok(());
        };
        self.fast.stats.steady_loops += 1;
        debug_assert!(!S::ATTR || obs.classes.len() as u64 == d.dc);
        let mut iters = 0u64;
        'replay: loop {
            // Fuel: stop one iteration short of the cycle limit so the
            // accurate path reaches `ExecError::CycleLimit` at the exact
            // cycle (and with the exact per-cycle classifications) it
            // would have without the fast path.
            if self.cfg.max_cycles != 0 && self.cycle + d.dc > self.cfg.max_cycles {
                break;
            }
            for expect in &obs.seg {
                let rec = if self.fast.done { None } else { source()? };
                let Some(rec) = rec else {
                    self.fast.done = true;
                    break 'replay;
                };
                let matches = TimingKey::of(&rec) == *expect;
                self.fast.pending.push_back(rec);
                if !matches {
                    break 'replay;
                }
            }
            // A full iteration verified: its records are consumed (their
            // architectural effects already happened in the source) and
            // the deltas stand in for simulating it.
            self.fast.pending.clear();
            iters += 1;
            self.cycle += d.dc;
            self.slots += d.dslots;
            self.base_instructions += d.dbase;
            self.fetch_stall_cycles += d.dfsc;
            if S::ATTR {
                for class in &obs.classes {
                    sink.cycle(*class);
                }
            }
        }
        self.fast.stats.replayed_iters += iters;
        self.fast.stats.deopts += 1;
        if iters > 0 {
            self.fast_forward_state(&obs.snap, &d, iters);
        }
        if let Some(info) = self.fast.loops.get_mut(&obs.loop_pc) {
            // The loop is known-good: re-observe at the next boundary
            // (one accurately-simulated iteration re-anchors the snapshot
            // after whatever disturbance caused the de-opt).
            info.failures = 0;
            info.next_observe_at = info.boundaries;
        }
        Ok(())
    }

    /// Advances the frozen boundary state by `iters` replayed periods —
    /// bit-identical (for all future-relevant state) to having simulated
    /// them: recent clock values shift uniformly, stale ones (already in
    /// the past at the snapshot) stay, committed sequence numbers stay
    /// committed, and the component models advance via their own
    /// `fast_forward`.
    fn fast_forward_state(&mut self, snap: &Snapshot, d: &Deltas, iters: u64) {
        let shift_c = d.dc * iters;
        let shift_seq = d.dseq * iters;
        let stale = snap.cycle;
        let head = self.head_seq;
        let bump = |s: &mut Option<u64>| {
            if let Some(v) = s {
                if *v >= head {
                    *v += shift_seq;
                }
            }
        };
        for e in self.window.iter_mut() {
            for dep in e.deps.iter_mut() {
                bump(dep);
            }
            bump(&mut e.prev_mem);
            if e.pfu_ready_at > stale {
                e.pfu_ready_at += shift_c;
            }
            if e.complete_at > stale {
                e.complete_at += shift_c;
            }
            if e.issued_at > stale {
                e.issued_at += shift_c;
            }
        }
        for p in self.reg_producer.iter_mut() {
            bump(p);
        }
        bump(&mut self.hilo_producer);
        bump(&mut self.last_mem_seq);
        self.head_seq += shift_seq;
        self.next_seq += shift_seq;
        if self.dispatch_ready_at > stale {
            self.dispatch_ready_at += shift_c;
        }
        if self.fetch_ready_at > stale {
            self.fetch_ready_at += shift_c;
        }
        self.mem.fast_forward(&snap.mem, iters);
        self.pfus.fast_forward(&snap.pfus, iters, d.dc, stale);
        self.predictor.fast_forward(&snap.predictor, iters);
    }
}
