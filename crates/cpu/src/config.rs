//! Machine configuration for the T1000 simulator.

use crate::branch::BranchModel;
use crate::pfu::PfuReplacement;
use t1000_mem::MemConfig;

/// How many PFUs the machine has.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PfuCount {
    /// A fixed number of PFUs (the realistic configurations: 1, 2, 4...).
    Fixed(usize),
    /// As many PFUs as there are configurations — every extended
    /// instruction is always resident (the paper's best-case experiments).
    Unlimited,
}

impl PfuCount {
    /// The numeric bound, if finite.
    pub fn limit(self) -> Option<usize> {
        match self {
            PfuCount::Fixed(n) => Some(n),
            PfuCount::Unlimited => None,
        }
    }
}

/// Full configuration of the simulated machine.
///
/// Defaults correspond to the paper's evaluation machine (§2.2, §3.1): a
/// 4-issue out-of-order superscalar with an RUU, perfect branch prediction,
/// realistic caches and TLBs, and PFUs with a 10-cycle reconfiguration
/// penalty.
#[derive(Clone, Copy, Debug)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched into the RUU per cycle.
    pub dispatch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Register-update-unit (instruction window / reorder buffer) entries.
    pub ruu_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Fetch-queue entries between fetch and dispatch.
    pub fetch_queue: usize,
    /// Number of single-cycle integer ALUs.
    pub int_alus: u32,
    /// Number of multiply/divide units.
    pub mult_units: u32,
    /// Number of cache ports for loads/stores.
    pub mem_ports: u32,
    /// Number of programmable functional units.
    pub pfus: PfuCount,
    /// Cycles to load a PFU configuration that is not resident.
    pub reconfig_cycles: u32,
    /// PFU configuration replacement policy (the paper uses LRU).
    pub pfu_replacement: PfuReplacement,
    /// Configuration planes per PFU: 1 = the paper's blocking reload
    /// model, 2 = double-buffered (a shadow plane loads in the
    /// background while the active plane keeps executing).
    pub pfu_planes: u32,
    /// Next-config prefetch depth: how many distinct upcoming `Conf`
    /// tags in the fetch queue may trigger background configuration
    /// loads each cycle (0 = no prefetch, the paper's model).
    pub pfu_prefetch: u32,
    /// Configuration-stream compression ratio (0 < R ≤ 1): when set,
    /// each configuration's reload latency is derived from its
    /// compressed stream size (words × R cycles) instead of the flat
    /// `reconfig_cycles`. 0.0 disables per-configuration latencies.
    pub conf_compress: f64,
    /// Branch prediction model (the paper assumes perfect prediction).
    pub branch: BranchModel,
    /// Memory system parameters.
    pub mem: MemConfig,
    /// Safety valve: abort simulation after this many committed
    /// instructions (0 = no limit).
    pub max_instructions: u64,
    /// Steady-state hot-loop replay fast path (see `docs/FASTPATH.md`):
    /// once a loop's per-iteration pipeline behaviour converges, replay
    /// recorded per-iteration deltas instead of re-simulating every
    /// stage, de-opting back to the cycle-accurate path the moment the
    /// behaviour changes. Bit-identical to the accurate path by
    /// construction; on by default. Disable (`--no-fast-path`) to force
    /// every cycle through the full pipeline, e.g. when benchmarking the
    /// accurate path itself.
    pub fast_path: bool,
    /// Simulation fuel: abort the timing model after this many cycles
    /// (0 = no limit). Unlike `max_instructions`, which bounds
    /// architectural progress, `max_cycles` bounds wall-clock-equivalent
    /// simulated time, so a workload that stops committing (or commits
    /// pathologically slowly) still terminates with
    /// [`ExecError::CycleLimit`](crate::func::ExecError::CycleLimit).
    pub max_cycles: u64,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig {
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            ruu_size: 64,
            lsq_size: 32,
            fetch_queue: 16,
            int_alus: 4,
            mult_units: 1,
            mem_ports: 2,
            pfus: PfuCount::Fixed(2),
            reconfig_cycles: 10,
            pfu_replacement: PfuReplacement::Lru,
            pfu_planes: 1,
            pfu_prefetch: 0,
            conf_compress: 0.0,
            branch: BranchModel::Perfect,
            mem: MemConfig::default(),
            fast_path: true,
            max_instructions: 0,
            max_cycles: 0,
        }
    }
}

impl CpuConfig {
    /// The baseline superscalar: identical core, no PFUs. Extended
    /// instructions cannot execute on this machine.
    pub fn baseline() -> CpuConfig {
        CpuConfig {
            pfus: PfuCount::Fixed(0),
            ..CpuConfig::default()
        }
    }

    /// T1000 with `n` PFUs.
    pub fn with_pfus(n: usize) -> CpuConfig {
        CpuConfig {
            pfus: PfuCount::Fixed(n),
            ..CpuConfig::default()
        }
    }

    /// T1000 with unlimited PFUs.
    pub fn unlimited_pfus() -> CpuConfig {
        CpuConfig {
            pfus: PfuCount::Unlimited,
            ..CpuConfig::default()
        }
    }

    /// Same machine with a different reconfiguration penalty.
    pub fn reconfig(mut self, cycles: u32) -> CpuConfig {
        self.reconfig_cycles = cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_machine() {
        let c = CpuConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.ruu_size, 64);
        assert_eq!(c.reconfig_cycles, 10);
        assert_eq!(c.pfu_planes, 1, "single plane is the paper default");
        assert_eq!(c.pfu_prefetch, 0, "prefetch off by default");
        assert_eq!(c.conf_compress, 0.0, "flat reload latency by default");
    }

    #[test]
    fn constructors_set_pfu_counts() {
        assert_eq!(CpuConfig::baseline().pfus.limit(), Some(0));
        assert_eq!(CpuConfig::with_pfus(4).pfus.limit(), Some(4));
        assert_eq!(CpuConfig::unlimited_pfus().pfus.limit(), None);
        assert_eq!(CpuConfig::with_pfus(2).reconfig(500).reconfig_cycles, 500);
    }
}
