//! Observability: cycle attribution and structured pipeline event traces.
//!
//! The paper's argument rests on *where cycles go* — reconfiguration
//! stalls under greedy thrashing (Fig. 2) versus near-flat selective
//! curves (Fig. 6) — so the timing model can explain every cycle, not
//! just count them. Two instruments share one hook, the [`TraceSink`]
//! trait:
//!
//! * **Cycle attribution** — every simulated cycle is classified as
//!   either *busy* (≥ 1 instruction committed) or exactly one
//!   [`StallCause`] from a closed taxonomy, so
//!   `busy_cycles + Σ stalls == total cycles` holds by construction
//!   ([`CycleAttribution::checks_out`]).
//! * **Event traces** — discrete pipeline events ([`TraceEvent`]: PFU
//!   configuration loads/evictions/hits/prefetches, cache misses, branch
//!   redirects) for JSON-lines emission by a caller-supplied sink.
//!
//! The `Reconfig` stall cause stays a single bucket — a cycle either
//! blocked on a configuration load or it did not. The hidden/exposed
//! split of reload *traffic* (cycles of load overlap bought by prefetch
//! and double-buffered planes) is carried by the PFU counters instead
//! (`PfuStats::hidden_reload_cycles` / `exposed_reload_cycles`), so the
//! closed taxonomy is untouched by the config-plane model.
//!
//! Both are *zero-cost when disabled*: [`OooCore::run`] is monomorphized
//! over the sink, and [`NullSink`] sets the associated `const` flags
//! ([`TraceSink::EVENTS`], [`TraceSink::ATTR`]) to `false`, so every
//! instrumentation branch folds away at compile time and the release
//! simulate path is byte-for-byte the uninstrumented pipeline.
//!
//! [`OooCore::run`]: crate::ooo::OooCore::run

use std::collections::HashMap;
use t1000_isa::ConfId;

/// Why a zero-commit cycle happened. Exactly one cause is charged per
/// stalled cycle, chosen by a fixed priority cascade over the oldest
/// in-flight instruction (see `docs/METRICS.md` for the full contract):
///
/// 1. window non-empty, head waiting on a PFU configuration load →
///    [`Reconfig`](StallCause::Reconfig);
/// 2. head waiting on operands → [`DataDep`](StallCause::DataDep);
/// 3. head ready but not issued (functional units, memory ports, or
///    memory ordering) → [`FuContention`](StallCause::FuContention);
/// 4. head executing a memory access: LSQ full →
///    [`LsqFull`](StallCause::LsqFull), else RUU full →
///    [`WindowFull`](StallCause::WindowFull), else
///    [`MemData`](StallCause::MemData);
/// 5. head executing a non-memory op: every younger entry waiting on
///    operands → [`DataDep`](StallCause::DataDep) (the window is
///    serialized by a dependence chain through the head), else
///    [`ExecLatency`](StallCause::ExecLatency);
/// 6. window empty: dispatch held by a configuration load →
///    [`Reconfig`](StallCause::Reconfig); fetch stalled →
///    [`IcacheFetch`](StallCause::IcacheFetch) or
///    [`BranchRedirect`](StallCause::BranchRedirect); otherwise
///    [`FrontendEmpty`](StallCause::FrontendEmpty).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum StallCause {
    /// Window empty while fetch waits on an I-cache (or I-TLB) miss.
    IcacheFetch = 0,
    /// Window empty while fetch waits out a branch-misprediction redirect.
    BranchRedirect = 1,
    /// Window empty with fetch unblocked: startup, drain, or the fetch
    /// queue simply has not refilled yet.
    FrontendEmpty = 2,
    /// Oldest instruction (or, with an empty window, dispatch itself)
    /// waits on a PFU configuration load — the thrashing cost of §5.2.
    Reconfig = 3,
    /// Operand waits: either the oldest instruction waits for a producer,
    /// or it is executing while every younger entry waits on operands —
    /// the window is serialized by a dependence chain.
    DataDep = 4,
    /// Oldest instruction is ready but could not issue: functional-unit
    /// or memory-port contention, or in-order memory-issue ordering.
    FuContention = 5,
    /// Oldest instruction is a multi-cycle non-memory op still executing
    /// (and younger entries have independent work in flight).
    ExecLatency = 6,
    /// Oldest instruction is a load/store still waiting on the data
    /// memory hierarchy.
    MemData = 7,
    /// Oldest instruction is a memory access *and* the RUU window is full
    /// (dispatch backpressure).
    WindowFull = 8,
    /// Oldest instruction is a memory access *and* the LSQ is full
    /// (dispatch backpressure).
    LsqFull = 9,
}

/// Number of distinct [`StallCause`] variants (the taxonomy is closed).
pub const NUM_STALL_CAUSES: usize = 10;

/// Every stall cause, in canonical (JSON schema) order.
pub const STALL_CAUSES: [StallCause; NUM_STALL_CAUSES] = [
    StallCause::IcacheFetch,
    StallCause::BranchRedirect,
    StallCause::FrontendEmpty,
    StallCause::Reconfig,
    StallCause::DataDep,
    StallCause::FuContention,
    StallCause::ExecLatency,
    StallCause::MemData,
    StallCause::WindowFull,
    StallCause::LsqFull,
];

impl StallCause {
    /// Index into [`CycleAttribution::stalls`] (and [`STALL_CAUSES`]).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case key used in every JSON artifact.
    pub const fn key(self) -> &'static str {
        match self {
            StallCause::IcacheFetch => "icache_fetch",
            StallCause::BranchRedirect => "branch_redirect",
            StallCause::FrontendEmpty => "frontend_empty",
            StallCause::Reconfig => "reconfig",
            StallCause::DataDep => "data_dep",
            StallCause::FuContention => "fu_contention",
            StallCause::ExecLatency => "exec_latency",
            StallCause::MemData => "mem_data",
            StallCause::WindowFull => "window_full",
            StallCause::LsqFull => "lsq_full",
        }
    }

    /// Inverse of [`StallCause::key`].
    pub fn from_key(key: &str) -> Option<StallCause> {
        STALL_CAUSES.iter().copied().find(|c| c.key() == key)
    }
}

/// Where the cycles of one timed run went. The stall counters plus
/// `busy_cycles` partition `total_cycles` exactly; `commit_bound_cycles`
/// is a diagnostic *subset* of `busy_cycles` (cycles that committed a
/// full commit-width with more work ready) and is not part of the
/// partition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles classified (equals the run's total cycle count).
    pub total_cycles: u64,
    /// Cycles that committed at least one instruction.
    pub busy_cycles: u64,
    /// Busy cycles that committed `commit_width` instructions while the
    /// next instruction was also ready to commit — the run was
    /// commit-bandwidth-bound in those cycles. Subset of `busy_cycles`.
    pub commit_bound_cycles: u64,
    /// Stalled cycles, indexed by [`StallCause::index`].
    pub stalls: [u64; NUM_STALL_CAUSES],
}

impl CycleAttribution {
    /// Cycles charged to `cause`.
    pub fn stall(&self, cause: StallCause) -> u64 {
        self.stalls[cause.index()]
    }

    /// Total stalled (zero-commit) cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// The accounting invariant: busy + stalled cycles cover the run
    /// exactly. Holds by construction; exposed so artifact validators and
    /// tests can assert it end-to-end.
    pub fn checks_out(&self) -> bool {
        self.busy_cycles + self.stall_cycles() == self.total_cycles
            && self.commit_bound_cycles <= self.busy_cycles
    }
}

/// Per-PC stall counters (cycles charged to the instruction at each PC),
/// the substrate for per-loop roll-ups.
pub type PcStalls = HashMap<u32, [u64; NUM_STALL_CAUSES]>;

/// How the pipeline spent one cycle — the argument to
/// [`TraceSink::cycle`].
#[derive(Clone, Copy, Debug)]
pub enum CycleClass {
    /// At least one instruction committed.
    Busy {
        /// Instructions committed this cycle.
        commits: u32,
        /// The full commit width was used and more work was ready.
        commit_bound: bool,
    },
    /// No instruction committed; `cause` says why.
    Stall {
        cause: StallCause,
        /// PC of the instruction the cycle is charged to (the oldest
        /// in-flight instruction, or the stalled fetch PC). `None` when
        /// no instruction is identifiable (e.g. startup/drain).
        pc: Option<u32>,
    },
}

/// A discrete pipeline event, emitted through [`TraceSink::event`] when
/// [`TraceSink::EVENTS`] is true.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Dispatch-stage tag check missed: a PFU begins loading `conf`,
    /// evicting `evicted` (if the chosen PFU held one). Execution may
    /// start at `ready_at`.
    ConfLoad {
        cycle: u64,
        pc: u32,
        conf: ConfId,
        evicted: Option<ConfId>,
        ready_at: u64,
    },
    /// Dispatch-stage tag check hit: `conf` already resident.
    ConfHit { cycle: u64, pc: u32, conf: ConfId },
    /// Next-config prefetch (`--pfu-prefetch`): a background load of
    /// `conf` started for an upcoming `Conf` tag seen in the fetch
    /// queue; it lands at `ready_at`. If the configuration is demanded
    /// before then, only the remainder is exposed (see
    /// `PfuStats::hidden_reload_cycles`).
    ConfPrefetch {
        cycle: u64,
        conf: ConfId,
        ready_at: u64,
    },
    /// A fetch (`fetch == true`) or data access missed in the L1 cache
    /// (or its TLB) and paid `latency` cycles in total.
    CacheMiss {
        cycle: u64,
        addr: u32,
        fetch: bool,
        write: bool,
        latency: u32,
    },
    /// A conditional branch at `pc` mispredicted; fetch is redirected
    /// after `penalty` cycles.
    BranchRedirect { cycle: u64, pc: u32, penalty: u32 },
}

/// Receiver for pipeline observability, monomorphized into
/// [`OooCore::run_with`](crate::ooo::OooCore::run_with). The two
/// associated consts gate instrumentation at compile time: with both
/// `false` (the [`NullSink`] default used by
/// [`simulate`](crate::machine::simulate)) the timing model contains no
/// observability code at all.
pub trait TraceSink {
    /// Invoke [`TraceSink::event`] for pipeline events.
    const EVENTS: bool;
    /// Invoke [`TraceSink::cycle`] once per simulated cycle.
    const ATTR: bool;

    /// One pipeline event (only called when `EVENTS` is true).
    fn event(&mut self, event: TraceEvent) {
        let _ = event;
    }

    /// One cycle's classification (only called when `ATTR` is true).
    fn cycle(&mut self, class: CycleClass) {
        let _ = class;
    }
}

/// The disabled sink: all hooks compile away.
pub struct NullSink;

impl TraceSink for NullSink {
    const EVENTS: bool = false;
    const ATTR: bool = false;
}

/// A [`TraceSink`] that accumulates a [`CycleAttribution`], optionally
/// with per-PC roll-ups ([`AttrCollector::with_per_pc`]). Ignores events.
#[derive(Default)]
pub struct AttrCollector {
    /// The aggregate attribution collected so far.
    pub attr: CycleAttribution,
    per_pc: Option<PcStalls>,
}

impl AttrCollector {
    /// Aggregate-only collection (the cheap mode the bench engine uses).
    pub fn new() -> AttrCollector {
        AttrCollector::default()
    }

    /// Also keep per-PC stall counters, for per-loop roll-ups.
    pub fn with_per_pc() -> AttrCollector {
        AttrCollector {
            attr: CycleAttribution::default(),
            per_pc: Some(HashMap::new()),
        }
    }

    /// Per-PC stall counters, if enabled. Stalls with no attributable PC
    /// (e.g. [`StallCause::FrontendEmpty`]) appear only in the aggregate,
    /// so the per-PC sums are a lower bound of [`CycleAttribution::stalls`].
    pub fn per_pc(&self) -> Option<&PcStalls> {
        self.per_pc.as_ref()
    }

    /// Consumes the collector, yielding the aggregate attribution and the
    /// per-PC counters (if collected).
    pub fn into_parts(self) -> (CycleAttribution, Option<PcStalls>) {
        (self.attr, self.per_pc)
    }
}

impl TraceSink for AttrCollector {
    const EVENTS: bool = false;
    const ATTR: bool = true;

    #[inline]
    fn cycle(&mut self, class: CycleClass) {
        self.attr.total_cycles += 1;
        match class {
            CycleClass::Busy { commit_bound, .. } => {
                self.attr.busy_cycles += 1;
                if commit_bound {
                    self.attr.commit_bound_cycles += 1;
                }
            }
            CycleClass::Stall { cause, pc } => {
                self.attr.stalls[cause.index()] += 1;
                if let (Some(map), Some(pc)) = (self.per_pc.as_mut(), pc) {
                    map.entry(pc).or_default()[cause.index()] += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_closed_and_keys_round_trip() {
        assert_eq!(STALL_CAUSES.len(), NUM_STALL_CAUSES);
        for (i, c) in STALL_CAUSES.iter().enumerate() {
            assert_eq!(c.index(), i, "canonical order must match indices");
            assert_eq!(StallCause::from_key(c.key()), Some(*c));
        }
        assert_eq!(StallCause::from_key("bogus"), None);
        // Keys are distinct.
        let keys: std::collections::HashSet<_> = STALL_CAUSES.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), NUM_STALL_CAUSES);
    }

    #[test]
    fn collector_partitions_cycles() {
        let mut c = AttrCollector::with_per_pc();
        c.cycle(CycleClass::Busy {
            commits: 4,
            commit_bound: true,
        });
        c.cycle(CycleClass::Busy {
            commits: 1,
            commit_bound: false,
        });
        c.cycle(CycleClass::Stall {
            cause: StallCause::DataDep,
            pc: Some(0x40_0000),
        });
        c.cycle(CycleClass::Stall {
            cause: StallCause::FrontendEmpty,
            pc: None,
        });
        let a = &c.attr;
        assert_eq!(a.total_cycles, 4);
        assert_eq!(a.busy_cycles, 2);
        assert_eq!(a.commit_bound_cycles, 1);
        assert_eq!(a.stall(StallCause::DataDep), 1);
        assert_eq!(a.stall_cycles(), 2);
        assert!(a.checks_out());
        let per_pc = c.per_pc().unwrap();
        assert_eq!(
            per_pc[&0x40_0000][StallCause::DataDep.index()],
            1,
            "pc-attributed stall must be recorded"
        );
        assert_eq!(per_pc.len(), 1, "pc-less stalls stay aggregate-only");
    }

    #[test]
    fn null_sink_is_fully_disabled() {
        const {
            assert!(!NullSink::EVENTS);
            assert!(!NullSink::ATTR);
        }
    }
}
