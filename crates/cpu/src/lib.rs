//! # t1000-cpu — the T1000 processor simulator
//!
//! An execute-at-fetch simulator of the T1000 architecture: a 4-issue
//! out-of-order superscalar (RUU-based, perfect branch prediction,
//! realistic caches and TLBs) whose datapath contains programmable
//! functional units (PFUs) executing compile-time-selected *extended
//! instructions* in a single cycle.
//!
//! * [`func::FuncCore`] — architectural execution with exact semantics,
//!   producing the dynamic instruction stream (fusion applied at fetch);
//! * [`ooo::OooCore`] — the cycle-level timing model;
//! * [`pfu::PfuArray`] — PFU configuration residency, LRU replacement and
//!   reconfiguration penalties;
//! * [`machine::simulate`] — one-call program → [`machine::RunResult`].

pub mod branch;
pub mod config;
pub mod func;
pub mod machine;
pub mod ooo;
pub mod pfu;
pub mod syscall;

pub use branch::{BranchModel, BranchStats, Predictor};
pub use config::{CpuConfig, PfuCount};
pub use func::{DynInstr, ExecError, FuncCore};
pub use machine::{execute, simulate, RunResult};
pub use ooo::{OooCore, TimingStats};
pub use pfu::{PfuArray, PfuReplacement, PfuStats};
pub use syscall::{Syscall, SyscallState};
