//! # t1000-cpu — the T1000 processor simulator
//!
//! An execute-at-fetch simulator of the T1000 architecture: a 4-issue
//! out-of-order superscalar (RUU-based, perfect branch prediction,
//! realistic caches and TLBs) whose datapath contains programmable
//! functional units (PFUs) executing compile-time-selected *extended
//! instructions* in a single cycle.
//!
//! * [`func::FuncCore`] — architectural execution with exact semantics,
//!   producing the dynamic instruction stream (fusion applied at fetch);
//! * [`ooo::OooCore`] — the cycle-level timing model;
//! * [`pfu::PfuArray`] — PFU configuration residency, LRU replacement and
//!   reconfiguration penalties;
//! * [`branch::Predictor`] — perfect/bimodal branch prediction;
//! * [`observe`] — zero-cost-when-disabled cycle attribution and event
//!   traces (see `docs/METRICS.md` for the full schema);
//! * [`machine::simulate`] — one-call program → [`machine::RunResult`];
//!   [`machine::simulate_with`] is the observed variant.
//!
//! A complete timed run in five lines:
//!
//! ```
//! use t1000_cpu::{simulate, CpuConfig};
//! use t1000_isa::FusionMap;
//!
//! let program = t1000_asm::assemble("main:\n li $v0, 10\n syscall\n").unwrap();
//! let run = simulate(&program, &FusionMap::new(), CpuConfig::baseline()).unwrap();
//! assert_eq!(run.timing.base_instructions, 2);
//! assert!(run.timing.cycles > 0);
//! ```

// Robustness gate: library code must surface failures as typed errors, not
// panics. Tests keep the ergonomic forms.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod branch;
pub mod config;
pub mod func;
pub mod machine;
pub mod observe;
pub mod ooo;
pub mod pfu;
pub mod syscall;

pub use branch::{BranchModel, BranchStats, Predictor};
pub use config::{CpuConfig, PfuCount};
pub use func::{DynInstr, ExecError, FuncCore};
pub use machine::{execute, simulate, simulate_with, simulate_with_faults, RunResult};
pub use observe::{
    AttrCollector, CycleAttribution, CycleClass, NullSink, PcStalls, StallCause, TraceEvent,
    TraceSink, NUM_STALL_CAUSES, STALL_CAUSES,
};
pub use ooo::{FastPathStats, OooCore, TimingStats};
pub use pfu::{PfuArray, PfuOutcome, PfuReplacement, PfuStats};
pub use syscall::{Syscall, SyscallState};
