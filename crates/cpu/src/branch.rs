//! Branch prediction models.
//!
//! The paper's evaluation machine uses *perfect* branch prediction (§3.1).
//! To study how sensitive the PFU speedups are to that assumption, the
//! simulator also offers the classic static heuristic (backward taken /
//! forward not-taken), a bimodal predictor (a table of 2-bit saturating
//! counters indexed by branch PC) and a gshare predictor (counters indexed
//! by PC xor global history), each with a fixed misprediction redirect
//! penalty. Unconditional jumps and calls are always predicted; indirect
//! jumps (`jr`) are assumed to be returns handled by a perfect
//! return-address stack.

/// Which predictor the fetch stage consults.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BranchModel {
    /// Fetch always follows the committed path (the paper's assumption).
    #[default]
    Perfect,
    /// Static backward-taken / forward-not-taken: loop-closing branches
    /// (negative displacement) predict taken, forward branches predict
    /// not-taken. No state.
    Static {
        /// Cycles fetch stalls after a misprediction.
        penalty: u32,
    },
    /// Bimodal 2-bit counters.
    Bimodal {
        /// Table entries (power of two).
        entries: u32,
        /// Cycles fetch stalls after a misprediction.
        penalty: u32,
    },
    /// Gshare: 2-bit counters indexed by PC xor a global branch-history
    /// shift register (history length = log2(entries)).
    Gshare {
        /// Table entries (power of two).
        entries: u32,
        /// Cycles fetch stalls after a misprediction.
        penalty: u32,
    },
}

/// Prediction statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches fetched.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Fraction of conditional branches predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// Runtime predictor state.
#[derive(Clone)]
pub struct Predictor {
    model: BranchModel,
    /// 2-bit counters (0..=3; ≥2 predicts taken). Initialised weakly taken
    /// (2) — loop branches warm up instantly.
    counters: Vec<u8>,
    /// Global branch-history shift register (gshare only): bit 0 is the
    /// most recent branch outcome, 1 = taken.
    history: u32,
    stats: BranchStats,
}

impl Predictor {
    /// Builds a predictor for the chosen model.
    ///
    /// # Panics
    /// Panics if a bimodal/gshare table size is not a power of two.
    pub fn new(model: BranchModel) -> Predictor {
        let counters = match model {
            BranchModel::Perfect | BranchModel::Static { .. } => Vec::new(),
            BranchModel::Bimodal { entries, .. } | BranchModel::Gshare { entries, .. } => {
                assert!(
                    entries.is_power_of_two(),
                    "predictor entries must be a power of two"
                );
                vec![2u8; entries as usize]
            }
        };
        Predictor {
            model,
            counters,
            history: 0,
            stats: BranchStats::default(),
        }
    }

    /// Records one conditional branch at `pc` with actual direction
    /// `taken` (`backward` = negative displacement, i.e. a loop-closing
    /// branch); returns the misprediction penalty to charge (0 on a
    /// correct prediction or under perfect prediction).
    pub fn observe(&mut self, pc: u32, taken: bool, backward: bool) -> u32 {
        self.stats.branches += 1;
        match self.model {
            BranchModel::Perfect => 0,
            BranchModel::Static { penalty } => {
                // Backward taken, forward not-taken.
                if backward == taken {
                    0
                } else {
                    self.stats.mispredictions += 1;
                    penalty
                }
            }
            BranchModel::Bimodal { entries, penalty } => {
                let idx = ((pc >> 2) & (entries - 1)) as usize;
                self.update_counter(idx, taken, penalty)
            }
            BranchModel::Gshare { entries, penalty } => {
                let idx = (((pc >> 2) ^ self.history) & (entries - 1)) as usize;
                let p = self.update_counter(idx, taken, penalty);
                // Shift the outcome into the global history, keeping only
                // the index-width bits that can reach the table.
                self.history = ((self.history << 1) | taken as u32) & (entries - 1);
                p
            }
        }
    }

    /// Predict-update step on counter `idx`; returns the penalty charged.
    fn update_counter(&mut self, idx: usize, taken: bool, penalty: u32) -> u32 {
        let ctr = &mut self.counters[idx];
        let predicted = *ctr >= 2;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        if predicted == taken {
            0
        } else {
            self.stats.mispredictions += 1;
            penalty
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Steady-state equivalence with a snapshot `base` for the hot-loop
    /// replay fast path: the counter table and global history are
    /// unchanged (a loop's branch pattern shifts the history back to the
    /// same value each iteration once periodic) and the period produced
    /// no mispredictions, so repeating it only advances the branch count.
    pub(crate) fn steady_eq(&self, base: &Predictor) -> bool {
        self.stats.mispredictions == base.stats.mispredictions
            && self.history == base.history
            && self.counters == base.counters
    }

    /// Advances by `iters` repetitions of the redirect-free period
    /// between `base` and `self` (requires [`Predictor::steady_eq`]).
    pub(crate) fn fast_forward(&mut self, base: &Predictor, iters: u64) {
        self.stats.branches += (self.stats.branches - base.stats.branches) * iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_mispredicts() {
        let mut p = Predictor::new(BranchModel::Perfect);
        for i in 0..100 {
            assert_eq!(p.observe(0x400000 + i * 4, i % 3 == 0, false), 0);
        }
        assert_eq!(p.stats().mispredictions, 0);
        assert_eq!(p.stats().branches, 100);
        assert_eq!(p.stats().accuracy(), 1.0);
    }

    #[test]
    fn bimodal_learns_a_loop_branch() {
        let mut p = Predictor::new(BranchModel::Bimodal {
            entries: 64,
            penalty: 5,
        });
        let mut penalty = 0;
        // A loop branch taken 99 times then falling through once.
        for _ in 0..99 {
            penalty += p.observe(0x400100, true, true);
        }
        penalty += p.observe(0x400100, false, true);
        // Weakly-taken init: no warm-up misses; exactly the exit mispredicts.
        assert_eq!(penalty, 5);
        assert_eq!(p.stats().mispredictions, 1);
        assert!(p.stats().accuracy() > 0.98);
    }

    #[test]
    fn bimodal_struggles_with_alternating_branches() {
        let mut p = Predictor::new(BranchModel::Bimodal {
            entries: 64,
            penalty: 5,
        });
        let mut misses = 0;
        for i in 0..100 {
            if p.observe(0x400200, i % 2 == 0, false) > 0 {
                misses += 1;
            }
        }
        assert!(
            misses >= 45,
            "alternation defeats a bimodal predictor, got {misses}"
        );
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = Predictor::new(BranchModel::Bimodal {
            entries: 64,
            penalty: 5,
        });
        // Train one branch strongly not-taken...
        for _ in 0..10 {
            p.observe(0x400300, false, false);
        }
        // ...a different branch is unaffected (still weakly taken).
        assert_eq!(p.observe(0x400304, true, false), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        Predictor::new(BranchModel::Bimodal {
            entries: 100,
            penalty: 5,
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_gshare_table_size_panics() {
        Predictor::new(BranchModel::Gshare {
            entries: 48,
            penalty: 5,
        });
    }

    #[test]
    fn static_predicts_backward_taken_forward_not_taken() {
        let mut p = Predictor::new(BranchModel::Static { penalty: 3 });
        // Loop branch: backward and taken — correct.
        assert_eq!(p.observe(0x400100, true, true), 0);
        // Loop exit: backward but not taken — mispredicted.
        assert_eq!(p.observe(0x400100, false, true), 3);
        // Forward guard not taken — correct.
        assert_eq!(p.observe(0x400200, false, false), 0);
        // Forward branch taken — mispredicted.
        assert_eq!(p.observe(0x400200, true, false), 3);
        assert_eq!(p.stats().branches, 4);
        assert_eq!(p.stats().mispredictions, 2);
    }

    #[test]
    fn gshare_learns_an_alternating_pattern_bimodal_cannot() {
        let run = |model| {
            let mut p = Predictor::new(model);
            let mut misses = 0u32;
            for i in 0..200 {
                if p.observe(0x400200, i % 2 == 0, false) > 0 {
                    misses += 1;
                }
            }
            misses
        };
        let gshare = run(BranchModel::Gshare {
            entries: 64,
            penalty: 5,
        });
        let bimodal = run(BranchModel::Bimodal {
            entries: 64,
            penalty: 5,
        });
        // With the last outcome in the index, the alternating pattern maps
        // to two counters that each see a constant direction.
        assert!(
            gshare < 10,
            "gshare should lock onto alternation, missed {gshare}"
        );
        assert!(bimodal >= 90, "bimodal must keep missing, got {bimodal}");
    }

    #[test]
    fn gshare_history_separates_correlated_paths() {
        // Branch B is taken exactly when the previous branch was taken.
        let mut p = Predictor::new(BranchModel::Gshare {
            entries: 256,
            penalty: 5,
        });
        let mut misses = 0u32;
        for i in 0..300 {
            let a_taken = i % 3 == 0;
            p.observe(0x400400, a_taken, false);
            if p.observe(0x400404, a_taken, false) > 0 && i > 20 {
                misses += 1;
            }
        }
        assert!(
            misses < 15,
            "gshare should exploit the correlation, missed {misses}"
        );
    }
}
