//! Branch prediction models.
//!
//! The paper's evaluation machine uses *perfect* branch prediction (§3.1).
//! To study how sensitive the PFU speedups are to that assumption, the
//! simulator also offers a classic bimodal predictor (a table of 2-bit
//! saturating counters indexed by branch PC) with a fixed misprediction
//! redirect penalty. Unconditional jumps and calls are always predicted;
//! indirect jumps (`jr`) are assumed to be returns handled by a perfect
//! return-address stack.

/// Which predictor the fetch stage consults.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BranchModel {
    /// Fetch always follows the committed path (the paper's assumption).
    #[default]
    Perfect,
    /// Bimodal 2-bit counters.
    Bimodal {
        /// Table entries (power of two).
        entries: u32,
        /// Cycles fetch stalls after a misprediction.
        penalty: u32,
    },
}

/// Prediction statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches fetched.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Fraction of conditional branches predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// Runtime predictor state.
#[derive(Clone)]
pub struct Predictor {
    model: BranchModel,
    /// 2-bit counters (0..=3; ≥2 predicts taken). Initialised weakly taken
    /// (2) — loop branches warm up instantly.
    counters: Vec<u8>,
    stats: BranchStats,
}

impl Predictor {
    /// Builds a predictor for the chosen model.
    ///
    /// # Panics
    /// Panics if a bimodal table size is not a power of two.
    pub fn new(model: BranchModel) -> Predictor {
        let counters = match model {
            BranchModel::Perfect => Vec::new(),
            BranchModel::Bimodal { entries, .. } => {
                assert!(
                    entries.is_power_of_two(),
                    "predictor entries must be a power of two"
                );
                vec![2u8; entries as usize]
            }
        };
        Predictor {
            model,
            counters,
            stats: BranchStats::default(),
        }
    }

    /// Records one conditional branch at `pc` with actual direction
    /// `taken`; returns the misprediction penalty to charge (0 on a
    /// correct prediction or under perfect prediction).
    pub fn observe(&mut self, pc: u32, taken: bool) -> u32 {
        self.stats.branches += 1;
        match self.model {
            BranchModel::Perfect => 0,
            BranchModel::Bimodal { entries, penalty } => {
                let idx = ((pc >> 2) & (entries - 1)) as usize;
                let ctr = &mut self.counters[idx];
                let predicted = *ctr >= 2;
                if taken {
                    *ctr = (*ctr + 1).min(3);
                } else {
                    *ctr = ctr.saturating_sub(1);
                }
                if predicted == taken {
                    0
                } else {
                    self.stats.mispredictions += 1;
                    penalty
                }
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Steady-state equivalence with a snapshot `base` for the hot-loop
    /// replay fast path: the counter table is unchanged (saturated loop
    /// branches stop moving their counters) and the period produced no
    /// mispredictions, so repeating it only advances the branch count.
    pub(crate) fn steady_eq(&self, base: &Predictor) -> bool {
        self.stats.mispredictions == base.stats.mispredictions && self.counters == base.counters
    }

    /// Advances by `iters` repetitions of the redirect-free period
    /// between `base` and `self` (requires [`Predictor::steady_eq`]).
    pub(crate) fn fast_forward(&mut self, base: &Predictor, iters: u64) {
        self.stats.branches += (self.stats.branches - base.stats.branches) * iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_mispredicts() {
        let mut p = Predictor::new(BranchModel::Perfect);
        for i in 0..100 {
            assert_eq!(p.observe(0x400000 + i * 4, i % 3 == 0), 0);
        }
        assert_eq!(p.stats().mispredictions, 0);
        assert_eq!(p.stats().branches, 100);
        assert_eq!(p.stats().accuracy(), 1.0);
    }

    #[test]
    fn bimodal_learns_a_loop_branch() {
        let mut p = Predictor::new(BranchModel::Bimodal {
            entries: 64,
            penalty: 5,
        });
        let mut penalty = 0;
        // A loop branch taken 99 times then falling through once.
        for _ in 0..99 {
            penalty += p.observe(0x400100, true);
        }
        penalty += p.observe(0x400100, false);
        // Weakly-taken init: no warm-up misses; exactly the exit mispredicts.
        assert_eq!(penalty, 5);
        assert_eq!(p.stats().mispredictions, 1);
        assert!(p.stats().accuracy() > 0.98);
    }

    #[test]
    fn bimodal_struggles_with_alternating_branches() {
        let mut p = Predictor::new(BranchModel::Bimodal {
            entries: 64,
            penalty: 5,
        });
        let mut misses = 0;
        for i in 0..100 {
            if p.observe(0x400200, i % 2 == 0) > 0 {
                misses += 1;
            }
        }
        assert!(
            misses >= 45,
            "alternation defeats a bimodal predictor, got {misses}"
        );
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = Predictor::new(BranchModel::Bimodal {
            entries: 64,
            penalty: 5,
        });
        // Train one branch strongly not-taken...
        for _ in 0..10 {
            p.observe(0x400300, false);
        }
        // ...a different branch is unaffected (still weakly taken).
        assert_eq!(p.observe(0x400304, true), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        Predictor::new(BranchModel::Bimodal {
            entries: 100,
            penalty: 5,
        });
    }
}
