//! Property tests for the hardware-cost model: elaborated netlists
//! compute exactly the 32-bit ISA semantics whenever inputs and all
//! intermediate results fit the datapath width — the soundness condition
//! the bitwidth profile guarantees for selected sequences.

use proptest::prelude::*;
use t1000_hwcost::{cost_of, elaborate};
use t1000_isa::{Instr, Op, Reg};

fn r(n: u8) -> Reg {
    Reg::new(n)
}

/// A random dependent chain: each instruction combines the running value
/// (in $t2) with one of the two inputs ($t0, $t1).
fn arb_chain() -> impl Strategy<Value = Vec<Instr>> {
    let first = prop::sample::select(vec![Op::Addu, Op::Subu, Op::Xor, Op::And, Op::Or])
        .prop_map(|op| Instr::rtype(op, r(10), r(8), r(9)));
    let step = prop_oneof![
        (
            prop::sample::select(vec![Op::Addu, Op::Subu, Op::Xor, Op::And, Op::Or, Op::Nor]),
            prop::bool::ANY
        )
            .prop_map(|(op, use_b)| {
                Instr::rtype(op, r(10), r(10), if use_b { r(9) } else { r(8) })
            }),
        (
            prop::sample::select(vec![Op::Sll, Op::Srl, Op::Sra]),
            1u32..3
        )
            .prop_map(|(op, sh)| Instr::shift(op, r(10), r(10), sh)),
        (0i32..255).prop_map(|imm| Instr::itype(Op::Addiu, r(10), r(10), imm)),
        (1i32..4095).prop_map(|imm| Instr::itype(Op::Andi, r(10), r(10), imm)),
    ];
    (first, prop::collection::vec(step, 1..7))
        .prop_map(|(f, rest)| std::iter::once(f).chain(rest).collect())
}

/// 32-bit software evaluation of the chain.
fn soft_eval(chain: &[Instr], a: u32, b: u32) -> Vec<u32> {
    let mut env = [0u32; 32];
    env[8] = a;
    env[9] = b;
    let mut intermediates = Vec::new();
    for i in chain {
        let rs = env[i.rs.index()];
        let rt = env[i.rt.index()];
        let v = match i.op {
            Op::Addu => rs.wrapping_add(rt),
            Op::Subu => rs.wrapping_sub(rt),
            Op::Xor => rs ^ rt,
            Op::And => rs & rt,
            Op::Or => rs | rt,
            Op::Nor => !(rs | rt),
            Op::Sll => rt << (i.imm & 31),
            Op::Srl => rt >> (i.imm & 31),
            Op::Sra => ((rt as i32) >> (i.imm & 31)) as u32,
            Op::Addiu => rs.wrapping_add(i.imm as u32),
            Op::Andi => rs & (i.imm as u32 & 0xffff),
            _ => unreachable!(),
        };
        env[i.def().unwrap().index()] = v;
        intermediates.push(v);
    }
    intermediates
}

/// Signed width of a value (mirror of the profiler's).
fn width(v: u32) -> u32 {
    let v = v as i32;
    if v >= 0 {
        33 - (v as u32).leading_zeros()
    } else {
        33 - (v as u32).leading_ones()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn netlist_matches_semantics_when_widths_fit(
        chain in arb_chain(),
        a in -2000i32..2000,
        b in -2000i32..2000,
    ) {
        let w: u8 = 18;
        let values = soft_eval(&chain, a as u32, b as u32);
        // Soundness precondition: inputs and every intermediate fit.
        prop_assume!(width(a as u32) <= w as u32 && width(b as u32) <= w as u32);
        prop_assume!(values.iter().all(|&v| width(v) <= w as u32));

        let (netlist, inputs) = elaborate(&chain, w);
        prop_assume!(!inputs.is_empty());
        let hw = netlist.evaluate(&|name, bit| {
            // Inputs bind in first-use order.
            let idx: usize = name.strip_prefix("in").unwrap().parse().unwrap();
            let reg = inputs[idx];
            let v = if reg == r(8) { a as u32 } else { b as u32 };
            v >> bit & 1 == 1
        });
        let expect = u64::from(*values.last().unwrap()) & ((1u64 << w) - 1);
        prop_assert_eq!(hw, expect, "chain: {:?}", chain);
    }

    #[test]
    fn lut_cost_is_monotone_in_width(chain in arb_chain()) {
        let narrow = cost_of(&chain, 8);
        let wide = cost_of(&chain, 24);
        prop_assert!(wide.luts >= narrow.luts);
        prop_assert!(wide.depth >= narrow.depth);
    }

    #[test]
    fn deeper_chains_never_get_shallower(chain in arb_chain()) {
        // Appending an add must not reduce depth or LUTs.
        let mut longer = chain.clone();
        longer.push(Instr::rtype(Op::Addu, r(10), r(10), r(8)));
        let base = cost_of(&chain, 16);
        let more = cost_of(&longer, 16);
        prop_assert!(more.luts >= base.luts);
        prop_assert!(more.depth >= base.depth);
    }
}
