//! Scenario tests for the LUT mapper on structures with known-good
//! mappings, pinning down the cost model the Fig. 7 histogram rests on.

use t1000_hwcost::{cost_of, map_to_luts, Netlist};
use t1000_isa::{Instr, Op, Reg};

fn r(n: u8) -> Reg {
    Reg::new(n)
}

#[test]
fn wide_xor_tree_packs_two_levels_per_lut_layer() {
    // XOR of 16 single-bit inputs: a binary tree of 15 xors. Perfect
    // 4-LUT packing gives ceil(15/3)=5 LUTs in 2 levels.
    let mut n = Netlist::new();
    let leaves: Vec<_> = (0..16).map(|i| n.input(&format!("x{i}"), 1)[0]).collect();
    let mut layer = leaves;
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    n.xor(pair[0], pair[1])
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    n.set_outputs(&[layer[0]]);
    let m = map_to_luts(&n);
    assert!(
        m.luts <= 8,
        "greedy cover of a 16-xor tree took {} LUTs",
        m.luts
    );
    assert!(m.depth <= 3, "depth {}", m.depth);
    assert!(m.luts >= 5, "information bound: 16 inputs need ≥5 4-LUTs");
}

#[test]
fn known_instruction_costs_are_stable() {
    // Pin exact costs for representative instructions so accidental cost
    // model changes are caught (these feed Fig. 7).
    let cases: Vec<(Vec<Instr>, u32)> = vec![
        // 16-bit add: one LUT per bit on the carry chain.
        (vec![Instr::rtype(Op::Addu, r(10), r(8), r(9))], 16),
        // add then xor with an input: 16 carry LUTs + 16 xor LUTs.
        (
            vec![
                Instr::rtype(Op::Addu, r(10), r(8), r(9)),
                Instr::rtype(Op::Xor, r(10), r(10), r(8)),
            ],
            32,
        ),
        // Constant shift: free.
        (vec![Instr::shift(Op::Sll, r(10), r(8), 3)], 0),
        // slt: one extended subtract chain (W+1 bits).
        (vec![Instr::rtype(Op::Slt, r(10), r(8), r(9))], 17),
    ];
    for (seq, expect) in cases {
        let c = cost_of(&seq, 16);
        assert_eq!(c.luts, expect, "sequence {seq:?}");
    }
}

#[test]
fn paper_figure3_sequence_cost_is_modest() {
    // The paper's running example: sll;addu;sll — at 18 bits this is one
    // adder plus wiring.
    let seq = vec![
        Instr::shift(Op::Sll, r(10), r(8), 4),
        Instr::rtype(Op::Addu, r(10), r(10), r(9)),
        Instr::shift(Op::Sll, r(10), r(10), 2),
    ];
    let c = cost_of(&seq, 18);
    assert_eq!(c.luts, 18, "only the addu consumes LUTs");
    assert_eq!(c.depth, 1);
    assert!(c.single_cycle());
}

#[test]
fn variable_shift_is_much_more_expensive_than_constant() {
    let constant = cost_of(&[Instr::shift(Op::Sll, r(10), r(8), 4)], 16);
    let variable = cost_of(
        &[Instr {
            op: Op::Sllv,
            rd: r(10),
            rs: r(9),
            rt: r(8),
            imm: 0,
            target: 0,
        }],
        16,
    );
    assert_eq!(constant.luts, 0);
    assert!(
        variable.luts >= 16 * 3,
        "a 16-bit barrel shifter needs ≥3 mux stages, got {}",
        variable.luts
    );
    assert!(variable.depth >= 3);
}

#[test]
fn eight_op_chains_fit_the_single_cycle_budget_at_narrow_width() {
    // The longest sequences the paper selects (8 ops) at narrow widths
    // must still map within the single-cycle depth.
    let mut seq = vec![Instr::rtype(Op::Addu, r(10), r(8), r(9))];
    for k in 0..7 {
        let op = [
            Op::Xor,
            Op::Addu,
            Op::And,
            Op::Subu,
            Op::Or,
            Op::Addu,
            Op::Xor,
        ][k];
        seq.push(Instr::rtype(op, r(10), r(10), r(9)));
    }
    let c = cost_of(&seq, 12);
    assert!(c.single_cycle(), "depth {} at 12 bits", c.depth);
    assert!(c.luts < 150, "{} LUTs", c.luts);
}
