//! Hardware cost of an extended instruction.
//!
//! Elaborates a fused sequence's skeleton into a bit-level netlist at the
//! *profiled* operand width `W` and maps it onto 4-LUTs. This replaces the
//! paper's VHDL + Xilinx Foundation flow (§3.2, §6).
//!
//! Width soundness: the bitwidth profile guarantees that every source
//! operand and every (intermediate and final) result of the sequence fits
//! in `W` signed bits on every dynamic execution. Under that guarantee a
//! fixed-`W` two's-complement datapath computes exactly the 32-bit ISA
//! semantics: all candidate ops (add/sub/logic/shift/compare) agree modulo
//! 2^W with their 32-bit versions when inputs and outputs fit, and
//! sign-extension preserves both signed and unsigned comparison order.
//! The property tests in this module exercise that equivalence.

use crate::mapper::{map_to_luts, LutMapping};
use crate::netlist::{Netlist, NodeId};
use std::collections::HashMap;
use t1000_isa::{Instr, Op, Reg};

/// Maximum LUT levels compatible with single-cycle PFU execution. The
/// paper chooses "sequences for which this assumption is valid" (§3.1);
/// a 4-LUT level is roughly 2 ns in XC4000-class parts, so 8 levels fit a
/// conservative member of that family's cycle time.
pub const SINGLE_CYCLE_DEPTH: u32 = 8;

/// Cost estimate for one extended instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtCost {
    /// 4-input LUTs.
    pub luts: u32,
    /// LUT levels on the critical path.
    pub depth: u32,
    /// Datapath width the estimate was produced at.
    pub width: u8,
}

impl ExtCost {
    /// Whether the mapped logic can evaluate in one processor cycle.
    pub fn single_cycle(&self) -> bool {
        self.depth <= SINGLE_CYCLE_DEPTH
    }

    /// Configuration-stream size of this instruction in words (see
    /// [`stream_words`]).
    pub fn stream_words(&self) -> u32 {
        stream_words(self.luts)
    }
}

/// Configuration-stream words per mapped 4-LUT. A 4-LUT holds 16 bits of
/// truth table plus routing/carry-mode bits; partial-reconfiguration frames
/// in XC4000-class parts spend roughly two 16-bit words per occupied LUT
/// once interconnect programming is included.
pub const STREAM_WORDS_PER_LUT: u32 = 2;

/// Fixed per-configuration overhead in words: frame addressing, the ID tag
/// the PFU matches against `Conf` fields (§2.2), and I/O port binding.
/// Charged even for logic-free (pure-wiring) configurations — routing a
/// shifter's permutation still has to be programmed.
pub const STREAM_FRAME_WORDS: u32 = 8;

/// Size of the configuration stream for an instruction mapped onto `luts`
/// 4-LUTs, in words. This is what the reconfiguration unit actually moves
/// when (re)loading a PFU, so per-configuration reload latency scales with
/// it rather than with a single flat machine constant (paper §5.3 charges
/// reload cost per configuration).
pub fn stream_words(luts: u32) -> u32 {
    luts * STREAM_WORDS_PER_LUT + STREAM_FRAME_WORDS
}

/// Elaborates `skeleton` at datapath width `width` and returns the netlist
/// plus the names of its primary inputs in first-use order.
///
/// # Panics
/// Panics if the skeleton contains a non-candidate op (selector bug).
pub fn elaborate(skeleton: &[Instr], width: u8) -> (Netlist, Vec<Reg>) {
    assert!(!skeleton.is_empty());
    assert!((1..=32).contains(&width));
    let mut n = Netlist::new();
    let mut env: HashMap<Reg, Vec<NodeId>> = HashMap::new();
    let mut inputs: Vec<Reg> = Vec::new();
    let mut last_def: Option<Vec<NodeId>> = None;

    for i in skeleton {
        assert!(i.op.is_pfu_candidate(), "non-ALU op {:?} in skeleton", i.op);
        // Bind any not-yet-seen source register as a primary input.
        for u in i.uses() {
            if let std::collections::hash_map::Entry::Vacant(e) = env.entry(u) {
                let name = format!("in{}", inputs.len());
                let bits = n.input(&name, width);
                e.insert(bits);
                inputs.push(u);
            }
        }
        let zero = |n: &mut Netlist| n.constant_word(0, width);
        let get = |env: &HashMap<Reg, Vec<NodeId>>, n: &mut Netlist, r: Reg| -> Vec<NodeId> {
            if r.is_zero() {
                zero(n)
            } else {
                env.get(&r).cloned().unwrap_or_else(|| zero(n))
            }
        };
        use Op::*;
        let rs = get(&env, &mut n, i.rs);
        let rt = get(&env, &mut n, i.rt);
        let result: Vec<NodeId> = match i.op {
            Sll => n.shl_const(&rt, i.imm as u32 & 31),
            Srl => n.shr_const(&rt, i.imm as u32 & 31, false),
            Sra => n.shr_const(&rt, i.imm as u32 & 31, true),
            Sllv => n.shift_var(&rt, &rs, true, false),
            Srlv => n.shift_var(&rt, &rs, false, false),
            Srav => n.shift_var(&rt, &rs, false, true),
            Add | Addu => n.add_sub(&rs, &rt, false),
            Sub | Subu => n.add_sub(&rs, &rt, true),
            And => n.bitwise(&rs, &rt, Netlist::and),
            Or => n.bitwise(&rs, &rt, Netlist::or),
            Xor => n.bitwise(&rs, &rt, Netlist::xor),
            Nor => n.bitwise(&rs, &rt, Netlist::nor),
            Slt | Sltu => {
                let b = n.slt(&rs, &rt, i.op == Slt);
                let z = n.constant(false);
                std::iter::once(b)
                    .chain(std::iter::repeat(z))
                    .take(width as usize)
                    .collect()
            }
            Addi | Addiu => {
                let c = n.constant_word(i.imm as u32, width);
                n.add_sub(&rs, &c, false)
            }
            Slti | Sltiu => {
                let c = n.constant_word(i.imm as u32, width);
                let b = n.slt(&rs, &c, i.op == Slti);
                let z = n.constant(false);
                std::iter::once(b)
                    .chain(std::iter::repeat(z))
                    .take(width as usize)
                    .collect()
            }
            Andi => {
                let c = n.constant_word(i.imm as u32 & 0xffff, width);
                n.bitwise(&rs, &c, Netlist::and)
            }
            Ori => {
                let c = n.constant_word(i.imm as u32 & 0xffff, width);
                n.bitwise(&rs, &c, Netlist::or)
            }
            Xori => {
                let c = n.constant_word(i.imm as u32 & 0xffff, width);
                n.bitwise(&rs, &c, Netlist::xor)
            }
            Lui => n.constant_word((i.imm as u32 & 0xffff) << 16, width),
            _ => unreachable!(),
        };
        let Some(def) = i.def() else {
            unreachable!("candidate ALU ops always define a register");
        };
        env.insert(def, result.clone());
        last_def = Some(result);
    }

    let Some(last) = last_def else {
        unreachable!("elaborate is never called on an empty skeleton");
    };
    n.set_outputs(&last);
    (n, inputs)
}

/// Estimates the cost of one extended instruction at width `width`.
pub fn cost_of(skeleton: &[Instr], width: u8) -> ExtCost {
    let (n, _) = elaborate(skeleton, width);
    let LutMapping { luts, depth } = map_to_luts(&n);
    ExtCost { luts, depth, width }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    /// Software evaluation of a skeleton at full 32-bit semantics.
    fn soft_eval(skeleton: &[Instr], a: i32, b: i32) -> Option<u32> {
        use Op::*;
        let mut env: HashMap<Reg, u32> = HashMap::new();
        let mut inputs = vec![a as u32, b as u32].into_iter();
        let mut last = 0u32;
        for i in skeleton {
            for u in i.uses() {
                if let std::collections::hash_map::Entry::Vacant(e) = env.entry(u) {
                    e.insert(inputs.next()?);
                }
            }
            let rs = *env.get(&i.rs).unwrap_or(&0);
            let rt = *env.get(&i.rt).unwrap_or(&0);
            let v = match i.op {
                Sll => rt << (i.imm & 31),
                Srl => rt >> (i.imm & 31),
                Sra => ((rt as i32) >> (i.imm & 31)) as u32,
                Addu | Add => rs.wrapping_add(rt),
                Subu | Sub => rs.wrapping_sub(rt),
                And => rs & rt,
                Or => rs | rt,
                Xor => rs ^ rt,
                Nor => !(rs | rt),
                Slt => u32::from((rs as i32) < (rt as i32)),
                Sltu => u32::from(rs < rt),
                Addiu | Addi => rs.wrapping_add(i.imm as u32),
                Andi => rs & (i.imm as u32 & 0xffff),
                Ori => rs | (i.imm as u32 & 0xffff),
                Xori => rs ^ (i.imm as u32 & 0xffff),
                _ => return None,
            };
            env.insert(i.def().unwrap(), v);
            last = v;
        }
        Some(last)
    }

    #[test]
    fn netlist_matches_isa_semantics_at_sufficient_width() {
        // (a << 2) + b, then xor a — all values kept narrow.
        let skeleton = vec![
            Instr::shift(Op::Sll, r(10), r(8), 2),
            Instr::rtype(Op::Addu, r(10), r(10), r(9)),
            Instr::rtype(Op::Xor, r(10), r(10), r(8)),
        ];
        let width = 18u8;
        let (n, inputs) = elaborate(&skeleton, width);
        assert_eq!(inputs.len(), 2);
        for (a, b) in [(3i32, 5i32), (100, -7), (-100, 42), (0, 0), (8191, -8191)] {
            let hw = n.evaluate(&|name, bit| {
                let v = if name == "in0" { a } else { b } as u32;
                v >> bit & 1 == 1
            });
            let sw = soft_eval(&skeleton, a, b).unwrap();
            let mask = (1u64 << width) - 1;
            assert_eq!(hw & mask, u64::from(sw) & mask, "a={a} b={b}");
        }
    }

    #[test]
    fn cost_scales_with_width() {
        let skeleton = vec![
            Instr::rtype(Op::Addu, r(10), r(8), r(9)),
            Instr::rtype(Op::Xor, r(10), r(10), r(8)),
        ];
        let narrow = cost_of(&skeleton, 8);
        let wide = cost_of(&skeleton, 18);
        assert!(wide.luts > narrow.luts);
        assert_eq!(narrow.width, 8);
    }

    #[test]
    fn pure_shift_sequences_cost_nothing() {
        let skeleton = vec![
            Instr::shift(Op::Sll, r(10), r(8), 3),
            Instr::shift(Op::Srl, r(10), r(10), 1),
        ];
        let c = cost_of(&skeleton, 16);
        assert_eq!(c.luts, 0);
        assert_eq!(c.depth, 0);
        assert!(c.single_cycle());
    }

    #[test]
    fn typical_selected_sequences_fit_the_paper_budget() {
        // A 3-op add/logic chain at 18 bits — the paper's most
        // area-intensive instruction needs 105 LUTs; typical ones are
        // well under 150.
        let skeleton = vec![
            Instr::shift(Op::Sll, r(10), r(8), 4),
            Instr::rtype(Op::Addu, r(10), r(10), r(9)),
            Instr::rtype(Op::Subu, r(10), r(10), r(8)),
            Instr::rtype(Op::Xor, r(10), r(10), r(9)),
        ];
        let c = cost_of(&skeleton, 18);
        assert!(c.luts > 0 && c.luts < 150, "got {} LUTs", c.luts);
        assert!(c.single_cycle(), "depth {}", c.depth);
    }

    #[test]
    fn depth_grows_with_chained_arithmetic() {
        let mk = |len: usize| {
            let mut v = vec![Instr::rtype(Op::Addu, r(10), r(8), r(9))];
            for _ in 1..len {
                v.push(Instr::rtype(Op::Addu, r(10), r(10), r(9)));
            }
            v
        };
        let d2 = cost_of(&mk(2), 16).depth;
        let d6 = cost_of(&mk(6), 16).depth;
        assert!(d6 > d2);
    }

    #[test]
    fn comparison_produces_single_bit_plus_padding() {
        let skeleton = vec![Instr::rtype(Op::Slt, r(10), r(8), r(9))];
        let (n, _) = elaborate(&skeleton, 8);
        for (a, b) in [(-5i32, 3i32), (3, -5), (7, 7)] {
            let hw = n.evaluate(&|name, bit| {
                let v = if name == "in0" { a } else { b } as u32;
                v >> bit & 1 == 1
            });
            assert_eq!(hw, u64::from((a < b) as u32), "{a} < {b}");
        }
    }

    #[test]
    #[should_panic(expected = "non-ALU op")]
    fn memory_ops_are_rejected() {
        cost_of(&[Instr::itype(Op::Lw, r(10), r(8), 0)], 16);
    }

    #[test]
    fn stream_size_scales_with_luts_plus_frame_overhead() {
        assert_eq!(stream_words(0), STREAM_FRAME_WORDS);
        assert_eq!(
            stream_words(105),
            105 * STREAM_WORDS_PER_LUT + STREAM_FRAME_WORDS
        );
        let skeleton = vec![
            Instr::rtype(Op::Addu, r(10), r(8), r(9)),
            Instr::rtype(Op::Xor, r(10), r(10), r(8)),
        ];
        let c = cost_of(&skeleton, 18);
        assert_eq!(c.stream_words(), stream_words(c.luts));
        // A pure-wiring configuration still programs routing.
        let shifty = cost_of(&[Instr::shift(Op::Sll, r(10), r(8), 3)], 16);
        assert_eq!(shifty.luts, 0);
        assert!(shifty.stream_words() > 0);
    }
}
