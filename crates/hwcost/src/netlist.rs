//! Bit-level Boolean netlists for extended-instruction datapaths.
//!
//! Each extended instruction is a pure combinational function of at most
//! two register operands. To estimate its FPGA cost the sequence is
//! elaborated into a gate network at the profiled operand width; the
//! mapper (see [`crate::mapper`]) then covers the network with 4-input
//! LUTs the way the paper's Xilinx Foundation flow targets XC4000 CLBs.
//!
//! Adders/subtractors/comparators are built from [`Gate::CarrySum`] nodes:
//! XC4000 CLBs have dedicated carry logic, so each bit of an adder costs
//! one LUT and the carry chain rides the hard wiring (neither consuming
//! LUT inputs nor adding LUT levels beyond its own).

/// Node identifier within a [`Netlist`].
pub type NodeId = usize;

/// One node of the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Primary input bit.
    Input {
        name: String,
        bit: u8,
    },
    /// Constant 0/1.
    Const(bool),
    /// Two-input logic.
    And(NodeId, NodeId),
    Or(NodeId, NodeId),
    Xor(NodeId, NodeId),
    Nor(NodeId, NodeId),
    Not(NodeId),
    /// 2:1 multiplexer: `sel ? a : b`.
    Mux {
        sel: NodeId,
        a: NodeId,
        b: NodeId,
    },
    /// Sum bit of a carry-chain adder: `a ⊕ b ⊕ carry-in`, where the carry
    /// chain is implicit in dedicated hardware. Costs one LUT, and its
    /// depth contribution is one level for the whole chain.
    CarrySum {
        a: NodeId,
        b: NodeId,
        chain: usize,
        pos: u8,
    },
}

/// A combinational network with named multi-bit inputs and a single
/// multi-bit output vector.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    pub nodes: Vec<Gate>,
    pub outputs: Vec<NodeId>,
    next_chain: usize,
    /// Carry-in seed per chain: `false` for adders, `true` for subtractors
    /// (two's complement +1).
    chain_seeds: std::collections::HashMap<usize, bool>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Netlist {
        Netlist::default()
    }

    fn push(&mut self, g: Gate) -> NodeId {
        self.nodes.push(g);
        self.nodes.len() - 1
    }

    /// Adds a `width`-bit primary input, returning its bits LSB-first.
    pub fn input(&mut self, name: &str, width: u8) -> Vec<NodeId> {
        (0..width)
            .map(|bit| {
                self.push(Gate::Input {
                    name: name.to_string(),
                    bit,
                })
            })
            .collect()
    }

    /// A constant bit.
    pub fn constant(&mut self, v: bool) -> NodeId {
        self.push(Gate::Const(v))
    }

    /// A `width`-bit constant, LSB-first.
    pub fn constant_word(&mut self, value: u32, width: u8) -> Vec<NodeId> {
        (0..width)
            .map(|b| self.constant(value >> b & 1 == 1))
            .collect()
    }

    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Nor(a, b))
    }
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Mux { sel, a, b })
    }

    /// Bitwise binary op over equal-width vectors.
    pub fn bitwise(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
        f: impl Fn(&mut Netlist, NodeId, NodeId) -> NodeId,
    ) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "width mismatch");
        a.iter().zip(b).map(|(&x, &y)| f(self, x, y)).collect()
    }

    /// Ripple/carry-chain addition (or subtraction when `subtract`),
    /// LSB-first, discarding the carry out. One LUT per bit.
    pub fn add_sub(&mut self, a: &[NodeId], b: &[NodeId], subtract: bool) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "width mismatch");
        let chain = self.next_chain;
        self.next_chain += 1;
        self.chain_seeds.insert(chain, subtract);
        let mut out = Vec::with_capacity(a.len());
        for (pos, (&x, &y)) in a.iter().zip(b).enumerate() {
            let y = if subtract { self.not_inline(y) } else { y };
            out.push(self.push(Gate::CarrySum {
                a: x,
                b: y,
                chain,
                pos: pos as u8,
            }));
        }
        out
    }

    /// Inverted operand for subtraction: folded into the carry logic of the
    /// CLB, so no extra node when the operand is a constant.
    fn not_inline(&mut self, y: NodeId) -> NodeId {
        match self.nodes[y] {
            Gate::Const(v) => self.constant(!v),
            _ => self.not(y),
        }
    }

    /// Signed less-than comparison: sign bit of `a - b` extended one bit.
    /// Returns a single bit.
    pub fn slt(&mut self, a: &[NodeId], b: &[NodeId], signed: bool) -> NodeId {
        // Extend by one bit so the subtraction cannot overflow.
        let (ea, eb) = if signed {
            let (Some(&sa), Some(&sb)) = (a.last(), b.last()) else {
                unreachable!("comparison operands are non-empty");
            };
            (
                a.iter().copied().chain([sa]).collect::<Vec<_>>(),
                b.iter().copied().chain([sb]).collect::<Vec<_>>(),
            )
        } else {
            let z = self.constant(false);
            (
                a.iter().copied().chain([z]).collect::<Vec<_>>(),
                b.iter().copied().chain([z]).collect::<Vec<_>>(),
            )
        };
        let diff = self.add_sub(&ea, &eb, true);
        let Some(&sign) = diff.last() else {
            unreachable!("add_sub preserves operand width");
        };
        sign
    }

    /// Left shift by a constant: pure rewiring, zero cost.
    pub fn shl_const(&mut self, a: &[NodeId], sh: u32) -> Vec<NodeId> {
        let w = a.len();
        let z = self.constant(false);
        (0..w)
            .map(|i| {
                if (i as u32) < sh {
                    z
                } else {
                    a[i - sh as usize]
                }
            })
            .collect()
    }

    /// Logical/arithmetic right shift by a constant: rewiring.
    pub fn shr_const(&mut self, a: &[NodeId], sh: u32, arithmetic: bool) -> Vec<NodeId> {
        let w = a.len();
        let fill = match (arithmetic, a.last()) {
            (true, Some(&sign)) => sign,
            _ => self.constant(false),
        };
        (0..w)
            .map(|i| {
                let src = i + sh as usize;
                if src < w {
                    a[src]
                } else {
                    fill
                }
            })
            .collect()
    }

    /// Variable shift: a barrel of log2(width) mux stages; each stage is
    /// one LUT per bit.
    pub fn shift_var(
        &mut self,
        a: &[NodeId],
        amount: &[NodeId],
        left: bool,
        arithmetic: bool,
    ) -> Vec<NodeId> {
        let w = a.len();
        let stages = (usize::BITS - (w - 1).leading_zeros()) as usize; // ceil(log2 w)
        let mut cur = a.to_vec();
        for s in 0..stages {
            let sel = amount
                .get(s)
                .copied()
                .unwrap_or_else(|| self.constant(false));
            let sh = 1u32 << s;
            let shifted = if left {
                self.shl_const(&cur, sh)
            } else {
                self.shr_const(&cur, sh, arithmetic)
            };
            cur = (0..w).map(|i| self.mux(sel, shifted[i], cur[i])).collect();
        }
        cur
    }

    /// Declares the final outputs of the network.
    pub fn set_outputs(&mut self, bits: &[NodeId]) {
        self.outputs = bits.to_vec();
    }

    /// Evaluates the network on concrete input values (`name → value`),
    /// returning the output bits packed LSB-first. Used to cross-check the
    /// netlist builder against the ISA semantics.
    pub fn evaluate(&self, inputs: &dyn Fn(&str, u8) -> bool) -> u64 {
        let mut vals = vec![false; self.nodes.len()];
        let mut carries: std::collections::HashMap<usize, bool> = std::collections::HashMap::new();
        for (id, g) in self.nodes.iter().enumerate() {
            vals[id] = match g {
                Gate::Input { name, bit } => inputs(name, *bit),
                Gate::Const(v) => *v,
                Gate::And(a, b) => vals[*a] && vals[*b],
                Gate::Or(a, b) => vals[*a] || vals[*b],
                Gate::Xor(a, b) => vals[*a] ^ vals[*b],
                Gate::Nor(a, b) => !(vals[*a] || vals[*b]),
                Gate::Not(a) => !vals[*a],
                Gate::Mux { sel, a, b } => {
                    if vals[*sel] {
                        vals[*a]
                    } else {
                        vals[*b]
                    }
                }
                Gate::CarrySum { a, b, chain, pos } => {
                    // Chains are emitted LSB-first; position 0 seeds the
                    // carry (1 for subtraction chains is folded into the
                    // inverted operand plus this seed).
                    let cin = if *pos == 0 {
                        // Subtract chains invert b; detect via the Not/Const
                        // node feeding b is not reliable, so chains carry
                        // their own seed: stored in `carries` when pos 0 is
                        // evaluated. Adders seed 0; subtractors seed 1.
                        // The builder encodes the seed in the chain parity
                        // table below.
                        self.chain_seed(*chain)
                    } else {
                        carries[chain]
                    };
                    let (x, y) = (vals[*a], vals[*b]);
                    let sum = x ^ y ^ cin;
                    let cout = (x && y) || (cin && (x || y));
                    carries.insert(*chain, cout);
                    sum
                }
            };
        }
        let mut out = 0u64;
        for (i, &o) in self.outputs.iter().enumerate() {
            if vals[o] {
                out |= 1 << i;
            }
        }
        out
    }

    fn chain_seed(&self, chain: usize) -> bool {
        self.chain_seeds.get(&chain).copied().unwrap_or(false)
    }
}

// The carry seed per chain (false = add, true = subtract) lives in a side
// table to keep `Gate` small.
impl Netlist {
    /// Number of logic nodes (excluding inputs and constants) — a rough
    /// pre-mapping size measure used in tests.
    pub fn logic_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|g| !matches!(g, Gate::Input { .. } | Gate::Const(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval2(n: &Netlist, a: u32, b: u32) -> u64 {
        n.evaluate(&|name, bit| {
            let v = if name == "a" { a } else { b };
            v >> bit & 1 == 1
        })
    }

    #[test]
    fn adder_adds() {
        let mut n = Netlist::new();
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let s = n.add_sub(&a, &b, false);
        n.set_outputs(&s);
        for (x, y) in [(0u32, 0u32), (1, 1), (100, 55), (200, 100), (255, 255)] {
            assert_eq!(eval2(&n, x, y), u64::from((x + y) & 0xff), "{x}+{y}");
        }
    }

    #[test]
    fn subtractor_subtracts() {
        let mut n = Netlist::new();
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let s = n.add_sub(&a, &b, true);
        n.set_outputs(&s);
        for (x, y) in [(5u32, 3u32), (3, 5), (0, 1), (255, 255)] {
            assert_eq!(
                eval2(&n, x, y),
                u64::from(x.wrapping_sub(y) & 0xff),
                "{x}-{y}"
            );
        }
    }

    #[test]
    fn slt_signed_and_unsigned() {
        for signed in [true, false] {
            let mut n = Netlist::new();
            let a = n.input("a", 8);
            let b = n.input("b", 8);
            let lt = n.slt(&a, &b, signed);
            n.set_outputs(&[lt]);
            for (x, y) in [(1u32, 2u32), (2, 1), (0x80, 0x01), (0x01, 0x80), (5, 5)] {
                let expect = if signed {
                    ((x as u8 as i8) < (y as u8 as i8)) as u64
                } else {
                    ((x as u8) < (y as u8)) as u64
                };
                assert_eq!(eval2(&n, x, y), expect, "slt({signed}) {x} {y}");
            }
        }
    }

    #[test]
    fn constant_shifts_are_wiring() {
        let mut n = Netlist::new();
        let a = n.input("a", 8);
        let before = n.logic_nodes();
        let l = n.shl_const(&a, 3);
        let r = n.shr_const(&a, 2, true);
        assert_eq!(n.logic_nodes(), before, "const shifts must add no logic");
        n.set_outputs(&l);
        assert_eq!(eval2(&n, 0b1011, 0), 0b1011000 & 0xff);
        let mut n2 = Netlist::new();
        let a2 = n2.input("a", 8);
        let r2 = n2.shr_const(&a2, 2, true);
        n2.set_outputs(&r2);
        assert_eq!(eval2(&n2, 0x84, 0), 0xe1); // arithmetic: sign fill
        let _ = r;
    }

    #[test]
    fn variable_shift_matches_semantics() {
        let mut n = Netlist::new();
        let a = n.input("a", 16);
        let b = n.input("b", 4);
        let s = n.shift_var(&a, &b, true, false);
        n.set_outputs(&s);
        for (x, sh) in [(0x0001u32, 0u32), (0x0001, 5), (0x00ff, 8), (0x8001, 1)] {
            assert_eq!(eval2(&n, x, sh), u64::from((x << sh) & 0xffff), "{x}<<{sh}");
        }
    }

    #[test]
    fn bitwise_ops_work() {
        let mut n = Netlist::new();
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let x = n.bitwise(&a, &b, Netlist::xor);
        let o = n.bitwise(&a, &b, Netlist::nor);
        let mut bits = x.clone();
        bits.extend(&o);
        n.set_outputs(&bits);
        let v = eval2(&n, 0xcc, 0xaa);
        assert_eq!(v & 0xff, u64::from(0xccu32 ^ 0xaa));
        assert_eq!(v >> 8, u64::from(!(0xccu32 | 0xaa) & 0xff));
    }
}
