//! # t1000-hwcost — PFU hardware cost model
//!
//! Replaces the paper's VHDL + Xilinx Foundation CAD flow (§3.2, §6):
//! every selected extended instruction is elaborated into a bit-level
//! Boolean netlist at its profiled operand width and covered with 4-input
//! LUTs (XC4000-style CLBs with dedicated carry chains). The result — LUT
//! count and LUT depth — drives the Fig. 7 area histogram and the
//! single-cycle feasibility check used during selection.

// Robustness gate: library code must surface failures as typed errors, not
// panics. Tests keep the ergonomic forms.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod mapper;
pub mod netlist;

pub use cost::{
    cost_of, elaborate, stream_words, ExtCost, SINGLE_CYCLE_DEPTH, STREAM_FRAME_WORDS,
    STREAM_WORDS_PER_LUT,
};
pub use mapper::{map_to_luts, LutMapping};
pub use netlist::{Gate, Netlist, NodeId};
