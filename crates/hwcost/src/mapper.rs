//! Greedy 4-LUT technology mapping.
//!
//! Covers a [`Netlist`] with 4-input lookup tables in the style of the
//! XC4000 CLBs targeted by the paper. The algorithm is a classic greedy
//! bottom-up cover (Chortle-like): every logic gate starts as its own LUT
//! root and absorbs single-fanout fanin gates while the combined input
//! support stays ≤ 4. Inverters are free (folded into the consuming LUT's
//! truth table). `CarrySum` bits always cost exactly one LUT each and one
//! chain contributes a single LUT level, modelling the dedicated carry
//! hardware.

use crate::netlist::{Gate, Netlist, NodeId};
use std::collections::BTreeSet;

/// Mapping result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LutMapping {
    /// Number of 4-input LUTs required.
    pub luts: u32,
    /// LUT levels on the critical path (carry chains count as one level).
    pub depth: u32,
}

/// Maps `n` onto 4-input LUTs.
pub fn map_to_luts(n: &Netlist) -> LutMapping {
    let num = n.nodes.len();
    let mut fanout = vec![0u32; num];
    for g in &n.nodes {
        for f in fanins(g) {
            fanout[f] += 1;
        }
    }
    for &o in &n.outputs {
        fanout[o] += 1;
    }

    // For each node: the leaf support of the LUT currently rooted at it,
    // and whether it has been absorbed into a consumer.
    let mut support: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); num];
    let mut absorbed = vec![false; num];

    // Helper: what a consumer sees when wiring `f` as an input — either the
    // node itself (a LUT output / primary input / carry bit) or, for free
    // inverters, the inverter's own input.
    let resolve = |nodes: &Vec<Gate>, mut f: NodeId| -> Option<NodeId> {
        loop {
            match &nodes[f] {
                Gate::Const(_) => return None, // constants are folded away
                Gate::Not(x) => f = *x,        // inverters are free
                _ => return Some(f),
            }
        }
    };

    for id in 0..num {
        let g = &n.nodes[id];
        if !is_logic(g) {
            continue;
        }
        let mut sup: BTreeSet<NodeId> = BTreeSet::new();
        for f in fanins(g) {
            if let Some(r) = resolve(&n.nodes, f) {
                sup.insert(r);
            }
        }
        // Try to absorb each direct (resolved) fanin gate.
        let candidates: Vec<NodeId> = sup.iter().copied().collect();
        for f in candidates {
            let fg = &n.nodes[f];
            if !is_logic(fg) || matches!(fg, Gate::CarrySum { .. }) {
                continue;
            }
            if fanout[f] != 1 {
                continue;
            }
            let mut merged = sup.clone();
            merged.remove(&f);
            merged.extend(support[f].iter().copied());
            if merged.len() <= 4 {
                sup = merged;
                absorbed[f] = true;
            }
        }
        support[id] = sup;
    }

    // LUT count: unabsorbed logic nodes (inverters are free unless they
    // directly drive an output with no logic in between — then they need a
    // pass-through LUT, handled below).
    let mut luts = 0u32;
    for (id, g) in n.nodes.iter().enumerate().take(num) {
        if matches!(g, Gate::CarrySum { .. })
            || (is_logic(g) && !matches!(g, Gate::Not(_)) && !absorbed[id])
        {
            luts += 1;
        }
    }
    for &o in &n.outputs {
        if let Gate::Not(_) = n.nodes[o] {
            luts += 1; // inverter visible at an output needs its own LUT
        }
    }

    // Depth: one level per LUT root, carry chains one level total.
    let mut depth = vec![0u32; num];
    let mut chain_depth: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    for id in 0..num {
        let g = &n.nodes[id];
        let fan_depth = fanins(g).map(|f| depth[f]).max().unwrap_or(0);
        depth[id] = match g {
            Gate::Input { .. } | Gate::Const(_) => 0,
            Gate::Not(_) => fan_depth, // free
            Gate::CarrySum { chain, .. } => {
                // All bits of one chain share a single level above the
                // deepest input to the whole chain seen so far.
                let d = chain_depth.entry(*chain).or_insert(0);
                *d = (*d).max(fan_depth + 1);
                *d
            }
            _ => {
                if absorbed[id] {
                    fan_depth // merged into the consuming LUT's level
                } else {
                    fan_depth + 1
                }
            }
        };
    }
    let max_depth = n.outputs.iter().map(|&o| depth[o]).max().unwrap_or(0);

    LutMapping {
        luts,
        depth: max_depth,
    }
}

fn is_logic(g: &Gate) -> bool {
    !matches!(g, Gate::Input { .. } | Gate::Const(_))
}

fn fanins(g: &Gate) -> impl Iterator<Item = NodeId> {
    let v: Vec<NodeId> = match g {
        Gate::Input { .. } | Gate::Const(_) => vec![],
        Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) | Gate::Nor(a, b) => vec![*a, *b],
        Gate::Not(a) => vec![*a],
        Gate::Mux { sel, a, b } => vec![*sel, *a, *b],
        Gate::CarrySum { a, b, .. } => vec![*a, *b],
    };
    v.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gate_is_one_lut_one_level() {
        let mut n = Netlist::new();
        let a = n.input("a", 1);
        let b = n.input("b", 1);
        let g = n.and(a[0], b[0]);
        n.set_outputs(&[g]);
        assert_eq!(map_to_luts(&n), LutMapping { luts: 1, depth: 1 });
    }

    #[test]
    fn two_chained_gates_pack_into_one_lut() {
        // (a & b) ^ c: 3 inputs → a single 4-LUT.
        let mut n = Netlist::new();
        let a = n.input("a", 1);
        let b = n.input("b", 1);
        let c = n.input("c", 1);
        let g1 = n.and(a[0], b[0]);
        let g2 = n.xor(g1, c[0]);
        n.set_outputs(&[g2]);
        assert_eq!(map_to_luts(&n), LutMapping { luts: 1, depth: 1 });
    }

    #[test]
    fn five_input_cone_needs_two_luts() {
        // ((a&b)|(c&d)) ^ e: 5 leaves → 2 LUTs, 2 levels.
        let mut n = Netlist::new();
        let ins: Vec<_> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| n.input(s, 1)[0])
            .collect();
        let g1 = n.and(ins[0], ins[1]);
        let g2 = n.and(ins[2], ins[3]);
        let g3 = n.or(g1, g2);
        let g4 = n.xor(g3, ins[4]);
        n.set_outputs(&[g4]);
        let m = map_to_luts(&n);
        assert_eq!(m.luts, 2);
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn inverters_are_free() {
        let mut n = Netlist::new();
        let a = n.input("a", 1);
        let b = n.input("b", 1);
        let na = n.not(a[0]);
        let g = n.and(na, b[0]);
        n.set_outputs(&[g]);
        assert_eq!(map_to_luts(&n), LutMapping { luts: 1, depth: 1 });
    }

    #[test]
    fn shared_subexpressions_are_not_absorbed() {
        // g1 feeds two consumers: must remain its own LUT.
        let mut n = Netlist::new();
        let ins: Vec<_> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|s| n.input(s, 1)[0])
            .collect();
        let g1 = n.xor(ins[0], ins[1]);
        let g2a = n.and(g1, ins[2]);
        let g2b = n.or(g1, ins[3]);
        let g3a = n.and(g2a, ins[4]);
        let g3b = n.or(g2b, ins[5]);
        n.set_outputs(&[g3a, g3b]);
        let m = map_to_luts(&n);
        assert_eq!(
            m.luts, 3,
            "g1 shared; each 3-input consumer cone is one LUT"
        );
    }

    #[test]
    fn adder_costs_one_lut_per_bit_one_level() {
        let mut n = Netlist::new();
        let a = n.input("a", 16);
        let b = n.input("b", 16);
        let s = n.add_sub(&a, &b, false);
        n.set_outputs(&s);
        let m = map_to_luts(&n);
        assert_eq!(m.luts, 16);
        assert_eq!(m.depth, 1);
    }

    #[test]
    fn chained_adders_stack_levels() {
        let mut n = Netlist::new();
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let s1 = n.add_sub(&a, &b, false);
        let s2 = n.add_sub(&s1, &a, false);
        n.set_outputs(&s2);
        let m = map_to_luts(&n);
        assert_eq!(m.luts, 16);
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn wiring_only_network_is_zero_cost() {
        let mut n = Netlist::new();
        let a = n.input("a", 8);
        let s = n.shl_const(&a, 3);
        n.set_outputs(&s);
        assert_eq!(map_to_luts(&n), LutMapping { luts: 0, depth: 0 });
    }
}
