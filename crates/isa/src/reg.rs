//! Architectural register file description.
//!
//! T1000 uses a MIPS-style integer register file: 32 general-purpose
//! registers plus the `HI`/`LO` pair written by multiply/divide. Register
//! `$zero` is hardwired to 0; writes to it are discarded.

use std::fmt;

/// Number of general-purpose architectural registers.
pub const NUM_GPRS: usize = 32;

/// A general-purpose register identifier (0..32).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `$zero`.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary `$at`.
    pub const AT: Reg = Reg(1);
    /// First return-value register `$v0` (also the syscall selector).
    pub const V0: Reg = Reg(2);
    /// Second return-value register `$v1`.
    pub const V1: Reg = Reg(3);
    /// First argument register `$a0`.
    pub const A0: Reg = Reg(4);
    /// Second argument register `$a1`.
    pub const A1: Reg = Reg(5);
    /// Global pointer `$gp`.
    pub const GP: Reg = Reg(28);
    /// Stack pointer `$sp`.
    pub const SP: Reg = Reg(29);
    /// Frame pointer `$fp`.
    pub const FP: Reg = Reg(30);
    /// Return-address register `$ra`, written by `jal`/`jalr`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its 5-bit index.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub fn new(n: u8) -> Reg {
        assert!(n < NUM_GPRS as u8, "register index {n} out of range");
        Reg(n)
    }

    /// Creates a register from the low 5 bits of an encoded field.
    #[inline]
    pub fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register's index (0..32).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for `$zero`, whose writes are discarded.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_GPRS as u8).map(Reg)
    }

    /// The conventional MIPS ABI name, without the `$` sigil.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses a register name: `$t0`, `t0`, `$8`, or `8`.
    pub fn parse(name: &str) -> Option<Reg> {
        let name = name.strip_prefix('$').unwrap_or(name);
        if let Ok(n) = name.parse::<u8>() {
            return (n < 32).then_some(Reg(n));
        }
        Reg::all().find(|r| r.abi_name() == name)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_round_trip_through_parse() {
        for r in Reg::all() {
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("${}", r.abi_name())), Some(r));
            assert_eq!(Reg::parse(&r.index().to_string()), Some(r));
        }
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert_eq!(Reg::parse("$t99"), None);
        assert_eq!(Reg::parse("32"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse("$"), None);
    }

    #[test]
    fn well_known_registers_have_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::V0.index(), 2);
        assert_eq!(Reg::A0.index(), 4);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 31);
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn from_field_masks_to_five_bits() {
        assert_eq!(Reg::from_field(0xffff_ffe3).index(), 3);
    }
}
