//! Loaded-program image: text and data segments, entry point, symbols.

use crate::encode::{decode, DecodeError};
use crate::instr::Instr;
use std::collections::BTreeMap;

/// Default base address of the text segment (matches SimpleScalar PISA).
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Default base address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;
/// Default initial stack pointer (grows downward).
pub const STACK_TOP: u32 = 0x7fff_c000;

/// An executable program image produced by the assembler.
#[derive(Clone, Debug)]
pub struct Program {
    /// Base byte address of the text segment.
    pub text_base: u32,
    /// Encoded instruction words.
    pub text: Vec<u32>,
    /// Base byte address of the initialised data segment.
    pub data_base: u32,
    /// Initialised data bytes.
    pub data: Vec<u8>,
    /// Entry-point byte address.
    pub entry: u32,
    /// Label → byte address.
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Builds a program from raw instruction words at the default bases.
    pub fn from_words(text: Vec<u32>) -> Program {
        Program {
            text_base: TEXT_BASE,
            text,
            data_base: DATA_BASE,
            data: Vec::new(),
            entry: TEXT_BASE,
            symbols: BTreeMap::new(),
        }
    }

    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Byte address one past the last instruction.
    pub fn text_end(&self) -> u32 {
        self.text_base + 4 * self.text.len() as u32
    }

    /// Whether `pc` falls inside the text segment (4-byte aligned).
    pub fn contains_pc(&self, pc: u32) -> bool {
        pc.is_multiple_of(4) && pc >= self.text_base && pc < self.text_end()
    }

    /// The encoded word at byte address `pc`.
    ///
    /// # Panics
    /// Panics if `pc` is outside the text segment.
    pub fn word_at(&self, pc: u32) -> u32 {
        assert!(self.contains_pc(pc), "PC 0x{pc:x} outside text segment");
        self.text[((pc - self.text_base) / 4) as usize]
    }

    /// Decodes the instruction at byte address `pc`.
    pub fn instr_at(&self, pc: u32) -> Result<Instr, DecodeError> {
        decode(self.word_at(pc))
    }

    /// Decodes the whole text segment as `(pc, instr)` pairs.
    pub fn decode_all(&self) -> Result<Vec<(u32, Instr)>, DecodeError> {
        self.text
            .iter()
            .enumerate()
            .map(|(i, &w)| Ok((self.text_base + 4 * i as u32, decode(w)?)))
            .collect()
    }

    /// Address of a label, if defined.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::op::Op;
    use crate::reg::Reg;

    fn sample() -> Program {
        let words = vec![
            encode(&Instr::itype(Op::Addiu, Reg::V0, Reg::ZERO, 10)),
            encode(&Instr::rtype(Op::Addu, Reg::A0, Reg::ZERO, Reg::ZERO)),
            encode(&Instr {
                op: Op::Syscall,
                ..Instr::NOP
            }),
        ];
        Program::from_words(words)
    }

    #[test]
    fn pc_bounds_are_enforced() {
        let p = sample();
        assert!(p.contains_pc(TEXT_BASE));
        assert!(p.contains_pc(TEXT_BASE + 8));
        assert!(!p.contains_pc(TEXT_BASE + 12));
        assert!(!p.contains_pc(TEXT_BASE + 2)); // unaligned
        assert!(!p.contains_pc(TEXT_BASE - 4));
    }

    #[test]
    fn instructions_decode_back() {
        let p = sample();
        let i = p.instr_at(TEXT_BASE).unwrap();
        assert_eq!(i.op, Op::Addiu);
        assert_eq!(i.imm, 10);
        let all = p.decode_all().unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].1.op, Op::Syscall);
        assert_eq!(all[1].0, TEXT_BASE + 4);
    }

    #[test]
    #[should_panic(expected = "outside text segment")]
    fn word_at_out_of_range_panics() {
        sample().word_at(0);
    }
}
