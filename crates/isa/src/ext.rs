//! Extended-instruction metadata shared between the compiler side (the
//! selection algorithms in `t1000-core`) and the machine side (the
//! simulator in `t1000-cpu`).
//!
//! In the paper an extended instruction is created at compile time by
//! rewriting an instruction sequence into a single `ext` opcode whose
//! `Conf` field names a PFU configuration. We keep the original text
//! segment untouched and carry the rewriting as a side table (`FusionMap`):
//! each *site* says "the `len` instructions starting at this PC execute as
//! one extended instruction with configuration `conf`". This is exactly
//! equivalent for simulation purposes (the simulator fuses at fetch) and
//! keeps the binary runnable on a PFU-less machine for differential
//! testing. Several sites may share one `conf` when their sequences are
//! structurally identical — that sharing is what the selective algorithm's
//! subsequence matrix exploits.

use crate::instr::Instr;
use crate::reg::Reg;
use std::collections::BTreeMap;

/// Identifier of one PFU configuration ("ID tag" in paper §2.2). Two sites
/// with equal `ConfId` can reuse a resident configuration without
/// reloading.
pub type ConfId = u16;

/// One fused code site: `len` consecutive instructions at `pc` execute as a
/// single extended instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedSite {
    /// Byte address of the first instruction of the sequence.
    pub pc: u32,
    /// Number of fused instructions (≥ 2).
    pub len: u32,
    /// Which PFU configuration evaluates this site.
    pub conf: ConfId,
    /// Live-in registers. The paper's architecture allows 2 (the
    /// register-port constraint of §1, matching the two source fields of
    /// the `ext` encoding); up to 4 are representable here so the
    /// input-port ablation can model hypothetical wider-port machines.
    pub inputs: Vec<Reg>,
    /// The single live-out register.
    pub output: Reg,
}

impl FusedSite {
    /// Byte address of the first instruction after the fused sequence.
    pub fn end_pc(&self) -> u32 {
        self.pc + 4 * self.len
    }
}

/// A catalogued PFU configuration: the canonical instruction skeleton it
/// implements, used for hardware-cost estimation and debugging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfDef {
    pub conf: ConfId,
    /// The instruction sequence in canonical (register-renamed) form.
    pub skeleton: Vec<Instr>,
    /// Cycles the sequence takes on the base machine (sum of latencies).
    pub base_cycles: u32,
    /// Cycles the PFU needs to evaluate it (1 in the paper's main
    /// experiments; §3.1 notes varying execution times are straightforward
    /// with out-of-order issue, and the selector can emit them when the
    /// extraction config allows deeper logic).
    pub pfu_latency: u32,
}

/// The complete fusion decision for one program: configurations plus the
/// sites that use them.
#[derive(Clone, Debug, Default)]
pub struct FusionMap {
    sites: BTreeMap<u32, FusedSite>,
    defs: BTreeMap<ConfId, ConfDef>,
    /// Configuration-stream sizes in words, recorded by the selector from
    /// the hardware-cost model (LUT count → words). A side table — like
    /// `ConfDef::pfu_latency`, it is hwcost-derived metadata the machine
    /// side consumes (per-configuration reload latencies under stream
    /// compression, and the `stream_words` reload-traffic counter).
    stream_words: BTreeMap<ConfId, u32>,
}

impl FusionMap {
    /// An empty map (no extended instructions — the baseline machine).
    pub fn new() -> FusionMap {
        FusionMap::default()
    }

    /// Registers a configuration definition.
    ///
    /// # Panics
    /// Panics on a duplicate `ConfId` with a different skeleton.
    pub fn define(&mut self, def: ConfDef) {
        if let Some(prev) = self.defs.get(&def.conf) {
            assert_eq!(
                prev.skeleton, def.skeleton,
                "ConfId {} redefined with a different skeleton",
                def.conf
            );
            return;
        }
        self.defs.insert(def.conf, def);
    }

    /// Adds a fused site.
    ///
    /// # Panics
    /// Panics if the site overlaps an existing site or names an unknown
    /// configuration — both are selector bugs worth failing loudly on.
    pub fn add_site(&mut self, site: FusedSite) {
        assert!(
            site.len >= 2,
            "a fused sequence must contain ≥ 2 instructions"
        );
        assert!(
            self.defs.contains_key(&site.conf),
            "site at 0x{:x} references undefined conf {}",
            site.pc,
            site.conf
        );
        assert!(
            site.inputs.len() <= 4,
            "site at 0x{:x} exceeds the representable input-port budget",
            site.pc
        );
        // Overlap check against the previous and next site in PC order.
        if let Some((_, prev)) = self.sites.range(..=site.pc).next_back() {
            assert!(
                prev.end_pc() <= site.pc,
                "site at 0x{:x} overlaps site at 0x{:x}",
                site.pc,
                prev.pc
            );
        }
        if let Some((_, next)) = self.sites.range(site.pc..).next() {
            assert!(
                site.end_pc() <= next.pc,
                "site at 0x{:x} overlaps site at 0x{:x}",
                site.pc,
                next.pc
            );
        }
        self.sites.insert(site.pc, site);
    }

    /// The fused site starting exactly at `pc`, if any.
    pub fn site_at(&self, pc: u32) -> Option<&FusedSite> {
        self.sites.get(&pc)
    }

    /// The configuration definition for `conf`.
    pub fn def(&self, conf: ConfId) -> Option<&ConfDef> {
        self.defs.get(&conf)
    }

    /// Records the configuration-stream size of `conf` in words (from the
    /// hardware-cost model's LUT mapping).
    pub fn set_stream_words(&mut self, conf: ConfId, words: u32) {
        self.stream_words.insert(conf, words);
    }

    /// Configuration-stream size of `conf` in words, if recorded.
    pub fn stream_words(&self, conf: ConfId) -> Option<u32> {
        self.stream_words.get(&conf).copied()
    }

    /// All sites in PC order.
    pub fn sites(&self) -> impl Iterator<Item = &FusedSite> {
        self.sites.values()
    }

    /// All configuration definitions in `ConfId` order.
    pub fn defs(&self) -> impl Iterator<Item = &ConfDef> {
        self.defs.values()
    }

    /// Number of distinct configurations.
    pub fn num_confs(&self) -> usize {
        self.defs.len()
    }

    /// Number of fused sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// True when no fusion is active.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn demo_def(conf: ConfId) -> ConfDef {
        ConfDef {
            conf,
            skeleton: vec![
                Instr::shift(Op::Sll, r(1), r(2), 4),
                Instr::rtype(Op::Addu, r(1), r(1), r(3)),
            ],
            base_cycles: 2,
            pfu_latency: 1,
        }
    }

    fn demo_site(pc: u32, conf: ConfId, len: u32) -> FusedSite {
        FusedSite {
            pc,
            len,
            conf,
            inputs: vec![r(2), r(3)],
            output: r(1),
        }
    }

    #[test]
    fn sites_are_found_by_start_pc_only() {
        let mut m = FusionMap::new();
        m.define(demo_def(1));
        m.add_site(demo_site(0x100, 1, 2));
        assert!(m.site_at(0x100).is_some());
        assert!(m.site_at(0x104).is_none());
        assert_eq!(m.num_sites(), 1);
        assert_eq!(m.num_confs(), 1);
    }

    #[test]
    fn multiple_sites_can_share_a_configuration() {
        let mut m = FusionMap::new();
        m.define(demo_def(7));
        m.add_site(demo_site(0x100, 7, 2));
        m.add_site(demo_site(0x200, 7, 2));
        assert_eq!(m.num_sites(), 2);
        assert_eq!(m.num_confs(), 1);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_sites_panic() {
        let mut m = FusionMap::new();
        m.define(demo_def(1));
        m.add_site(demo_site(0x100, 1, 3));
        m.add_site(demo_site(0x104, 1, 2));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_detected_against_following_site() {
        let mut m = FusionMap::new();
        m.define(demo_def(1));
        m.add_site(demo_site(0x108, 1, 2));
        m.add_site(demo_site(0x100, 1, 4));
    }

    #[test]
    #[should_panic(expected = "undefined conf")]
    fn site_with_unknown_conf_panics() {
        let mut m = FusionMap::new();
        m.add_site(demo_site(0x100, 9, 2));
    }

    #[test]
    fn redefining_same_skeleton_is_idempotent() {
        let mut m = FusionMap::new();
        m.define(demo_def(1));
        m.define(demo_def(1));
        assert_eq!(m.num_confs(), 1);
    }

    #[test]
    fn end_pc_accounts_for_length() {
        assert_eq!(demo_site(0x100, 1, 3).end_pc(), 0x10c);
    }

    #[test]
    fn stream_words_are_a_per_conf_side_table() {
        let mut m = FusionMap::new();
        m.define(demo_def(1));
        assert_eq!(
            m.stream_words(1),
            None,
            "unset until the selector records it"
        );
        m.set_stream_words(1, 72);
        assert_eq!(m.stream_words(1), Some(72));
        assert_eq!(m.stream_words(2), None);
    }
}
