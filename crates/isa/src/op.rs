//! Operation mnemonics and their static properties.
//!
//! `Op` is the decoded operation of one instruction. The simulator, the
//! profiler and the sequence selector all dispatch on it, so the properties
//! that matter to them (operation class, functional-unit class, whether the
//! op is a PFU-candidate) live here.

/// Decoded operation. The set mirrors the integer subset of SimpleScalar's
/// PISA, which is what the paper's MediaBench binaries exercise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    // Shifts (constant and variable amount).
    Sll,
    Srl,
    Sra,
    Sllv,
    Srlv,
    Srav,
    // Three-register arithmetic.
    Add,
    Addu,
    Sub,
    Subu,
    And,
    Or,
    Xor,
    Nor,
    Slt,
    Sltu,
    // Immediate arithmetic.
    Addi,
    Addiu,
    Slti,
    Sltiu,
    Andi,
    Ori,
    Xori,
    Lui,
    // Multiply / divide and HI/LO moves.
    Mult,
    Multu,
    Div,
    Divu,
    Mfhi,
    Mflo,
    Mthi,
    Mtlo,
    // Loads / stores.
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Sb,
    Sh,
    Sw,
    // Control flow.
    Beq,
    Bne,
    Blez,
    Bgtz,
    Bltz,
    Bgez,
    J,
    Jal,
    Jr,
    Jalr,
    // System.
    Syscall,
    Break,
    /// A PFU extended instruction. The `conf` field of the encoded word
    /// identifies which configuration (i.e. which fused sequence) it runs.
    Ext,
}

/// Coarse operation class, used by the selector and the pipeline model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle multiply or divide (uses HI/LO).
    IntMult,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch or jump.
    Ctrl,
    /// Syscall / break.
    Sys,
    /// Extended instruction executed on a PFU.
    Pfu,
}

impl Op {
    /// The coarse class of this operation.
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Sll | Srl | Sra | Sllv | Srlv | Srav | Add | Addu | Sub | Subu | And | Or | Xor
            | Nor | Slt | Sltu | Addi | Addiu | Slti | Sltiu | Andi | Ori | Xori | Lui => {
                OpClass::IntAlu
            }
            Mult | Multu | Div | Divu | Mfhi | Mflo | Mthi | Mtlo => OpClass::IntMult,
            Lb | Lbu | Lh | Lhu | Lw => OpClass::Load,
            Sb | Sh | Sw => OpClass::Store,
            Beq | Bne | Blez | Bgtz | Bltz | Bgez | J | Jal | Jr | Jalr => OpClass::Ctrl,
            Syscall | Break => OpClass::Sys,
            Ext => OpClass::Pfu,
        }
    }

    /// Whether the selection algorithms may place this op inside an extended
    /// instruction. Per the paper (§4): arithmetic and logic instructions
    /// only — no memory ops, no control flow, no multi-cycle mult/div (a PFU
    /// evaluates pure combinational logic in one cycle).
    pub fn is_pfu_candidate(self) -> bool {
        self.class() == OpClass::IntAlu
    }

    /// Whether this is a conditional branch (PC-relative, taken/not-taken).
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Op::Beq | Op::Bne | Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez
        )
    }

    /// Whether this is an unconditional jump.
    pub fn is_jump(self) -> bool {
        matches!(self, Op::J | Op::Jal | Op::Jr | Op::Jalr)
    }

    /// Whether this op ends a basic block.
    pub fn ends_block(self) -> bool {
        self.is_branch() || self.is_jump() || matches!(self, Op::Syscall | Op::Break)
    }

    /// Execution latency in cycles on the base machine's functional units.
    pub fn latency(self) -> u32 {
        use Op::*;
        match self {
            Mult | Multu => 3,
            Div | Divu => 20,
            // Load latency here is the EX-stage cost; cache misses are
            // accounted separately by the memory model.
            Lb | Lbu | Lh | Lhu | Lw => 1,
            _ => 1,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Sllv => "sllv",
            Srlv => "srlv",
            Srav => "srav",
            Add => "add",
            Addu => "addu",
            Sub => "sub",
            Subu => "subu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Addiu => "addiu",
            Slti => "slti",
            Sltiu => "sltiu",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Lui => "lui",
            Mult => "mult",
            Multu => "multu",
            Div => "div",
            Divu => "divu",
            Mfhi => "mfhi",
            Mflo => "mflo",
            Mthi => "mthi",
            Mtlo => "mtlo",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Beq => "beq",
            Bne => "bne",
            Blez => "blez",
            Bgtz => "bgtz",
            Bltz => "bltz",
            Bgez => "bgez",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Syscall => "syscall",
            Break => "break",
            Ext => "ext",
        }
    }

    /// All operations, for exhaustive tests.
    pub fn all() -> &'static [Op] {
        use Op::*;
        &[
            Sll, Srl, Sra, Sllv, Srlv, Srav, Add, Addu, Sub, Subu, And, Or, Xor, Nor, Slt, Sltu,
            Addi, Addiu, Slti, Sltiu, Andi, Ori, Xori, Lui, Mult, Multu, Div, Divu, Mfhi, Mflo,
            Mthi, Mtlo, Lb, Lbu, Lh, Lhu, Lw, Sb, Sh, Sw, Beq, Bne, Blez, Bgtz, Bltz, Bgez, J, Jal,
            Jr, Jalr, Syscall, Break, Ext,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfu_candidates_are_exactly_single_cycle_alu_ops() {
        for &op in Op::all() {
            if op.is_pfu_candidate() {
                assert_eq!(op.class(), OpClass::IntAlu, "{op:?}");
                assert_eq!(op.latency(), 1, "{op:?}");
            }
        }
        assert!(!Op::Lw.is_pfu_candidate());
        assert!(!Op::Mult.is_pfu_candidate());
        assert!(!Op::Beq.is_pfu_candidate());
        assert!(!Op::Ext.is_pfu_candidate());
    }

    #[test]
    fn block_enders_are_control_or_sys() {
        for &op in Op::all() {
            if op.ends_block() {
                assert!(matches!(op.class(), OpClass::Ctrl | OpClass::Sys), "{op:?}");
            }
        }
        assert!(Op::Beq.ends_block());
        assert!(Op::J.ends_block());
        assert!(!Op::Addu.ends_block());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Op::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate {}", op.mnemonic());
        }
    }

    #[test]
    fn latencies_match_fu_classes() {
        assert_eq!(Op::Mult.latency(), 3);
        assert_eq!(Op::Div.latency(), 20);
        assert_eq!(Op::Addu.latency(), 1);
    }
}
