//! # t1000-isa — the T1000 instruction-set architecture
//!
//! A MIPS-I/PISA-style 32-bit integer RISC ISA extended with a single new
//! primary opcode, `ext`, whose 11-bit `Conf` field selects a programmable
//! functional unit (PFU) configuration. This is the ISA of the T1000
//! architecture from Zhou & Martonosi, *Augmenting Modern Superscalar
//! Architectures with Configurable Extended Instructions* (IPPS 2000).
//!
//! The crate provides:
//! * [`reg::Reg`] — architectural registers and ABI names;
//! * [`op::Op`] — operations and their static properties (class, latency,
//!   PFU-candidacy);
//! * [`instr::Instr`] — decoded instructions with def/use accessors;
//! * [`mod@encode`] — 32-bit binary encoding and decoding;
//! * [`ext`] — the [`ext::FusionMap`] describing which code sites execute
//!   as extended instructions on which PFU configuration;
//! * [`program::Program`] — an executable image (text/data/symbols).

pub mod encode;
pub mod ext;
pub mod instr;
pub mod object;
pub mod op;
pub mod program;
pub mod reg;

pub use encode::{decode, encode, DecodeError};
pub use ext::{ConfDef, ConfId, FusedSite, FusionMap};
pub use instr::Instr;
pub use object::{read_object, write_object, ObjError};
pub use op::{Op, OpClass};
pub use program::Program;
pub use reg::Reg;
