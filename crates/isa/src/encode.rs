//! Binary encoding and decoding of instructions.
//!
//! The encoding is MIPS-I-compatible where the operation exists in MIPS,
//! plus one new primary opcode `0x3f` for extended (PFU) instructions:
//!
//! ```text
//! R-type:  opcode(6)=0  rs(5) rt(5) rd(5) shamt(5) funct(6)
//! I-type:  opcode(6)    rs(5) rt(5) imm(16)
//! J-type:  opcode(6)    target(26)
//! EXT:     opcode(6)=63 rs(5) rt(5) rd(5) conf(11)
//! ```
//!
//! The `Conf` field (paper §2.2) controls the loading of configuration bits:
//! at decode it is compared against the ID tags of the resident PFU
//! configurations, and a mismatch triggers a reconfiguration.

use crate::instr::Instr;
use crate::op::Op;
use crate::reg::Reg;

/// Error produced when a 32-bit word is not a valid instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word 0x{:08x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;
const OP_EXT: u32 = 0x3f;

fn funct_of(op: Op) -> Option<u32> {
    use Op::*;
    Some(match op {
        Sll => 0,
        Srl => 2,
        Sra => 3,
        Sllv => 4,
        Srlv => 6,
        Srav => 7,
        Jr => 8,
        Jalr => 9,
        Syscall => 12,
        Break => 13,
        Mfhi => 16,
        Mthi => 17,
        Mflo => 18,
        Mtlo => 19,
        Mult => 24,
        Multu => 25,
        Div => 26,
        Divu => 27,
        Add => 32,
        Addu => 33,
        Sub => 34,
        Subu => 35,
        And => 36,
        Or => 37,
        Xor => 38,
        Nor => 39,
        Slt => 42,
        Sltu => 43,
        _ => return None,
    })
}

fn op_of_funct(funct: u32) -> Option<Op> {
    use Op::*;
    Some(match funct {
        0 => Sll,
        2 => Srl,
        3 => Sra,
        4 => Sllv,
        6 => Srlv,
        7 => Srav,
        8 => Jr,
        9 => Jalr,
        12 => Syscall,
        13 => Break,
        16 => Mfhi,
        17 => Mthi,
        18 => Mflo,
        19 => Mtlo,
        24 => Mult,
        25 => Multu,
        26 => Div,
        27 => Divu,
        32 => Add,
        33 => Addu,
        34 => Sub,
        35 => Subu,
        36 => And,
        37 => Or,
        38 => Xor,
        39 => Nor,
        42 => Slt,
        43 => Sltu,
        _ => return None,
    })
}

fn primary_of(op: Op) -> Option<u32> {
    use Op::*;
    Some(match op {
        J => 0x02,
        Jal => 0x03,
        Beq => 0x04,
        Bne => 0x05,
        Blez => 0x06,
        Bgtz => 0x07,
        Addi => 0x08,
        Addiu => 0x09,
        Slti => 0x0a,
        Sltiu => 0x0b,
        Andi => 0x0c,
        Ori => 0x0d,
        Xori => 0x0e,
        Lui => 0x0f,
        Lb => 0x20,
        Lh => 0x21,
        Lw => 0x23,
        Lbu => 0x24,
        Lhu => 0x25,
        Sb => 0x28,
        Sh => 0x29,
        Sw => 0x2b,
        _ => return None,
    })
}

fn op_of_primary(primary: u32) -> Option<Op> {
    use Op::*;
    Some(match primary {
        0x02 => J,
        0x03 => Jal,
        0x04 => Beq,
        0x05 => Bne,
        0x06 => Blez,
        0x07 => Bgtz,
        0x08 => Addi,
        0x09 => Addiu,
        0x0a => Slti,
        0x0b => Sltiu,
        0x0c => Andi,
        0x0d => Ori,
        0x0e => Xori,
        0x0f => Lui,
        0x20 => Lb,
        0x21 => Lh,
        0x23 => Lw,
        0x24 => Lbu,
        0x25 => Lhu,
        0x28 => Sb,
        0x29 => Sh,
        0x2b => Sw,
        _ => return None,
    })
}

/// True when `op`'s 16-bit immediate is zero-extended rather than
/// sign-extended (the MIPS logical immediates).
fn zero_extends(op: Op) -> bool {
    matches!(op, Op::Andi | Op::Ori | Op::Xori | Op::Lui)
}

/// Encodes an instruction to its 32-bit word.
///
/// # Panics
/// Panics if a field is out of range for its encoding slot (e.g. an
/// immediate that does not fit in 16 bits). The assembler validates ranges
/// before calling this.
pub fn encode(i: &Instr) -> u32 {
    use Op::*;
    let rs = (i.rs.index() as u32) << 21;
    let rt = (i.rt.index() as u32) << 16;
    let rd = (i.rd.index() as u32) << 11;
    match i.op {
        Sll | Srl | Sra => {
            let shamt = i.imm as u32;
            assert!(shamt < 32, "shift amount out of range: {}", i.imm);
            rt | rd | (shamt << 6) | funct_of(i.op).unwrap()
        }
        Sllv | Srlv | Srav | Add | Addu | Sub | Subu | And | Or | Xor | Nor | Slt | Sltu | Jalr => {
            rs | rt | rd | funct_of(i.op).unwrap()
        }
        Jr | Mthi | Mtlo => rs | funct_of(i.op).unwrap(),
        Mfhi | Mflo => rd | funct_of(i.op).unwrap(),
        Mult | Multu | Div | Divu => rs | rt | funct_of(i.op).unwrap(),
        Syscall | Break => funct_of(i.op).unwrap(),
        Bltz | Bgez => {
            let which = if i.op == Bgez { 1 } else { 0 };
            assert!(
                (-(1 << 15)..(1 << 15)).contains(&i.imm),
                "branch offset out of range: {}",
                i.imm
            );
            (OP_REGIMM << 26) | rs | (which << 16) | ((i.imm as u32) & 0xffff)
        }
        J | Jal => {
            assert!(i.target < (1 << 26), "jump target out of range");
            (primary_of(i.op).unwrap() << 26) | i.target
        }
        Ext => {
            assert!(i.target < (1 << 11), "Conf field out of range");
            (OP_EXT << 26) | rs | rt | rd | i.target
        }
        _ => {
            // Remaining I-type ops.
            let primary = primary_of(i.op).expect("unencodable op");
            let imm = if zero_extends(i.op) {
                assert!(
                    (0..=0xffff).contains(&i.imm),
                    "unsigned immediate out of range: {}",
                    i.imm
                );
                i.imm as u32
            } else {
                assert!(
                    (-(1 << 15)..(1 << 15)).contains(&i.imm),
                    "signed immediate out of range: {}",
                    i.imm
                );
                (i.imm as u32) & 0xffff
            };
            (primary << 26) | rs | rt | imm
        }
    }
}

/// Decodes a 32-bit word into an instruction.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let primary = word >> 26;
    let rs = Reg::from_field(word >> 21);
    let rt = Reg::from_field(word >> 16);
    let rd = Reg::from_field(word >> 11);
    let shamt = (word >> 6) & 0x1f;
    let err = DecodeError { word };

    if primary == OP_SPECIAL {
        let op = op_of_funct(word & 0x3f).ok_or(err)?;
        let imm = if matches!(op, Op::Sll | Op::Srl | Op::Sra) {
            shamt as i32
        } else {
            0
        };
        // Normalise fields the operation does not read or write, so that
        // decode ∘ encode ∘ decode is the identity (don't-care bits in the
        // word must not survive into the decoded form).
        use Op::*;
        let (rd, rs, rt) = match op {
            Sll | Srl | Sra => (rd, Reg::ZERO, rt),
            Jr | Mthi | Mtlo => (Reg::ZERO, rs, Reg::ZERO),
            Mfhi | Mflo => (rd, Reg::ZERO, Reg::ZERO),
            Mult | Multu | Div | Divu => (Reg::ZERO, rs, rt),
            Jalr => (rd, rs, Reg::ZERO),
            Syscall | Break => (Reg::ZERO, Reg::ZERO, Reg::ZERO),
            _ => (rd, rs, rt),
        };
        return Ok(Instr {
            op,
            rd,
            rs,
            rt,
            imm,
            target: 0,
        });
    }
    if primary == OP_REGIMM {
        let op = match rt.index() {
            0 => Op::Bltz,
            1 => Op::Bgez,
            _ => return Err(err),
        };
        let imm = (word & 0xffff) as u16 as i16 as i32;
        return Ok(Instr {
            op,
            rd: Reg::ZERO,
            rs,
            rt: Reg::ZERO,
            imm,
            target: 0,
        });
    }
    if primary == OP_EXT {
        return Ok(Instr {
            op: Op::Ext,
            rd,
            rs,
            rt,
            imm: 0,
            target: word & 0x7ff,
        });
    }
    let op = op_of_primary(primary).ok_or(err)?;
    if matches!(op, Op::J | Op::Jal) {
        return Ok(Instr {
            op,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: 0,
            target: word & 0x03ff_ffff,
        });
    }
    let raw = word & 0xffff;
    let imm = if zero_extends(op) {
        raw as i32
    } else {
        raw as u16 as i16 as i32
    };
    Ok(Instr {
        op,
        rd: Reg::ZERO,
        rs,
        rt,
        imm,
        target: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn rtype_round_trip() {
        let i = Instr::rtype(Op::Addu, r(2), r(3), r(4));
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn shift_round_trip() {
        let i = Instr::shift(Op::Sra, r(9), r(10), 17);
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn itype_negative_immediate_round_trip() {
        let i = Instr::itype(Op::Addiu, r(8), r(8), -1);
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn zero_extended_immediates_round_trip() {
        let i = Instr::itype(Op::Ori, r(8), r(0), 0xbeef);
        let d = decode(encode(&i)).unwrap();
        assert_eq!(d.imm, 0xbeef);
    }

    #[test]
    fn regimm_branches_round_trip() {
        for op in [Op::Bltz, Op::Bgez] {
            let i = Instr {
                op,
                rd: Reg::ZERO,
                rs: r(5),
                rt: Reg::ZERO,
                imm: -12,
                target: 0,
            };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn jump_round_trip() {
        let i = Instr {
            op: Op::Jal,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: 0,
            target: 0x12_3456,
        };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn ext_round_trip() {
        let i = Instr::ext(0x7ff, r(2), r(3), r(4));
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn nop_encodes_to_zero_word() {
        assert_eq!(encode(&Instr::NOP), 0);
        assert_eq!(decode(0).unwrap(), Instr::NOP);
    }

    #[test]
    fn invalid_words_are_rejected() {
        // Unused primary opcode 0x3e.
        assert!(decode(0x3e << 26).is_err());
        // SPECIAL with unused funct 63.
        assert!(decode(63).is_err());
        // REGIMM with rt = 5.
        assert!(decode((1 << 26) | (5 << 16)).is_err());
    }

    #[test]
    #[should_panic]
    fn oversized_immediate_panics() {
        encode(&Instr::itype(Op::Addiu, r(1), r(1), 40000));
    }

    #[test]
    fn all_encodable_ops_round_trip() {
        // Build one representative instruction per op and check the
        // encode/decode loop preserves it exactly.
        for &op in Op::all() {
            let i = representative(op);
            let d = decode(encode(&i)).unwrap_or_else(|e| panic!("{op:?}: {e}"));
            assert_eq!(d, i, "{op:?}");
        }
    }

    fn representative(op: Op) -> Instr {
        use Op::*;
        match op {
            Sll | Srl | Sra => Instr::shift(op, r(3), r(4), 5),
            Sllv | Srlv | Srav | Add | Addu | Sub | Subu | And | Or | Xor | Nor | Slt | Sltu => {
                Instr::rtype(op, r(3), r(4), r(5))
            }
            Addi | Addiu | Slti | Sltiu => Instr::itype(op, r(3), r(4), -7),
            Andi | Ori | Xori | Lui => Instr::itype(op, r(3), r(4), 7),
            Mult | Multu | Div | Divu => Instr {
                op,
                rd: Reg::ZERO,
                rs: r(3),
                rt: r(4),
                imm: 0,
                target: 0,
            },
            Mfhi | Mflo => Instr {
                op,
                rd: r(3),
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                imm: 0,
                target: 0,
            },
            Mthi | Mtlo | Jr => Instr {
                op,
                rd: Reg::ZERO,
                rs: r(3),
                rt: Reg::ZERO,
                imm: 0,
                target: 0,
            },
            Lb | Lbu | Lh | Lhu | Lw | Sb | Sh | Sw => Instr::itype(op, r(3), r(4), 16),
            Beq | Bne => Instr {
                op,
                rd: Reg::ZERO,
                rs: r(3),
                rt: r(4),
                imm: -3,
                target: 0,
            },
            Blez | Bgtz | Bltz | Bgez => Instr {
                op,
                rd: Reg::ZERO,
                rs: r(3),
                rt: Reg::ZERO,
                imm: 9,
                target: 0,
            },
            J | Jal => Instr {
                op,
                rd: Reg::ZERO,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                imm: 0,
                target: 0x100,
            },
            Jalr => Instr {
                op,
                rd: r(31),
                rs: r(3),
                rt: Reg::ZERO,
                imm: 0,
                target: 0,
            },
            Syscall | Break => Instr {
                op,
                rd: Reg::ZERO,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                imm: 0,
                target: 0,
            },
            Ext => Instr::ext(42, r(3), r(4), r(5)),
        }
    }
}
