//! A simple text object format (`.tobj`) for assembled programs.
//!
//! The toolchain's interchange format: the `t1000 asm` CLI writes it, the
//! other subcommands read it, and it is diff-friendly for tests. Layout:
//!
//! ```text
//! T1000OBJ v1
//! entry 0x400000
//! text 0x400000
//!   3c011001 34210000 ...
//! data 0x10000000
//!   00 01 02 ...
//! sym main 0x400000
//! ```

use crate::program::Program;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Error from parsing a text object file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjError {
    /// 1-based line number.
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ObjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "object line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ObjError {}

/// Serialises a program to the text object format.
pub fn write_object(p: &Program) -> String {
    let mut out = String::new();
    writeln!(out, "T1000OBJ v1").unwrap();
    writeln!(out, "entry 0x{:x}", p.entry).unwrap();
    writeln!(out, "text 0x{:x}", p.text_base).unwrap();
    for chunk in p.text.chunks(8) {
        out.push(' ');
        for w in chunk {
            write!(out, " {w:08x}").unwrap();
        }
        out.push('\n');
    }
    writeln!(out, "data 0x{:x}", p.data_base).unwrap();
    for chunk in p.data.chunks(16) {
        out.push(' ');
        for b in chunk {
            write!(out, " {b:02x}").unwrap();
        }
        out.push('\n');
    }
    for (name, addr) in &p.symbols {
        writeln!(out, "sym {name} 0x{addr:x}").unwrap();
    }
    out
}

fn parse_hex(tok: &str, line: usize) -> Result<u32, ObjError> {
    let t = tok.strip_prefix("0x").unwrap_or(tok);
    u32::from_str_radix(t, 16).map_err(|_| ObjError {
        line,
        msg: format!("bad hex value `{tok}`"),
    })
}

/// Parses the text object format back into a [`Program`].
pub fn read_object(src: &str) -> Result<Program, ObjError> {
    let mut lines = src.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (ln, magic) = lines.next().ok_or(ObjError {
        line: 1,
        msg: "empty object".into(),
    })?;
    if magic != "T1000OBJ v1" {
        return Err(ObjError {
            line: ln,
            msg: format!("bad magic `{magic}`"),
        });
    }

    let mut entry = None;
    let mut text_base = None;
    let mut data_base = None;
    let mut text: Vec<u32> = Vec::new();
    let mut data: Vec<u8> = Vec::new();
    let mut symbols = BTreeMap::new();

    #[derive(PartialEq)]
    enum Mode {
        None,
        Text,
        Data,
    }
    let mut mode = Mode::None;

    for (ln, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap();
        match head {
            "entry" => {
                let v = toks.next().ok_or(ObjError {
                    line: ln,
                    msg: "missing entry".into(),
                })?;
                entry = Some(parse_hex(v, ln)?);
                mode = Mode::None;
            }
            "text" => {
                let v = toks.next().ok_or(ObjError {
                    line: ln,
                    msg: "missing base".into(),
                })?;
                text_base = Some(parse_hex(v, ln)?);
                mode = Mode::Text;
            }
            "data" => {
                let v = toks.next().ok_or(ObjError {
                    line: ln,
                    msg: "missing base".into(),
                })?;
                data_base = Some(parse_hex(v, ln)?);
                mode = Mode::Data;
            }
            "sym" => {
                let name = toks.next().ok_or(ObjError {
                    line: ln,
                    msg: "missing name".into(),
                })?;
                let v = toks.next().ok_or(ObjError {
                    line: ln,
                    msg: "missing addr".into(),
                })?;
                symbols.insert(name.to_string(), parse_hex(v, ln)?);
                mode = Mode::None;
            }
            tok => {
                // A continuation line of hex payload.
                let all = std::iter::once(tok).chain(toks);
                match mode {
                    Mode::Text => {
                        for t in all {
                            text.push(parse_hex(t, ln)?);
                        }
                    }
                    Mode::Data => {
                        for t in all {
                            let v = parse_hex(t, ln)?;
                            if v > 0xff {
                                return Err(ObjError {
                                    line: ln,
                                    msg: format!("data byte `{t}` out of range"),
                                });
                            }
                            data.push(v as u8);
                        }
                    }
                    Mode::None => {
                        return Err(ObjError {
                            line: ln,
                            msg: format!("unexpected token `{tok}`"),
                        })
                    }
                }
            }
        }
    }

    let text_base = text_base.ok_or(ObjError {
        line: 0,
        msg: "missing text section".into(),
    })?;
    Ok(Program {
        text_base,
        text,
        data_base: data_base.unwrap_or(crate::program::DATA_BASE),
        data,
        entry: entry.unwrap_or(text_base),
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::op::Op;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut p = Program::from_words(vec![
            crate::encode(&Instr::itype(Op::Addiu, Reg::V0, Reg::ZERO, 10)),
            crate::encode(&Instr {
                op: Op::Syscall,
                ..Instr::NOP
            }),
        ]);
        p.data = (0..40u8).collect();
        p.symbols.insert("main".into(), p.text_base);
        p.symbols.insert("buf".into(), p.data_base + 8);
        p.entry = p.text_base;
        p
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = sample();
        let text = write_object(&p);
        let q = read_object(&text).unwrap();
        assert_eq!(p.text, q.text);
        assert_eq!(p.text_base, q.text_base);
        assert_eq!(p.data, q.data);
        assert_eq!(p.data_base, q.data_base);
        assert_eq!(p.entry, q.entry);
        assert_eq!(p.symbols, q.symbols);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let e = read_object("NOPE v1\n").unwrap_err();
        assert!(e.msg.contains("bad magic"));
    }

    #[test]
    fn bad_payload_reports_line() {
        let src = "T1000OBJ v1\ntext 0x400000\n  zzzz\n";
        let e = read_object(src).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn oversized_data_byte_is_rejected() {
        let src = "T1000OBJ v1\ntext 0x400000\ndata 0x10000000\n  1ff\n";
        assert!(read_object(src).is_err());
    }

    #[test]
    fn missing_text_section_is_rejected() {
        assert!(read_object("T1000OBJ v1\nentry 0x400000\n").is_err());
    }

    #[test]
    fn empty_sections_round_trip() {
        let p = Program::from_words(vec![]);
        let q = read_object(&write_object(&p)).unwrap();
        assert!(q.text.is_empty());
        assert!(q.data.is_empty());
    }
}
