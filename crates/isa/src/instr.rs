//! Decoded instruction representation and operand accessors.
//!
//! `Instr` is a flat struct rather than a per-format enum: the cycle-level
//! simulator touches millions of these per simulated second and benefits
//! from a fixed-size, branch-light representation. The `def`/`uses`
//! accessors encode the register semantics of every operation in one place,
//! so the out-of-order scheduler, the liveness analysis and the sequence
//! extractor all agree on dataflow.

use crate::op::Op;
use crate::reg::Reg;
use std::fmt;

/// A decoded instruction.
///
/// Field meaning varies by format (mirroring MIPS conventions):
/// * R-type ALU: `rd = rs OP rt`; shifts-by-constant use `imm` as shamt and
///   read only `rt`; variable shifts shift `rt` by the low 5 bits of `rs`.
/// * I-type ALU: `rt = rs OP imm` (`lui` reads nothing).
/// * Loads: `rt = mem[rs + imm]`; stores: `mem[rs + imm] = rt`.
/// * Branches compare `rs`/`rt`; `imm` is the *word* offset from the
///   following instruction.
/// * `j`/`jal`: `target` is the absolute word index within the 256 MiB
///   region of the delay-slot-free PC.
/// * `ext`: `rd = PFU_conf(rs, rt)`; `target` carries the 11-bit `Conf`
///   field selecting the PFU configuration (paper §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    pub op: Op,
    pub rd: Reg,
    pub rs: Reg,
    pub rt: Reg,
    /// Immediate (sign-extended), shift amount, or branch word offset.
    pub imm: i32,
    /// Jump target field, or `Conf` id for `ext`.
    pub target: u32,
}

impl Instr {
    /// A canonical no-op (`sll $zero, $zero, 0`).
    pub const NOP: Instr = Instr {
        op: Op::Sll,
        rd: Reg::ZERO,
        rs: Reg::ZERO,
        rt: Reg::ZERO,
        imm: 0,
        target: 0,
    };

    /// Builds an R-type `rd = rs OP rt` instruction.
    pub fn rtype(op: Op, rd: Reg, rs: Reg, rt: Reg) -> Instr {
        Instr {
            op,
            rd,
            rs,
            rt,
            imm: 0,
            target: 0,
        }
    }

    /// Builds a constant shift `rd = rt OP shamt`.
    pub fn shift(op: Op, rd: Reg, rt: Reg, shamt: u32) -> Instr {
        debug_assert!(matches!(op, Op::Sll | Op::Srl | Op::Sra));
        debug_assert!(shamt < 32);
        Instr {
            op,
            rd,
            rs: Reg::ZERO,
            rt,
            imm: shamt as i32,
            target: 0,
        }
    }

    /// Builds an I-type `rt = rs OP imm` instruction.
    pub fn itype(op: Op, rt: Reg, rs: Reg, imm: i32) -> Instr {
        Instr {
            op,
            rd: Reg::ZERO,
            rs,
            rt,
            imm,
            target: 0,
        }
    }

    /// Builds an extended (PFU) instruction `rd = conf(rs, rt)`.
    pub fn ext(conf: u16, rd: Reg, rs: Reg, rt: Reg) -> Instr {
        debug_assert!(conf < (1 << 11), "Conf field is 11 bits");
        Instr {
            op: Op::Ext,
            rd,
            rs,
            rt,
            imm: 0,
            target: conf as u32,
        }
    }

    /// The general-purpose register written by this instruction, if any.
    /// Writes to `$zero` are reported as `None` (they are architectural
    /// no-ops and must not create dependences).
    pub fn def(&self) -> Option<Reg> {
        use Op::*;
        let r = match self.op {
            Sll | Srl | Sra | Sllv | Srlv | Srav | Add | Addu | Sub | Subu | And | Or | Xor
            | Nor | Slt | Sltu | Mfhi | Mflo | Jalr | Ext => self.rd,
            Addi | Addiu | Slti | Sltiu | Andi | Ori | Xori | Lui | Lb | Lbu | Lh | Lhu | Lw => {
                self.rt
            }
            Jal => Reg::RA,
            _ => return None,
        };
        (!r.is_zero()).then_some(r)
    }

    /// The general-purpose registers read by this instruction (deduplicated,
    /// `$zero` omitted). At most two — the paper's port constraint comes
    /// from exactly this property of the base ISA.
    pub fn uses(&self) -> impl Iterator<Item = Reg> {
        use Op::*;
        let (a, b) = match self.op {
            // Constant shifts read only rt.
            Sll | Srl | Sra => (Some(self.rt), None),
            // Variable shifts read the value (rt) and the amount (rs).
            Sllv | Srlv | Srav => (Some(self.rt), Some(self.rs)),
            Add | Addu | Sub | Subu | And | Or | Xor | Nor | Slt | Sltu | Mult | Multu | Div
            | Divu | Ext => (Some(self.rs), Some(self.rt)),
            Addi | Addiu | Slti | Sltiu | Andi | Ori | Xori => (Some(self.rs), None),
            Lui => (None, None),
            Lb | Lbu | Lh | Lhu | Lw => (Some(self.rs), None),
            Sb | Sh | Sw => (Some(self.rs), Some(self.rt)),
            Beq | Bne => (Some(self.rs), Some(self.rt)),
            Blez | Bgtz | Bltz | Bgez => (Some(self.rs), None),
            Jr | Jalr | Mthi | Mtlo => (Some(self.rs), None),
            // Syscalls read $v0 (selector) and $a0 (argument) by convention.
            Syscall => (Some(Reg::V0), Some(Reg::A0)),
            Mfhi | Mflo | J | Jal | Break => (None, None),
        };
        let dedup_b = if b == a { None } else { b };
        a.into_iter().chain(dedup_b).filter(|r| !r.is_zero())
    }

    /// Whether this instruction writes the HI/LO pair.
    pub fn writes_hilo(&self) -> bool {
        matches!(
            self.op,
            Op::Mult | Op::Multu | Op::Div | Op::Divu | Op::Mthi | Op::Mtlo
        )
    }

    /// Whether this instruction reads the HI/LO pair.
    pub fn reads_hilo(&self) -> bool {
        matches!(self.op, Op::Mfhi | Op::Mflo)
    }

    /// Branch target for a conditional branch at byte address `pc`.
    pub fn branch_target(&self, pc: u32) -> u32 {
        debug_assert!(self.op.is_branch());
        pc.wrapping_add(4).wrapping_add((self.imm as u32) << 2)
    }

    /// Absolute target for `j`/`jal` issued at byte address `pc`.
    pub fn jump_target(&self, pc: u32) -> u32 {
        debug_assert!(matches!(self.op, Op::J | Op::Jal));
        (pc.wrapping_add(4) & 0xf000_0000) | (self.target << 2)
    }

    /// The `Conf` field of an `ext` instruction.
    pub fn conf(&self) -> u16 {
        debug_assert_eq!(self.op, Op::Ext);
        self.target as u16
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        let m = self.op.mnemonic();
        match self.op {
            Sll | Srl | Sra => write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.imm),
            Sllv | Srlv | Srav => write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.rs),
            Add | Addu | Sub | Subu | And | Or | Xor | Nor | Slt | Sltu => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rs, self.rt)
            }
            Addi | Addiu | Slti | Sltiu | Andi | Ori | Xori => {
                write!(f, "{m} {}, {}, {}", self.rt, self.rs, self.imm)
            }
            Lui => write!(f, "{m} {}, {}", self.rt, self.imm),
            Mult | Multu | Div | Divu => write!(f, "{m} {}, {}", self.rs, self.rt),
            Mfhi | Mflo => write!(f, "{m} {}", self.rd),
            Mthi | Mtlo => write!(f, "{m} {}", self.rs),
            Lb | Lbu | Lh | Lhu | Lw | Sb | Sh | Sw => {
                write!(f, "{m} {}, {}({})", self.rt, self.imm, self.rs)
            }
            Beq | Bne => write!(f, "{m} {}, {}, {}", self.rs, self.rt, self.imm),
            Blez | Bgtz | Bltz | Bgez => write!(f, "{m} {}, {}", self.rs, self.imm),
            J | Jal => write!(f, "{m} 0x{:x}", self.target << 2),
            Jr => write!(f, "{m} {}", self.rs),
            Jalr => write!(f, "{m} {}, {}", self.rd, self.rs),
            Syscall | Break => write!(f, "{m}"),
            Ext => write!(
                f,
                "ext {}, {}, {}, conf={}",
                self.rd, self.rs, self.rt, self.target
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn def_reports_correct_register_per_format() {
        assert_eq!(Instr::rtype(Op::Addu, r(2), r(3), r(4)).def(), Some(r(2)));
        assert_eq!(Instr::itype(Op::Addiu, r(5), r(3), 7).def(), Some(r(5)));
        assert_eq!(Instr::itype(Op::Lw, r(6), r(29), 0).def(), Some(r(6)));
        assert_eq!(Instr::itype(Op::Sw, r(6), r(29), 0).def(), None);
        assert_eq!(Instr::itype(Op::Beq, r(1), r(2), 4).def(), None);
        assert_eq!(
            Instr {
                op: Op::Jal,
                ..Instr::NOP
            }
            .def(),
            Some(Reg::RA)
        );
    }

    #[test]
    fn writes_to_zero_register_are_not_defs() {
        assert_eq!(Instr::rtype(Op::Addu, Reg::ZERO, r(3), r(4)).def(), None);
        assert_eq!(Instr::NOP.def(), None);
    }

    #[test]
    fn uses_deduplicate_and_skip_zero() {
        let i = Instr::rtype(Op::Addu, r(2), r(3), r(3));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![r(3)]);
        let i = Instr::rtype(Op::Addu, r(2), Reg::ZERO, r(4));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![r(4)]);
        assert_eq!(Instr::NOP.uses().count(), 0);
    }

    #[test]
    fn constant_shift_reads_only_rt() {
        let i = Instr::shift(Op::Sll, r(2), r(3), 4);
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![r(3)]);
        assert_eq!(i.imm, 4);
    }

    #[test]
    fn at_most_two_register_uses() {
        // The paper's 2-input PFU port constraint relies on this ISA property.
        let worst = Instr::rtype(Op::Addu, r(1), r(2), r(3));
        assert!(worst.uses().count() <= 2);
    }

    #[test]
    fn branch_and_jump_targets() {
        let b = Instr::itype(Op::Beq, r(1), r(2), -2);
        assert_eq!(b.branch_target(0x100), 0x100 + 4 - 8);
        let j = Instr {
            op: Op::J,
            target: 0x40,
            ..Instr::NOP
        };
        assert_eq!(j.jump_target(0x1000_0000), 0x1000_0100);
    }

    #[test]
    fn ext_roundtrips_conf() {
        let e = Instr::ext(0x2a, r(2), r(3), r(4));
        assert_eq!(e.conf(), 0x2a);
        assert_eq!(e.def(), Some(r(2)));
        assert_eq!(e.uses().collect::<Vec<_>>(), vec![r(3), r(4)]);
    }

    #[test]
    fn display_formats_readably() {
        assert_eq!(
            Instr::rtype(Op::Addu, r(2), r(3), r(4)).to_string(),
            "addu $v0, $v1, $a0"
        );
        assert_eq!(
            Instr::itype(Op::Lw, r(8), r(29), 16).to_string(),
            "lw $t0, 16($sp)"
        );
    }
}
