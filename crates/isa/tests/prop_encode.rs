//! Property tests: every well-formed instruction survives the
//! encode → decode round trip bit-exactly, and decoding never panics on
//! arbitrary words.

use proptest::prelude::*;
use t1000_isa::{decode, encode, Instr, Op, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// Strategy producing a well-formed instruction for any encodable op.
fn arb_instr() -> impl Strategy<Value = Instr> {
    let ops = Op::all();
    (
        0..ops.len(),
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<i32>(),
        any::<u32>(),
    )
        .prop_map(|(oi, rd, rs, rt, raw_imm, raw_t)| {
            use Op::*;
            let op = ops[oi];
            match op {
                Sll | Srl | Sra => Instr::shift(op, rd, rt, (raw_imm as u32) % 32),
                Sllv | Srlv | Srav | Add | Addu | Sub | Subu | And | Or | Xor | Nor | Slt
                | Sltu => Instr::rtype(op, rd, rs, rt),
                Addi | Addiu | Slti | Sltiu => Instr::itype(op, rt, rs, raw_imm % (1 << 15)),
                Andi | Ori | Xori | Lui => {
                    Instr::itype(op, rt, rs, (raw_imm as u32 % (1 << 16)) as i32)
                }
                Lb | Lbu | Lh | Lhu | Lw | Sb | Sh | Sw => {
                    Instr::itype(op, rt, rs, raw_imm % (1 << 15))
                }
                Beq | Bne => Instr {
                    op,
                    rd: Reg::ZERO,
                    rs,
                    rt,
                    imm: raw_imm % (1 << 15),
                    target: 0,
                },
                Blez | Bgtz | Bltz | Bgez => Instr {
                    op,
                    rd: Reg::ZERO,
                    rs,
                    rt: Reg::ZERO,
                    imm: raw_imm % (1 << 15),
                    target: 0,
                },
                Mult | Multu | Div | Divu => Instr {
                    op,
                    rd: Reg::ZERO,
                    rs,
                    rt,
                    imm: 0,
                    target: 0,
                },
                Mfhi | Mflo => Instr {
                    op,
                    rd,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                },
                Mthi | Mtlo | Jr => Instr {
                    op,
                    rd: Reg::ZERO,
                    rs,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                },
                Jalr => Instr {
                    op,
                    rd,
                    rs,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                },
                J | Jal => Instr {
                    op,
                    rd: Reg::ZERO,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: raw_t % (1 << 26),
                },
                Syscall | Break => Instr {
                    op,
                    rd: Reg::ZERO,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    imm: 0,
                    target: 0,
                },
                Ext => Instr::ext((raw_t % (1 << 11)) as u16, rd, rs, rt),
            }
        })
}

proptest! {
    #[test]
    fn encode_decode_round_trip(i in arb_instr()) {
        let word = encode(&i);
        let d = decode(word).expect("well-formed instruction must decode");
        prop_assert_eq!(d, i);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word); // Ok or Err, but never a panic.
    }

    #[test]
    fn decode_encode_is_identity_on_valid_words(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            // Some fields are don't-cares in the encoding (e.g. rs of a
            // constant shift); re-encoding must still produce a word that
            // decodes to the same instruction.
            let w2 = encode(&i);
            prop_assert_eq!(decode(w2).unwrap(), i);
        }
    }

    #[test]
    fn uses_never_exceed_two_registers(i in arb_instr()) {
        prop_assert!(i.uses().count() <= 2);
    }

    #[test]
    fn def_is_never_the_zero_register(i in arb_instr()) {
        if let Some(d) = i.def() {
            prop_assert!(!d.is_zero());
        }
    }
}
