//! Property test: the text object format round-trips arbitrary programs.

use proptest::prelude::*;
use t1000_isa::{read_object, write_object, Program};

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(any::<u32>(), 0..200),
        prop::collection::vec(any::<u8>(), 0..300),
        prop::collection::btree_map("[a-z_][a-z0-9_]{0,12}", any::<u32>(), 0..10),
        0u32..64,
    )
        .prop_map(|(text, data, symbols, entry_off)| {
            let base = 0x0040_0000u32;
            let entry = base + 4 * (entry_off % (text.len().max(1) as u32));
            Program {
                text_base: base,
                text,
                data_base: 0x1000_0000,
                data,
                entry,
                symbols,
            }
        })
}

proptest! {
    #[test]
    fn object_format_round_trips(p in arb_program()) {
        let text = write_object(&p);
        let q = read_object(&text).expect("writer output must parse");
        prop_assert_eq!(p.text, q.text);
        prop_assert_eq!(p.data, q.data);
        prop_assert_eq!(p.text_base, q.text_base);
        prop_assert_eq!(p.data_base, q.data_base);
        prop_assert_eq!(p.entry, q.entry);
        prop_assert_eq!(p.symbols, q.symbols);
    }

    #[test]
    fn parser_never_panics_on_noise(noise in "[ -~\n]{0,400}") {
        let _ = read_object(&noise);
        let _ = read_object(&format!("T1000OBJ v1\n{noise}"));
    }
}
