//! Control-flow graph construction over a program's text segment.
//!
//! Blocks are maximal straight-line runs: leaders are the entry point,
//! every branch/jump target, and every instruction following a
//! block-ending op. Indirect jumps (`jr`/`jalr`) have statically unknown
//! successors; the graph marks such blocks [`BasicBlock::has_unknown_succ`]
//! so downstream analyses (liveness) can be conservative.

use std::collections::{BTreeMap, BTreeSet};
use t1000_isa::{DecodeError, Instr, Op, Program};

/// Index of a basic block within its [`Cfg`].
pub type BlockId = usize;

/// One basic block.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// Byte address of the first instruction.
    pub start: u32,
    /// Byte address one past the last instruction.
    pub end: u32,
    /// Successor blocks (fall-through and/or branch target).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
    /// True when the block ends in an indirect jump (`jr`/`jalr`) or a
    /// syscall that may terminate — successors are not statically known.
    pub has_unknown_succ: bool,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        ((self.end - self.start) / 4) as usize
    }

    /// True for an empty block (does not occur in well-formed CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the instruction addresses of the block.
    pub fn pcs(&self) -> impl Iterator<Item = u32> {
        (self.start..self.end).step_by(4)
    }
}

/// A whole-program control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in ascending address order.
    pub blocks: Vec<BasicBlock>,
    /// Entry block id.
    pub entry: BlockId,
    by_start: BTreeMap<u32, BlockId>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Result<Cfg, DecodeError> {
        let decoded = program.decode_all()?;
        if decoded.is_empty() {
            return Ok(Cfg {
                blocks: Vec::new(),
                entry: 0,
                by_start: BTreeMap::new(),
            });
        }

        // 1. Find leaders.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(program.entry);
        leaders.insert(program.text_base);
        for &(pc, i) in &decoded {
            if i.op.is_branch() {
                leaders.insert(i.branch_target(pc));
                leaders.insert(pc + 4);
            } else if matches!(i.op, Op::J | Op::Jal) {
                leaders.insert(i.jump_target(pc));
                leaders.insert(pc + 4);
            } else if i.op.ends_block() {
                leaders.insert(pc + 4);
            }
        }
        leaders.retain(|pc| program.contains_pc(*pc));

        // 2. Carve blocks.
        let leader_list: Vec<u32> = leaders.iter().copied().collect();
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(leader_list.len());
        let mut by_start = BTreeMap::new();
        for (bi, &start) in leader_list.iter().enumerate() {
            let next_leader = leader_list
                .get(bi + 1)
                .copied()
                .unwrap_or(program.text_end());
            // A block also ends at its first block-ending instruction.
            let mut end = next_leader;
            let mut pc = start;
            while pc < next_leader {
                let i = program.instr_at(pc)?;
                if i.op.ends_block() {
                    end = pc + 4;
                    break;
                }
                pc += 4;
            }
            by_start.insert(start, blocks.len());
            blocks.push(BasicBlock {
                start,
                end,
                succs: Vec::new(),
                preds: Vec::new(),
                has_unknown_succ: false,
            });
        }

        // 3. Wire edges.
        let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
        // Index loop: the `Flow::Indirect` arm mutates `blocks[bi]`.
        #[allow(clippy::needless_range_loop)]
        for bi in 0..blocks.len() {
            let last_pc = blocks[bi].end - 4;
            let i = program.instr_at(last_pc)?;
            let add = |edges: &mut Vec<_>, target: u32| {
                if let Some(&t) = by_start.get(&target) {
                    edges.push((bi, t));
                }
            };
            let fall = blocks[bi].end;
            match classify(&i) {
                Flow::FallThrough => add(&mut edges, fall),
                Flow::Branch => {
                    add(&mut edges, i.branch_target(last_pc));
                    add(&mut edges, fall);
                }
                Flow::Jump => add(&mut edges, i.jump_target(last_pc)),
                Flow::Call => {
                    // A call transfers to the callee and (by convention)
                    // returns to the fall-through; both edges are kept so
                    // loops spanning calls are still detected.
                    add(&mut edges, i.jump_target(last_pc));
                    add(&mut edges, fall);
                }
                Flow::Indirect => {
                    blocks[bi].has_unknown_succ = true;
                }
                Flow::Stop => {
                    // A syscall either exits (no registers observable
                    // afterwards — its own uses of $v0/$a0 are modelled as
                    // ordinary uses) or falls through.
                    add(&mut edges, fall);
                }
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
            }
            if !blocks[to].preds.contains(&from) {
                blocks[to].preds.push(from);
            }
        }

        let Some(&entry) = by_start.get(&program.entry) else {
            unreachable!("the entry pc always starts a block");
        };
        Ok(Cfg {
            blocks,
            entry,
            by_start,
        })
    }

    /// The block whose range contains `pc`, if any.
    pub fn block_containing(&self, pc: u32) -> Option<BlockId> {
        let (_, &id) = self.by_start.range(..=pc).next_back()?;
        (pc < self.blocks[id].end).then_some(id)
    }

    /// The block starting exactly at `pc`.
    pub fn block_at(&self, pc: u32) -> Option<BlockId> {
        self.by_start.get(&pc).copied()
    }
}

enum Flow {
    FallThrough,
    Branch,
    Jump,
    Call,
    Indirect,
    Stop,
}

fn classify(i: &Instr) -> Flow {
    use Op::*;
    match i.op {
        Beq | Bne | Blez | Bgtz | Bltz | Bgez => Flow::Branch,
        J => Flow::Jump,
        Jal => Flow::Call,
        Jr | Jalr => Flow::Indirect,
        Syscall | Break => Flow::Stop,
        _ => Flow::FallThrough,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_asm::assemble;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = assemble(src).unwrap();
        let c = Cfg::build(&p).unwrap();
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) =
            cfg_of("main: addiu $t0, $zero, 1\n addu $t1, $t0, $t0\n li $v0, 10\n syscall\n");
        // syscall ends the final block; everything before it is one block.
        assert_eq!(c.blocks.len(), 1);
        assert_eq!(c.blocks[0].len(), 4);
    }

    #[test]
    fn loop_creates_back_edge() {
        let (p, c) = cfg_of(
            "main: li $t0, 10\nloop: addiu $t0, $t0, -1\n bgtz $t0, loop\n li $v0, 10\n syscall\n",
        );
        let loop_id = c.block_at(p.symbol("loop").unwrap()).unwrap();
        assert!(
            c.blocks[loop_id].succs.contains(&loop_id),
            "self-loop block must list itself as successor"
        );
        assert_eq!(c.blocks[loop_id].succs.len(), 2);
    }

    #[test]
    fn branch_splits_blocks() {
        let (p, c) = cfg_of(
            "
main:
    beq $t0, $t1, skip
    addiu $t2, $zero, 1
skip:
    li $v0, 10
    syscall
",
        );
        assert_eq!(c.blocks.len(), 3);
        let main = c.block_at(p.entry).unwrap();
        let skip = c.block_at(p.symbol("skip").unwrap()).unwrap();
        assert_eq!(c.blocks[main].succs.len(), 2);
        assert!(c.blocks[main].succs.contains(&skip));
        assert_eq!(c.blocks[skip].preds.len(), 2);
    }

    #[test]
    fn indirect_jump_marks_unknown_successors() {
        let (_, c) = cfg_of("main: jr $ra\n");
        assert!(c.blocks[0].has_unknown_succ);
        assert!(c.blocks[0].succs.is_empty());
    }

    #[test]
    fn call_has_two_successors() {
        let (p, c) = cfg_of(
            "
main:
    jal f
    li $v0, 10
    syscall
f:
    jr $ra
",
        );
        let main = c.block_at(p.entry).unwrap();
        let f = c.block_at(p.symbol("f").unwrap()).unwrap();
        assert!(c.blocks[main].succs.contains(&f));
        assert_eq!(c.blocks[main].succs.len(), 2);
    }

    #[test]
    fn block_containing_maps_interior_pcs() {
        let (p, c) =
            cfg_of("main: addiu $t0, $zero, 1\n addu $t1, $t0, $t0\n li $v0, 10\n syscall\n");
        let b = c.block_containing(p.text_base + 4).unwrap();
        assert_eq!(c.blocks[b].start, p.text_base);
        assert!(c.block_containing(p.text_end()).is_none());
    }
}
