//! Global register liveness.
//!
//! Used by the sequence extractor to enforce the paper's "one output"
//! constraint: every intermediate result of a fused sequence must be *dead*
//! after the sequence, otherwise collapsing it into one PFU write would
//! lose an architecturally visible value.
//!
//! Registers are represented as a 32-bit mask. The analysis is a standard
//! backward dataflow fixpoint over the CFG; blocks with statically unknown
//! successors (indirect jumps, syscalls) conservatively treat every
//! register as live-out.

use crate::cfg::{BlockId, Cfg};
use t1000_isa::{Program, Reg};

/// A set of architectural registers as a bitmask.
pub type RegSet = u32;

/// Mask with every register live.
pub const ALL_REGS: RegSet = u32::MAX;

/// Bit for one register.
pub fn bit(r: Reg) -> RegSet {
    1u32 << r.index()
}

/// Whole-program liveness results.
pub struct Liveness {
    /// Live-in set per block.
    pub live_in: Vec<RegSet>,
    /// Live-out set per block.
    pub live_out: Vec<RegSet>,
    /// For every instruction (indexed by `(pc - text_base)/4`): the set of
    /// registers live immediately *after* that instruction executes.
    live_after: Vec<RegSet>,
    text_base: u32,
}

impl Liveness {
    /// Runs the analysis.
    pub fn compute(program: &Program, cfg: &Cfg) -> Liveness {
        let n = cfg.blocks.len();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![0 as RegSet; n];
        let mut kill = vec![0 as RegSet; n];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for pc in block.pcs() {
                let Ok(i) = program.instr_at(pc) else {
                    unreachable!("CFG is built over valid text");
                };
                for u in i.uses() {
                    if kill[b] & bit(u) == 0 {
                        gen[b] |= bit(u);
                    }
                }
                if let Some(d) = i.def() {
                    kill[b] |= bit(d);
                }
            }
        }

        let mut live_in = vec![0 as RegSet; n];
        let mut live_out = vec![0 as RegSet; n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let block = &cfg.blocks[b];
                // Indirect jumps (jr/jalr) have unknown continuations:
                // assume everything live. Blocks with no successors end the
                // program: nothing is architecturally observable after.
                let mut out: RegSet = if block.has_unknown_succ { ALL_REGS } else { 0 };
                for &s in &block.succs {
                    out |= live_in[s];
                }
                let inn = gen[b] | (out & !kill[b]);
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }

        // Per-instruction live-after by one backward pass per block.
        let mut live_after = vec![ALL_REGS; program.len()];
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut live = live_out[b];
            for pc in block.pcs().collect::<Vec<_>>().into_iter().rev() {
                let idx = ((pc - program.text_base) / 4) as usize;
                live_after[idx] = live;
                let Ok(i) = program.instr_at(pc) else {
                    unreachable!("CFG is built over valid text");
                };
                if let Some(d) = i.def() {
                    live &= !bit(d);
                }
                for u in i.uses() {
                    live |= bit(u);
                }
            }
        }

        Liveness {
            live_in,
            live_out,
            live_after,
            text_base: program.text_base,
        }
    }

    /// Registers live immediately after the instruction at `pc`.
    pub fn live_after_pc(&self, pc: u32) -> RegSet {
        self.live_after[((pc - self.text_base) / 4) as usize]
    }

    /// Whether `r` is live immediately after the instruction at `pc`.
    pub fn is_live_after(&self, pc: u32, r: Reg) -> bool {
        self.live_after_pc(pc) & bit(r) != 0
    }

    /// Live-in set of `block`.
    pub fn block_live_in(&self, block: BlockId) -> RegSet {
        self.live_in[block]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_asm::assemble;

    fn analyse(src: &str) -> (t1000_isa::Program, Cfg, Liveness) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p).unwrap();
        let l = Liveness::compute(&p, &cfg);
        (p, cfg, l)
    }

    fn r(name: &str) -> Reg {
        Reg::parse(name).unwrap()
    }

    #[test]
    fn dead_intermediate_is_not_live() {
        let (p, _, l) = analyse(
            "
main:
    addiu $t0, $zero, 1
    sll   $t1, $t0, 2     # t1 is consumed by the next op only
    addu  $t2, $t1, $t0
    move  $a0, $t2
    li    $v0, 10
    syscall
",
        );
        let sll_pc = p.text_base + 4;
        // After the addu consumes it, t1 is dead.
        assert!(l.is_live_after(sll_pc, r("t1")), "live until its use");
        assert!(
            !l.is_live_after(sll_pc + 4, r("t1")),
            "dead after its last use"
        );
        assert!(l.is_live_after(sll_pc + 4, r("t2")));
    }

    #[test]
    fn loop_carried_values_stay_live() {
        let (p, cfg, l) = analyse(
            "
main:
    li $t0, 10
    li $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bgtz $t0, loop
    move $a0, $t1
    li $v0, 10
    syscall
",
        );
        let loop_b = cfg.block_at(p.symbol("loop").unwrap()).unwrap();
        // Both accumulator and counter are live around the back edge.
        assert!(l.live_in[loop_b] & bit(r("t0")) != 0);
        assert!(l.live_in[loop_b] & bit(r("t1")) != 0);
        assert!(l.live_out[loop_b] & bit(r("t1")) != 0);
    }

    #[test]
    fn unknown_successors_are_fully_live() {
        let (_, cfg, l) = analyse("main: jr $ra\n");
        assert_eq!(l.live_out[cfg.entry], ALL_REGS);
    }

    #[test]
    fn kill_shadows_downstream_uses() {
        let (p, _, l) = analyse(
            "
main:
    addiu $t0, $zero, 1   # this value of t0 dies at the redefinition below
    addiu $t0, $zero, 2
    move  $a0, $t0
    li    $v0, 10
    syscall
",
        );
        // After the first def, the *redefinition* makes t0 not live.
        assert!(!l.is_live_after(p.text_base, r("t0")));
        assert!(l.is_live_after(p.text_base + 4, r("t0")));
    }
}
