//! Dominator analysis and natural-loop detection.
//!
//! The selective algorithm works "loop bodies one at a time" (paper Fig. 5),
//! so we need the program's loops. Natural loops are found from back edges
//! `t → h` where `h` dominates `t`; the loop body is every block that can
//! reach `t` without passing through `h`.

use crate::cfg::{BlockId, Cfg};
use std::collections::BTreeSet;

/// Dominator sets, one per block.
pub struct Dominators {
    /// `doms[b]` = set of blocks dominating `b` (including `b`).
    doms: Vec<BTreeSet<BlockId>>,
}

impl Dominators {
    /// Computes dominators with the classic iterative dataflow algorithm.
    /// Blocks unreachable from the entry dominate-set to ∅.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks.len();
        if n == 0 {
            return Dominators { doms: Vec::new() };
        }
        let all: BTreeSet<BlockId> = (0..n).collect();
        let mut doms = vec![all.clone(); n];
        doms[cfg.entry] = BTreeSet::from([cfg.entry]);

        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == cfg.entry {
                    continue;
                }
                let mut new: Option<BTreeSet<BlockId>> = None;
                for &p in &cfg.blocks[b].preds {
                    // Skip preds still at the initial ⊤ value that are
                    // unreachable; they resolve as iteration proceeds.
                    let pd = &doms[p];
                    new = Some(match new {
                        None => pd.clone(),
                        Some(acc) => acc.intersection(pd).copied().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(b);
                if new != doms[b] {
                    doms[b] = new;
                    changed = true;
                }
            }
        }
        Dominators { doms }
    }

    /// Whether `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.doms.get(b).is_some_and(|s| s.contains(&a))
    }
}

/// One natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub blocks: BTreeSet<BlockId>,
}

impl NaturalLoop {
    /// Whether `other` is strictly nested inside this loop.
    pub fn contains(&self, other: &NaturalLoop) -> bool {
        self.blocks.len() > other.blocks.len() && other.blocks.is_subset(&self.blocks)
    }
}

/// Finds all natural loops. Loops sharing a header are merged (standard
/// practice for multi-latch loops). Results are sorted innermost-first
/// (by body size ascending).
pub fn natural_loops(cfg: &Cfg, doms: &Dominators) -> Vec<NaturalLoop> {
    use std::collections::BTreeMap;
    let mut by_header: BTreeMap<BlockId, BTreeSet<BlockId>> = BTreeMap::new();

    for (t, block) in cfg.blocks.iter().enumerate() {
        for &h in &block.succs {
            if !doms.dominates(h, t) {
                continue;
            }
            // Back edge t → h: collect body by reverse reachability from t,
            // stopping at h.
            let body = by_header.entry(h).or_insert_with(|| BTreeSet::from([h]));
            let mut stack = vec![t];
            while let Some(b) = stack.pop() {
                if body.insert(b) {
                    stack.extend(
                        cfg.blocks[b]
                            .preds
                            .iter()
                            .copied()
                            .filter(|p| !body.contains(p)),
                    );
                }
            }
        }
    }

    let mut loops: Vec<NaturalLoop> = by_header
        .into_iter()
        .map(|(header, blocks)| NaturalLoop { header, blocks })
        .collect();
    loops.sort_by_key(|l| l.blocks.len());
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_asm::assemble;

    fn analyse(src: &str) -> (t1000_isa::Program, Cfg, Vec<NaturalLoop>) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p).unwrap();
        let doms = Dominators::compute(&cfg);
        let loops = natural_loops(&cfg, &doms);
        (p, cfg, loops)
    }

    #[test]
    fn entry_dominates_everything() {
        let (_, cfg, _) =
            analyse("main: beq $t0, $t1, a\n addiu $t0, $t0, 1\na: li $v0, 10\n syscall\n");
        let doms = Dominators::compute(&cfg);
        for b in 0..cfg.blocks.len() {
            assert!(
                doms.dominates(cfg.entry, b),
                "entry must dominate block {b}"
            );
            assert!(doms.dominates(b, b), "every block dominates itself");
        }
    }

    #[test]
    fn single_loop_is_detected() {
        let (p, cfg, loops) = analyse(
            "main: li $t0, 10\nloop: addiu $t0, $t0, -1\n bgtz $t0, loop\n li $v0, 10\n syscall\n",
        );
        assert_eq!(loops.len(), 1);
        let header = cfg.block_at(p.symbol("loop").unwrap()).unwrap();
        assert_eq!(loops[0].header, header);
        assert_eq!(loops[0].blocks, BTreeSet::from([header]));
    }

    #[test]
    fn nested_loops_sorted_innermost_first() {
        let (p, cfg, loops) = analyse(
            "
main:
    li $t0, 10
outer:
    li $t1, 10
inner:
    addiu $t1, $t1, -1
    bgtz $t1, inner
    addiu $t0, $t0, -1
    bgtz $t0, outer
    li $v0, 10
    syscall
",
        );
        assert_eq!(loops.len(), 2);
        let inner_h = cfg.block_at(p.symbol("inner").unwrap()).unwrap();
        let outer_h = cfg.block_at(p.symbol("outer").unwrap()).unwrap();
        assert_eq!(loops[0].header, inner_h);
        assert_eq!(loops[1].header, outer_h);
        assert!(loops[1].contains(&loops[0]));
        assert!(loops[1].blocks.contains(&inner_h));
    }

    #[test]
    fn multi_block_loop_body_is_complete() {
        let (p, cfg, loops) = analyse(
            "
main:
    li $t0, 10
loop:
    andi $t1, $t0, 1
    beq $t1, $zero, even
    addiu $t0, $t0, -3
    j check
even:
    addiu $t0, $t0, -1
check:
    bgtz $t0, loop
    li $v0, 10
    syscall
",
        );
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        for label in ["loop", "even", "check"] {
            let b = cfg.block_at(p.symbol(label).unwrap()).unwrap();
            assert!(l.blocks.contains(&b), "{label} must be in the loop body");
        }
    }

    #[test]
    fn acyclic_code_has_no_loops() {
        let (_, _, loops) =
            analyse("main: beq $t0, $t1, a\n addiu $t0, $t0, 1\na: li $v0, 10\n syscall\n");
        assert!(loops.is_empty());
    }
}
