//! Human-readable profiling reports — the `sim_profile` front-end.
//!
//! Summarises where a program spends its dynamic instructions: hottest
//! basic blocks, loop structure with trip counts, and per-opcode-class
//! mixes. Used by the `inspect_fusion` example and handy when writing new
//! workloads.

use crate::cfg::Cfg;
use crate::dom::{natural_loops, Dominators, NaturalLoop};
use crate::profile::ExecProfile;
use std::fmt::Write as _;
use t1000_isa::{OpClass, Program};

/// One block's share of dynamic execution.
#[derive(Clone, Debug, PartialEq)]
pub struct HotBlock {
    /// Block id within the CFG.
    pub block: usize,
    /// Address range `[start, end)`.
    pub start: u32,
    pub end: u32,
    /// Dynamic instructions executed inside the block.
    pub dyn_instrs: u64,
    /// Fraction of the program's total dynamic instructions.
    pub share: f64,
}

/// A loop with its dynamic behaviour.
#[derive(Clone, Debug)]
pub struct LoopProfile {
    /// Address of the header block.
    pub header_pc: u32,
    /// Number of blocks in the body.
    pub body_blocks: usize,
    /// Total header executions (≈ iterations).
    pub iterations: u64,
    /// Times the loop was entered from outside.
    pub entries: u64,
    /// Dynamic instructions spent inside the loop body.
    pub dyn_instrs: u64,
}

/// Dynamic instruction mix by operation class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrMix {
    pub alu: u64,
    pub mult: u64,
    pub load: u64,
    pub store: u64,
    pub ctrl: u64,
    pub sys: u64,
}

impl InstrMix {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.mult + self.load + self.store + self.ctrl + self.sys
    }
}

/// The `n` hottest blocks by dynamic instruction count, descending.
pub fn hottest_blocks(
    program: &Program,
    cfg: &Cfg,
    profile: &ExecProfile,
    n: usize,
) -> Vec<HotBlock> {
    let total = profile.total.max(1);
    let mut blocks: Vec<HotBlock> = cfg
        .blocks
        .iter()
        .enumerate()
        .map(|(id, b)| {
            let dyn_instrs: u64 = b.pcs().map(|pc| profile.count(pc)).sum();
            HotBlock {
                block: id,
                start: b.start,
                end: b.end,
                dyn_instrs,
                share: dyn_instrs as f64 / total as f64,
            }
        })
        .collect();
    blocks.sort_by_key(|b| std::cmp::Reverse(b.dyn_instrs));
    blocks.truncate(n);
    let _ = program;
    blocks
}

/// Dynamic behaviour of every natural loop, outermost loops last
/// (matching [`natural_loops`] order: innermost first).
pub fn loop_profiles(program: &Program, cfg: &Cfg, profile: &ExecProfile) -> Vec<LoopProfile> {
    let doms = Dominators::compute(cfg);
    let loops = natural_loops(cfg, &doms);
    loops
        .iter()
        .map(|l| loop_profile(program, cfg, profile, l))
        .collect()
}

fn loop_profile(
    _program: &Program,
    cfg: &Cfg,
    profile: &ExecProfile,
    l: &NaturalLoop,
) -> LoopProfile {
    let header = &cfg.blocks[l.header];
    let iterations = profile.count(header.start);
    // Entries are approximated by the execution counts of predecessor
    // blocks *outside* the loop (the preheaders). This over-counts when a
    // preheader branches around the loop, which is rare in practice.
    let entries: u64 = header
        .preds
        .iter()
        .filter(|p| !l.blocks.contains(p))
        .map(|&p| profile.count(cfg.blocks[p].start))
        .sum();
    let dyn_instrs = l
        .blocks
        .iter()
        .flat_map(|&b| cfg.blocks[b].pcs())
        .map(|pc| profile.count(pc))
        .sum();
    LoopProfile {
        header_pc: header.start,
        body_blocks: l.blocks.len(),
        iterations,
        entries: entries.max(u64::from(iterations > 0)),
        dyn_instrs,
    }
}

/// Dynamic instruction mix by class.
pub fn instruction_mix(program: &Program, profile: &ExecProfile) -> InstrMix {
    let mut mix = InstrMix::default();
    let Ok(decoded) = program.decode_all() else {
        return mix; // undecodable text has no classifiable mix
    };
    for (pc, i) in decoded {
        let n = profile.count(pc);
        match i.op.class() {
            OpClass::IntAlu => mix.alu += n,
            OpClass::IntMult => mix.mult += n,
            OpClass::Load => mix.load += n,
            OpClass::Store => mix.store += n,
            OpClass::Ctrl => mix.ctrl += n,
            OpClass::Sys | OpClass::Pfu => mix.sys += n,
        }
    }
    mix
}

/// Renders a full text report (hot blocks, loops, instruction mix).
// `writeln!` into a `String` is infallible; the unwraps can never fire.
#[allow(clippy::unwrap_used)]
pub fn render(program: &Program, cfg: &Cfg, profile: &ExecProfile) -> String {
    let mut out = String::new();
    let mix = instruction_mix(program, profile);
    let total = mix.total().max(1);
    writeln!(out, "dynamic instructions: {}", profile.total).unwrap();
    writeln!(
        out,
        "mix: {:.1}% alu, {:.1}% mult, {:.1}% load, {:.1}% store, {:.1}% ctrl",
        100.0 * mix.alu as f64 / total as f64,
        100.0 * mix.mult as f64 / total as f64,
        100.0 * mix.load as f64 / total as f64,
        100.0 * mix.store as f64 / total as f64,
        100.0 * mix.ctrl as f64 / total as f64,
    )
    .unwrap();
    writeln!(out, "\nhottest blocks:").unwrap();
    for b in hottest_blocks(program, cfg, profile, 5) {
        writeln!(
            out,
            "  0x{:05x}..0x{:05x}  {:>10} instrs  {:>5.1}%",
            b.start,
            b.end,
            b.dyn_instrs,
            100.0 * b.share
        )
        .unwrap();
    }
    writeln!(out, "\nloops (innermost first):").unwrap();
    for l in loop_profiles(program, cfg, profile) {
        writeln!(
            out,
            "  header 0x{:05x}  {} block(s)  {:>9} iters  {:>6} entries  {:>10} instrs",
            l.header_pc, l.body_blocks, l.iterations, l.entries, l.dyn_instrs
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_asm::assemble;

    const NESTED: &str = "
main:
    li $s0, 10
outer:
    li $s1, 20
inner:
    addu $t0, $t0, $s1
    addiu $s1, $s1, -1
    bgtz $s1, inner
    addiu $s0, $s0, -1
    bgtz $s0, outer
    li $v0, 10
    syscall
";

    fn setup() -> (t1000_isa::Program, Cfg, ExecProfile) {
        let p = assemble(NESTED).unwrap();
        let cfg = Cfg::build(&p).unwrap();
        let prof = ExecProfile::collect(&p, 0).unwrap();
        (p, cfg, prof)
    }

    #[test]
    fn hottest_block_is_the_inner_loop() {
        let (p, cfg, prof) = setup();
        let hot = hottest_blocks(&p, &cfg, &prof, 3);
        let inner_pc = p.symbol("inner").unwrap();
        assert_eq!(hot[0].start, inner_pc);
        // Inner body: 3 instrs × 20 iters × 10 entries = 600.
        assert_eq!(hot[0].dyn_instrs, 600);
        assert!(hot[0].share > 0.8);
    }

    #[test]
    fn loop_profiles_count_iterations_and_entries() {
        let (p, cfg, prof) = setup();
        let loops = loop_profiles(&p, &cfg, &prof);
        assert_eq!(loops.len(), 2);
        let inner = &loops[0];
        assert_eq!(inner.header_pc, p.symbol("inner").unwrap());
        assert_eq!(inner.iterations, 200);
        assert_eq!(inner.entries, 10);
        let outer = &loops[1];
        assert_eq!(outer.iterations, 10);
        assert_eq!(outer.entries, 1);
        assert!(outer.dyn_instrs > inner.dyn_instrs);
    }

    #[test]
    fn instruction_mix_sums_to_profile_total() {
        let (p, _, prof) = setup();
        let mix = instruction_mix(&p, &prof);
        assert_eq!(mix.total(), prof.total);
        assert!(mix.alu > mix.ctrl);
        assert_eq!(mix.load + mix.store, 0);
    }

    #[test]
    fn render_produces_all_sections() {
        let (p, cfg, prof) = setup();
        let text = render(&p, &cfg, &prof);
        assert!(text.contains("hottest blocks:"));
        assert!(text.contains("loops (innermost first):"));
        assert!(text.contains("% alu"));
    }
}
