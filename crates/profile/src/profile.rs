//! Dynamic execution profiling — the `sim_profile` equivalent.
//!
//! Runs the program functionally (no timing) and collects, per static
//! instruction: execution count and the maximum *significant bitwidth*
//! seen across its source operands and its result. The paper's profiling
//! tool "generates detailed profiles on operand bit-width and instruction
//! execution time" (§4); candidates are arithmetic/logic instructions
//! whose profiled widths stay at or below a threshold (18 bits in the
//! paper's experiments).

use t1000_cpu::{ExecError, FuncCore, SyscallState};
use t1000_isa::{FusionMap, Program};

/// Significant bitwidth of a value interpreted as a signed 32-bit integer:
/// the minimum number of bits (including the sign bit) that can represent
/// it in two's complement. `0` and `-1` need 1 bit; `255` needs 9 bits
/// (sign bit + 8); `-256` needs 9 bits.
pub fn signed_width(v: u32) -> u8 {
    let v = v as i32;
    if v >= 0 {
        (33 - (v as u32).leading_zeros()).min(32) as u8
    } else {
        (33 - (v as u32).leading_ones()).min(32) as u8
    }
}

/// Per-program dynamic profile.
#[derive(Clone, Debug)]
pub struct ExecProfile {
    text_base: u32,
    /// Execution count per static instruction.
    counts: Vec<u64>,
    /// Maximum operand/result width observed per static instruction
    /// (0 when never executed).
    widths: Vec<u8>,
    /// Total dynamic instructions.
    pub total: u64,
    /// Architectural side effects of the profiling run (checksum oracle).
    pub sys: SyscallState,
}

impl ExecProfile {
    /// Profiles `program` by running it to completion (functionally).
    /// `max_instructions` bounds the run (0 = unbounded).
    pub fn collect(program: &Program, max_instructions: u64) -> Result<ExecProfile, ExecError> {
        let fusion = FusionMap::new();
        let mut core = FuncCore::new(program, &fusion);
        let mut counts = vec![0u64; program.len()];
        let mut widths = vec![0u8; program.len()];
        while !core.finished() {
            if max_instructions != 0 && core.icount >= max_instructions {
                return Err(ExecError::InstrLimit(max_instructions));
            }
            let Some(rec) = core.step()? else { break };
            debug_assert_eq!(rec.fused_len, 1, "profiling runs without fusion");
            let idx = ((rec.pc - program.text_base) / 4) as usize;
            counts[idx] += 1;
            let mut w = 0u8;
            for (k, r) in rec.gpr_uses.iter().enumerate() {
                if r.is_some() {
                    w = w.max(signed_width(rec.src_vals[k]));
                }
            }
            if let Some(res) = rec.result {
                w = w.max(signed_width(res));
            }
            widths[idx] = widths[idx].max(w);
        }
        Ok(ExecProfile {
            text_base: program.text_base,
            counts,
            widths,
            total: core.icount,
            sys: core.sys,
        })
    }

    fn idx(&self, pc: u32) -> usize {
        ((pc - self.text_base) / 4) as usize
    }

    /// Execution count of the instruction at `pc`.
    pub fn count(&self, pc: u32) -> u64 {
        self.counts.get(self.idx(pc)).copied().unwrap_or(0)
    }

    /// Maximum operand/result bitwidth observed at `pc` (0 if never
    /// executed).
    pub fn width(&self, pc: u32) -> u8 {
        self.widths.get(self.idx(pc)).copied().unwrap_or(0)
    }

    /// Whether the instruction at `pc` stayed within `max_width` bits on
    /// every dynamic execution (never-executed instructions fail — there
    /// is no evidence they are narrow).
    pub fn is_narrow(&self, pc: u32, max_width: u8) -> bool {
        let w = self.width(pc);
        w != 0 && w <= max_width
    }
}

/// Normalised profile weights: the denominator every selection strategy
/// divides a candidate's dynamic gain by. Extracted from [`ExecProfile`]
/// once per pipeline run (the `ProfileWeights` pass in `t1000-core`) so
/// strategies consume an explicit pass product instead of reaching into
/// the raw profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Weights {
    /// Total dynamic instructions of the profiling run, clamped to ≥ 1 so
    /// shares are always well-defined.
    pub total: u64,
}

impl Weights {
    /// Weights for a collected profile.
    pub fn of(profile: &ExecProfile) -> Weights {
        Weights {
            total: profile.total.max(1),
        }
    }

    /// The share of total execution a dynamic gain of `gain` cycles
    /// represents (the quantity the paper's 0.5 % threshold tests).
    pub fn share(&self, gain: u64) -> f64 {
        gain as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_asm::assemble;

    #[test]
    fn weights_share_matches_manual_division() {
        let w = Weights { total: 2000 };
        assert_eq!(w.share(10), 10.0 / 2000.0);
        // An empty profile still divides by one, not zero.
        let p = assemble("main: li $v0, 10\n syscall\n").unwrap();
        let prof = ExecProfile::collect(&p, 0).unwrap();
        let w = Weights::of(&prof);
        assert!(w.total >= 1);
        assert!(w.share(0) == 0.0);
    }

    #[test]
    fn signed_width_basics() {
        assert_eq!(signed_width(0), 1);
        assert_eq!(signed_width(1), 2);
        assert_eq!(signed_width(-1i32 as u32), 1);
        assert_eq!(signed_width(127), 8);
        assert_eq!(signed_width(128), 9);
        assert_eq!(signed_width(-128i32 as u32), 8);
        assert_eq!(signed_width(-129i32 as u32), 9);
        assert_eq!(signed_width(0x0001_ffff), 18);
        assert_eq!(signed_width(0x7fff_ffff), 32);
        assert_eq!(signed_width(0x8000_0000), 32);
    }

    #[test]
    fn counts_reflect_loop_trip_counts() {
        let p = assemble(
            "
main:
    li $t0, 25
loop:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 10
    syscall
",
        )
        .unwrap();
        let prof = ExecProfile::collect(&p, 0).unwrap();
        let loop_pc = p.symbol("loop").unwrap();
        assert_eq!(prof.count(loop_pc), 25);
        assert_eq!(prof.count(p.entry), 1);
        assert_eq!(prof.total, 1 + 25 * 2 + 2);
    }

    #[test]
    fn widths_track_operand_magnitudes() {
        let p = assemble(
            "
main:
    li   $t0, 5
    addu $t1, $t0, $t0      # small values: narrow
    li   $t2, 0x100000
    addu $t3, $t2, $t2      # 21-bit values: wide
    li   $v0, 10
    syscall
",
        )
        .unwrap();
        let prof = ExecProfile::collect(&p, 0).unwrap();
        let narrow_pc = p.text_base + 4;
        assert!(
            prof.is_narrow(narrow_pc, 18),
            "width {}",
            prof.width(narrow_pc)
        );
        // li 0x100000 is a single lui-free instruction? It needs lui+ori or
        // a single lui; find the wide addu by symbol arithmetic: it is the
        // instruction right before `li $v0`.
        let wide_pc = p.text_end() - 12;
        assert!(
            !prof.is_narrow(wide_pc, 18),
            "width {}",
            prof.width(wide_pc)
        );
        assert!(prof.is_narrow(wide_pc, 24));
    }

    #[test]
    fn never_executed_instructions_are_not_narrow() {
        let p = assemble(
            "
main:
    j end
    addu $t0, $t0, $t0   # dead code
end:
    li $v0, 10
    syscall
",
        )
        .unwrap();
        let prof = ExecProfile::collect(&p, 0).unwrap();
        assert_eq!(prof.count(p.text_base + 4), 0);
        assert!(!prof.is_narrow(p.text_base + 4, 32));
    }

    #[test]
    fn limit_aborts_runaway_programs() {
        let p = assemble("main: j main\n").unwrap();
        assert!(ExecProfile::collect(&p, 1000).is_err());
    }
}
