//! # t1000-profile — program analysis and dynamic profiling
//!
//! The compiler-side analyses feeding the extended-instruction selectors:
//!
//! * [`cfg::Cfg`] — basic blocks and control-flow edges;
//! * [`dom`] — dominators and natural-loop detection (the selective
//!   algorithm processes "loop bodies one at a time", paper Fig. 5);
//! * [`liveness::Liveness`] — global register liveness, enforcing the
//!   single-live-out constraint on fused sequences;
//! * [`profile::ExecProfile`] — the `sim_profile` equivalent: per-
//!   instruction execution counts and operand bitwidth profiles.

// Robustness gate: library code must surface failures as typed errors, not
// panics. Tests keep the ergonomic forms.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cfg;
pub mod dom;
pub mod liveness;
pub mod profile;
pub mod report;

pub use cfg::{BasicBlock, BlockId, Cfg};
pub use dom::{natural_loops, Dominators, NaturalLoop};
pub use liveness::{bit, Liveness, RegSet, ALL_REGS};
pub use profile::{signed_width, ExecProfile, Weights};
pub use report::{hottest_blocks, instruction_mix, loop_profiles, HotBlock, InstrMix, LoopProfile};
