//! # t1000-profile — program analysis and dynamic profiling
//!
//! The compiler-side analyses feeding the extended-instruction selectors:
//!
//! * [`cfg::Cfg`] — basic blocks and control-flow edges;
//! * [`dom`] — dominators and natural-loop detection (the selective
//!   algorithm processes "loop bodies one at a time", paper Fig. 5);
//! * [`liveness::Liveness`] — global register liveness, enforcing the
//!   single-live-out constraint on fused sequences;
//! * [`profile::ExecProfile`] — the `sim_profile` equivalent: per-
//!   instruction execution counts and operand bitwidth profiles.

pub mod cfg;
pub mod dom;
pub mod liveness;
pub mod profile;
pub mod report;

pub use cfg::{BasicBlock, BlockId, Cfg};
pub use dom::{natural_loops, Dominators, NaturalLoop};
pub use liveness::{bit, Liveness, RegSet, ALL_REGS};
pub use profile::{signed_width, ExecProfile};
pub use report::{hottest_blocks, instruction_mix, loop_profiles, HotBlock, InstrMix, LoopProfile};
