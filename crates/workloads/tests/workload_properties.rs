//! Cross-cutting workload tests: structural properties every benchmark
//! must satisfy for the paper's experiments to be meaningful.

use t1000_core::{Analysis, ExtractConfig, Session};
use t1000_cpu::{execute, CpuConfig};
use t1000_isa::FusionMap;
use t1000_workloads::{all, by_name, Scale, NAMES};

#[test]
fn every_benchmark_has_hot_loops() {
    for w in all(Scale::Test) {
        let p = w.program().unwrap();
        let a = Analysis::build(&p).unwrap();
        let doms = t1000_profile::Dominators::compute(&a.cfg);
        let loops = t1000_profile::natural_loops(&a.cfg, &doms);
        assert!(!loops.is_empty(), "{} has no loops", w.name);
        // At least 80% of dynamic execution must be inside loops
        // (otherwise the per-loop selective algorithm has nothing to do).
        let in_loops: u64 = loops
            .iter()
            .rev()
            .take(8)
            .flat_map(|l| l.blocks.iter())
            .collect::<std::collections::BTreeSet<_>>()
            .iter()
            .flat_map(|&&b| a.cfg.blocks[b].pcs())
            .map(|pc| a.profile.count(pc))
            .sum();
        assert!(
            in_loops as f64 > 0.8 * a.profile.total as f64,
            "{}: only {:.0}% of execution is in loops",
            w.name,
            100.0 * in_loops as f64 / a.profile.total as f64
        );
    }
}

#[test]
fn every_benchmark_offers_candidate_sequences() {
    for w in all(Scale::Test) {
        let p = w.program().unwrap();
        let a = Analysis::build(&p).unwrap();
        let sites = t1000_core::maximal_sites(&p, &a, &ExtractConfig::default());
        assert!(
            sites.len() >= 4,
            "{}: only {} candidate sites — too few for the study",
            w.name,
            sites.len()
        );
        // Candidate widths stay within the paper's 18-bit threshold by
        // construction of the kernels.
        for s in &sites {
            assert!(
                s.width <= 18,
                "{}: site at 0x{:x} is {} bits",
                w.name,
                s.pc,
                s.width
            );
        }
    }
}

#[test]
fn memory_kernels_actually_touch_memory() {
    for name in [
        "epic",
        "unepic",
        "mpeg2_enc",
        "mpeg2_dec",
        "g721_enc",
        "gsm_dec",
    ] {
        let w = by_name(name, Scale::Test).unwrap();
        let p = w.program().unwrap();
        let session = Session::new(p).unwrap();
        let run = session.run_baseline(CpuConfig::baseline()).unwrap();
        assert!(
            run.timing.mem.dl1.accesses > 1000,
            "{name}: only {} D-cache accesses",
            run.timing.mem.dl1.accesses
        );
    }
}

#[test]
fn scales_change_size_but_not_structure() {
    for name in NAMES {
        let t = by_name(name, Scale::Test).unwrap();
        let f = by_name(name, Scale::Full).unwrap();
        let pt = t.program().unwrap();
        let pf = f.program().unwrap();
        // Same static code shape (data sizes may differ), different work.
        assert_eq!(pt.len(), pf.len(), "{name}: scale changed the code itself");
        let (_, it) = execute(&pt, &FusionMap::new(), 0).unwrap();
        // Full scale must be way bigger; cap the test-scale runtime.
        assert!(it < 1_000_000, "{name}: test scale too big ({it})");
    }
}

#[test]
fn distinct_seeds_give_distinct_streams() {
    // The registry's fixed seeds must not accidentally collide into
    // identical checksums across benchmarks.
    let sums: Vec<u64> = all(Scale::Test)
        .iter()
        .map(|w| w.expected_checksum())
        .collect();
    let mut dedup = sums.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(
        dedup.len(),
        sums.len(),
        "checksum collision across benchmarks"
    );
}
