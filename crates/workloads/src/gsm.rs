//! GSM 06.10-style speech codec kernels (`gsm_enc`, `gsm_dec`).
//!
//! MediaBench's gsm is full-rate RPE-LTP speech transcoding, whose hot
//! code is the short-term lattice filter built from saturated 16-bit
//! fixed-point arithmetic. We implement a four-stage lattice
//! analysis filter (encoder) and its synthesis mirror (decoder) over
//! LCG-generated samples. Each stage scales by a reflection coefficient
//! (a multiply — correctly *not* fusable: its operands are wide) and then
//! runs a branchless saturation chain; the stages saturate to different
//! widths (15/14/13/12 bits), so the loop contains four distinct chain
//! forms competing for PFUs — the configuration-pressure scenario of the
//! paper's Fig. 2.

use crate::gen::{lcg_asm, Lcg};

/// Per-stage reflection coefficients (Q8).
pub const REFL: [i32; 4] = [77, -45, 118, -91];
/// Per-stage saturation magnitude (2^w - 1): 15, 14, 13, 12 bits.
pub const SAT_MAX: [i32; 4] = [16383, 8191, 4095, 2047];

/// Branchless two-sided clamp of `x` to `[-(limit+1), limit]`, written the
/// same way the assembly does it (the Rust reference calls this).
pub fn sat(x: i32, limit: i32) -> i32 {
    // lower clamp to -(limit+1)
    let m = (x + limit + 1) >> 31;
    let x = (x & !m) | ((-(limit + 1)) & m);
    // upper clamp to limit
    let m = (limit - x) >> 31;
    (x & !m) | (limit & m)
}

/// The saturation chain in assembly: clamps `src` into `dst` at stage `j`.
/// `sll_amt` is the trailing-zero count of `limit+1`, used to synthesise
/// the lower bound from the sign mask with one shift. Clobbers
/// `$t2..$t6`.
fn sat_asm(dst: &str, src: &str, j: usize) -> String {
    let limit = SAT_MAX[j];
    let low = limit + 1; // power of two
    let sll_amt = low.trailing_zeros();
    format!(
        "    addiu $t2, {src}, {low}
    sra   $t3, $t2, 31
    nor   $t4, $t3, $zero
    and   $t5, {src}, $t4
    sll   $t6, $t3, {sll_amt}
    or    $t2, $t5, $t6
    li    $t3, {limit}
    subu  $t3, $t3, $t2
    sra   $t3, $t3, 31
    nor   $t4, $t3, $zero
    and   $t5, $t2, $t4
    andi  $t6, $t3, {limit}
    or    {dst}, $t5, $t6
"
    )
}

/// One lattice stage of the encoder in assembly: `di` (in `$t0`) and state
/// register `u` are combined; the saturated result becomes the next `di`.
fn enc_stage_asm(j: usize, u: &str, rp: &str) -> String {
    let sat = sat_asm("$t0", "$t1", j);
    format!(
        "    # stage {j}
    mult  $t0, {rp}
    mflo  $t1
    sra   $t1, $t1, 8
    addu  $t1, $t1, {u}
    move  {u}, $t0
{sat}"
    )
}

/// Assembly for the encoder over `n` samples.
///
/// Phase 1 synthesises PCM input into a sample buffer; phase 2 streams
/// through it running the lattice filter and emitting residuals.
pub fn encoder_asm(n: u32, seed: u32) -> String {
    let lcg = lcg_asm("$s7", "$t0", 0x1fff);
    let stages: String = (0..4)
        .map(|j| enc_stage_asm(j, &format!("$s{}", j + 1), ["$a3", "$fp", "$k0", "$k1"][j]))
        .collect();
    let bytes = 2 * n;
    format!(
        "
# gsm_enc — lattice analysis filter, {n} samples
.data
inbuf:  .space {bytes}
outbuf: .space {bytes}
.text
main:
    li    $s0, {n}
    li    $s7, {seed}
    la    $t9, inbuf
gen:
{lcg}    addiu $t0, $t0, -4096
    sh    $t0, 0($t9)
    addiu $t9, $t9, 2
    addiu $s0, $s0, -1
    bgtz  $s0, gen
    li    $s0, {n}
    li    $s1, 0
    li    $s2, 0
    li    $s3, 0
    li    $s4, 0
    li    $a3, {r0}
    li    $fp, {r1}
    li    $k0, {r2}
    li    $k1, {r3}
    li    $v1, 0            # checksum accumulator
    la    $s6, inbuf
    la    $s7, outbuf
loop:
    lh    $t0, 0($s6)
    addiu $s6, $s6, 2
{stages}    sh    $t0, 0($s7)
    addiu $s7, $s7, 2
    andi  $t1, $t0, 0xffff
    addu  $v1, $v1, $t1
    andi  $v1, $v1, 0xffff
    addiu $s0, $s0, -1
    bgtz  $s0, loop
    move  $a0, $v1
    li    $v0, 30
    syscall
    andi  $a0, $s1, 0xffff
    li    $v0, 30
    syscall
    andi  $a0, $s4, 0xffff
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
",
        r0 = REFL[0],
        r1 = REFL[1],
        r2 = REFL[2],
        r3 = REFL[3],
    )
}

/// Rust reference of the encoder: the three checksum words it reports.
pub fn encoder_reference(n: u32, seed: u32) -> [u32; 3] {
    let mut g = Lcg(seed);
    let mut u = [0i32; 4];
    let mut acc: u32 = 0;
    for _ in 0..n {
        let mut di = g.next_masked(0x1fff) as i32 - 4096;
        for j in 0..4 {
            let scaled = (di.wrapping_mul(REFL[j])) >> 8;
            let t = scaled.wrapping_add(u[j]);
            u[j] = di;
            di = sat(t, SAT_MAX[j]);
        }
        acc = (acc + (di as u32 & 0xffff)) & 0xffff;
    }
    [acc, u[0] as u32 & 0xffff, u[3] as u32 & 0xffff]
}

/// One synthesis stage of the decoder: subtracts the prediction and
/// updates the state.
fn dec_stage_asm(j: usize, u: &str, rp: &str) -> String {
    let sat_d = sat_asm("$t0", "$t1", j);
    let sat_u = sat_asm(u, "$t1", j);
    format!(
        "    # stage {j}
    mult  {u}, {rp}
    mflo  $t1
    sra   $t1, $t1, 8
    subu  $t1, $t0, $t1
{sat_d}    mult  $t0, {rp}
    mflo  $t1
    sra   $t1, $t1, 8
    addu  $t1, $t1, {u}
{sat_u}"
    )
}

/// Assembly for the decoder over `n` samples.
///
/// Phase 1 synthesises the residual stream into a buffer; phase 2 runs
/// the synthesis ladder over it and emits reconstructed samples.
pub fn decoder_asm(n: u32, seed: u32) -> String {
    let lcg = lcg_asm("$s7", "$t0", 0x1fff);
    // Synthesis runs the stages in reverse order.
    let stages: String = (0..4)
        .rev()
        .map(|j| dec_stage_asm(j, &format!("$s{}", j + 1), ["$a3", "$fp", "$k0", "$k1"][j]))
        .collect();
    let bytes = 2 * n;
    format!(
        "
# gsm_dec — lattice synthesis filter, {n} samples
.data
inbuf:  .space {bytes}
outbuf: .space {bytes}
.text
main:
    li    $s0, {n}
    li    $s7, {seed}
    la    $t9, inbuf
gen:
{lcg}    addiu $t0, $t0, -4096
    sh    $t0, 0($t9)
    addiu $t9, $t9, 2
    addiu $s0, $s0, -1
    bgtz  $s0, gen
    li    $s0, {n}
    li    $s1, 0
    li    $s2, 0
    li    $s3, 0
    li    $s4, 0
    li    $a3, {r0}
    li    $fp, {r1}
    li    $k0, {r2}
    li    $k1, {r3}
    li    $v1, 0
    la    $s6, inbuf
    la    $s7, outbuf
loop:
    lh    $t0, 0($s6)
    addiu $s6, $s6, 2
{stages}    sh    $t0, 0($s7)
    addiu $s7, $s7, 2
    andi  $t1, $t0, 0xffff
    addu  $v1, $v1, $t1
    andi  $v1, $v1, 0xffff
    addiu $s0, $s0, -1
    bgtz  $s0, loop
    move  $a0, $v1
    li    $v0, 30
    syscall
    andi  $a0, $s2, 0xffff
    li    $v0, 30
    syscall
    andi  $a0, $s3, 0xffff
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
",
        r0 = REFL[0],
        r1 = REFL[1],
        r2 = REFL[2],
        r3 = REFL[3],
    )
}

/// Rust reference of the decoder.
pub fn decoder_reference(n: u32, seed: u32) -> [u32; 3] {
    let mut g = Lcg(seed);
    let mut u = [0i32; 4];
    let mut acc: u32 = 0;
    for _ in 0..n {
        let mut d = g.next_masked(0x1fff) as i32 - 4096;
        for j in (0..4).rev() {
            let pred = (u[j].wrapping_mul(REFL[j])) >> 8;
            d = sat(d.wrapping_sub(pred), SAT_MAX[j]);
            let upd = (d.wrapping_mul(REFL[j])) >> 8;
            u[j] = sat(u[j].wrapping_add(upd), SAT_MAX[j]);
        }
        acc = (acc + (d as u32 & 0xffff)) & 0xffff;
    }
    [acc, u[1] as u32 & 0xffff, u[2] as u32 & 0xffff]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::fold_all;
    use t1000_asm::assemble;
    use t1000_cpu::execute;
    use t1000_isa::FusionMap;

    #[test]
    fn sat_clamps_both_sides() {
        assert_eq!(sat(100, 16383), 100);
        assert_eq!(sat(20000, 16383), 16383);
        assert_eq!(sat(-20000, 16383), -16384);
        assert_eq!(sat(-16384, 16383), -16384);
        assert_eq!(sat(0, 2047), 0);
        assert_eq!(sat(5000, 2047), 2047);
    }

    #[test]
    fn encoder_asm_matches_reference() {
        let n = 250;
        let seed = 31337;
        let p = assemble(&encoder_asm(n, seed)).expect("gsm encoder assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 2_000_000).unwrap();
        assert_eq!(sys.checksum, fold_all(&encoder_reference(n, seed)));
    }

    #[test]
    fn decoder_asm_matches_reference() {
        let n = 250;
        let seed = 4242;
        let p = assemble(&decoder_asm(n, seed)).expect("gsm decoder assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 2_000_000).unwrap();
        assert_eq!(sys.checksum, fold_all(&decoder_reference(n, seed)));
    }

    #[test]
    fn filter_states_stay_saturated() {
        let mut g = Lcg(7);
        let mut u = [0i32; 4];
        for _ in 0..1000 {
            let mut di = g.next_masked(0x1fff) as i32 - 4096;
            for j in 0..4 {
                let t = ((di.wrapping_mul(REFL[j])) >> 8).wrapping_add(u[j]);
                u[j] = di;
                di = sat(t, SAT_MAX[j]);
                assert!(di >= -(SAT_MAX[j] + 1) && di <= SAT_MAX[j]);
            }
        }
    }
}
