//! EPIC-style image pyramid kernels (`epic`, `unepic`).
//!
//! MediaBench's epic is a wavelet image coder. We implement a 3-level
//! 2×2 Haar pyramid: each level averages 2×2 blocks into the next level
//! and quantises the three detail coefficients with a branchless
//! round-toward-zero shift. `unepic` reconstructs pixels from
//! LCG-generated coefficients with branchless 0..255 clamps and then runs
//! a 1-3-3-1-ish smoothing pass over the image. Unlike the pure
//! register kernels, these two stream through memory buffers, so the
//! cache model sees real spatial locality.

use crate::gen::{lcg_asm, Lcg};

/// Image edge length at the pyramid base.
pub const DIM: u32 = 32;

/// One pyramid level in assembly: consumes a `w`×`w` byte image at `src`
/// and produces the `w/2`×`w/2` average image at `dst`, accumulating
/// quantised detail coefficients into `$v1`.
fn level_asm(w: u32, src: &str, dst: &str) -> String {
    let sh = w.trailing_zeros(); // log2 w
    let half = w / 2;
    let row2 = sh + 1; // shift for 2y*w
    let dsh = sh - 1; // shift for y*(w/2)
    format!(
        "    # pyramid level {w}x{w} -> {half}x{half}
    la    $s5, {src}
    la    $s6, {dst}
    li    $s1, 0
yl_{w}_{src}:
    li    $s2, 0
xl_{w}_{src}:
    sll   $t0, $s1, {row2}
    sll   $t1, $s2, 1
    addu  $t0, $t0, $t1
    addu  $t0, $t0, $s5
    lbu   $t2, 0($t0)
    lbu   $t3, 1($t0)
    lbu   $t4, {w}($t0)
    lbu   $t5, {w1}($t0)
    # Haar: average and three details
    addu  $t6, $t2, $t3
    addu  $t7, $t4, $t5
    addu  $t8, $t6, $t7
    addiu $t8, $t8, 2
    sra   $t8, $t8, 2
    subu  $t6, $t6, $t7
    subu  $t7, $t2, $t3
    subu  $t1, $t4, $t5
    addu  $a0, $t7, $t1
    subu  $a1, $t7, $t1
    # quantise h (round toward zero by 4)
    sra   $t7, $t6, 31
    andi  $t7, $t7, 3
    addu  $t6, $t6, $t7
    sra   $t6, $t6, 2
    andi  $t6, $t6, 0xff
    addu  $v1, $v1, $t6
    # quantise v
    sra   $t7, $a0, 31
    andi  $t7, $t7, 3
    addu  $a0, $a0, $t7
    sra   $a0, $a0, 2
    andi  $a0, $a0, 0xff
    addu  $v1, $v1, $a0
    # quantise d
    sra   $t7, $a1, 31
    andi  $t7, $t7, 3
    addu  $a1, $a1, $t7
    sra   $a1, $a1, 2
    andi  $a1, $a1, 0xff
    addu  $v1, $v1, $a1
    andi  $v1, $v1, 0xffff
    # store the average into the next level
    sll   $t7, $s1, {dsh}
    addu  $t7, $t7, $s2
    addu  $t7, $t7, $s6
    sb    $t8, 0($t7)
    addiu $s2, $s2, 1
    slti  $t7, $s2, {half}
    bnez  $t7, xl_{w}_{src}
    addiu $s1, $s1, 1
    slti  $t7, $s1, {half}
    bnez  $t7, yl_{w}_{src}
",
        w1 = w + 1,
    )
}

/// Assembly for the encoder over `frames` frames.
pub fn encoder_asm(frames: u32, seed: u32) -> String {
    let lcg = lcg_asm("$s7", "$t0", 0xff);
    let l0 = level_asm(DIM, "img", "lvl1");
    let l1 = level_asm(DIM / 2, "lvl1", "lvl2");
    let l2 = level_asm(DIM / 4, "lvl2", "lvl3");
    let npix = DIM * DIM;
    format!(
        "
# epic — 3-level Haar pyramid encoder, {frames} frames of {DIM}x{DIM}
.data
img:  .space {npix}
lvl1: .space {q1}
lvl2: .space {q2}
lvl3: .space {q3}
.text
main:
    li    $s0, {frames}
    li    $v1, 0
    li    $s7, {seed}
frame:
    # generate the frame
    li    $t8, {npix}
    la    $t9, img
genl:
{lcg}    sb    $t0, 0($t9)
    addiu $t9, $t9, 1
    addiu $t8, $t8, -1
    bgtz  $t8, genl
{l0}{l1}{l2}    addiu $s0, $s0, -1
    bgtz  $s0, frame
    move  $a0, $v1
    li    $v0, 30
    syscall
    # fold the final top-of-pyramid byte too
    la    $t0, lvl3
    lbu   $a0, 0($t0)
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
",
        q1 = npix / 4,
        q2 = npix / 16,
        q3 = npix / 64,
    )
}

/// Quantise with round-toward-zero by 4 (mirrors the assembly chain).
fn quant(x: i32) -> i32 {
    (x + ((x >> 31) & 3)) >> 2
}

/// Rust reference of the encoder: the two checksum words it reports.
pub fn encoder_reference(frames: u32, seed: u32) -> [u32; 2] {
    let mut g = Lcg(seed);
    let mut acc: u32 = 0;
    let mut top_byte = 0u8;
    for _ in 0..frames {
        let mut img: Vec<u8> = (0..DIM * DIM).map(|_| g.next_masked(0xff) as u8).collect();
        let mut w = DIM;
        for _level in 0..3 {
            let half = w / 2;
            let mut next = vec![0u8; (half * half) as usize];
            for y in 0..half {
                for x in 0..half {
                    let idx = |yy: u32, xx: u32| (yy * w + xx) as usize;
                    let a = img[idx(2 * y, 2 * x)] as i32;
                    let b = img[idx(2 * y, 2 * x + 1)] as i32;
                    let c = img[idx(2 * y + 1, 2 * x)] as i32;
                    let d = img[idx(2 * y + 1, 2 * x + 1)] as i32;
                    let lo = (a + b + c + d + 2) >> 2;
                    let h = a + b - c - d;
                    let v = a - b + c - d;
                    let dd = a - b - c + d;
                    for q in [quant(h), quant(v), quant(dd)] {
                        acc = (acc + (q as u32 & 0xff)) & 0xffff;
                    }
                    next[(y * half + x) as usize] = lo as u8;
                }
            }
            img = next;
            w = half;
        }
        top_byte = img[0];
    }
    [acc, u32::from(top_byte)]
}

/// Assembly for the decoder (`unepic`) over `frames` frames.
pub fn decoder_asm(frames: u32, seed: u32) -> String {
    let lcg_lo = lcg_asm("$s7", "$t2", 0xff);
    let lcg_h = lcg_asm("$s7", "$t3", 0x3f);
    let lcg_v = lcg_asm("$s7", "$t4", 0x3f);
    let lcg_d = lcg_asm("$s7", "$t5", 0x3f);
    let half = DIM / 2;
    let npix = DIM * DIM;
    // The branchless clamp-to-[0,255] chain, applied to $t8.
    let clamp = "    sra   $t9, $t8, 31
    nor   $t9, $t9, $zero
    and   $t8, $t8, $t9
    li    $t9, 255
    subu  $t9, $t9, $t8
    sra   $t9, $t9, 31
    nor   $a2, $t9, $zero
    and   $t8, $t8, $a2
    andi  $t9, $t9, 255
    or    $t8, $t8, $t9
";
    // Reconstruct one pixel: t8 = lo + (s1*h + s2*v + s3*d) >> 2 with the
    // four sign combinations, then clamp and store at offset `off`.
    let recon = |sh: &str, sv: &str, sd: &str, off: u32| {
        format!(
            "    {sh}  $t8, $t3, $t4
    {sv}  $t8, $t8, $t5
    sra   $t8, $t8, 2
    {sd}  $t8, $t2, $t8
{clamp}    sb    $t8, {off}($t0)
    andi  $t9, $t8, 0xff
    addu  $v1, $v1, $t9
    andi  $v1, $v1, 0xffff
"
        )
    };
    let p00 = recon("addu", "addu", "addu", 0);
    let p01 = recon("addu", "subu", "subu", 1);
    let p10 = recon("subu", "addu", "subu", DIM);
    let p11 = recon("subu", "subu", "addu", DIM + 1);
    format!(
        "
# unepic — Haar pyramid reconstruction + smoothing, {frames} frames
.data
img: .space {npix}
.text
main:
    li    $s0, {frames}
    li    $v1, 0
    li    $s7, {seed}
frame:
    la    $s5, img
    li    $s1, 0
yrec:
    li    $s2, 0
xrec:
{lcg_lo}    addiu $t3, $zero, 0
{lcg_h}    addiu $t3, $t3, -32
{lcg_v}    addiu $t4, $t4, -32
{lcg_d}    addiu $t5, $t5, -32
    # pixel base address
    sll   $t0, $s1, {row2}
    sll   $t1, $s2, 1
    addu  $t0, $t0, $t1
    addu  $t0, $t0, $s5
{p00}{p01}{p10}{p11}    addiu $s2, $s2, 1
    slti  $t9, $s2, {half}
    bnez  $t9, xrec
    addiu $s1, $s1, 1
    slti  $t9, $s1, {half}
    bnez  $t9, yrec
    # horizontal smoothing pass: out = (p[i-1] + 2 p[i] + p[i+1] + 2) >> 2
    li    $s1, 1
ysm:
    sll   $t0, $s1, {sh}
    addu  $t0, $t0, $s5
    li    $s2, 1
xsm:
    addu  $t1, $t0, $s2
    lbu   $t2, -1($t1)
    lbu   $t3, 0($t1)
    lbu   $t4, 1($t1)
    sll   $t5, $t3, 1
    addu  $t5, $t5, $t2
    addu  $t5, $t5, $t4
    addiu $t5, $t5, 2
    srl   $t5, $t5, 2
    addu  $v1, $v1, $t5
    andi  $v1, $v1, 0xffff
    addiu $s2, $s2, 1
    slti  $t9, $s2, {dimm1}
    bnez  $t9, xsm
    addiu $s1, $s1, 1
    slti  $t9, $s1, {dimm1}
    bnez  $t9, ysm
    addiu $s0, $s0, -1
    bgtz  $s0, frame
    move  $a0, $v1
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
",
        row2 = DIM.trailing_zeros() + 1,
        sh = DIM.trailing_zeros(),
        dimm1 = DIM - 1,
    )
}

/// Rust reference of the decoder.
pub fn decoder_reference(frames: u32, seed: u32) -> [u32; 1] {
    let mut g = Lcg(seed);
    let mut acc: u32 = 0;
    let clamp = |x: i32| -> i32 {
        let x = x & !(x >> 31);
        let m = (255 - x) >> 31;
        (x & !m) | (255 & m)
    };
    for _ in 0..frames {
        let mut img = vec![0u8; (DIM * DIM) as usize];
        for y in 0..DIM / 2 {
            for x in 0..DIM / 2 {
                let lo = g.next_masked(0xff) as i32;
                // The assembly zeroes $t3 between the lo and h draws to
                // mirror the template structure; it has no semantic effect.
                let h = g.next_masked(0x3f) as i32 - 32;
                let v = g.next_masked(0x3f) as i32 - 32;
                let d = g.next_masked(0x3f) as i32 - 32;
                // Mirrors the assembly exactly: the last op is addu or
                // subu of `lo` with the shifted combination, and arithmetic
                // shift rounding makes `lo - (k >> 2)` differ from
                // `lo + ((-k) >> 2)`.
                let combos = [
                    lo + ((h + v + d) >> 2),
                    lo - ((h + v - d) >> 2),
                    lo - ((h - v + d) >> 2),
                    lo + ((h - v - d) >> 2),
                ];
                let offs = [(0u32, 0u32), (0, 1), (1, 0), (1, 1)];
                for (k, &(dy, dx)) in offs.iter().enumerate() {
                    let p = clamp(combos[k]);
                    img[((2 * y + dy) * DIM + 2 * x + dx) as usize] = p as u8;
                    acc = (acc + (p as u32 & 0xff)) & 0xffff;
                }
            }
        }
        for y in 1..DIM - 1 {
            for x in 1..DIM - 1 {
                let i = (y * DIM + x) as usize;
                let s = (i32::from(img[i - 1]) + 2 * i32::from(img[i]) + i32::from(img[i + 1]) + 2)
                    >> 2;
                acc = (acc + s as u32) & 0xffff;
            }
        }
    }
    [acc]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::fold_all;
    use t1000_asm::assemble;
    use t1000_cpu::execute;
    use t1000_isa::FusionMap;

    #[test]
    fn encoder_asm_matches_reference() {
        let frames = 2;
        let seed = 555;
        let p = assemble(&encoder_asm(frames, seed)).expect("epic assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 10_000_000).unwrap();
        assert_eq!(sys.checksum, fold_all(&encoder_reference(frames, seed)));
    }

    #[test]
    fn decoder_asm_matches_reference() {
        let frames = 2;
        let seed = 777;
        let p = assemble(&decoder_asm(frames, seed)).expect("unepic assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 10_000_000).unwrap();
        assert_eq!(sys.checksum, fold_all(&decoder_reference(frames, seed)));
    }

    #[test]
    fn quantiser_rounds_toward_zero() {
        assert_eq!(quant(7), 1);
        assert_eq!(quant(-7), -1);
        assert_eq!(quant(8), 2);
        assert_eq!(quant(-8), -2);
        assert_eq!(quant(0), 0);
    }

    #[test]
    fn pyramid_output_is_input_dependent() {
        assert_ne!(encoder_reference(1, 1), encoder_reference(1, 2));
        assert_ne!(decoder_reference(1, 1), decoder_reference(1, 2));
    }
}
