//! Shared pseudo-random input generation.
//!
//! The paper runs MediaBench on recorded audio/image/video inputs we do
//! not have; every kernel here instead generates its input *inside the
//! simulated program* with this LCG, so runs are self-contained and
//! deterministic. The Rust reference implementations use the same
//! generator, which is what lets the differential tests demand
//! bit-identical checksums.

/// LCG multiplier (glibc's `rand`).
pub const LCG_MUL: u32 = 1_103_515_245;
/// LCG increment.
pub const LCG_INC: u32 = 12_345;

/// One LCG step.
#[inline]
pub fn lcg_next(x: u32) -> u32 {
    x.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

/// The generator state type used by references.
#[derive(Clone, Copy, Debug)]
pub struct Lcg(pub u32);

impl Lcg {
    /// Advances and returns the raw 32-bit state.
    pub fn next_raw(&mut self) -> u32 {
        self.0 = lcg_next(self.0);
        self.0
    }

    /// Advances and extracts `(state >> 16) & mask` — the pattern every
    /// kernel uses for sample extraction.
    pub fn next_masked(&mut self, mask: u32) -> u32 {
        (self.next_raw() >> 16) & mask
    }
}

/// Emits the assembly for one LCG step on register `state`, leaving the
/// extracted sample `(state >> 16) & mask` in `dst`. Clobbers `$at`, `$a2`
/// and HI/LO.
pub fn lcg_asm(state: &str, dst: &str, mask: u32) -> String {
    format!(
        "    li    $a2, {LCG_MUL}\n    mult  {state}, $a2\n    mflo  {state}\n    addiu {state}, {state}, {LCG_INC}\n    srl   {dst}, {state}, 16\n    andi  {dst}, {dst}, {mask}\n"
    )
}

/// Replicates the simulator's checksum syscall (FNV-1a over little-endian
/// bytes), so references can predict final checksums without running the
/// simulator.
pub fn fnv_fold(seed: u64, word: u32) -> u64 {
    let mut h = seed;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The checksum seed used by [`t1000_cpu::SyscallState`].
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds a sequence of checksum-syscall arguments exactly as a simulated
/// run would.
pub fn fold_all(words: &[u32]) -> u64 {
    words.iter().fold(FNV_SEED, |h, &w| fnv_fold(h, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_matches_known_values() {
        let mut g = Lcg(1);
        assert_eq!(g.next_raw(), 1_103_527_590);
        let mut g2 = Lcg(1);
        assert_eq!(g2.next_masked(0xff), (1_103_527_590u32 >> 16) & 0xff);
    }

    #[test]
    fn fold_matches_syscall_state() {
        use t1000_cpu::SyscallState;
        let mut s = SyscallState::new();
        for w in [0u32, 42, 0xdead_beef] {
            s.execute(30, w).unwrap();
        }
        assert_eq!(s.checksum, fold_all(&[0, 42, 0xdead_beef]));
    }

    #[test]
    fn lcg_asm_emits_expected_mnemonics() {
        let a = lcg_asm("$s7", "$t0", 0x1fff);
        assert!(a.contains("mult  $s7, $a2"));
        assert!(a.contains("andi  $t0, $t0, 8191"));
    }
}
