//! The benchmark registry: the eight MediaBench-style programs of the
//! paper's evaluation, at test (fast) or full (paper-run) scale.

use crate::{epic, g721, gen, gsm, mpeg2};
use t1000_asm::AsmError;
use t1000_isa::Program;

/// Workload size.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// Small inputs for unit/integration tests (tens of thousands of
    /// dynamic instructions).
    Test,
    /// Paper-scale inputs (3–6 million dynamic instructions per program;
    /// MediaBench runs to completion, §3.1).
    Full,
}

/// One benchmark program.
pub struct Workload {
    /// MediaBench-style name (`g721_enc`, `epic`, ...).
    pub name: &'static str,
    /// Assembly source.
    pub asm: String,
    /// The checksum words the program reports (from the Rust reference).
    pub expected_words: Vec<u32>,
}

impl Workload {
    /// Assembles the program.
    pub fn program(&self) -> Result<Program, AsmError> {
        t1000_asm::assemble(&self.asm)
    }

    /// The expected architectural checksum of a correct run.
    pub fn expected_checksum(&self) -> u64 {
        gen::fold_all(&self.expected_words)
    }
}

/// Fixed seeds, one per benchmark, so results are reproducible.
const SEEDS: [u32; 8] = [
    0x1a2b_3c4d, // epic
    0x2b3c_4d5e, // unepic
    0x3c4d_5e6f, // gsm_enc
    0x4d5e_6f70, // gsm_dec
    0x5e6f_7081, // g721_enc
    0x6f70_8192, // g721_dec
    0x7081_92a3, // mpeg2_enc
    0x8192_a3b4, // mpeg2_dec
];

fn sizes(scale: Scale) -> [u32; 8] {
    match scale {
        // epic/unepic in frames; gsm/g721 in samples; mpeg2 in blocks.
        Scale::Test => [3, 2, 600, 400, 1200, 1200, 25, 25],
        Scale::Full => [120, 90, 40_000, 25_000, 60_000, 60_000, 1500, 1400],
    }
}

/// Benchmark order used throughout (matches the paper's figures).
pub const NAMES: [&str; 8] = [
    "unepic",
    "epic",
    "gsm_dec",
    "gsm_enc",
    "g721_dec",
    "g721_enc",
    "mpeg2_dec",
    "mpeg2_enc",
];

/// Builds every benchmark at the given scale, in [`NAMES`] order.
pub fn all(scale: Scale) -> Vec<Workload> {
    NAMES.iter().map(|n| by_name(n, scale).unwrap()).collect()
}

/// Builds one benchmark by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    let s = sizes(scale);
    let w = match name {
        "epic" => Workload {
            name: "epic",
            asm: epic::encoder_asm(s[0], SEEDS[0]),
            expected_words: epic::encoder_reference(s[0], SEEDS[0]).to_vec(),
        },
        "unepic" => Workload {
            name: "unepic",
            asm: epic::decoder_asm(s[1], SEEDS[1]),
            expected_words: epic::decoder_reference(s[1], SEEDS[1]).to_vec(),
        },
        "gsm_enc" => Workload {
            name: "gsm_enc",
            asm: gsm::encoder_asm(s[2], SEEDS[2]),
            expected_words: gsm::encoder_reference(s[2], SEEDS[2]).to_vec(),
        },
        "gsm_dec" => Workload {
            name: "gsm_dec",
            asm: gsm::decoder_asm(s[3], SEEDS[3]),
            expected_words: gsm::decoder_reference(s[3], SEEDS[3]).to_vec(),
        },
        "g721_enc" => Workload {
            name: "g721_enc",
            asm: g721::encoder_asm(s[4], SEEDS[4]),
            expected_words: g721::encoder_reference(s[4], SEEDS[4]).to_vec(),
        },
        "g721_dec" => Workload {
            name: "g721_dec",
            asm: g721::decoder_asm(s[5], SEEDS[5]),
            expected_words: g721::decoder_reference(s[5], SEEDS[5]).to_vec(),
        },
        "mpeg2_enc" => Workload {
            name: "mpeg2_enc",
            asm: mpeg2::encoder_asm(s[6], SEEDS[6]),
            expected_words: mpeg2::encoder_reference(s[6], SEEDS[6]).to_vec(),
        },
        "mpeg2_dec" => Workload {
            name: "mpeg2_dec",
            asm: mpeg2::decoder_asm(s[7], SEEDS[7]),
            expected_words: mpeg2::decoder_reference(s[7], SEEDS[7]).to_vec(),
        },
        _ => return None,
    };
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_cpu::execute;
    use t1000_isa::FusionMap;

    #[test]
    fn every_benchmark_assembles_and_matches_its_reference() {
        for w in all(Scale::Test) {
            let p = w.program().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let (sys, icount) = execute(&p, &FusionMap::new(), 50_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(
                sys.checksum,
                w.expected_checksum(),
                "{} checksum mismatch",
                w.name
            );
            assert!(icount > 10_000, "{} too small: {icount} instrs", w.name);
        }
    }

    #[test]
    fn full_scale_is_substantially_larger_than_test_scale() {
        // Spot-check one benchmark (running all 8 at full scale here would
        // slow the unit suite; the bench harness covers them).
        let t = by_name("g721_enc", Scale::Test).unwrap();
        let f = by_name("g721_enc", Scale::Full).unwrap();
        assert_ne!(t.expected_checksum(), f.expected_checksum());
    }

    /// `by_name`/`all` round-trip at every scale: `all` yields exactly
    /// [`NAMES`] in order, and each entry is byte-identical to the
    /// corresponding `by_name` build — no silently stale programs behind
    /// the bench strategy axis.
    #[test]
    fn by_name_and_all_round_trip_at_every_scale() {
        for scale in [Scale::Test, Scale::Full] {
            let everything = all(scale);
            assert_eq!(
                everything.iter().map(|w| w.name).collect::<Vec<_>>(),
                NAMES.to_vec(),
                "all({scale:?}) must yield NAMES in order"
            );
            for w in &everything {
                let again = by_name(w.name, scale)
                    .unwrap_or_else(|| panic!("{} missing at {scale:?}", w.name));
                assert_eq!(w.asm, again.asm, "{} asm not deterministic", w.name);
                assert_eq!(
                    w.expected_words, again.expected_words,
                    "{} reference not deterministic",
                    w.name
                );
            }
        }
    }

    /// `expected_checksum` is defined, stable, and discriminating for
    /// every workload at every scale.
    #[test]
    fn expected_checksums_are_stable_and_distinct_at_every_scale() {
        let mut seen = std::collections::HashMap::new();
        for scale in [Scale::Test, Scale::Full] {
            for w in all(scale) {
                let c = w.expected_checksum();
                assert_ne!(c, 0, "{} @ {scale:?} has a zero checksum", w.name);
                assert_eq!(
                    c,
                    w.expected_checksum(),
                    "{} @ {scale:?} checksum not stable",
                    w.name
                );
                if let Some((other, other_scale)) = seen.insert(c, (w.name, scale)) {
                    panic!(
                        "checksum collision: {} @ {scale:?} == {other} @ {other_scale:?}",
                        w.name
                    );
                }
            }
        }
        // Every (workload, scale) pair produced a distinct checksum.
        assert_eq!(seen.len(), 2 * NAMES.len());
    }

    #[test]
    fn names_are_unique_and_complete() {
        let mut names: Vec<_> = NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert!(by_name("bogus", Scale::Test).is_none());
    }
}
