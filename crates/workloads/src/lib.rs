//! # t1000-workloads — MediaBench-style benchmark kernels
//!
//! Hand-written assembly implementations of the eight MediaBench kernels
//! the paper evaluates (epic/unepic, gsm encode/decode, g721
//! encode/decode, mpeg2 encode/decode), with bit-exact Rust reference
//! implementations for differential validation. Inputs are generated
//! in-program from a deterministic LCG (see [`gen`]); each program folds
//! its results into the architectural checksum before exiting.

pub mod g721;
pub mod gsm;
pub mod mpeg2;
pub mod registry;

pub use registry::{all, by_name, Scale, Workload, NAMES};
pub mod epic;
pub mod gen;
