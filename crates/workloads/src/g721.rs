//! G.721-style ADPCM codec kernels (`g721_enc`, `g721_dec`).
//!
//! MediaBench's g721 is CCITT ADPCM; we implement the classic IMA/DVI
//! ADPCM variant of the same algorithm family: per-sample prediction,
//! 3-bit+sign quantisation against an adaptive step size, and step-index
//! adaptation. All range clamps and quantiser bit tests are written
//! *branchlessly* with sign-mask arithmetic — exactly the dependent
//! narrow-width ALU chains the paper's selector feeds on.
//!
//! The encoder quantises LCG-generated 13-bit samples; the decoder
//! reconstructs samples from LCG-generated 4-bit codes. Both maintain a
//! 16-bit running accumulator folded into the architectural checksum at
//! exit, and both have a bit-exact Rust reference used by the
//! differential tests.

use crate::gen::{lcg_asm, Lcg};

/// IMA ADPCM step-size table (89 entries).
pub const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Step-index adjustment per 3-bit code magnitude.
pub const INDEX_ADJ: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

fn tables_asm() -> String {
    let steps = STEP_TABLE
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let adj = INDEX_ADJ
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(".data\nsteptable: .word {steps}\nindextable: .byte {adj}\n")
}

/// Assembly for the encoder over `n` samples from LCG seed `seed`.
///
/// Structured like a real codec: phase 1 synthesises the PCM input into a
/// sample buffer, phase 2 streams through it encoding one code byte per
/// sample into the output buffer.
pub fn encoder_asm(n: u32, seed: u32) -> String {
    let lcg = lcg_asm("$s7", "$t0", 0x1fff);
    let tables = tables_asm();
    let inbytes = 2 * n;
    format!(
        "
# g721_enc — IMA ADPCM encoder, {n} samples
{tables}
inbuf:  .space {inbytes}
outbuf: .space {n}
.text
main:
    li    $s0, {n}
    li    $s7, {seed}       # LCG state
    la    $t9, inbuf
gen:
{lcg}    addiu $t0, $t0, -4096
    sh    $t0, 0($t9)
    addiu $t9, $t9, 2
    addiu $s0, $s0, -1
    bgtz  $s0, gen
    li    $s0, {n}
    li    $s1, 0            # valpred
    li    $s2, 0            # step index
    li    $s3, 0            # checksum accumulator
    li    $s6, -4096        # lower clamp constant
    la    $s4, steptable
    la    $s5, indextable
    la    $a2, inbuf
    la    $a3, outbuf
loop:
    lh    $t0, 0($a2)       # 13-bit signed sample
    addiu $a2, $a2, 2
    # diff and sign
    subu  $t1, $t0, $s1
    sra   $t2, $t1, 31
    xor   $t1, $t1, $t2
    subu  $t1, $t1, $t2     # |diff|
    andi  $t3, $t2, 8       # delta sign bit
    # adaptive step
    sll   $t4, $s2, 2
    addu  $t4, $t4, $s4
    lw    $t4, 0($t4)
    # quantise round 1 (bit 2)
    subu  $t5, $t1, $t4
    sra   $t6, $t5, 31
    nor   $t7, $t6, $zero
    andi  $t8, $t7, 4
    or    $t3, $t3, $t8
    and   $t9, $t4, $t7
    subu  $t1, $t1, $t9
    # quantise round 2 (bit 1)
    srl   $a0, $t4, 1
    subu  $t5, $t1, $a0
    sra   $t6, $t5, 31
    nor   $t7, $t6, $zero
    andi  $t8, $t7, 2
    or    $t3, $t3, $t8
    and   $t9, $a0, $t7
    subu  $t1, $t1, $t9
    # quantise round 3 (bit 0)
    srl   $a1, $t4, 2
    subu  $t5, $t1, $a1
    sra   $t6, $t5, 31
    nor   $t7, $t6, $zero
    andi  $t8, $t7, 1
    or    $t3, $t3, $t8
    # reconstruct vpdiff = step>>3 + masked contributions
    srl   $t5, $t4, 3
    andi  $t6, $t3, 4
    srl   $t6, $t6, 2
    subu  $t6, $zero, $t6
    and   $t6, $t4, $t6
    addu  $t5, $t5, $t6
    andi  $t6, $t3, 2
    srl   $t6, $t6, 1
    subu  $t6, $zero, $t6
    and   $t6, $a0, $t6
    addu  $t5, $t5, $t6
    andi  $t6, $t3, 1
    subu  $t6, $zero, $t6
    and   $t6, $a1, $t6
    addu  $t5, $t5, $t6
    # apply sign and update prediction
    xor   $t6, $t5, $t2
    subu  $t6, $t6, $t2
    addu  $s1, $s1, $t6
    # clamp valpred to [-4096, 4095]
    addiu $t6, $s1, 4096
    sra   $t7, $t6, 31
    nor   $t8, $t7, $zero
    and   $t9, $s1, $t8
    and   $t6, $s6, $t7
    or    $s1, $t9, $t6
    li    $t6, 4095
    subu  $t6, $t6, $s1
    sra   $t7, $t6, 31
    nor   $t8, $t7, $zero
    and   $t9, $s1, $t8
    andi  $t6, $t7, 4095
    or    $s1, $t9, $t6
    # step-index adaptation, clamped to [0, 88]
    andi  $t6, $t3, 7
    addu  $t6, $t6, $s5
    lb    $t6, 0($t6)
    addu  $s2, $s2, $t6
    sra   $t7, $s2, 31
    nor   $t7, $t7, $zero
    and   $s2, $s2, $t7
    li    $t6, 88
    subu  $t6, $t6, $s2
    sra   $t7, $t6, 31
    nor   $t8, $t7, $zero
    and   $t9, $s2, $t8
    andi  $t6, $t7, 88
    or    $s2, $t9, $t6
    # emit the code and fold it into the 16-bit accumulator
    sb    $t3, 0($a3)
    addiu $a3, $a3, 1
    addu  $s3, $s3, $t3
    andi  $s3, $s3, 0xffff
    addiu $s0, $s0, -1
    bgtz  $s0, loop
    # report checksum components
    move  $a0, $s3
    li    $v0, 30
    syscall
    move  $a0, $s1
    li    $v0, 30
    syscall
    move  $a0, $s2
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
"
    )
}

/// Rust reference of the encoder: returns the three checksum words the
/// simulated program reports (accumulator, final valpred, final index).
pub fn encoder_reference(n: u32, seed: u32) -> [u32; 3] {
    let mut g = Lcg(seed);
    let mut valpred: i32 = 0;
    let mut index: i32 = 0;
    let mut acc: u32 = 0;
    for _ in 0..n {
        let s = g.next_masked(0x1fff) as i32 - 4096;
        let mut diff = s.wrapping_sub(valpred);
        let sign = diff >> 31;
        diff = (diff ^ sign).wrapping_sub(sign);
        let mut delta = sign & 8;
        let step = STEP_TABLE[index as usize];
        // round 1
        let u = diff.wrapping_sub(step);
        let nm = !(u >> 31);
        delta |= nm & 4;
        diff -= step & nm;
        // round 2
        let s1 = step >> 1;
        let u = diff.wrapping_sub(s1);
        let nm = !(u >> 31);
        delta |= nm & 2;
        diff -= s1 & nm;
        // round 3
        let s2 = step >> 2;
        let u = diff.wrapping_sub(s2);
        let nm = !(u >> 31);
        delta |= nm & 1;
        // vpdiff
        let mut vpdiff = step >> 3;
        vpdiff += step & -((delta >> 2) & 1);
        vpdiff += s1 & -((delta >> 1) & 1);
        vpdiff += s2 & -(delta & 1);
        // prediction update with sign applied via the same mask trick
        let v = (vpdiff ^ sign).wrapping_sub(sign);
        valpred = valpred.wrapping_add(v);
        // clamp [-4096, 4095]
        let m = (valpred + 4096) >> 31;
        valpred = (valpred & !m) | (-4096 & m);
        let m = (4095 - valpred) >> 31;
        valpred = (valpred & !m) | (4095 & m);
        // index adaptation
        index += INDEX_ADJ[(delta & 7) as usize];
        index &= !(index >> 31);
        let m = (88 - index) >> 31;
        index = (index & !m) | (88 & m);
        acc = (acc + delta as u32) & 0xffff;
    }
    [acc, valpred as u32, index as u32]
}

/// Assembly for the decoder over `n` codes from LCG seed `seed`.
///
/// Phase 1 synthesises the 4-bit code stream into a buffer; phase 2
/// streams through it reconstructing one 16-bit sample per code.
pub fn decoder_asm(n: u32, seed: u32) -> String {
    let lcg = lcg_asm("$s7", "$t3", 0xf);
    let tables = tables_asm();
    let outbytes = 2 * n;
    format!(
        "
# g721_dec — IMA ADPCM decoder, {n} codes
{tables}
inbuf:  .space {n}
outbuf: .space {outbytes}
.text
main:
    li    $s0, {n}
    li    $s7, {seed}
    la    $t9, inbuf
gen:
{lcg}    sb    $t3, 0($t9)
    addiu $t9, $t9, 1
    addiu $s0, $s0, -1
    bgtz  $s0, gen
    li    $s0, {n}
    li    $s1, 0            # valpred
    li    $s2, 0            # step index
    li    $s3, 0            # checksum accumulator
    li    $s6, -4096
    la    $s4, steptable
    la    $s5, indextable
    la    $a2, inbuf
    la    $a3, outbuf
loop:
    lbu   $t3, 0($a2)       # 4-bit code
    addiu $a2, $a2, 1
    # adaptive step
    sll   $t4, $s2, 2
    addu  $t4, $t4, $s4
    lw    $t4, 0($t4)
    # vpdiff from code bits
    srl   $t5, $t4, 3
    andi  $t6, $t3, 4
    srl   $t6, $t6, 2
    subu  $t6, $zero, $t6
    and   $t6, $t4, $t6
    addu  $t5, $t5, $t6
    srl   $a0, $t4, 1
    andi  $t6, $t3, 2
    srl   $t6, $t6, 1
    subu  $t6, $zero, $t6
    and   $t6, $a0, $t6
    addu  $t5, $t5, $t6
    srl   $a1, $t4, 2
    andi  $t6, $t3, 1
    subu  $t6, $zero, $t6
    and   $t6, $a1, $t6
    addu  $t5, $t5, $t6
    # apply sign bit (code & 8)
    andi  $t2, $t3, 8
    srl   $t2, $t2, 3
    subu  $t2, $zero, $t2   # 0 or -1
    xor   $t6, $t5, $t2
    subu  $t6, $t6, $t2
    addu  $s1, $s1, $t6
    # clamp valpred to [-4096, 4095]
    addiu $t6, $s1, 4096
    sra   $t7, $t6, 31
    nor   $t8, $t7, $zero
    and   $t9, $s1, $t8
    and   $t6, $s6, $t7
    or    $s1, $t9, $t6
    li    $t6, 4095
    subu  $t6, $t6, $s1
    sra   $t7, $t6, 31
    nor   $t8, $t7, $zero
    and   $t9, $s1, $t8
    andi  $t6, $t7, 4095
    or    $s1, $t9, $t6
    # step-index adaptation, clamped to [0, 88]
    andi  $t6, $t3, 7
    addu  $t6, $t6, $s5
    lb    $t6, 0($t6)
    addu  $s2, $s2, $t6
    sra   $t7, $s2, 31
    nor   $t7, $t7, $zero
    and   $s2, $s2, $t7
    li    $t6, 88
    subu  $t6, $t6, $s2
    sra   $t7, $t6, 31
    nor   $t8, $t7, $zero
    and   $t9, $s2, $t8
    andi  $t6, $t7, 88
    or    $s2, $t9, $t6
    # emit and accumulate the reconstructed sample
    sh    $s1, 0($a3)
    addiu $a3, $a3, 2
    andi  $t6, $s1, 0xffff
    addu  $s3, $s3, $t6
    andi  $s3, $s3, 0xffff
    addiu $s0, $s0, -1
    bgtz  $s0, loop
    move  $a0, $s3
    li    $v0, 30
    syscall
    move  $a0, $s1
    li    $v0, 30
    syscall
    move  $a0, $s2
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
"
    )
}

/// Rust reference of the decoder.
pub fn decoder_reference(n: u32, seed: u32) -> [u32; 3] {
    let mut g = Lcg(seed);
    let mut valpred: i32 = 0;
    let mut index: i32 = 0;
    let mut acc: u32 = 0;
    for _ in 0..n {
        let code = g.next_masked(0xf) as i32;
        let step = STEP_TABLE[index as usize];
        let mut vpdiff = step >> 3;
        vpdiff += step & -((code >> 2) & 1);
        vpdiff += (step >> 1) & -((code >> 1) & 1);
        vpdiff += (step >> 2) & -(code & 1);
        let sign = -((code >> 3) & 1);
        let v = (vpdiff ^ sign).wrapping_sub(sign);
        valpred = valpred.wrapping_add(v);
        let m = (valpred + 4096) >> 31;
        valpred = (valpred & !m) | (-4096 & m);
        let m = (4095 - valpred) >> 31;
        valpred = (valpred & !m) | (4095 & m);
        index += INDEX_ADJ[(code & 7) as usize];
        index &= !(index >> 31);
        let m = (88 - index) >> 31;
        index = (index & !m) | (88 & m);
        acc = (acc + (valpred as u32 & 0xffff)) & 0xffff;
    }
    [acc, valpred as u32, index as u32]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::fold_all;
    use t1000_asm::assemble;
    use t1000_cpu::execute;
    use t1000_isa::FusionMap;

    #[test]
    fn encoder_asm_matches_reference() {
        let n = 300;
        let seed = 20000731;
        let p = assemble(&encoder_asm(n, seed)).expect("encoder assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 2_000_000).unwrap();
        assert_eq!(sys.exit_code, Some(0));
        assert_eq!(sys.checksum, fold_all(&encoder_reference(n, seed)));
    }

    #[test]
    fn decoder_asm_matches_reference() {
        let n = 300;
        let seed = 987654321;
        let p = assemble(&decoder_asm(n, seed)).expect("decoder assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 2_000_000).unwrap();
        assert_eq!(sys.checksum, fold_all(&decoder_reference(n, seed)));
    }

    #[test]
    fn encoder_output_depends_on_input() {
        assert_ne!(encoder_reference(100, 1), encoder_reference(100, 2));
        assert_ne!(encoder_reference(100, 1), encoder_reference(101, 1));
    }

    #[test]
    fn references_stay_in_architectural_ranges() {
        for seed in [1u32, 77, 0xffff_ffff] {
            let [_, valpred, index] = encoder_reference(500, seed);
            assert!((valpred as i32) >= -4096 && (valpred as i32) <= 4095);
            assert!(index <= 88);
            let [_, valpred, index] = decoder_reference(500, seed);
            assert!((valpred as i32) >= -4096 && (valpred as i32) <= 4095);
            assert!(index <= 88);
        }
    }
}
