//! MPEG-2-style block codec kernels (`mpeg2_enc`, `mpeg2_dec`).
//!
//! MediaBench's mpeg2 spends its time in 8×8 block transforms,
//! quantisation and sample saturation. We implement a 2-D 8-point
//! Walsh–Hadamard transform (an integer stand-in for the DCT with the
//! same butterfly dataflow), a branchless round-toward-zero quantiser
//! (encoder), and dequantise → inverse transform → `clamp(128 + x)`
//! reconstruction (decoder). Butterflies produce *two* live values per
//! step, so they fuse poorly under the paper's one-output constraint —
//! which is why mpeg2's speedups are the modest ones in Fig. 2/6 — while
//! the quantise and saturate chains fuse well.

use crate::gen::{lcg_asm, Lcg};

/// Blocks are 8×8.
pub const BLOCK: usize = 64;

/// Butterfly on two registers: `(a, b) ← (a+b, a−b)`. Clobbers `$a0`.
fn butterfly(a: &str, b: &str) -> String {
    format!("    addu  $a0, {a}, {b}\n    subu  {b}, {a}, {b}\n    move  {a}, $a0\n")
}

/// The in-register 8-point WHT over `$t0..$t7`.
fn wht_asm() -> String {
    let pairs: [(usize, usize); 12] = [
        (0, 1),
        (2, 3),
        (4, 5),
        (6, 7), // stage 1
        (0, 2),
        (1, 3),
        (4, 6),
        (5, 7), // stage 2
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7), // stage 3
    ];
    pairs
        .iter()
        .map(|&(i, j)| butterfly(&format!("$t{i}"), &format!("$t{j}")))
        .collect()
}

/// The same WHT over a Rust slice.
pub fn wht(v: &mut [i32; 8]) {
    let pairs: [(usize, usize); 12] = [
        (0, 1),
        (2, 3),
        (4, 5),
        (6, 7),
        (0, 2),
        (1, 3),
        (4, 6),
        (5, 7),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ];
    for &(i, j) in &pairs {
        let (a, b) = (v[i], v[j]);
        v[i] = a.wrapping_add(b);
        v[j] = a.wrapping_sub(b);
    }
}

/// Loads/stores for one row (stride 4 bytes) or one column (stride 32).
fn row_io(load: bool, stride: u32) -> String {
    (0..8)
        .map(|k| {
            let off = k * stride;
            if load {
                format!("    lw    $t{k}, {off}($t8)\n")
            } else {
                format!("    sw    $t{k}, {off}($t8)\n")
            }
        })
        .collect()
}

/// The 2-D transform: 8 row passes then 8 column passes, in place over
/// the word buffer at `$s5`.
fn transform_asm(tag: &str) -> String {
    let wht = wht_asm();
    let (lr, sr) = (row_io(true, 4), row_io(false, 4));
    let (lc, sc) = (row_io(true, 32), row_io(false, 32));
    format!(
        "    li    $s1, 0
rows_{tag}:
    sll   $t8, $s1, 5
    addu  $t8, $t8, $s5
{lr}{wht}{sr}    addiu $s1, $s1, 1
    slti  $t9, $s1, 8
    bnez  $t9, rows_{tag}
    li    $s1, 0
cols_{tag}:
    sll   $t8, $s1, 2
    addu  $t8, $t8, $s5
{lc}{wht}{sc}    addiu $s1, $s1, 1
    slti  $t9, $s1, 8
    bnez  $t9, cols_{tag}
"
    )
}

/// Assembly for the encoder over `blocks` 8×8 blocks.
pub fn encoder_asm(blocks: u32, seed: u32) -> String {
    let lcg = lcg_asm("$s7", "$t0", 0xff);
    let transform = transform_asm("e");
    format!(
        "
# mpeg2_enc — 2-D WHT + quantise, {blocks} blocks
.data
blk: .space 256
.text
main:
    li    $s0, {blocks}
    li    $v1, 0            # coefficient accumulator
    li    $s4, 0            # nonzero counter
    li    $s7, {seed}
    la    $s5, blk
block:
    # fill the block with 8-bit samples
    li    $s1, {BLOCK}
    move  $t9, $s5
fill:
{lcg}    sw    $t0, 0($t9)
    addiu $t9, $t9, 4
    addiu $s1, $s1, -1
    bgtz  $s1, fill
{transform}    # quantise all 64 coefficients; low-frequency positions use a
    # finer step (>>3) than high-frequency ones (>>4), as real intra
    # quantiser matrices do — two distinct chain forms per iteration
    li    $s1, {BLOCK}
    move  $t9, $s5
quant:
    lw    $t0, 0($t9)
    sra   $t1, $t0, 31
    andi  $t1, $t1, 7
    addu  $t0, $t0, $t1
    sra   $t0, $t0, 3
    sltu  $t2, $zero, $t0
    addu  $s4, $s4, $t2
    andi  $t0, $t0, 0x3ff
    addu  $v1, $v1, $t0
    lw    $t0, 4($t9)
    sra   $t1, $t0, 31
    andi  $t1, $t1, 15
    addu  $t0, $t0, $t1
    sra   $t0, $t0, 4
    sltu  $t2, $zero, $t0
    addu  $s4, $s4, $t2
    andi  $t0, $t0, 0x3ff
    addu  $v1, $v1, $t0
    andi  $v1, $v1, 0xffff
    addiu $t9, $t9, 8
    addiu $s1, $s1, -2
    bgtz  $s1, quant
    addiu $s0, $s0, -1
    bgtz  $s0, block
    move  $a0, $v1
    li    $v0, 30
    syscall
    andi  $a0, $s4, 0xffff
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
"
    )
}

/// Rust reference of the encoder.
pub fn encoder_reference(blocks: u32, seed: u32) -> [u32; 2] {
    let mut g = Lcg(seed);
    let mut acc: u32 = 0;
    let mut nz: u32 = 0;
    for _ in 0..blocks {
        let mut blk: Vec<i32> = (0..BLOCK).map(|_| g.next_masked(0xff) as i32).collect();
        transform_2d(&mut blk);
        for pair in blk.chunks(2) {
            // Fine step on even positions, coarse on odd (mirrors the
            // unrolled assembly; the accumulator is masked once per pair).
            let q0 = (pair[0] + ((pair[0] >> 31) & 7)) >> 3;
            let q1 = (pair[1] + ((pair[1] >> 31) & 15)) >> 4;
            for q in [q0, q1] {
                if q != 0 {
                    nz += 1;
                }
                acc += q as u32 & 0x3ff;
            }
            acc &= 0xffff;
        }
    }
    [acc, nz & 0xffff]
}

/// 2-D WHT over a 64-element block (rows then columns), mirroring the
/// assembly.
pub fn transform_2d(blk: &mut [i32]) {
    assert_eq!(blk.len(), BLOCK);
    for r in 0..8 {
        let mut row = [0i32; 8];
        row.copy_from_slice(&blk[r * 8..r * 8 + 8]);
        wht(&mut row);
        blk[r * 8..r * 8 + 8].copy_from_slice(&row);
    }
    for c in 0..8 {
        let mut col = [0i32; 8];
        for r in 0..8 {
            col[r] = blk[r * 8 + c];
        }
        wht(&mut col);
        for r in 0..8 {
            blk[r * 8 + c] = col[r];
        }
    }
}

/// Assembly for the decoder over `blocks` blocks.
pub fn decoder_asm(blocks: u32, seed: u32) -> String {
    let lcg = lcg_asm("$s7", "$t0", 0x7f);
    let transform = transform_asm("d");
    format!(
        "
# mpeg2_dec — dequantise + inverse WHT + saturate, {blocks} blocks
.data
blk: .space 256
.text
main:
    li    $s0, {blocks}
    li    $v1, 0
    li    $s7, {seed}
    la    $s5, blk
block:
    # fill the block with dequantised 7-bit signed coefficients
    li    $s1, {BLOCK}
    move  $t9, $s5
fill:
{lcg}    addiu $t0, $t0, -64
    sll   $t0, $t0, 2
    sw    $t0, 0($t9)
    addiu $t9, $t9, 4
    addiu $s1, $s1, -1
    bgtz  $s1, fill
{transform}    # normalise and saturate all 64 samples; even positions scale
    # by >>6 and odd by >>7 (two distinct chain forms per iteration)
    li    $s1, {BLOCK}
    move  $t9, $s5
satur:
    lw    $t0, 0($t9)
    sra   $t1, $t0, 31
    andi  $t1, $t1, 63
    addu  $t0, $t0, $t1
    sra   $t0, $t0, 6
    addiu $t0, $t0, 128
    # clamp to [0, 255]
    sra   $t1, $t0, 31
    nor   $t1, $t1, $zero
    and   $t0, $t0, $t1
    li    $t1, 255
    subu  $t1, $t1, $t0
    sra   $t1, $t1, 31
    nor   $t2, $t1, $zero
    and   $t0, $t0, $t2
    andi  $t1, $t1, 255
    or    $t0, $t0, $t1
    addu  $v1, $v1, $t0
    lw    $t0, 4($t9)
    sra   $t1, $t0, 31
    andi  $t1, $t1, 127
    addu  $t0, $t0, $t1
    sra   $t0, $t0, 7
    addiu $t0, $t0, 128
    # clamp to [0, 255]
    sra   $t1, $t0, 31
    nor   $t1, $t1, $zero
    and   $t0, $t0, $t1
    li    $t1, 255
    subu  $t1, $t1, $t0
    sra   $t1, $t1, 31
    nor   $t2, $t1, $zero
    and   $t0, $t0, $t2
    andi  $t1, $t1, 255
    or    $t0, $t0, $t1
    addu  $v1, $v1, $t0
    andi  $v1, $v1, 0xffff
    addiu $t9, $t9, 8
    addiu $s1, $s1, -2
    bgtz  $s1, satur
    addiu $s0, $s0, -1
    bgtz  $s0, block
    move  $a0, $v1
    li    $v0, 30
    syscall
    li    $a0, 0
    li    $v0, 10
    syscall
"
    )
}

/// Rust reference of the decoder.
pub fn decoder_reference(blocks: u32, seed: u32) -> [u32; 1] {
    let mut g = Lcg(seed);
    let mut acc: u32 = 0;
    for _ in 0..blocks {
        let mut blk: Vec<i32> = (0..BLOCK)
            .map(|_| ((g.next_masked(0x7f) as i32) - 64) << 2)
            .collect();
        transform_2d(&mut blk);
        let clamp = |n: i32| -> i32 {
            let n = n & !(n >> 31);
            let m = (255 - n) >> 31;
            (n & !m) | (255 & m)
        };
        for pair in blk.chunks(2) {
            let p0 = clamp(((pair[0] + ((pair[0] >> 31) & 63)) >> 6) + 128);
            let p1 = clamp(((pair[1] + ((pair[1] >> 31) & 127)) >> 7) + 128);
            acc = (acc + p0 as u32 + p1 as u32) & 0xffff;
        }
    }
    [acc]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::fold_all;
    use t1000_asm::assemble;
    use t1000_cpu::execute;
    use t1000_isa::FusionMap;

    #[test]
    fn wht_is_self_inverse_up_to_scale() {
        let mut v = [1, 2, 3, 4, 5, 6, 7, 8];
        let orig = v;
        wht(&mut v);
        wht(&mut v);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert_eq!(*a, b * 8, "WHT∘WHT = 8·I");
        }
    }

    #[test]
    fn encoder_asm_matches_reference() {
        let blocks = 12;
        let seed = 90125;
        let p = assemble(&encoder_asm(blocks, seed)).expect("mpeg2_enc assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 10_000_000).unwrap();
        assert_eq!(sys.checksum, fold_all(&encoder_reference(blocks, seed)));
    }

    #[test]
    fn decoder_asm_matches_reference() {
        let blocks = 12;
        let seed = 777_000;
        let p = assemble(&decoder_asm(blocks, seed)).expect("mpeg2_dec assembles");
        let (sys, _) = execute(&p, &FusionMap::new(), 10_000_000).unwrap();
        assert_eq!(sys.checksum, fold_all(&decoder_reference(blocks, seed)));
    }

    #[test]
    fn decoder_samples_land_in_pixel_range() {
        let [acc] = decoder_reference(3, 1);
        assert!(acc < 0x10000);
    }

    #[test]
    fn transform_values_stay_narrow() {
        // 8-bit inputs through a 2-D WHT stay within ±2^14 (the paper's
        // 18-bit candidate threshold is never at risk).
        let mut g = Lcg(99);
        let mut blk: Vec<i32> = (0..BLOCK).map(|_| g.next_masked(0xff) as i32).collect();
        transform_2d(&mut blk);
        assert!(blk.iter().all(|&x| x.abs() <= 1 << 14));
    }
}
