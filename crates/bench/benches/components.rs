//! Criterion micro-benches of the library's building blocks: simulator
//! throughput, assembler, cache model, selection analyses, LUT mapping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use t1000_core::{Analysis, ExtractConfig, SelectConfig};
use t1000_cpu::{execute, simulate, CpuConfig};
use t1000_hwcost::cost_of;
use t1000_isa::{FusionMap, Instr, Op, Reg};
use t1000_mem::{Cache, CacheConfig, MemConfig, MemHierarchy, Replacement};
use t1000_workloads::{by_name, Scale};

fn bench_simulator(c: &mut Criterion) {
    let w = by_name("g721_enc", Scale::Test).unwrap();
    let p = w.program().unwrap();
    let fusion = FusionMap::new();
    let (_, icount) = execute(&p, &fusion, 0).unwrap();

    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(icount));
    g.bench_function("functional", |b| {
        b.iter(|| execute(&p, &fusion, 0).unwrap().1)
    });
    g.bench_function("cycle_level", |b| {
        b.iter(|| {
            simulate(&p, &fusion, CpuConfig::baseline())
                .unwrap()
                .timing
                .cycles
        })
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let w = by_name("mpeg2_dec", Scale::Test).unwrap();
    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Bytes(w.asm.len() as u64));
    g.bench_function("assemble_mpeg2_dec", |b| {
        b.iter(|| t1000_asm::assemble(&w.asm).unwrap().len())
    });
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory_model");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("l1_hits", |b| {
        let mut cache = Cache::new(CacheConfig {
            sets: 128,
            ways: 4,
            line_bytes: 32,
            replacement: Replacement::Lru,
            write_back: true,
        });
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..100_000u32 {
                if cache.access((i % 512) * 8, false).hit {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.bench_function("full_hierarchy", |b| {
        let mut m = MemHierarchy::new(MemConfig::default());
        b.iter(|| {
            let mut cycles = 0u64;
            for i in 0..100_000u32 {
                cycles += u64::from(m.data(0x1000_0000 + (i % 4096) * 16, i % 7 == 0));
            }
            cycles
        })
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let w = by_name("gsm_dec", Scale::Test).unwrap();
    let p = w.program().unwrap();
    let a = Analysis::build(&p).unwrap();
    let xc = ExtractConfig::default();

    let mut g = c.benchmark_group("selection");
    g.bench_function("extract_maximal", |b| {
        b.iter(|| t1000_core::maximal_sites(&p, &a, &xc).len())
    });
    g.bench_function("greedy", |b| {
        b.iter(|| t1000_core::greedy(&p, &a, &xc).num_confs())
    });
    g.bench_function("selective_2pfu", |b| {
        b.iter(|| {
            t1000_core::selective(
                &p,
                &a,
                &xc,
                &SelectConfig {
                    pfus: Some(2),
                    gain_threshold: 0.005,
                    reload_weight: 0.0,
                },
            )
            .num_confs()
        })
    });
    g.finish();
}

fn bench_hwcost(c: &mut Criterion) {
    let seq: Vec<Instr> = vec![
        Instr::shift(Op::Sll, Reg::new(10), Reg::new(8), 4),
        Instr::rtype(Op::Addu, Reg::new(10), Reg::new(10), Reg::new(9)),
        Instr::rtype(Op::Xor, Reg::new(10), Reg::new(10), Reg::new(8)),
        Instr::rtype(Op::Subu, Reg::new(10), Reg::new(10), Reg::new(9)),
        Instr::rtype(Op::Slt, Reg::new(10), Reg::new(10), Reg::new(9)),
    ];
    let mut g = c.benchmark_group("hwcost");
    g.bench_function("map_5op_18bit", |b| b.iter(|| cost_of(&seq, 18).luts));
    g.finish();
}

criterion_group!(
    components,
    bench_simulator,
    bench_assembler,
    bench_caches,
    bench_selection,
    bench_hwcost
);
criterion_main!(components);
