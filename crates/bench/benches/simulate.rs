//! Criterion bench of cycle-level simulation host throughput, fast path
//! on vs off (see `docs/FASTPATH.md`).
//!
//! Two subjects:
//!
//! * `loop_kernel` — a synthetic loop-dominated kernel (the fast path's
//!   best case: one hot loop, steady after a handful of iterations);
//! * `g721_enc` — a registry workload (the realistic case, with phase
//!   changes and cache warm-up between steady regions).
//!
//! CI's `perf-smoke` job runs this bench and asserts that the fast-path
//! mean beats the accurate-path mean on `loop_kernel`. Both variants
//! produce bit-identical results — the bench double-checks cycle counts
//! before measuring, so a divergence fails loudly rather than timing two
//! different simulations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use t1000_cpu::{simulate, CpuConfig};
use t1000_isa::{FusionMap, Program};
use t1000_workloads::{by_name, Scale};

/// A loop-dominated kernel: ~200k dynamic instructions, one hot body.
fn loop_kernel() -> Program {
    t1000_asm::assemble(
        "
main:
    li   $s0, 20000
    li   $t0, 3
    li   $t1, 5
loop:
    sll  $t2, $t0, 4
    addu $t2, $t2, $t1
    xor  $t1, $t1, $t2
    sll  $t3, $t1, 2
    subu $t3, $t3, $t0
    andi $t1, $t1, 1023
    addu $t0, $t0, $t3
    andi $t0, $t0, 255
    addiu $s0, $s0, -1
    bgtz $s0, loop
    move $a0, $t1
    li   $v0, 30
    syscall
    li   $a0, 0
    li   $v0, 10
    syscall
",
    )
    .expect("bench kernel assembles")
}

fn configs() -> [(&'static str, CpuConfig); 2] {
    let fast = CpuConfig::baseline();
    let slow = CpuConfig {
        fast_path: false,
        ..fast
    };
    [("fast_path", fast), ("accurate", slow)]
}

fn bench_program(c: &mut Criterion, group: &str, p: &Program) {
    let fusion = FusionMap::new();
    let runs: Vec<u64> = configs()
        .iter()
        .map(|(_, cfg)| {
            simulate(p, &fusion, *cfg)
                .expect("bench program simulates")
                .timing
                .cycles
        })
        .collect();
    assert_eq!(
        runs[0], runs[1],
        "{group}: fast path is not bit-identical — refusing to bench"
    );
    let cycles = runs[0];

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.throughput(Throughput::Elements(cycles));
    for (name, cfg) in configs() {
        g.bench_function(name, |b| {
            b.iter(|| simulate(p, &fusion, cfg).expect("simulates").timing.cycles)
        });
    }
    g.finish();
}

fn bench_loop_kernel(c: &mut Criterion) {
    bench_program(c, "simulate_loop_kernel", &loop_kernel());
}

fn bench_workload(c: &mut Criterion) {
    let w = by_name("g721_enc", Scale::Test).expect("registry workload exists");
    let p = w.program().expect("workload assembles");
    bench_program(c, "simulate_g721_enc", &p);
}

criterion_group!(simulate_benches, bench_loop_kernel, bench_workload);
criterion_main!(simulate_benches);
