//! Criterion benches regenerating each paper artefact (at test scale, so
//! iterations stay tractable): one group per figure/table. These measure
//! the end-to-end cost of the pipeline that produces each artefact —
//! profile → select → simulate.

use criterion::{criterion_group, criterion_main, Criterion};
use t1000_bench::{prepare, run_verified};
use t1000_core::SelectConfig;
use t1000_cpu::CpuConfig;
use t1000_workloads::{by_name, Scale};

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_greedy");
    g.sample_size(10);
    for name in ["g721_enc", "gsm_dec", "mpeg2_dec"] {
        let w = by_name(name, Scale::Test).unwrap();
        let p = prepare(&w).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let sel = p.session.greedy();
                let unl = run_verified(&p, &sel, CpuConfig::unlimited_pfus().reconfig(0));
                let two = run_verified(&p, &sel, CpuConfig::with_pfus(2).reconfig(10));
                (unl.timing.cycles, two.timing.cycles)
            })
        });
    }
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_selective");
    g.sample_size(10);
    for name in ["g721_enc", "gsm_dec", "mpeg2_dec"] {
        let w = by_name(name, Scale::Test).unwrap();
        let p = prepare(&w).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let sel = p.session.selective(&SelectConfig {
                    pfus: Some(2),
                    gain_threshold: 0.005,
                    reload_weight: 0.0,
                });
                run_verified(&p, &sel, CpuConfig::with_pfus(2).reconfig(10))
                    .timing
                    .cycles
            })
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_hwcost");
    g.sample_size(10);
    let w = by_name("g721_enc", Scale::Test).unwrap();
    let p = prepare(&w).unwrap();
    g.bench_function("select_and_map", |b| {
        b.iter(|| {
            let sel = p.session.selective(&SelectConfig {
                pfus: Some(4),
                gain_threshold: 0.005,
                reload_weight: 0.0,
            });
            sel.confs.iter().map(|c| c.cost.luts).max()
        })
    });
    g.finish();
}

fn bench_table_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_greedy_stats");
    g.sample_size(10);
    let w = by_name("gsm_enc", Scale::Test).unwrap();
    let p = prepare(&w).unwrap();
    g.bench_function("greedy_selection", |b| {
        b.iter(|| p.session.greedy().num_confs())
    });
    g.finish();
}

fn bench_reconfig_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconfig_sweep");
    g.sample_size(10);
    let w = by_name("epic", Scale::Test).unwrap();
    let p = prepare(&w).unwrap();
    let sel = p.session.selective(&SelectConfig {
        pfus: Some(2),
        gain_threshold: 0.005,
        reload_weight: 0.0,
    });
    g.bench_function("selective_500cy", |b| {
        b.iter(|| {
            run_verified(&p, &sel, CpuConfig::with_pfus(2).reconfig(500))
                .timing
                .cycles
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig6,
    bench_fig7,
    bench_table_greedy,
    bench_reconfig_sweep
);
criterion_main!(figures);
