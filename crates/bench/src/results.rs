//! Result artifacts: the `BENCH_results.json` document and the Markdown
//! report, both rendered from one [`EngineRun`].
//!
//! The JSON artifact is schema-versioned and self-validating: it records
//! the Rust-reference checksum for every workload next to the checksum
//! each simulated cell actually produced, so CI can re-check a downloaded
//! artifact without re-running the experiments ([`validate_artifact`]).

use crate::engine::{CellResult, EngineError, EngineRun, RetryPolicy, SelectionRecord};
use crate::fault::FaultPlan;
use crate::json::Json;
use crate::plan::{Cell, MachineSpec, SelectionSpec};
use t1000_core::ExtractConfig;
use t1000_cpu::{BranchModel, PfuCount, PfuReplacement};
use t1000_workloads::Scale;

/// Version of the `BENCH_results.json` schema. Bump on any breaking
/// change to field names or semantics.
///
/// * v1 — initial layout.
/// * v2 — every cell carries an `attribution` object (cycle-accounting
///   partition; see `docs/METRICS.md`), validated by
///   [`validate_artifact`].
/// * v3 — fault tolerance: a top-level `failed_cells` array, engine
///   `retries`/`failed_cells` counters, per-cell `pfu_load_faults`, and
///   `speedup` becomes nullable (a cell whose baseline failed has no
///   normaliser). See `docs/ROBUSTNESS.md`.
/// * v4 — the strategy axis: every cell and selection record carries a
///   `strategy` identifier (the selection pipeline's memo-cache key,
///   e.g. `selective(pfus=2,threshold=0.005)`), and knapsack cells add
///   `lut_budget`. See `docs/PIPELINE.md`.
/// * v5 — host throughput: every cell records the wall-clock nanoseconds
///   its simulation took (`host_ns`), the derived simulation rate
///   (`sim_khz`, simulated kilocycles per host second), and the hot-loop
///   replay fast-path counters under `fast_path`
///   (`steady_loops`/`replayed_iters`/`deopts`). See `docs/FASTPATH.md`.
///   `--deterministic` runs zero `host_ns`/`sim_khz` so artifacts stay
///   byte-reproducible.
/// * v6 — the config-plane model: every cell carries the PFU reload
///   counters `pfu_prefetch_hits`, `pfu_hidden_reload_cycles`,
///   `pfu_exposed_reload_cycles` and `pfu_stream_words`; the `machine`
///   object records the reconfiguration-hiding knobs (`pfu_planes`,
///   `pfu_prefetch`, `conf_compress`) and understands the `static` and
///   `gshare` branch models. Default knobs measure identically to v5 —
///   the new counters are simply zero. See `docs/METRICS.md`.
pub const SCHEMA_VERSION: u64 = 6;

fn scale_str(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Full => "full",
    }
}

fn hex64(v: u64) -> Json {
    // Checksums are 64-bit words; a JSON number would survive only up to
    // 2^53 in common readers, so they travel as hex strings.
    Json::Str(format!("0x{v:016x}"))
}

fn parse_hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

fn extract_json(x: &ExtractConfig) -> Json {
    Json::obj(vec![
        ("max_width", Json::UInt(x.max_width as u64)),
        ("max_inputs", Json::UInt(x.max_inputs as u64)),
        ("max_len", Json::UInt(x.max_len as u64)),
        ("max_depth", Json::UInt(x.max_depth as u64)),
        ("max_pfu_latency", Json::UInt(x.max_pfu_latency as u64)),
    ])
}

fn machine_json(m: &MachineSpec) -> Json {
    let pfus = match m.pfus {
        PfuCount::Fixed(n) => Json::UInt(n as u64),
        PfuCount::Unlimited => Json::Str("unlimited".to_string()),
    };
    let replacement = match m.replacement {
        PfuReplacement::Lru => "lru",
        PfuReplacement::Fifo => "fifo",
        PfuReplacement::Random => "random",
    };
    let branch = match m.branch {
        BranchModel::Perfect => Json::Str("perfect".to_string()),
        BranchModel::Static { penalty } => Json::obj(vec![
            ("model", Json::Str("static".to_string())),
            ("penalty", Json::UInt(penalty as u64)),
        ]),
        BranchModel::Bimodal { entries, penalty } => Json::obj(vec![
            ("model", Json::Str("bimodal".to_string())),
            ("entries", Json::UInt(entries as u64)),
            ("penalty", Json::UInt(penalty as u64)),
        ]),
        BranchModel::Gshare { entries, penalty } => Json::obj(vec![
            ("model", Json::Str("gshare".to_string())),
            ("entries", Json::UInt(entries as u64)),
            ("penalty", Json::UInt(penalty as u64)),
        ]),
    };
    Json::obj(vec![
        ("pfus", pfus),
        ("reconfig_cycles", Json::UInt(m.reconfig_cycles as u64)),
        ("replacement", Json::Str(replacement.to_string())),
        ("branch", branch),
        (
            "issue_width",
            match m.issue_width {
                Some(w) => Json::UInt(w as u64),
                None => Json::Null,
            },
        ),
        // Schema v6: the reconfiguration-hiding knobs.
        ("pfu_planes", Json::UInt(m.pfu_planes as u64)),
        ("pfu_prefetch", Json::UInt(m.pfu_prefetch as u64)),
        (
            "conf_compress",
            Json::Float(f64::from_bits(m.conf_compress_bits)),
        ),
    ])
}

fn selection_spec_fields(spec: &SelectionSpec) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("algorithm", Json::Str(spec.algorithm().to_string())),
        // Schema v4: the full strategy identity (algorithm + parameters)
        // as one stable string — the same id the selection memo cache and
        // `t1000 select --explain` use.
        ("strategy", Json::Str(spec.strategy_id())),
    ];
    if let Some(cfg) = spec.select_config() {
        fields.push((
            "pfus",
            match cfg.pfus {
                Some(n) => Json::UInt(n as u64),
                None => Json::Null,
            },
        ));
        fields.push(("gain_threshold", Json::Float(cfg.gain_threshold)));
        // Schema v6: the reload charge, only when active (reload-free
        // documents keep the v5 field set).
        if cfg.reload_weight > 0.0 {
            fields.push(("reload_weight", Json::Float(cfg.reload_weight)));
        }
    }
    if let SelectionSpec::Knapsack { lut_budget, .. } = spec {
        fields.push(("lut_budget", Json::UInt(*lut_budget as u64)));
    }
    fields
}

/// One selection record as a schema-v6 `selections[]` entry. Public so
/// the serving layer's `select` method can emit the identical document.
pub fn selection_json(r: &SelectionRecord) -> Json {
    let (min_len, max_len) = r.seq_len_range();
    let mut fields = vec![("workload", Json::Str(r.workload.to_string()))];
    fields.extend(selection_spec_fields(&r.spec));
    fields.extend([
        ("extract", extract_json(&r.extract)),
        ("num_confs", Json::UInt(r.num_confs as u64)),
        ("num_sites", Json::UInt(r.num_sites as u64)),
        ("seq_len_min", Json::UInt(min_len as u64)),
        ("seq_len_max", Json::UInt(max_len as u64)),
        ("total_gain", Json::UInt(r.total_gain())),
        (
            "confs",
            Json::Arr(
                r.confs
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("luts", Json::UInt(c.luts as u64)),
                            ("depth", Json::UInt(c.depth as u64)),
                            ("width", Json::UInt(c.width as u64)),
                            ("seq_len", Json::UInt(c.seq_len as u64)),
                            ("num_sites", Json::UInt(c.num_sites as u64)),
                            ("total_gain", Json::UInt(c.total_gain)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Json::obj(fields)
}

fn cell_json(run: &EngineRun, c: &CellResult) -> Json {
    cell_result_json(c, run.speedup(c.cell))
}

/// One cell's measurements as a schema-v6 `cells[]` entry (`speedup` is
/// relative to the caller's baseline; `None` → JSON `null`). Public so
/// the serving layer's `run` method can emit documents bit-identical to
/// the batch artifact's.
pub fn cell_result_json(c: &CellResult, speedup: Option<f64>) -> Json {
    let mut fields = vec![("workload", Json::Str(c.cell.workload.to_string()))];
    fields.extend(selection_spec_fields(&c.cell.selection));
    fields.extend([
        ("extract", extract_json(&c.cell.extract)),
        ("machine", machine_json(&c.cell.machine)),
        ("cycles", Json::UInt(c.cycles)),
        ("base_instructions", Json::UInt(c.base_instructions)),
        ("base_ipc", Json::Float(c.base_ipc)),
        (
            "speedup",
            match speedup {
                Some(s) => Json::Float(s),
                None => Json::Null,
            },
        ),
        ("reconfigurations", Json::UInt(c.reconfigurations)),
        ("conf_hits", Json::UInt(c.conf_hits)),
        ("ext_executed", Json::UInt(c.ext_executed)),
        ("pfu_load_faults", Json::UInt(c.pfu_load_faults)),
        // Schema v6: config-plane reload accounting.
        ("pfu_prefetch_hits", Json::UInt(c.pfu_prefetch_hits)),
        (
            "pfu_hidden_reload_cycles",
            Json::UInt(c.pfu_hidden_reload_cycles),
        ),
        (
            "pfu_exposed_reload_cycles",
            Json::UInt(c.pfu_exposed_reload_cycles),
        ),
        ("pfu_stream_words", Json::UInt(c.pfu_stream_words)),
        ("branch_accuracy", Json::Float(c.branch_accuracy)),
        ("checksum", hex64(c.checksum)),
        // Schema v5: host throughput and fast-path engagement.
        ("host_ns", Json::UInt(c.host_ns)),
        ("sim_khz", Json::Float(c.sim_khz)),
        (
            "fast_path",
            Json::obj(vec![
                ("steady_loops", Json::UInt(c.fast.steady_loops)),
                ("replayed_iters", Json::UInt(c.fast.replayed_iters)),
                ("deopts", Json::UInt(c.fast.deopts)),
            ]),
        ),
        ("attribution", crate::runstats::attr_json(&c.attr)),
    ]);
    Json::obj(fields)
}

/// Parses a schema-v6 `cells[]` document back into a [`CellResult`] for
/// `cell` — the inverse of [`cell_result_json`], used by the shard
/// coordinator to merge per-cell documents streamed from worker
/// processes. The caller supplies the expected [`Cell`] (the coordinator
/// knows it from the cell's global plan index), so only the measurement
/// fields and the attribution are read; `speedup` is ignored (the merged
/// run recomputes it against its own baseline). Every numeric field
/// round-trips exactly: integers are exact in the JSON layer and floats
/// are printed shortest-round-trip.
pub fn cell_result_from_json(doc: &Json, cell: Cell) -> Result<CellResult, String> {
    let u64f = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell document: bad {key}"))
    };
    let f64f = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell document: bad {key}"))
    };
    let got = doc.get("workload").and_then(Json::as_str);
    if got != Some(cell.workload) {
        return Err(format!(
            "cell document: workload {got:?} does not match plan cell {}",
            cell.workload
        ));
    }
    let cycles = u64f("cycles")?;
    let fast = doc
        .get("fast_path")
        .ok_or("cell document: missing fast_path")?;
    let fastf = |key: &str| -> Result<u64, String> {
        fast.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell document: bad fast_path.{key}"))
    };
    let attr = doc
        .get("attribution")
        .ok_or("cell document: missing attribution")?;
    Ok(CellResult {
        cell,
        cycles,
        base_instructions: u64f("base_instructions")?,
        base_ipc: f64f("base_ipc")?,
        reconfigurations: u64f("reconfigurations")?,
        conf_hits: u64f("conf_hits")?,
        ext_executed: u64f("ext_executed")?,
        pfu_load_faults: u64f("pfu_load_faults")?,
        pfu_prefetch_hits: u64f("pfu_prefetch_hits")?,
        pfu_hidden_reload_cycles: u64f("pfu_hidden_reload_cycles")?,
        pfu_exposed_reload_cycles: u64f("pfu_exposed_reload_cycles")?,
        pfu_stream_words: u64f("pfu_stream_words")?,
        branch_accuracy: f64f("branch_accuracy")?,
        checksum: doc
            .get("checksum")
            .and_then(Json::as_str)
            .and_then(parse_hex64)
            .ok_or("cell document: bad checksum")?,
        host_ns: u64f("host_ns")?,
        sim_khz: f64f("sim_khz")?,
        fast: t1000_cpu::FastPathStats {
            steady_loops: fastf("steady_loops")?,
            replayed_iters: fastf("replayed_iters")?,
            deopts: fastf("deopts")?,
        },
        attr: crate::runstats::attr_from_json(attr, Some(cycles))?,
    })
}

/// Builds the schema-versioned `BENCH_results.json` document.
pub fn to_json(run: &EngineRun) -> Json {
    let stats = &run.stats;
    Json::obj(vec![
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        ("generator", Json::Str("t1000-bench".to_string())),
        ("scale", Json::Str(scale_str(run.scale).to_string())),
        (
            "engine",
            Json::obj(vec![
                ("threads", Json::UInt(stats.threads as u64)),
                ("cells_requested", Json::UInt(stats.cells_requested as u64)),
                ("cells_simulated", Json::UInt(stats.cells_simulated as u64)),
                ("cells_deduped", Json::UInt(stats.cells_deduped as u64)),
                ("selection_jobs", Json::UInt(stats.selection_jobs as u64)),
                ("selection_hits", Json::UInt(stats.selection_hits)),
                ("selection_misses", Json::UInt(stats.selection_misses)),
                (
                    "selection_compute_secs",
                    Json::Float(stats.selection_compute_secs),
                ),
                ("prepare_secs", Json::Float(stats.prepare_secs)),
                ("select_secs", Json::Float(stats.select_secs)),
                ("simulate_secs", Json::Float(stats.simulate_secs)),
                ("retries", Json::UInt(stats.retries)),
                ("failed_cells", Json::UInt(stats.failed_cells as u64)),
            ]),
        ),
        (
            "workloads",
            Json::Arr(
                run.workloads
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("name", Json::Str(w.name.to_string())),
                            ("expected_checksum", hex64(w.expected_checksum)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "selections",
            Json::Arr(run.selections.iter().map(selection_json).collect()),
        ),
        (
            "cells",
            Json::Arr(run.cells.iter().map(|c| cell_json(run, c)).collect()),
        ),
        (
            "failed_cells",
            Json::Arr(run.failures.iter().map(failure_json).collect()),
        ),
    ])
}

fn failure_json(e: &EngineError) -> Json {
    Json::obj(vec![
        ("cell", Json::Str(crate::checkpoint::cell_key(&e.cell))),
        ("workload", Json::Str(e.cell.workload.to_string())),
        ("cause", Json::Str(e.cause.kind().to_string())),
        ("detail", Json::Str(e.cause.to_string())),
        ("attempts", Json::UInt(e.attempts as u64)),
        ("retryable", Json::Bool(e.cause.retryable())),
    ])
}

/// Writes `BENCH_results.json` to `path`.
pub fn write_json(run: &EngineRun, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_json(run).to_string_pretty())
}

/// [`write_json`] under the retry policy, honouring injected artifact-I/O
/// faults: each failed attempt is reported and retried on the fixed
/// backoff schedule; the last error propagates if every attempt fails.
pub fn write_json_with_retry(
    run: &EngineRun,
    path: &std::path::Path,
    retry: &RetryPolicy,
    faults: &FaultPlan,
) -> std::io::Result<()> {
    let text = to_json(run).to_string_pretty();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if attempt > 1 {
            std::thread::sleep(retry.backoff_before(attempt));
        }
        let result = if faults.artifact_write_fails(attempt) {
            Err(std::io::Error::other(format!(
                "injected artifact I/O failure (attempt {attempt})"
            )))
        } else {
            std::fs::write(path, &text)
        };
        match result {
            Ok(()) => return Ok(()),
            Err(e) if attempt < retry.max_attempts => {
                eprintln!("[t1000-bench] artifact write attempt {attempt} failed: {e}; retrying");
            }
            Err(e) => return Err(e),
        }
    }
}

/// Summary returned by a successful [`validate_artifact`] call.
#[derive(Debug, PartialEq, Eq)]
pub struct ArtifactSummary {
    pub scale: &'static str,
    pub workloads: usize,
    pub cells: usize,
    /// Cells the run failed to complete (schema v3 `failed_cells`).
    pub failed_cells: usize,
}

/// Validates a `BENCH_results.json` document: schema version, structural
/// integrity, and — the CI gate — that every simulated cell's checksum
/// matches the Rust reference recomputed from `t1000-workloads`.
pub fn validate_artifact(text: &str) -> Result<ArtifactSummary, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} unsupported (expected {SCHEMA_VERSION})"
        ));
    }
    let scale = match doc.get("scale").and_then(Json::as_str) {
        Some("test") => Scale::Test,
        Some("full") => Scale::Full,
        other => return Err(format!("bad scale field: {other:?}")),
    };

    // Reference checksums, recomputed from the workload generators rather
    // than trusted from the artifact.
    let mut expected = std::collections::HashMap::new();
    let workloads = doc
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("missing workloads array")?;
    if workloads.is_empty() {
        return Err("workloads array is empty".to_string());
    }
    for w in workloads {
        let name = w
            .get("name")
            .and_then(Json::as_str)
            .ok_or("workload missing name")?;
        let recorded = w
            .get("expected_checksum")
            .and_then(Json::as_str)
            .and_then(parse_hex64)
            .ok_or_else(|| format!("{name}: bad expected_checksum"))?;
        let reference = t1000_workloads::by_name(name, scale)
            .ok_or_else(|| format!("{name}: unknown workload"))?
            .expected_checksum();
        if recorded != reference {
            return Err(format!(
                "{name}: recorded reference 0x{recorded:016x} != recomputed 0x{reference:016x}"
            ));
        }
        expected.insert(name.to_string(), reference);
    }

    // Schema v3: failures are first-class artifact content. An artifact
    // may legitimately have missing cells/speedups, but only if it also
    // owns up to the corresponding failures.
    let failed = doc
        .get("failed_cells")
        .and_then(Json::as_array)
        .ok_or("missing failed_cells array")?;
    for (i, f) in failed.iter().enumerate() {
        for key in ["cell", "workload", "cause", "detail"] {
            if f.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("failed cell {i}: bad {key}"));
            }
        }
        if f.get("attempts").and_then(Json::as_u64).is_none() {
            return Err(format!("failed cell {i}: bad attempts"));
        }
        if f.get("retryable").and_then(Json::as_bool).is_none() {
            return Err(format!("failed cell {i}: bad retryable"));
        }
    }

    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing cells array")?;
    if cells.is_empty() && failed.is_empty() {
        return Err("cells array is empty".to_string());
    }
    for (i, c) in cells.iter().enumerate() {
        let name = c
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i}: missing workload"))?;
        let reference = *expected
            .get(name)
            .ok_or_else(|| format!("cell {i}: workload {name} not in workloads array"))?;
        let checksum = c
            .get("checksum")
            .and_then(Json::as_str)
            .and_then(parse_hex64)
            .ok_or_else(|| format!("cell {i}: bad checksum"))?;
        if checksum != reference {
            return Err(format!(
                "cell {i} ({name}): checksum 0x{checksum:016x} diverges from reference 0x{reference:016x}"
            ));
        }
        let cycles = c
            .get("cycles")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell {i}: missing cycles"))?;
        if cycles == 0 {
            return Err(format!("cell {i} ({name}): zero cycles"));
        }
        match c.get("speedup") {
            Some(Json::Null) if !failed.is_empty() => {
                // The baseline this cell normalises against failed; the
                // failure is recorded, so a null speedup is honest.
            }
            Some(Json::Null) => {
                return Err(format!(
                    "cell {i} ({name}): null speedup but no failed cells"
                ));
            }
            Some(v) => {
                let speedup = v
                    .as_f64()
                    .ok_or_else(|| format!("cell {i} ({name}): bad speedup"))?;
                if !(speedup.is_finite() && speedup > 0.0) {
                    return Err(format!("cell {i} ({name}): bad speedup {speedup}"));
                }
            }
            None => return Err(format!("cell {i}: missing speedup")),
        }
        if c.get("pfu_load_faults").and_then(Json::as_u64).is_none() {
            return Err(format!("cell {i} ({name}): bad pfu_load_faults"));
        }
        // Schema v6: the config-plane reload counters must be present.
        for key in [
            "pfu_prefetch_hits",
            "pfu_hidden_reload_cycles",
            "pfu_exposed_reload_cycles",
            "pfu_stream_words",
        ] {
            if c.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("cell {i} ({name}): bad {key}"));
            }
        }
        // Schema v4: every cell names the strategy that produced it.
        match c.get("strategy").and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("cell {i} ({name}): bad strategy")),
        }
        // Schema v5: host throughput + fast-path counters. `host_ns`
        // may legitimately be zero (deterministic mode), and `sim_khz`
        // must then be zero too; otherwise both must be positive and the
        // rate must be the exact quotient of the other two fields.
        let host_ns = c
            .get("host_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell {i} ({name}): bad host_ns"))?;
        let khz = c
            .get("sim_khz")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell {i} ({name}): bad sim_khz"))?;
        if !khz.is_finite() || khz < 0.0 {
            return Err(format!("cell {i} ({name}): bad sim_khz {khz}"));
        }
        if (host_ns == 0) != (khz == 0.0) {
            return Err(format!(
                "cell {i} ({name}): host_ns {host_ns} inconsistent with sim_khz {khz}"
            ));
        }
        let fast = c
            .get("fast_path")
            .ok_or_else(|| format!("cell {i} ({name}): missing fast_path"))?;
        for key in ["steady_loops", "replayed_iters", "deopts"] {
            if fast.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("cell {i} ({name}): bad fast_path.{key}"));
            }
        }
        // Schema v2: the attribution must partition the cell's cycles
        // exactly, over the closed stall taxonomy.
        let attr = c
            .get("attribution")
            .ok_or_else(|| format!("cell {i} ({name}): missing attribution"))?;
        crate::runstats::validate_attribution(attr, Some(cycles))
            .map_err(|e| format!("cell {i} ({name}): {e}"))?;
    }
    Ok(ArtifactSummary {
        scale: scale_str(scale),
        workloads: workloads.len(),
        cells: cells.len(),
        failed_cells: failed.len(),
    })
}

/// Splits an `--expect` spec on top-level commas only, so strategy
/// identifiers like `selective(pfus=2,threshold=0.005)` survive intact.
fn split_expect(spec: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in spec.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&spec[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&spec[start..]);
    parts
}

/// Checks declarative `--expect key=value` assertions against an artifact,
/// replacing the fragile `grep`-on-JSON checks CI used to carry. `spec` is
/// a comma-separated list (commas inside parentheses belong to the value,
/// e.g. `strategy=selective(pfus=2,threshold=0.005),retries=1`).
///
/// Supported keys: `retries` / `failed_cells` (engine counters), `cells` /
/// `workloads` (array lengths), `scale` (artifact scale string),
/// `strategy` (at least one cell was produced by that strategy id),
/// `total_sim_khz` (the aggregate simulation rate over all cells —
/// `Σ cycles / Σ host_secs / 1000` — is at least the given value; `0`
/// holds for `--deterministic` artifacts, whose host time is zeroed), and
/// `shards=N` / `remotes=N` (the run's shard topology and remote endpoint
/// count, read from the `<artifact>.shards.json` sidecar a coordinator run
/// writes; a sidecar without a `remotes` field counts as 0),
/// `schema=N` (the artifact's exact `schema_version`), and
/// `pfu_prefetch_hits=N` (the config-plane prefetch hit count summed over
/// all cells is at least `N` — the CI hook proving reconfiguration hiding
/// actually engaged on a prefetch-enabled run).
/// Returns the satisfied assertions for reporting; the first unmet or
/// malformed assertion is the error.
pub fn check_expectations(text: &str, spec: &str) -> Result<Vec<String>, String> {
    check_expectations_with(text, None, spec)
}

/// [`check_expectations`] with the shard sidecar document (the contents of
/// `<artifact>.shards.json`, when present) for topology keys.
pub fn check_expectations_with(
    text: &str,
    sidecar: Option<&str>,
    spec: &str,
) -> Result<Vec<String>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let mut satisfied = Vec::new();
    for part in split_expect(spec) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, want) = part
            .split_once('=')
            .ok_or_else(|| format!("--expect `{part}`: expected key=value"))?;
        match key {
            "retries" | "failed_cells" => {
                let got = doc
                    .get("engine")
                    .and_then(|e| e.get(key))
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("--expect {key}: artifact has no engine.{key}"))?;
                let want: u64 = want
                    .parse()
                    .map_err(|_| format!("--expect {key}: `{want}` is not an integer"))?;
                if got != want {
                    return Err(format!("--expect {key}={want}: artifact records {got}"));
                }
            }
            "cells" | "workloads" => {
                let got = doc
                    .get(key)
                    .and_then(Json::as_array)
                    .map(<[Json]>::len)
                    .ok_or_else(|| format!("--expect {key}: artifact has no {key} array"))?;
                let want: usize = want
                    .parse()
                    .map_err(|_| format!("--expect {key}: `{want}` is not an integer"))?;
                if got != want {
                    return Err(format!("--expect {key}={want}: artifact has {got}"));
                }
            }
            "scale" => {
                let got = doc
                    .get("scale")
                    .and_then(Json::as_str)
                    .ok_or("--expect scale: artifact has no scale field")?;
                if got != want {
                    return Err(format!("--expect scale={want}: artifact records {got}"));
                }
            }
            "strategy" => {
                let cells = doc
                    .get("cells")
                    .and_then(Json::as_array)
                    .ok_or("--expect strategy: artifact has no cells array")?;
                let hit = cells
                    .iter()
                    .any(|c| c.get("strategy").and_then(Json::as_str) == Some(want));
                if !hit {
                    return Err(format!("--expect strategy={want}: no cell uses it"));
                }
            }
            "total_sim_khz" => {
                let want: f64 = want
                    .parse()
                    .map_err(|_| format!("--expect {key}: `{want}` is not a number"))?;
                let cells = doc
                    .get("cells")
                    .and_then(Json::as_array)
                    .ok_or("--expect total_sim_khz: artifact has no cells array")?;
                let mut cycles = 0u64;
                let mut host_ns = 0u64;
                for (i, c) in cells.iter().enumerate() {
                    cycles += c
                        .get("cycles")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("--expect total_sim_khz: cell {i}: bad cycles"))?;
                    host_ns += c
                        .get("host_ns")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("--expect total_sim_khz: cell {i}: bad host_ns"))?;
                }
                let got = crate::engine::sim_khz(cycles, host_ns);
                if got < want {
                    return Err(format!(
                        "--expect total_sim_khz={want}: aggregate rate is {got:.0} kHz"
                    ));
                }
            }
            "schema" => {
                let got = doc
                    .get("schema_version")
                    .and_then(Json::as_u64)
                    .ok_or("--expect schema: artifact has no schema_version")?;
                let want: u64 = want
                    .parse()
                    .map_err(|_| format!("--expect {key}: `{want}` is not an integer"))?;
                if got != want {
                    return Err(format!("--expect schema={want}: artifact records {got}"));
                }
            }
            "pfu_prefetch_hits" => {
                let want: u64 = want
                    .parse()
                    .map_err(|_| format!("--expect {key}: `{want}` is not an integer"))?;
                let cells = doc
                    .get("cells")
                    .and_then(Json::as_array)
                    .ok_or("--expect pfu_prefetch_hits: artifact has no cells array")?;
                let mut got = 0u64;
                for (i, c) in cells.iter().enumerate() {
                    got += c.get(key).and_then(Json::as_u64).ok_or_else(|| {
                        format!("--expect pfu_prefetch_hits: cell {i}: bad {key}")
                    })?;
                }
                if got < want {
                    return Err(format!(
                        "--expect pfu_prefetch_hits={want}: cells record only {got}"
                    ));
                }
            }
            "shards" | "remotes" => {
                let text = sidecar.ok_or_else(|| {
                    format!("--expect {key}: no <artifact>.shards.json sidecar found")
                })?;
                let side =
                    Json::parse(text).map_err(|e| format!("--expect {key}: bad sidecar: {e}"))?;
                match side.get("kind").and_then(Json::as_str) {
                    Some("t1000.bench-shards") => {}
                    other => {
                        return Err(format!("--expect {key}: bad sidecar kind {other:?}"));
                    }
                }
                // `remotes` was added in sidecar schema v2; older sidecars
                // simply lack the field (local-only runs record 0).
                let got = match side.get(key).and_then(Json::as_u64) {
                    Some(n) => n,
                    None if key == "remotes" => 0,
                    None => {
                        return Err(format!("--expect {key}: sidecar has no {key} field"));
                    }
                };
                let want: u64 = want
                    .parse()
                    .map_err(|_| format!("--expect {key}: `{want}` is not an integer"))?;
                if got != want {
                    return Err(format!("--expect {key}={want}: sidecar records {got}"));
                }
            }
            other => {
                return Err(format!(
                    "--expect: unknown key `{other}` \
                     (known: retries, failed_cells, cells, workloads, scale, strategy, \
                      total_sim_khz, schema, pfu_prefetch_hits, shards, remotes)"
                ));
            }
        }
        satisfied.push(format!("{key}={want}"));
    }
    Ok(satisfied)
}

// ---------------------------------------------------------------------
// Markdown report (the body of EXPERIMENTS.md)
// ---------------------------------------------------------------------

/// The default-machine baseline cell for `workload` (the normaliser of
/// every paper experiment).
fn baseline_cell(workload: &'static str) -> Cell {
    Cell::new(
        workload,
        SelectionSpec::Baseline,
        MachineSpec::with_pfus(0, 0),
    )
}

/// Formats a possibly-missing speedup: failed measurements render as
/// `n/a` instead of aborting the report.
fn fmt3(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3}"),
        None => "n/a".to_string(),
    }
}

/// Renders the `run_all` Markdown report. Byte-identical to the output
/// the pre-engine harness produced when every cell completes: the figures
/// are views over the same measurements. Failed cells render as `n/a`.
pub fn render_markdown(run: &EngineRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let o = &mut out;

    let _ = writeln!(o, "# T1000 experiment report");
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "Scale: {} | machine: 4-wide OoO, 64-entry RUU, perfect branch prediction, paper caches/TLBs",
        if run.scale == Scale::Test { "test" } else { "full (paper)" }
    );
    // Host-time roll-up: where the run's wall clock went, per engine
    // phase, plus the aggregate simulation rate over all measured cells
    // (`n/a` under --deterministic, which zeroes per-cell host time).
    let total_cycles: u64 = run.cells.iter().map(|c| c.cycles).sum();
    let total_host_ns: u64 = run.cells.iter().map(|c| c.host_ns).sum();
    let rate = if total_host_ns == 0 {
        "n/a".to_string()
    } else {
        format!(
            "{:.0} kHz",
            crate::engine::sim_khz(total_cycles, total_host_ns)
        )
    };
    let _ = writeln!(
        o,
        "Host time: prepare {:.2} s | select {:.2} s | simulate {:.2} s | aggregate sim rate {rate}",
        run.stats.prepare_secs, run.stats.select_secs, run.stats.simulate_secs
    );
    let _ = writeln!(o);

    let names: Vec<&'static str> = run.workloads.iter().map(|w| w.name).collect();

    let _ = writeln!(o, "## Workloads");
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "| bench | dynamic instrs | baseline cycles | baseline IPC |"
    );
    let _ = writeln!(o, "|---|---:|---:|---:|");
    for &w in &names {
        let _ = match run.cell(baseline_cell(w)) {
            Some(b) => writeln!(
                o,
                "| {} | {} | {} | {:.2} |",
                w, b.base_instructions, b.cycles, b.base_ipc
            ),
            None => writeln!(o, "| {w} | n/a | n/a | n/a |"),
        };
    }
    let _ = writeln!(o);

    let _ = writeln!(o, "## Figure 2 — greedy selection");
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "| bench | unlimited PFUs, 0-cy reconfig | 2 PFUs, 10-cy reconfig | #confs |"
    );
    let _ = writeln!(o, "|---|---:|---:|---:|");
    for &w in &names {
        let unl = Cell::new(w, SelectionSpec::Greedy, MachineSpec::unlimited(0));
        let two = Cell::new(w, SelectionSpec::Greedy, MachineSpec::with_pfus(2, 10));
        let confs = run
            .selection(unl)
            .map_or("n/a".to_string(), |s| s.num_confs.to_string());
        let _ = writeln!(
            o,
            "| {} | {} | {} | {} |",
            w,
            fmt3(run.speedup(unl)),
            fmt3(run.speedup(two)),
            confs
        );
    }
    let _ = writeln!(o);

    let _ = writeln!(o, "## §4.1 — greedy statistics");
    let _ = writeln!(o);
    let _ = writeln!(o, "| bench | #confs | #sites | len range |");
    let _ = writeln!(o, "|---|---:|---:|---|");
    for &w in &names {
        let _ = match run.selection(Cell::new(
            w,
            SelectionSpec::Greedy,
            MachineSpec::with_pfus(2, 10),
        )) {
            Some(sel) => {
                let (min, max) = sel.seq_len_range();
                writeln!(
                    o,
                    "| {} | {} | {} | {min}–{max} |",
                    w, sel.num_confs, sel.num_sites
                )
            }
            None => writeln!(o, "| {w} | n/a | n/a | n/a |"),
        };
    }
    let _ = writeln!(o);

    let _ = writeln!(o, "## Figure 6 — selective algorithm (10-cy reconfig)");
    let _ = writeln!(o);
    let _ = writeln!(o, "| bench | 2 PFUs | 4 PFUs | unlimited |");
    let _ = writeln!(o, "|---|---:|---:|---:|");
    for &w in &names {
        let cells = [
            Cell::new(
                w,
                SelectionSpec::selective_std(Some(2)),
                MachineSpec::with_pfus(2, 10),
            ),
            Cell::new(
                w,
                SelectionSpec::selective_std(Some(4)),
                MachineSpec::with_pfus(4, 10),
            ),
            Cell::new(
                w,
                SelectionSpec::selective_std(None),
                MachineSpec::unlimited(10),
            ),
        ];
        let _ = writeln!(
            o,
            "| {} | {} | {} | {} |",
            w,
            fmt3(run.speedup(cells[0])),
            fmt3(run.speedup(cells[1])),
            fmt3(run.speedup(cells[2]))
        );
    }
    let _ = writeln!(o);

    let _ = writeln!(o, "## Figure 7 — hardware cost of selected instructions");
    let _ = writeln!(o);
    let mut luts: Vec<u32> = Vec::new();
    for &w in &names {
        if let Some(sel) = run.selection(Cell::new(
            w,
            SelectionSpec::selective_std(Some(4)),
            MachineSpec::with_pfus(4, 10),
        )) {
            luts.extend(sel.confs.iter().map(|c| c.luts));
        }
    }
    let max = luts.iter().copied().max().unwrap_or(0);
    let _ = writeln!(o, "| bucket | instructions |");
    let _ = writeln!(o, "|---|---:|");
    for lo in (0..=max).step_by(20) {
        let n = luts.iter().filter(|&&l| l >= lo && l < lo + 20).count();
        let _ = writeln!(o, "| {}–{} LUTs | {} |", lo, lo + 19, n);
    }
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "Max: {max} LUTs over {} instructions (paper: max 105, all fit 150-LUT PFUs).",
        luts.len()
    );
    let _ = writeln!(o);

    let _ = writeln!(
        o,
        "## §5.2 — reconfiguration-cost robustness (2 PFUs, selective)"
    );
    let _ = writeln!(o);
    let _ = writeln!(o, "| bench | 0 | 10 | 100 | 500 cycles |");
    let _ = writeln!(o, "|---|---:|---:|---:|---:|");
    for &w in &names {
        let cells: Vec<Option<f64>> = [0u32, 10, 100, 500]
            .iter()
            .map(|&c| {
                run.speedup(Cell::new(
                    w,
                    SelectionSpec::selective_std(Some(2)),
                    MachineSpec::with_pfus(2, c),
                ))
            })
            .collect();
        let _ = writeln!(
            o,
            "| {} | {} | {} | {} | {} |",
            w,
            fmt3(cells[0]),
            fmt3(cells[1]),
            fmt3(cells[2]),
            fmt3(cells[3])
        );
    }
    out
}

/// Renders the per-cell failure table the CLI prints (and exits nonzero
/// with) when a run is not fully healthy.
pub fn render_failures(failures: &[EngineError]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let o = &mut out;
    let _ = writeln!(o, "{} cell(s) FAILED:", failures.len());
    let _ = writeln!(o);
    let _ = writeln!(o, "| cell | workload | cause | attempts | detail |");
    let _ = writeln!(o, "|---|---|---|---:|---|");
    for e in failures {
        let _ = writeln!(
            o,
            "| {} [{}] | {} | {} | {} | {} |",
            e.cell.selection.algorithm(),
            machine_label(&e.cell.machine),
            e.cell.workload,
            e.cause.kind(),
            e.attempts,
            e.cause
        );
    }
    out
}

fn machine_label(m: &MachineSpec) -> String {
    match m.pfus {
        PfuCount::Fixed(n) => format!("{n} PFUs, {}cy", m.reconfig_cycles),
        PfuCount::Unlimited => format!("unlimited PFUs, {}cy", m.reconfig_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use crate::plan::Plan;

    fn small_run() -> EngineRun {
        let mut plan = Plan::new();
        plan.push(Cell::new(
            "mpeg2_enc",
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 10),
        ));
        plan.push(Cell::new(
            "mpeg2_enc",
            SelectionSpec::Greedy,
            MachineSpec::unlimited(0),
        ));
        execute(&plan, Scale::Test)
    }

    #[test]
    fn artifact_round_trips_and_validates() {
        let run = small_run();
        let text = to_json(&run).to_string_pretty();
        // Round trip through the parser.
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(doc.to_string_pretty(), text);
        // And the validator accepts it.
        let summary = validate_artifact(&text).expect("artifact must validate");
        assert_eq!(summary.scale, "test");
        assert_eq!(summary.workloads, 1);
        assert_eq!(summary.cells, 3);
    }

    #[test]
    fn validator_rejects_corrupted_artifacts() {
        let run = small_run();
        let good = to_json(&run).to_string_pretty();

        // Wrong schema version.
        let bad = good.replacen("\"schema_version\": 6", "\"schema_version\": 99", 1);
        assert!(validate_artifact(&bad)
            .unwrap_err()
            .contains("schema_version"));

        // A flipped checksum digit must be caught.
        let cs = format!("0x{:016x}", run.cells[0].checksum);
        let flipped = format!("0x{:016x}", run.cells[0].checksum ^ 1);
        let bad = good.replacen(cs.as_str(), flipped.as_str(), 2);
        assert!(validate_artifact(&bad).is_err());

        // A perturbed attribution counter breaks the cycle partition.
        let busy = run.cells[0].attr.busy_cycles;
        let bad = good.replacen(
            &format!("\"busy_cycles\": {busy}"),
            &format!("\"busy_cycles\": {}", busy + 1),
            1,
        );
        assert!(validate_artifact(&bad).unwrap_err().contains("partition"));

        // Truncation is a parse error, not a panic.
        assert!(validate_artifact(&good[..good.len() / 2]).is_err());

        // A sim_khz that disagrees with host_ns is inconsistent: zero one
        // cell's host_ns while its (measured, nonzero) sim_khz stands.
        let bad = good.replacen(
            &format!("\"host_ns\": {}", run.cells[0].host_ns),
            "\"host_ns\": 0",
            1,
        );
        assert!(validate_artifact(&bad)
            .unwrap_err()
            .contains("inconsistent"));
    }

    #[test]
    fn cells_record_host_throughput() {
        let run = small_run();
        for c in &run.cells {
            assert!(c.host_ns > 0, "cell measured no host time");
            assert!(c.sim_khz > 0.0 && c.sim_khz.is_finite());
        }
        // The baseline cell reuses the prepare-phase run — its host time
        // is the reference simulation's, still nonzero.
        let text = to_json(&run).to_string_pretty();
        assert!(text.contains("\"host_ns\""));
        assert!(text.contains("\"sim_khz\""));
        assert!(text.contains("\"fast_path\""));
    }

    #[test]
    fn expectations_check_replaces_grep() {
        let run = small_run();
        let text = to_json(&run).to_string_pretty();
        let ok = check_expectations(
            &text,
            "scale=test,cells=3,workloads=1,retries=0,failed_cells=0,\
             strategy=selective(pfus=2,threshold=0.005),schema=6,pfu_prefetch_hits=0",
        )
        .expect("all expectations hold");
        assert_eq!(ok.len(), 8);
        // The parenthesised strategy id survived the comma split.
        assert!(ok.contains(&"strategy=selective(pfus=2,threshold=0.005)".to_string()));

        for (spec, needle) in [
            ("cells=99", "artifact has 3"),
            ("strategy=knapsack(luts=1)", "no cell uses it"),
            ("scale=full", "records test"),
            ("schema=5", "records 6"),
            // A default (prefetch-off) run records zero hits, so any
            // positive floor must fail.
            ("pfu_prefetch_hits=1", "record only 0"),
            ("bogus=1", "unknown key"),
            ("cells", "expected key=value"),
        ] {
            let err = check_expectations(&text, spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn cell_documents_round_trip_through_the_wire_parser() {
        let run = small_run();
        for c in &run.cells {
            let doc = cell_result_json(c, None);
            let back = cell_result_from_json(&doc, c.cell).expect("wire parse");
            // Re-rendering proves every field round-tripped exactly.
            assert_eq!(
                cell_result_json(&back, None).to_string_compact(),
                doc.to_string_compact()
            );
        }
        // A document attached to the wrong plan cell is a typed error,
        // not a silent misattribution.
        let doc = cell_result_json(&run.cells[0], None);
        let other = Cell::new("epic", SelectionSpec::Greedy, MachineSpec::unlimited(0));
        assert!(cell_result_from_json(&doc, other).is_err());
    }

    #[test]
    fn topology_expectations_read_the_sidecar_and_roll_up() {
        let run = small_run();
        let text = to_json(&run).to_string_pretty();
        let sidecar = r#"{"schema_version": 1, "kind": "t1000.bench-shards", "shards": 4}"#;
        let v2 =
            r#"{"schema_version": 2, "kind": "t1000.bench-shards", "shards": 4, "remotes": 2}"#;
        let ok = check_expectations_with(&text, Some(sidecar), "shards=4,total_sim_khz=0")
            .expect("topology expectations hold");
        assert_eq!(ok.len(), 2);
        check_expectations_with(&text, Some(v2), "shards=4,remotes=2").expect("remote topology");
        // A v1 sidecar (no remotes field) reads as a local-only run.
        check_expectations_with(&text, Some(sidecar), "remotes=0").expect("v1 defaults to 0");
        // A measured run clears a real (modest) throughput bar...
        check_expectations_with(&text, Some(sidecar), "total_sim_khz=1").expect("measured rate");
        // ...an absurd bar fails, and topology mismatches are caught.
        for (side, spec, needle) in [
            (Some(sidecar), "total_sim_khz=1e18", "aggregate rate"),
            (Some(sidecar), "shards=2", "records 4"),
            (None, "shards=4", "sidecar"),
            (Some("{}"), "shards=4", "bad sidecar kind"),
            (Some(v2), "remotes=3", "records 2"),
            (None, "remotes=1", "sidecar"),
        ] {
            let err = check_expectations_with(&text, side, spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn markdown_report_has_every_section() {
        let run = execute(&crate::plan::run_all_plan(), Scale::Test);
        let md = render_markdown(&run);
        for section in [
            "# T1000 experiment report",
            "Host time: prepare ",
            "## Workloads",
            "## Figure 2 — greedy selection",
            "## §4.1 — greedy statistics",
            "## Figure 6 — selective algorithm (10-cy reconfig)",
            "## Figure 7 — hardware cost of selected instructions",
            "## §5.2 — reconfiguration-cost robustness (2 PFUs, selective)",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
        // All 8 workloads appear in every speedup table.
        for name in t1000_workloads::NAMES {
            assert!(
                md.matches(&format!("| {name} |")).count() >= 5,
                "{name} missing"
            );
        }
    }
}
