//! Checkpoint/resume for `bench` runs.
//!
//! While a plan executes, the engine flushes every completed cell to a
//! `<artifact>.partial` checkpoint (atomically: write-to-temp + rename,
//! so a kill mid-flush never leaves a torn file). A later
//! `t1000 bench --resume` loads the checkpoint, restores the finished
//! simulations, and re-runs only preparation, selection (both
//! deterministic) and the missing cells — the final artifact is
//! byte-identical to an uninterrupted run because the measurement fields
//! round-trip exactly through the [`Json`] writer/parser (`u64`s stay
//! exact; floats use shortest round-trip formatting).
//!
//! Cells are keyed by their full configuration (the `Debug` rendering of
//! [`Cell`], which embeds workload, extraction, selection and machine
//! parameters), so a checkpoint written for one plan safely resumes into
//! any plan containing the same cells. Schema version and scale are
//! checked on load; a mismatched checkpoint is rejected, not silently
//! misapplied.

use crate::engine::CellResult;
use crate::json::Json;
use crate::plan::Cell;
use crate::runstats::{attr_from_json, attr_json};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use t1000_cpu::CycleAttribution;
use t1000_workloads::Scale;

/// Version of the checkpoint layout. Bump on any breaking change.
/// v2 added per-cell host throughput (`host_ns`, `sim_khz`) and the
/// fast-path counters (`steady_loops`, `replayed_iters`, `deopts`).
/// v3 added the config-plane reload counters (`pfu_prefetch_hits`,
/// `pfu_hidden_reload_cycles`, `pfu_exposed_reload_cycles`,
/// `pfu_stream_words`).
pub const CHECKPOINT_SCHEMA: u64 = 3;
/// `kind` tag distinguishing checkpoints from result artifacts.
pub const CHECKPOINT_KIND: &str = "t1000.bench-checkpoint";

/// The checkpoint key of one cell: its complete configuration. Two cells
/// share a key exactly when they denote the same simulation.
pub fn cell_key(cell: &Cell) -> String {
    format!("{cell:?}")
}

fn scale_str(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Full => "full",
    }
}

fn parse_hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// One completed cell's measurements as restored from a checkpoint. The
/// engine re-attaches the [`Cell`] it keyed the entry with.
#[derive(Clone, Debug)]
pub struct RestoredCell {
    pub cycles: u64,
    pub base_instructions: u64,
    pub base_ipc: f64,
    pub reconfigurations: u64,
    pub conf_hits: u64,
    pub ext_executed: u64,
    pub pfu_load_faults: u64,
    pub pfu_prefetch_hits: u64,
    pub pfu_hidden_reload_cycles: u64,
    pub pfu_exposed_reload_cycles: u64,
    pub pfu_stream_words: u64,
    pub branch_accuracy: f64,
    pub checksum: u64,
    pub host_ns: u64,
    pub sim_khz: f64,
    pub fast: t1000_cpu::FastPathStats,
    pub attr: CycleAttribution,
}

fn to_json(scale: Scale, completed: &BTreeMap<usize, CellResult>) -> Json {
    Json::obj(vec![
        ("schema_version", Json::UInt(CHECKPOINT_SCHEMA)),
        ("kind", Json::Str(CHECKPOINT_KIND.to_string())),
        ("scale", Json::Str(scale_str(scale).to_string())),
        (
            "cells",
            Json::Arr(
                completed
                    .values()
                    .map(|c| {
                        Json::obj(vec![
                            ("key", Json::Str(cell_key(&c.cell))),
                            ("cycles", Json::UInt(c.cycles)),
                            ("base_instructions", Json::UInt(c.base_instructions)),
                            ("base_ipc", Json::Float(c.base_ipc)),
                            ("reconfigurations", Json::UInt(c.reconfigurations)),
                            ("conf_hits", Json::UInt(c.conf_hits)),
                            ("ext_executed", Json::UInt(c.ext_executed)),
                            ("pfu_load_faults", Json::UInt(c.pfu_load_faults)),
                            ("pfu_prefetch_hits", Json::UInt(c.pfu_prefetch_hits)),
                            (
                                "pfu_hidden_reload_cycles",
                                Json::UInt(c.pfu_hidden_reload_cycles),
                            ),
                            (
                                "pfu_exposed_reload_cycles",
                                Json::UInt(c.pfu_exposed_reload_cycles),
                            ),
                            ("pfu_stream_words", Json::UInt(c.pfu_stream_words)),
                            ("branch_accuracy", Json::Float(c.branch_accuracy)),
                            ("checksum", Json::Str(format!("0x{:016x}", c.checksum))),
                            ("host_ns", Json::UInt(c.host_ns)),
                            ("sim_khz", Json::Float(c.sim_khz)),
                            ("steady_loops", Json::UInt(c.fast.steady_loops)),
                            ("replayed_iters", Json::UInt(c.fast.replayed_iters)),
                            ("deopts", Json::UInt(c.fast.deopts)),
                            ("attribution", attr_json(&c.attr)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Atomically writes the checkpoint for `completed` to `path`.
pub fn write(
    path: &Path,
    scale: Scale,
    completed: &BTreeMap<usize, CellResult>,
) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, to_json(scale, completed).to_string_pretty())?;
    std::fs::rename(&tmp, path)
}

/// Loads a checkpoint file, validating schema version and scale.
pub fn load(path: &Path, scale: Scale) -> Result<HashMap<String, RestoredCell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text, scale)
}

/// [`load`] on already-read text.
pub fn parse(text: &str, scale: Scale) -> Result<HashMap<String, RestoredCell>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("kind").and_then(Json::as_str) != Some(CHECKPOINT_KIND) {
        return Err("not a bench checkpoint (missing kind tag)".to_string());
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("checkpoint missing schema_version")?;
    if version != CHECKPOINT_SCHEMA {
        return Err(format!(
            "checkpoint schema {version} unsupported (expected {CHECKPOINT_SCHEMA})"
        ));
    }
    let recorded_scale = doc.get("scale").and_then(Json::as_str);
    if recorded_scale != Some(scale_str(scale)) {
        return Err(format!(
            "checkpoint scale {recorded_scale:?} does not match this run ({})",
            scale_str(scale)
        ));
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("checkpoint missing cells array")?;
    let mut out = HashMap::new();
    for (i, c) in cells.iter().enumerate() {
        let field = |key: &str| -> Result<u64, String> {
            c.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint cell {i}: bad {key}"))
        };
        let float = |key: &str| -> Result<f64, String> {
            c.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("checkpoint cell {i}: bad {key}"))
        };
        let key = c
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("checkpoint cell {i}: missing key"))?
            .to_string();
        let cycles = field("cycles")?;
        let attr_doc = c
            .get("attribution")
            .ok_or_else(|| format!("checkpoint cell {i}: missing attribution"))?;
        let attr = attr_from_json(attr_doc, Some(cycles))
            .map_err(|e| format!("checkpoint cell {i}: {e}"))?;
        let restored = RestoredCell {
            cycles,
            base_instructions: field("base_instructions")?,
            base_ipc: float("base_ipc")?,
            reconfigurations: field("reconfigurations")?,
            conf_hits: field("conf_hits")?,
            ext_executed: field("ext_executed")?,
            pfu_load_faults: field("pfu_load_faults")?,
            pfu_prefetch_hits: field("pfu_prefetch_hits")?,
            pfu_hidden_reload_cycles: field("pfu_hidden_reload_cycles")?,
            pfu_exposed_reload_cycles: field("pfu_exposed_reload_cycles")?,
            pfu_stream_words: field("pfu_stream_words")?,
            branch_accuracy: float("branch_accuracy")?,
            host_ns: field("host_ns")?,
            sim_khz: float("sim_khz")?,
            fast: t1000_cpu::FastPathStats {
                steady_loops: field("steady_loops")?,
                replayed_iters: field("replayed_iters")?,
                deopts: field("deopts")?,
            },
            checksum: c
                .get("checksum")
                .and_then(Json::as_str)
                .and_then(parse_hex64)
                .ok_or_else(|| format!("checkpoint cell {i}: bad checksum"))?,
            attr,
        };
        if out.insert(key.clone(), restored).is_some() {
            return Err(format!("checkpoint cell {i}: duplicate key {key}"));
        }
    }
    Ok(out)
}
