//! Deterministic fault injection for the experiment engine.
//!
//! A [`FaultPlan`] describes *exactly* which operations fail — no
//! randomness, no wall-clock — so a faulted run is reproducible down to
//! the artifact bytes. Plans are written in a tiny comma-separated
//! grammar, passed via `t1000 bench --inject <plan>` or the
//! `T1000_INJECT` environment variable:
//!
//! | arm | effect |
//! |---|---|
//! | `panic@N` | cell `N` (plan index) panics on **every** attempt |
//! | `panic@NxK` | cell `N` panics on its first `K` attempts only (retry then succeeds) |
//! | `abort@N` | the **process** aborts when cell `N` starts simulating (worker-crash injection) |
//! | `pfu@N` | every PFU configuration load in cell `N` fails → graceful scalar fallback |
//! | `net@S` | every connect attempt to shard `S`'s remote endpoint is refused |
//! | `net@SxK` | shard `S`'s first `K` connect attempts are refused (retry then succeeds) |
//! | `netdrop@S` | shard `S`'s remote stream disconnects after its first cell document |
//! | `netstall@S` | shard `S`'s remote stream stalls until the idle timeout fires |
//! | `io@artifact` | the first 2 artifact writes fail with a simulated I/O error |
//! | `io@artifactxK` | the first `K` artifact writes fail |
//! | `io@checkpoint` / `io@checkpointxK` | same, for checkpoint flushes |
//!
//! Example: `--inject panic@3,pfu@6,netdrop@1,io@artifactx1`.
//!
//! Network arms are keyed by *shard* index (not cell index) and fire in
//! the coordinator's remote transport only — they are never forwarded to
//! workers and are inert in local (child-process) runs.

use std::collections::{HashMap, HashSet};

/// Environment variable holding the default fault plan.
pub const FAULT_ENV: &str = "T1000_INJECT";

/// A deterministic set of injected faults. The empty plan (the default)
/// injects nothing and costs nothing on the hot path.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// cell index → number of leading attempts that panic
    /// (`u32::MAX` = every attempt).
    cell_panics: HashMap<usize, u32>,
    /// Cells whose simulation aborts the whole process — the crash the
    /// shard coordinator must survive. Unlike `panic@N`, an abort cannot
    /// be caught in-process, so it exercises the worker-crash path.
    aborts: HashSet<usize>,
    /// Cells whose PFU configuration loads all fail.
    pfu_faults: HashSet<usize>,
    /// shard index → number of leading connect attempts to that shard's
    /// remote endpoint that are refused (`u32::MAX` = every attempt).
    net_connect: HashMap<usize, u32>,
    /// Shards whose remote stream drops after the first cell document.
    net_drops: HashSet<usize>,
    /// Shards whose remote stream stalls until the idle timeout fires.
    net_stalls: HashSet<usize>,
    /// Leading artifact-write attempts that fail.
    artifact_fails: u32,
    /// Leading checkpoint-write attempts that fail.
    checkpoint_fails: u32,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether any fault is armed.
    pub fn is_empty(&self) -> bool {
        self.cell_panics.is_empty()
            && self.aborts.is_empty()
            && self.pfu_faults.is_empty()
            && self.net_connect.is_empty()
            && self.net_drops.is_empty()
            && self.net_stalls.is_empty()
            && self.artifact_fails == 0
            && self.checkpoint_fails == 0
    }

    /// Parses the `--inject` grammar (see the module docs).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for arm in text.split(',').map(str::trim).filter(|a| !a.is_empty()) {
            let (kind, target) = arm
                .split_once('@')
                .ok_or_else(|| format!("bad fault arm {arm:?}: expected kind@target"))?;
            match kind {
                "panic" => {
                    let (cell, count) = parse_indexed(target)
                        .ok_or_else(|| format!("bad panic arm {arm:?}: expected panic@N[xK]"))?;
                    plan.cell_panics.insert(cell, count.unwrap_or(u32::MAX));
                }
                "abort" => {
                    let cell: usize = target
                        .parse()
                        .map_err(|_| format!("bad abort arm {arm:?}: expected abort@N"))?;
                    plan.aborts.insert(cell);
                }
                "pfu" => {
                    let cell: usize = target
                        .parse()
                        .map_err(|_| format!("bad pfu arm {arm:?}: expected pfu@N"))?;
                    plan.pfu_faults.insert(cell);
                }
                "net" => {
                    let (shard, count) = parse_indexed(target)
                        .ok_or_else(|| format!("bad net arm {arm:?}: expected net@S[xK]"))?;
                    plan.net_connect.insert(shard, count.unwrap_or(u32::MAX));
                }
                "netdrop" => {
                    let shard: usize = target
                        .parse()
                        .map_err(|_| format!("bad netdrop arm {arm:?}: expected netdrop@S"))?;
                    plan.net_drops.insert(shard);
                }
                "netstall" => {
                    let shard: usize = target
                        .parse()
                        .map_err(|_| format!("bad netstall arm {arm:?}: expected netstall@S"))?;
                    plan.net_stalls.insert(shard);
                }
                "io" => {
                    let (site, count) = match target.split_once('x') {
                        Some((site, k)) => {
                            let k: u32 = k
                                .parse()
                                .map_err(|_| format!("bad io arm {arm:?}: expected io@SITExK"))?;
                            (site, k)
                        }
                        None => (target, 2),
                    };
                    match site {
                        "artifact" => plan.artifact_fails = count,
                        "checkpoint" => plan.checkpoint_fails = count,
                        other => {
                            return Err(format!(
                                "bad io arm {arm:?}: unknown site {other:?} \
                                 (expected artifact or checkpoint)"
                            ))
                        }
                    }
                }
                other => return Err(format!("unknown fault kind {other:?} in {arm:?}")),
            }
        }
        Ok(plan)
    }

    /// The plan named by `T1000_INJECT`, or the empty plan when unset.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULT_ENV) {
            Ok(v) if !v.trim().is_empty() => FaultPlan::parse(&v),
            _ => Ok(FaultPlan::none()),
        }
    }

    /// Whether cell `idx` should panic on `attempt` (1-based).
    pub fn cell_panics(&self, idx: usize, attempt: u32) -> bool {
        self.cell_panics.get(&idx).is_some_and(|&k| attempt <= k)
    }

    /// Whether cell `idx`'s simulation should abort the process.
    pub fn cell_aborts(&self, idx: usize) -> bool {
        self.aborts.contains(&idx)
    }

    /// This plan with every `abort@N` arm removed — what a shard
    /// coordinator hands the replacement worker after a crash, so the
    /// retried cells can complete.
    pub fn without_aborts(&self) -> FaultPlan {
        FaultPlan {
            aborts: HashSet::new(),
            ..self.clone()
        }
    }

    /// Re-indexes every per-cell arm through `map` (global plan index →
    /// local sub-plan index), dropping arms that map to `None`. A shard
    /// coordinator interprets `--inject` indices against the *full* plan,
    /// so each worker receives only its own cells' arms, rewritten to the
    /// worker's local cell numbering. I/O arms carry no cell index and
    /// pass through unchanged (they are inert in workers, which write
    /// neither artifacts nor checkpoints). Network arms are *dropped*:
    /// they are keyed by shard and belong to the coordinator's transport
    /// layer, never to a worker.
    pub fn remap_cells(&self, map: impl Fn(usize) -> Option<usize>) -> FaultPlan {
        FaultPlan {
            cell_panics: self
                .cell_panics
                .iter()
                .filter_map(|(&cell, &k)| Some((map(cell)?, k)))
                .collect(),
            aborts: self.aborts.iter().filter_map(|&c| map(c)).collect(),
            pfu_faults: self.pfu_faults.iter().filter_map(|&c| map(c)).collect(),
            net_connect: HashMap::new(),
            net_drops: HashSet::new(),
            net_stalls: HashSet::new(),
            artifact_fails: self.artifact_fails,
            checkpoint_fails: self.checkpoint_fails,
        }
    }

    /// Whether cell `idx`'s PFU configuration loads are injected to fail.
    pub fn pfu_fault(&self, idx: usize) -> bool {
        self.pfu_faults.contains(&idx)
    }

    /// Whether connect `attempt` (1-based) to `shard`'s remote endpoint
    /// is injected to be refused.
    pub fn net_connect_fails(&self, shard: usize, attempt: u32) -> bool {
        self.net_connect.get(&shard).is_some_and(|&k| attempt <= k)
    }

    /// Whether `shard`'s remote stream is injected to drop mid-stream.
    pub fn net_drop(&self, shard: usize) -> bool {
        self.net_drops.contains(&shard)
    }

    /// Whether `shard`'s remote stream is injected to stall.
    pub fn net_stall(&self, shard: usize) -> bool {
        self.net_stalls.contains(&shard)
    }

    /// Whether any network arm (`net@`/`netdrop@`/`netstall@`) is armed.
    pub fn has_net_arms(&self) -> bool {
        !self.net_connect.is_empty() || !self.net_drops.is_empty() || !self.net_stalls.is_empty()
    }

    /// Renders the plan back into the `--inject` grammar (arms in a
    /// canonical sorted order), so a coordinator can forward its plan —
    /// or a crash-stripped variant of it — to worker processes verbatim.
    /// `parse(render(p))` reproduces `p` exactly.
    pub fn render(&self) -> String {
        let mut arms: Vec<String> = Vec::new();
        let mut panics: Vec<(&usize, &u32)> = self.cell_panics.iter().collect();
        panics.sort();
        for (cell, count) in panics {
            if *count == u32::MAX {
                arms.push(format!("panic@{cell}"));
            } else {
                arms.push(format!("panic@{cell}x{count}"));
            }
        }
        let mut aborts: Vec<&usize> = self.aborts.iter().collect();
        aborts.sort();
        for cell in aborts {
            arms.push(format!("abort@{cell}"));
        }
        let mut pfus: Vec<&usize> = self.pfu_faults.iter().collect();
        pfus.sort();
        for cell in pfus {
            arms.push(format!("pfu@{cell}"));
        }
        let mut nets: Vec<(&usize, &u32)> = self.net_connect.iter().collect();
        nets.sort();
        for (shard, count) in nets {
            if *count == u32::MAX {
                arms.push(format!("net@{shard}"));
            } else {
                arms.push(format!("net@{shard}x{count}"));
            }
        }
        let mut drops: Vec<&usize> = self.net_drops.iter().collect();
        drops.sort();
        for shard in drops {
            arms.push(format!("netdrop@{shard}"));
        }
        let mut stalls: Vec<&usize> = self.net_stalls.iter().collect();
        stalls.sort();
        for shard in stalls {
            arms.push(format!("netstall@{shard}"));
        }
        if self.artifact_fails > 0 {
            arms.push(format!("io@artifactx{}", self.artifact_fails));
        }
        if self.checkpoint_fails > 0 {
            arms.push(format!("io@checkpointx{}", self.checkpoint_fails));
        }
        arms.join(",")
    }

    /// Whether artifact-write `attempt` (1-based) should fail.
    pub fn artifact_write_fails(&self, attempt: u32) -> bool {
        attempt <= self.artifact_fails
    }

    /// Whether checkpoint-write `attempt` (1-based) should fail.
    pub fn checkpoint_write_fails(&self, attempt: u32) -> bool {
        attempt <= self.checkpoint_fails
    }
}

/// Parses `N` or `NxK` into `(N, Some(K))`/`(N, None)`.
fn parse_indexed(s: &str) -> Option<(usize, Option<u32>)> {
    match s.split_once('x') {
        Some((n, k)) => Some((n.parse().ok()?, Some(k.parse().ok()?))),
        None => Some((s.parse().ok()?, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.cell_panics(0, 1));
        assert!(!p.pfu_fault(0));
        assert!(!p.artifact_write_fails(1));
        assert!(!p.checkpoint_write_fails(1));
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn panic_arms_select_cell_and_attempts() {
        let p = FaultPlan::parse("panic@3").unwrap();
        assert!(p.cell_panics(3, 1) && p.cell_panics(3, 99));
        assert!(!p.cell_panics(2, 1));

        let p = FaultPlan::parse("panic@4x2").unwrap();
        assert!(p.cell_panics(4, 1) && p.cell_panics(4, 2));
        assert!(!p.cell_panics(4, 3), "attempt 3 must succeed");
    }

    #[test]
    fn pfu_and_io_arms_parse() {
        let p = FaultPlan::parse("pfu@6,io@artifact,io@checkpointx1").unwrap();
        assert!(p.pfu_fault(6) && !p.pfu_fault(5));
        assert!(p.artifact_write_fails(2) && !p.artifact_write_fails(3));
        assert!(p.checkpoint_write_fails(1) && !p.checkpoint_write_fails(2));
    }

    #[test]
    fn combined_plan_with_spaces() {
        let p = FaultPlan::parse(" panic@1x1 , pfu@2 ").unwrap();
        assert!(p.cell_panics(1, 1) && !p.cell_panics(1, 2));
        assert!(p.pfu_fault(2));
    }

    #[test]
    fn malformed_arms_are_rejected() {
        for bad in [
            "panic",
            "panic@x",
            "panic@1x",
            "pfu@",
            "abort@",
            "abort@x2",
            "io@disk",
            "io@artifactxq",
            "boom@1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn abort_arms_parse_and_strip() {
        let p = FaultPlan::parse("abort@2,panic@1x1,abort@5").unwrap();
        assert!(p.cell_aborts(2) && p.cell_aborts(5) && !p.cell_aborts(0));
        assert!(!p.is_empty());
        let stripped = p.without_aborts();
        assert!(!stripped.cell_aborts(2) && !stripped.cell_aborts(5));
        assert!(stripped.cell_panics(1, 1), "other arms survive the strip");
    }

    #[test]
    fn remap_rewrites_cell_arms_and_drops_foreign_ones() {
        let p = FaultPlan::parse("panic@0x2,panic@5,abort@3,pfu@5,io@artifactx1").unwrap();
        // A worker owning global cells {3, 5} sees them as local {0, 1}.
        let local = p.remap_cells(|g| match g {
            3 => Some(0),
            5 => Some(1),
            _ => None,
        });
        assert_eq!(local.render(), "panic@1,abort@0,pfu@1,io@artifactx1");
        assert!(local.cell_panics(1, 99) && !local.cell_panics(0, 1));
    }

    #[test]
    fn network_arms_parse_and_key_by_shard() {
        let p = FaultPlan::parse("net@0x2,net@3,netdrop@1,netstall@2").unwrap();
        assert!(p.has_net_arms() && !p.is_empty());
        assert!(p.net_connect_fails(0, 1) && p.net_connect_fails(0, 2));
        assert!(!p.net_connect_fails(0, 3), "attempt 3 must connect");
        assert!(p.net_connect_fails(3, 1) && p.net_connect_fails(3, 999));
        assert!(!p.net_connect_fails(1, 1));
        assert!(p.net_drop(1) && !p.net_drop(0));
        assert!(p.net_stall(2) && !p.net_stall(1));
        for bad in ["net@", "net@x2", "net@1x", "netdrop@x", "netstall@"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn remap_drops_network_arms_entirely() {
        // Workers never see net arms: they are coordinator-side, keyed by
        // shard — remapping through *any* cell map must drop them.
        let p = FaultPlan::parse("panic@0x1,net@0,netdrop@0,netstall@1,io@checkpointx1").unwrap();
        let local = p.remap_cells(Some);
        assert!(!local.has_net_arms());
        assert_eq!(local.render(), "panic@0x1,io@checkpointx1");
        // ...but the strip-aborts clone (the coordinator's own retry
        // plan) keeps them.
        assert!(p.without_aborts().has_net_arms());
    }

    #[test]
    fn render_round_trips_the_grammar() {
        for text in [
            "panic@3,panic@4x2,abort@1,pfu@6,io@artifactx1,io@checkpointx2",
            "abort@0",
            "net@0x2,net@1,netdrop@2,netstall@0,panic@1",
            "",
        ] {
            let p = FaultPlan::parse(text).unwrap();
            let rendered = p.render();
            let q = FaultPlan::parse(&rendered).unwrap();
            // Re-rendering is a fixpoint, so parse∘render lost nothing.
            assert_eq!(q.render(), rendered, "{text} → {rendered}");
        }
        // Canonical ordering regardless of input order.
        assert_eq!(
            FaultPlan::parse("pfu@2,abort@1,panic@0").unwrap().render(),
            "panic@0,abort@1,pfu@2"
        );
    }
}
