//! Deterministic fault injection for the experiment engine.
//!
//! A [`FaultPlan`] describes *exactly* which operations fail — no
//! randomness, no wall-clock — so a faulted run is reproducible down to
//! the artifact bytes. Plans are written in a tiny comma-separated
//! grammar, passed via `t1000 bench --inject <plan>` or the
//! `T1000_INJECT` environment variable:
//!
//! | arm | effect |
//! |---|---|
//! | `panic@N` | cell `N` (plan index) panics on **every** attempt |
//! | `panic@NxK` | cell `N` panics on its first `K` attempts only (retry then succeeds) |
//! | `pfu@N` | every PFU configuration load in cell `N` fails → graceful scalar fallback |
//! | `io@artifact` | the first 2 artifact writes fail with a simulated I/O error |
//! | `io@artifactxK` | the first `K` artifact writes fail |
//! | `io@checkpoint` / `io@checkpointxK` | same, for checkpoint flushes |
//!
//! Example: `--inject panic@3,pfu@6,io@artifactx1`.

use std::collections::{HashMap, HashSet};

/// Environment variable holding the default fault plan.
pub const FAULT_ENV: &str = "T1000_INJECT";

/// A deterministic set of injected faults. The empty plan (the default)
/// injects nothing and costs nothing on the hot path.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// cell index → number of leading attempts that panic
    /// (`u32::MAX` = every attempt).
    cell_panics: HashMap<usize, u32>,
    /// Cells whose PFU configuration loads all fail.
    pfu_faults: HashSet<usize>,
    /// Leading artifact-write attempts that fail.
    artifact_fails: u32,
    /// Leading checkpoint-write attempts that fail.
    checkpoint_fails: u32,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether any fault is armed.
    pub fn is_empty(&self) -> bool {
        self.cell_panics.is_empty()
            && self.pfu_faults.is_empty()
            && self.artifact_fails == 0
            && self.checkpoint_fails == 0
    }

    /// Parses the `--inject` grammar (see the module docs).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for arm in text.split(',').map(str::trim).filter(|a| !a.is_empty()) {
            let (kind, target) = arm
                .split_once('@')
                .ok_or_else(|| format!("bad fault arm {arm:?}: expected kind@target"))?;
            match kind {
                "panic" => {
                    let (cell, count) = parse_indexed(target)
                        .ok_or_else(|| format!("bad panic arm {arm:?}: expected panic@N[xK]"))?;
                    plan.cell_panics.insert(cell, count.unwrap_or(u32::MAX));
                }
                "pfu" => {
                    let cell: usize = target
                        .parse()
                        .map_err(|_| format!("bad pfu arm {arm:?}: expected pfu@N"))?;
                    plan.pfu_faults.insert(cell);
                }
                "io" => {
                    let (site, count) = match target.split_once('x') {
                        Some((site, k)) => {
                            let k: u32 = k
                                .parse()
                                .map_err(|_| format!("bad io arm {arm:?}: expected io@SITExK"))?;
                            (site, k)
                        }
                        None => (target, 2),
                    };
                    match site {
                        "artifact" => plan.artifact_fails = count,
                        "checkpoint" => plan.checkpoint_fails = count,
                        other => {
                            return Err(format!(
                                "bad io arm {arm:?}: unknown site {other:?} \
                                 (expected artifact or checkpoint)"
                            ))
                        }
                    }
                }
                other => return Err(format!("unknown fault kind {other:?} in {arm:?}")),
            }
        }
        Ok(plan)
    }

    /// The plan named by `T1000_INJECT`, or the empty plan when unset.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULT_ENV) {
            Ok(v) if !v.trim().is_empty() => FaultPlan::parse(&v),
            _ => Ok(FaultPlan::none()),
        }
    }

    /// Whether cell `idx` should panic on `attempt` (1-based).
    pub fn cell_panics(&self, idx: usize, attempt: u32) -> bool {
        self.cell_panics.get(&idx).is_some_and(|&k| attempt <= k)
    }

    /// Whether cell `idx`'s PFU configuration loads are injected to fail.
    pub fn pfu_fault(&self, idx: usize) -> bool {
        self.pfu_faults.contains(&idx)
    }

    /// Whether artifact-write `attempt` (1-based) should fail.
    pub fn artifact_write_fails(&self, attempt: u32) -> bool {
        attempt <= self.artifact_fails
    }

    /// Whether checkpoint-write `attempt` (1-based) should fail.
    pub fn checkpoint_write_fails(&self, attempt: u32) -> bool {
        attempt <= self.checkpoint_fails
    }
}

/// Parses `N` or `NxK` into `(N, Some(K))`/`(N, None)`.
fn parse_indexed(s: &str) -> Option<(usize, Option<u32>)> {
    match s.split_once('x') {
        Some((n, k)) => Some((n.parse().ok()?, Some(k.parse().ok()?))),
        None => Some((s.parse().ok()?, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.cell_panics(0, 1));
        assert!(!p.pfu_fault(0));
        assert!(!p.artifact_write_fails(1));
        assert!(!p.checkpoint_write_fails(1));
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn panic_arms_select_cell_and_attempts() {
        let p = FaultPlan::parse("panic@3").unwrap();
        assert!(p.cell_panics(3, 1) && p.cell_panics(3, 99));
        assert!(!p.cell_panics(2, 1));

        let p = FaultPlan::parse("panic@4x2").unwrap();
        assert!(p.cell_panics(4, 1) && p.cell_panics(4, 2));
        assert!(!p.cell_panics(4, 3), "attempt 3 must succeed");
    }

    #[test]
    fn pfu_and_io_arms_parse() {
        let p = FaultPlan::parse("pfu@6,io@artifact,io@checkpointx1").unwrap();
        assert!(p.pfu_fault(6) && !p.pfu_fault(5));
        assert!(p.artifact_write_fails(2) && !p.artifact_write_fails(3));
        assert!(p.checkpoint_write_fails(1) && !p.checkpoint_write_fails(2));
    }

    #[test]
    fn combined_plan_with_spaces() {
        let p = FaultPlan::parse(" panic@1x1 , pfu@2 ").unwrap();
        assert!(p.cell_panics(1, 1) && !p.cell_panics(1, 2));
        assert!(p.pfu_fault(2));
    }

    #[test]
    fn malformed_arms_are_rejected() {
        for bad in [
            "panic",
            "panic@x",
            "panic@1x",
            "pfu@",
            "io@disk",
            "io@artifactxq",
            "boom@1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
