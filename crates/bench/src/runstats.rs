//! Per-run observability artifacts: the `t1000 run --stats-json`
//! document, per-loop stall roll-ups, the JSON-lines event trace writer,
//! and the `t1000 report` attribution table.
//!
//! Everything here renders data collected by `t1000_cpu::observe` through
//! the hand-rolled [`Json`] type, so artifacts stay deterministic and
//! offline-friendly. The full schema contract lives in `docs/METRICS.md`;
//! [`validate_attribution`] is the machine-checked half of that contract
//! and is reused by the `BENCH_results.json` schema-v2 validator.

use crate::json::Json;
use std::io::Write;
use t1000_cpu::{
    AttrCollector, CycleAttribution, CycleClass, PcStalls, RunResult, TraceEvent, TraceSink,
    NUM_STALL_CAUSES, STALL_CAUSES,
};
use t1000_isa::Program;
use t1000_profile::{loop_profiles, natural_loops, Cfg, Dominators, ExecProfile};

/// `schema` field of the run-stats document.
pub const RUN_STATS_SCHEMA: &str = "t1000.run-stats";
/// Version of the run-stats document layout.
pub const RUN_STATS_VERSION: u64 = 1;

fn hex64(v: u64) -> Json {
    // 64-bit checksums travel as hex strings: a JSON number is only exact
    // up to 2^53 in common readers.
    Json::Str(format!("0x{v:016x}"))
}

// ---------------------------------------------------------------------
// Attribution JSON
// ---------------------------------------------------------------------

fn stalls_json(stalls: &[u64; NUM_STALL_CAUSES]) -> Json {
    Json::obj(
        STALL_CAUSES
            .iter()
            .map(|c| (c.key(), Json::UInt(stalls[c.index()])))
            .collect(),
    )
}

/// Renders a [`CycleAttribution`] as the `attribution` object used by
/// both the run-stats document and schema-v2 `BENCH_results.json` cells.
/// All ten taxonomy keys are always present, in canonical order.
pub fn attr_json(attr: &CycleAttribution) -> Json {
    Json::obj(vec![
        ("total_cycles", Json::UInt(attr.total_cycles)),
        ("busy_cycles", Json::UInt(attr.busy_cycles)),
        ("commit_bound_cycles", Json::UInt(attr.commit_bound_cycles)),
        ("stalls", stalls_json(&attr.stalls)),
    ])
}

/// Parses and checks an `attribution` object: every counter a real
/// unsigned integer (no NaN, no floats, no overflow), the stall taxonomy
/// closed (exactly the ten canonical keys), and the accounting invariant
/// `busy_cycles + Σ stalls == total_cycles` intact. When `expected_cycles`
/// is given, `total_cycles` must equal it (ties the attribution to the
/// cell's own cycle counter).
pub fn validate_attribution(j: &Json, expected_cycles: Option<u64>) -> Result<(), String> {
    let field = |key: &str| -> Result<u64, String> {
        j.get(key)
            .ok_or_else(|| format!("attribution missing {key}"))?
            .as_u64()
            .ok_or_else(|| format!("attribution {key} is not a u64"))
    };
    let total = field("total_cycles")?;
    let busy = field("busy_cycles")?;
    let commit_bound = field("commit_bound_cycles")?;
    let stalls = match j.get("stalls") {
        Some(Json::Obj(pairs)) => pairs,
        _ => return Err("attribution missing stalls object".to_string()),
    };
    if stalls.len() != NUM_STALL_CAUSES {
        return Err(format!(
            "stall taxonomy not closed: {} keys (expected {NUM_STALL_CAUSES})",
            stalls.len()
        ));
    }
    let mut sum = busy;
    for (i, (key, value)) in stalls.iter().enumerate() {
        if key != STALL_CAUSES[i].key() {
            return Err(format!(
                "stall key {i} is {key:?} (expected {:?})",
                STALL_CAUSES[i].key()
            ));
        }
        let v = value
            .as_u64()
            .ok_or_else(|| format!("stall {key} is not a u64"))?;
        sum = sum
            .checked_add(v)
            .ok_or_else(|| format!("stall counters overflow at {key}"))?;
    }
    if sum != total {
        return Err(format!(
            "attribution does not partition the run: busy + stalls = {sum}, total = {total}"
        ));
    }
    if commit_bound > busy {
        return Err(format!(
            "commit_bound_cycles {commit_bound} exceeds busy_cycles {busy}"
        ));
    }
    if let Some(cycles) = expected_cycles {
        if total != cycles {
            return Err(format!(
                "attribution total_cycles {total} != cell cycles {cycles}"
            ));
        }
    }
    Ok(())
}

/// Parses an `attribution` object back into a [`CycleAttribution`],
/// running [`validate_attribution`] first so a successfully parsed value
/// always satisfies the partition invariant.
pub fn attr_from_json(j: &Json, expected_cycles: Option<u64>) -> Result<CycleAttribution, String> {
    validate_attribution(j, expected_cycles)?;
    let field = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("attribution missing {key}"))
    };
    let mut attr = CycleAttribution {
        total_cycles: field("total_cycles")?,
        busy_cycles: field("busy_cycles")?,
        commit_bound_cycles: field("commit_bound_cycles")?,
        stalls: [0; NUM_STALL_CAUSES],
    };
    for cause in STALL_CAUSES {
        attr.stalls[cause.index()] = j
            .get("stalls")
            .and_then(|s| s.get(cause.key()))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("attribution missing stall {}", cause.key()))?;
    }
    Ok(attr)
}

// ---------------------------------------------------------------------
// Per-loop roll-ups
// ---------------------------------------------------------------------

/// Stall cycles rolled up over one natural loop, keyed by the profiler's
/// loop identity (header PC).
#[derive(Clone, Debug)]
pub struct LoopAttr {
    /// Address of the loop header block.
    pub header_pc: u32,
    /// Header executions (≈ iterations) from the profiling run.
    pub iterations: u64,
    /// Dynamic instructions inside the body, from the profiling run.
    pub dyn_instrs: u64,
    /// Stall cycles charged to PCs inside the loop body, by cause.
    pub stalls: [u64; NUM_STALL_CAUSES],
}

impl LoopAttr {
    /// Total stall cycles charged to this loop.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Rolls per-PC stall counters up to natural loops. Each PC is charged to
/// the *innermost* loop containing it; PCs outside every loop are
/// dropped (they remain visible in the aggregate attribution). Returns
/// loops sorted by total stall cycles, hottest first.
pub fn loop_attrs(
    program: &Program,
    cfg: &Cfg,
    profile: &ExecProfile,
    per_pc: &PcStalls,
) -> Vec<LoopAttr> {
    struct Shape {
        header_pc: u32,
        /// Static instructions in the body — the innermost-loop tiebreak.
        size: usize,
        /// Half-open PC ranges of the body's basic blocks.
        ranges: Vec<(u32, u32)>,
    }
    let doms = Dominators::compute(cfg);
    let loops = natural_loops(cfg, &doms);
    let profiles = loop_profiles(program, cfg, profile);
    let shapes: Vec<Shape> = loops
        .iter()
        .map(|l| {
            let ranges: Vec<(u32, u32)> = l
                .blocks
                .iter()
                .map(|&b| (cfg.blocks[b].start, cfg.blocks[b].end))
                .collect();
            let size = ranges.iter().map(|&(s, e)| (e - s) as usize / 4).sum();
            Shape {
                header_pc: cfg.blocks[l.header].start,
                size,
                ranges,
            }
        })
        .collect();
    let mut rollup: Vec<LoopAttr> = shapes
        .iter()
        .map(|shape| {
            let p = profiles.iter().find(|p| p.header_pc == shape.header_pc);
            LoopAttr {
                header_pc: shape.header_pc,
                iterations: p.map_or(0, |p| p.iterations),
                dyn_instrs: p.map_or(0, |p| p.dyn_instrs),
                stalls: [0; NUM_STALL_CAUSES],
            }
        })
        .collect();
    for (&pc, stalls) in per_pc {
        // Innermost = the smallest (fewest static instructions) loop
        // whose body contains the PC.
        let owner = shapes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ranges.iter().any(|&(lo, hi)| pc >= lo && pc < hi))
            .min_by_key(|(_, s)| s.size)
            .map(|(i, _)| i);
        if let Some(i) = owner {
            for (acc, v) in rollup[i].stalls.iter_mut().zip(stalls) {
                *acc += v;
            }
        }
    }
    rollup.retain(|l| l.stall_cycles() > 0);
    rollup.sort_by_key(|l| std::cmp::Reverse(l.stall_cycles()));
    rollup
}

fn loop_json(l: &LoopAttr) -> Json {
    Json::obj(vec![
        ("header_pc", hex64(l.header_pc as u64)),
        ("iterations", Json::UInt(l.iterations)),
        ("dyn_instrs", Json::UInt(l.dyn_instrs)),
        ("stall_cycles", Json::UInt(l.stall_cycles())),
        ("stalls", stalls_json(&l.stalls)),
    ])
}

// ---------------------------------------------------------------------
// The run-stats document
// ---------------------------------------------------------------------

fn cache_json(s: &t1000_mem::CacheStats) -> Json {
    Json::obj(vec![
        ("accesses", Json::UInt(s.accesses)),
        ("hits", Json::UInt(s.hits)),
        ("misses", Json::UInt(s.misses)),
        ("writebacks", Json::UInt(s.writebacks)),
    ])
}

fn tlb_json(s: &t1000_mem::TlbStats) -> Json {
    Json::obj(vec![
        ("accesses", Json::UInt(s.accesses)),
        ("misses", Json::UInt(s.misses)),
    ])
}

/// Builds the `t1000 run --stats-json` document (see `docs/METRICS.md`,
/// "Run-stats schema"). `attr` and `loops` are optional so the document
/// degrades gracefully when attribution was not collected.
pub fn run_stats_json(
    workload: &str,
    run: &RunResult,
    attr: Option<&CycleAttribution>,
    loops: &[LoopAttr],
) -> Json {
    let t = &run.timing;
    let mut fields = vec![
        ("schema", Json::Str(RUN_STATS_SCHEMA.to_string())),
        ("schema_version", Json::UInt(RUN_STATS_VERSION)),
        ("workload", Json::Str(workload.to_string())),
        ("cycles", Json::UInt(t.cycles)),
        ("slots", Json::UInt(t.slots)),
        ("base_instructions", Json::UInt(t.base_instructions)),
        ("base_ipc", Json::Float(t.base_ipc)),
        (
            "pfu",
            Json::obj(vec![
                ("ext_executed", Json::UInt(t.pfu.ext_executed)),
                ("reconfigurations", Json::UInt(t.pfu.reconfigurations)),
                ("conf_hits", Json::UInt(t.pfu.conf_hits)),
            ]),
        ),
        (
            "mem",
            Json::obj(vec![
                ("il1", cache_json(&t.mem.il1)),
                ("dl1", cache_json(&t.mem.dl1)),
                ("ul2", cache_json(&t.mem.ul2)),
                ("itlb", tlb_json(&t.mem.itlb)),
                ("dtlb", tlb_json(&t.mem.dtlb)),
            ]),
        ),
        (
            "branch",
            Json::obj(vec![
                ("branches", Json::UInt(t.branch.branches)),
                ("mispredictions", Json::UInt(t.branch.mispredictions)),
                ("accuracy", Json::Float(t.branch.accuracy())),
            ]),
        ),
        ("fetch_stall_cycles", Json::UInt(t.fetch_stall_cycles)),
        ("checksum", hex64(run.sys.checksum)),
        (
            "exit_code",
            match run.sys.exit_code {
                Some(c) => Json::UInt(c as u64),
                None => Json::Null,
            },
        ),
    ];
    if let Some(attr) = attr {
        fields.push(("attribution", attr_json(attr)));
        fields.push(("loops", Json::Arr(loops.iter().map(loop_json).collect())));
    }
    Json::obj(fields)
}

// ---------------------------------------------------------------------
// Event traces
// ---------------------------------------------------------------------

/// Renders one [`TraceEvent`] as a JSON object (one line of the trace
/// file). The `type` field discriminates; see `docs/METRICS.md`,
/// "Trace-event schema".
pub fn event_json(e: &TraceEvent) -> Json {
    match *e {
        TraceEvent::ConfLoad {
            cycle,
            pc,
            conf,
            evicted,
            ready_at,
        } => Json::obj(vec![
            ("type", Json::Str("conf_load".to_string())),
            ("cycle", Json::UInt(cycle)),
            ("pc", hex64(pc as u64)),
            ("conf", Json::UInt(conf as u64)),
            (
                "evicted",
                match evicted {
                    Some(c) => Json::UInt(c as u64),
                    None => Json::Null,
                },
            ),
            ("ready_at", Json::UInt(ready_at)),
        ]),
        TraceEvent::ConfHit { cycle, pc, conf } => Json::obj(vec![
            ("type", Json::Str("conf_hit".to_string())),
            ("cycle", Json::UInt(cycle)),
            ("pc", hex64(pc as u64)),
            ("conf", Json::UInt(conf as u64)),
        ]),
        TraceEvent::ConfPrefetch {
            cycle,
            conf,
            ready_at,
        } => Json::obj(vec![
            ("type", Json::Str("conf_prefetch".to_string())),
            ("cycle", Json::UInt(cycle)),
            ("conf", Json::UInt(conf as u64)),
            ("ready_at", Json::UInt(ready_at)),
        ]),
        TraceEvent::CacheMiss {
            cycle,
            addr,
            fetch,
            write,
            latency,
        } => Json::obj(vec![
            ("type", Json::Str("cache_miss".to_string())),
            ("cycle", Json::UInt(cycle)),
            ("addr", hex64(addr as u64)),
            ("fetch", Json::Bool(fetch)),
            ("write", Json::Bool(write)),
            ("latency", Json::UInt(latency as u64)),
        ]),
        TraceEvent::BranchRedirect { cycle, pc, penalty } => Json::obj(vec![
            ("type", Json::Str("branch_redirect".to_string())),
            ("cycle", Json::UInt(cycle)),
            ("pc", hex64(pc as u64)),
            ("penalty", Json::UInt(penalty as u64)),
        ]),
    }
}

/// A [`TraceSink`] that writes each pipeline event as one JSON line and
/// accumulates cycle attribution on the side. Write errors are latched
/// and reported by [`TraceWriter::finish`] — the sink API is infallible
/// by design so the pipeline never checks I/O results.
pub struct TraceWriter<W: Write> {
    out: W,
    /// The attribution accumulated alongside the trace.
    pub collector: AttrCollector,
    /// Events successfully written.
    pub events_written: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`; attribution is collected with per-PC counters so one
    /// observed run can feed both the trace and the stall report.
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter {
            out,
            collector: AttrCollector::with_per_pc(),
            events_written: 0,
            error: None,
        }
    }

    /// Flushes and returns the underlying writer, or the first write
    /// error the trace hit.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    const EVENTS: bool = true;
    const ATTR: bool = true;

    fn event(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event_json(&event).to_string_compact();
        match writeln!(self.out, "{line}") {
            Ok(()) => self.events_written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn cycle(&mut self, class: CycleClass) {
        self.collector.cycle(class);
    }
}

// ---------------------------------------------------------------------
// The attribution report (t1000 report / t1000 run --attr)
// ---------------------------------------------------------------------

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Renders the cycle-attribution table for `t1000 report` and
/// `t1000 run --attr`: one row per taxonomy bucket plus busy cycles,
/// each with its share of the run.
pub fn render_attr_table(attr: &CycleAttribution) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let o = &mut out;
    let total = attr.total_cycles;
    let _ = writeln!(o, "cycle attribution ({total} cycles)");
    let _ = writeln!(o, "  {:<16} {:>12} {:>7}", "bucket", "cycles", "share");
    let _ = writeln!(
        o,
        "  {:<16} {:>12} {:>6.1}%",
        "busy",
        attr.busy_cycles,
        pct(attr.busy_cycles, total)
    );
    let _ = writeln!(
        o,
        "  {:<16} {:>12} {:>6.1}%   (subset of busy)",
        "  commit-bound",
        attr.commit_bound_cycles,
        pct(attr.commit_bound_cycles, total)
    );
    for cause in STALL_CAUSES {
        let v = attr.stall(cause);
        if v == 0 {
            continue;
        }
        let _ = writeln!(o, "  {:<16} {:>12} {:>6.1}%", cause.key(), v, pct(v, total));
    }
    let _ = writeln!(
        o,
        "  {:<16} {:>12} {:>6.1}%",
        "total stalls",
        attr.stall_cycles(),
        pct(attr.stall_cycles(), total)
    );
    out
}

/// Renders the per-loop roll-up rows appended by `--attr` when per-PC
/// counters were collected. Shows at most `limit` loops.
pub fn render_loop_table(loops: &[LoopAttr], total_cycles: u64, limit: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let o = &mut out;
    if loops.is_empty() {
        return out;
    }
    let _ = writeln!(o, "hottest loops by stall cycles");
    let _ = writeln!(
        o,
        "  {:<12} {:>10} {:>12} {:>7}  dominant cause",
        "header", "iters", "stalls", "share"
    );
    for l in loops.iter().take(limit) {
        let dominant = STALL_CAUSES
            .iter()
            .max_by_key(|c| l.stalls[c.index()])
            .map(|c| c.key())
            .unwrap_or("-");
        let _ = writeln!(
            o,
            "  {:<12} {:>10} {:>12} {:>6.1}%  {}",
            format!("0x{:08x}", l.header_pc),
            l.iterations,
            l.stall_cycles(),
            pct(l.stall_cycles(), total_cycles),
            dominant
        );
    }
    out
}

/// Renders an attribution report from a parsed run-stats document —
/// the `t1000 report <stats.json>` path. Validates the attribution
/// before rendering.
pub fn report_from_stats(doc: &Json) -> Result<String, String> {
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(RUN_STATS_SCHEMA) {
        return Err(format!(
            "not a run-stats document (schema {schema:?}, expected {RUN_STATS_SCHEMA:?})"
        ));
    }
    let cycles = doc
        .get("cycles")
        .and_then(Json::as_u64)
        .ok_or("missing cycles")?;
    let attr_doc = doc
        .get("attribution")
        .ok_or("document has no attribution (run with --attr or --stats-json)")?;
    let attr = attr_from_json(attr_doc, Some(cycles))?;
    let workload = doc.get("workload").and_then(Json::as_str).unwrap_or("?");
    let mut out = format!("workload: {workload}\n");
    out.push_str(&render_attr_table(&attr));
    if let Some(loops) = doc.get("loops").and_then(Json::as_array) {
        let parsed: Vec<LoopAttr> = loops
            .iter()
            .filter_map(|l| {
                let header = l.get("header_pc").and_then(Json::as_str)?;
                let header_pc = u32::from_str_radix(header.strip_prefix("0x")?, 16).ok()?;
                let mut stalls = [0u64; NUM_STALL_CAUSES];
                for cause in STALL_CAUSES {
                    stalls[cause.index()] = l
                        .get("stalls")
                        .and_then(|s| s.get(cause.key()))
                        .and_then(Json::as_u64)?;
                }
                Some(LoopAttr {
                    header_pc,
                    iterations: l.get("iterations").and_then(Json::as_u64)?,
                    dyn_instrs: l.get("dyn_instrs").and_then(Json::as_u64)?,
                    stalls,
                })
            })
            .collect();
        out.push_str(&render_loop_table(&parsed, cycles, 8));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t1000_core::Session;
    use t1000_cpu::CpuConfig;

    const KERNEL: &str = "
main:
    li  $s0, 400
    li  $t0, 3
loop:
    mult $t0, $t0
    mflo $t1
    andi $t0, $t1, 255
    addiu $s0, $s0, -1
    bgtz $s0, loop
    move $a0, $t0
    li   $v0, 30
    syscall
    li   $v0, 10
    syscall
";

    fn observed_run() -> (Session, RunResult, AttrCollector) {
        let session = Session::from_asm(KERNEL).unwrap();
        let mut sink = AttrCollector::with_per_pc();
        let run = session
            .run_baseline_observed(CpuConfig::baseline(), &mut sink)
            .unwrap();
        (session, run, sink)
    }

    #[test]
    fn attr_json_round_trips_and_validates() {
        let (_, run, sink) = observed_run();
        let j = attr_json(&sink.attr);
        validate_attribution(&j, Some(run.timing.cycles)).unwrap();
        let text = j.to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        validate_attribution(&parsed, Some(run.timing.cycles)).unwrap();
    }

    #[test]
    fn validator_rejects_broken_attributions() {
        let (_, run, sink) = observed_run();
        let good = attr_json(&sink.attr);
        // Broken invariant.
        let mut attr = sink.attr.clone();
        attr.busy_cycles += 1;
        assert!(validate_attribution(&attr_json(&attr), None)
            .unwrap_err()
            .contains("partition"));
        // Wrong total.
        assert!(validate_attribution(&good, Some(run.timing.cycles + 1)).is_err());
        // Open taxonomy: an extra key must be rejected.
        let Json::Obj(mut pairs) = good.clone() else {
            unreachable!()
        };
        for (k, v) in &mut pairs {
            if k == "stalls" {
                let Json::Obj(stall_pairs) = v else {
                    unreachable!()
                };
                stall_pairs.push(("mystery".to_string(), Json::UInt(0)));
            }
        }
        assert!(validate_attribution(&Json::Obj(pairs), None)
            .unwrap_err()
            .contains("taxonomy"));
        // A float where a counter belongs must be rejected.
        let text = good.to_string_compact().replacen(
            &format!("\"busy_cycles\":{}", sink.attr.busy_cycles),
            "\"busy_cycles\":1.5",
            1,
        );
        let parsed = Json::parse(&text).unwrap();
        assert!(validate_attribution(&parsed, None).is_err());
    }

    #[test]
    fn run_stats_document_is_complete_and_parses() {
        let (session, run, sink) = observed_run();
        let analysis = session.analysis();
        let loops = loop_attrs(
            session.program(),
            &analysis.cfg,
            &analysis.profile,
            sink.per_pc().unwrap(),
        );
        let doc = run_stats_json("kernel", &run, Some(&sink.attr), &loops);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(RUN_STATS_SCHEMA)
        );
        assert_eq!(
            parsed.get("cycles").and_then(Json::as_u64),
            Some(run.timing.cycles)
        );
        for key in [
            "slots",
            "base_instructions",
            "base_ipc",
            "pfu",
            "mem",
            "branch",
            "fetch_stall_cycles",
            "checksum",
            "exit_code",
            "attribution",
            "loops",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        validate_attribution(parsed.get("attribution").unwrap(), Some(run.timing.cycles)).unwrap();
        // The report renders from the parsed document.
        let report = report_from_stats(&parsed).unwrap();
        assert!(report.contains("cycle attribution"));
        assert!(report.contains("busy"));
    }

    #[test]
    fn loop_rollup_finds_the_hot_loop() {
        let (session, run, sink) = observed_run();
        let analysis = session.analysis();
        let loops = loop_attrs(
            session.program(),
            &analysis.cfg,
            &analysis.profile,
            sink.per_pc().unwrap(),
        );
        assert!(!loops.is_empty(), "the kernel has one hot loop");
        let hot = &loops[0];
        assert_eq!(hot.header_pc, session.program().symbol("loop").unwrap());
        assert!(hot.iterations >= 399);
        assert!(
            hot.stall_cycles() > run.timing.cycles / 4,
            "the multiply chain stalls most of the run"
        );
        // Roll-ups never exceed what the aggregate saw.
        let rolled: u64 = loops.iter().map(LoopAttr::stall_cycles).sum();
        assert!(rolled <= sink.attr.stall_cycles());
    }

    #[test]
    fn trace_writer_emits_json_lines_and_collects_attribution() {
        let session = Session::from_asm(KERNEL).unwrap();
        let mut writer = TraceWriter::new(Vec::new());
        let run = session
            .run_baseline_observed(CpuConfig::baseline(), &mut writer)
            .unwrap();
        assert_eq!(writer.collector.attr.total_cycles, run.timing.cycles);
        assert!(writer.collector.attr.checks_out());
        assert!(writer.events_written > 0, "cold caches must emit misses");
        let events_written = writer.events_written;
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, events_written);
        for line in lines {
            let e = Json::parse(line).unwrap();
            let ty = e.get("type").and_then(Json::as_str).unwrap();
            assert!(
                ["conf_load", "conf_hit", "cache_miss", "branch_redirect"].contains(&ty),
                "unknown event type {ty}"
            );
            assert!(e.get("cycle").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn trace_writer_latches_write_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(Broken);
        w.event(TraceEvent::ConfHit {
            cycle: 1,
            pc: 0x40_0000,
            conf: 0,
        });
        assert_eq!(w.events_written, 0);
        assert!(w.finish().is_err());
    }
}
