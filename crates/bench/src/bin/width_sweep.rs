//! Ablation — machine issue width.
//!
//! §7 argues that "the impact of PFUs on a superscalar processor's
//! performance is different from that on a simple processor" — T1000's
//! out-of-order issue already tolerates some dependent-chain latency.
//! This sweep runs the selective experiment on 1-, 2-, 4- and 8-wide
//! machines: PFU speedups are largest on narrow machines (where fused
//! slots relieve fetch bandwidth) but remain substantial at 4-wide.

use t1000_bench::{prepare_all, scale_from_env, Timer};
use t1000_core::SelectConfig;
use t1000_cpu::CpuConfig;

const WIDTHS: [u32; 4] = [1, 2, 4, 8];

fn width_cfg(base: CpuConfig, w: u32) -> CpuConfig {
    let mut c = base;
    c.fetch_width = w;
    c.dispatch_width = w;
    c.issue_width = w;
    c.commit_width = w;
    c.int_alus = w.max(2);
    c
}

fn main() {
    let _t = Timer::start("issue-width sweep");
    let prepared = prepare_all(scale_from_env());

    println!("# Issue-width ablation: selective, 2 PFUs, 10-cy reconfig");
    print!("{:>10}", "bench");
    for w in WIDTHS {
        print!("  {w:>5}-wide");
    }
    println!("  (PFU speedup at that width)");
    for p in &prepared {
        let sel = p
            .session
            .selective(&SelectConfig { pfus: Some(2), gain_threshold: 0.005 });
        let mut row = format!("{:>10}", p.name);
        for w in WIDTHS {
            let base = p.session.run_baseline(width_cfg(CpuConfig::baseline(), w)).unwrap();
            let t1000 = p
                .session
                .run_with(&sel, width_cfg(CpuConfig::with_pfus(2).reconfig(10), w))
                .unwrap();
            assert_eq!(t1000.sys, base.sys);
            row.push_str(&format!(
                "  {:>9.3}",
                base.timing.cycles as f64 / t1000.timing.cycles as f64
            ));
        }
        println!("{row}");
    }
}
