//! Ablation — machine issue width.
//!
//! §7 argues that "the impact of PFUs on a superscalar processor's
//! performance is different from that on a simple processor" — T1000's
//! out-of-order issue already tolerates some dependent-chain latency.
//! This sweep runs the selective experiment on 1-, 2-, 4- and 8-wide
//! machines: PFU speedups are largest on narrow machines (where fused
//! slots relieve fetch bandwidth) but remain substantial at 4-wide.

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};

const WIDTHS: [u32; 4] = [1, 2, 4, 8];

fn cell(w: &'static str, width: u32) -> Cell {
    let machine = MachineSpec {
        issue_width: Some(width),
        ..MachineSpec::with_pfus(2, 10)
    };
    Cell::new(w, SelectionSpec::selective_std(Some(2)), machine)
}

fn main() {
    let _t = Timer::start("issue-width sweep");
    // Baselines at each width are derived by the engine (a narrow T1000
    // is compared against an equally narrow superscalar).
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        for width in WIDTHS {
            plan.push(cell(w, width));
        }
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("width_sweep");

    println!("# Issue-width ablation: selective, 2 PFUs, 10-cy reconfig");
    print!("{:>10}", "bench");
    for w in WIDTHS {
        print!("  {w:>5}-wide");
    }
    println!("  (PFU speedup at that width)");
    for info in &run.workloads {
        let mut row = format!("{:>10}", info.name);
        for width in WIDTHS {
            row.push_str(&format!(
                "  {:>9.3}",
                run.speedup(cell(info.name, width)).expect("cell")
            ));
        }
        println!("{row}");
    }
}
