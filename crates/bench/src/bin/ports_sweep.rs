//! Ablation — the PFU input-port budget.
//!
//! The paper limits sequences to "at most two input registers and ... one
//! output" because extra PFU inputs cost register-file ports (§1, §4).
//! This sweep relaxes the limit to show what that constraint costs:
//! 3- and 4-input PFUs admit longer sequences and higher speedups — the
//! performance the architect pays ports for.

use t1000_bench::{run_verified, scale_from_env, speedup, Timer};
use t1000_core::{ExtractConfig, SelectConfig, Session};
use t1000_cpu::CpuConfig;

const PORTS: [usize; 3] = [2, 3, 4];

fn main() {
    let _t = Timer::start("input-port sweep");
    let workloads = t1000_workloads::all(scale_from_env());

    println!("# Input-port ablation, selective algorithm, 4 PFUs");
    print!("{:>10}", "bench");
    for p in PORTS {
        print!("  {p:>6}-in");
    }
    println!("  (speedup over baseline)");

    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move || {
                    let mut cells = Vec::new();
                    for ports in PORTS {
                        let program = w.program().unwrap();
                        let extract = ExtractConfig { max_inputs: ports, ..Default::default() };
                        let session = Session::with_extract(program, extract).unwrap();
                        let baseline = session.run_baseline(CpuConfig::baseline()).unwrap();
                        let sel = session
                            .selective(&SelectConfig { pfus: Some(4), gain_threshold: 0.005 });
                        let p = t1000_bench::Prepared { name: w.name, session, baseline };
                        let run = run_verified(&p, &sel, CpuConfig::with_pfus(4).reconfig(10));
                        cells.push(speedup(&p, &run));
                    }
                    (w.name, cells)
                })
            })
            .collect();
        for h in handles {
            let (name, cells) = h.join().unwrap();
            let mut row = format!("{name:>10}");
            for c in cells {
                row.push_str(&format!("  {c:>8.3}"));
            }
            println!("{row}");
        }
    });
}
