//! Ablation — the PFU input-port budget.
//!
//! The paper limits sequences to "at most two input registers and ... one
//! output" because extra PFU inputs cost register-file ports (§1, §4).
//! This sweep relaxes the limit to show what that constraint costs:
//! 3- and 4-input PFUs admit longer sequences and higher speedups — the
//! performance the architect pays ports for.

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};
use t1000_core::ExtractConfig;

const PORTS: [usize; 3] = [2, 3, 4];

fn cell(w: &'static str, ports: usize) -> Cell {
    Cell {
        workload: w,
        extract: ExtractConfig {
            max_inputs: ports,
            ..Default::default()
        },
        selection: SelectionSpec::selective_std(Some(4)),
        machine: MachineSpec::with_pfus(4, 10),
    }
}

fn main() {
    let _t = Timer::start("input-port sweep");
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        for ports in PORTS {
            plan.push(cell(w, ports));
        }
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("ports_sweep");

    println!("# Input-port ablation, selective algorithm, 4 PFUs");
    print!("{:>10}", "bench");
    for p in PORTS {
        print!("  {p:>6}-in");
    }
    println!("  (speedup over baseline)");
    for info in &run.workloads {
        let mut row = format!("{:>10}", info.name);
        for ports in PORTS {
            row.push_str(&format!(
                "  {:>8.3}",
                run.speedup(cell(info.name, ports)).expect("cell")
            ));
        }
        println!("{row}");
    }
}
