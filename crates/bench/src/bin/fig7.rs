//! Figure 7 — distribution of hardware requirements (4-LUT counts) for
//! the extended instructions extracted from the 8 benchmarks by the
//! selective algorithm.
//!
//! The paper reports that "quite a few of the extended instructions need
//! very little hardware" thanks to narrow-bitwidth profiling, with the
//! most area-intensive instruction at 105 LUTs — comfortably inside a
//! 150-LUT PFU.

use t1000_bench::plan::{Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};
use t1000_core::ExtractConfig;

fn main() {
    let _t = Timer::start("Fig. 7 (hardware cost distribution)");
    // Fig. 7 analyses the selective algorithm's selections (4 PFUs); no
    // fused simulation is needed.
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        plan.push_selection(
            w,
            ExtractConfig::default(),
            SelectionSpec::selective_std(Some(4)),
        );
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("fig7");

    let mut costs: Vec<(String, u32, u32, u8, usize)> = Vec::new();
    for sel in &run.selections {
        for c in &sel.confs {
            costs.push((
                sel.workload.to_string(),
                c.luts,
                c.depth,
                c.width,
                c.seq_len,
            ));
        }
    }

    println!("# Figure 7: LUT requirements of selected extended instructions");
    println!("# histogram over all benchmarks (bucket = 10 LUTs)");
    let max = costs.iter().map(|c| c.1).max().unwrap_or(0);
    for lo in (0..=max).step_by(10) {
        let n = costs.iter().filter(|c| c.1 >= lo && c.1 < lo + 10).count();
        println!("{:>3}-{:<3} LUTs: {:>2} {}", lo, lo + 9, n, "#".repeat(n));
    }
    println!();
    println!("# per-instruction detail");
    println!(
        "{:>10} {:>6} {:>6} {:>6} {:>4}",
        "bench", "luts", "depth", "width", "len"
    );
    costs.sort_by_key(|c| std::cmp::Reverse(c.1));
    for (name, luts, depth, width, len) in &costs {
        println!("{name:>10} {luts:>6} {depth:>6} {width:>6} {len:>4}");
    }
    println!();
    println!(
        "# max = {} LUTs across {} instructions (paper: max 105, all < 150)",
        max,
        costs.len()
    );
    assert!(
        max < 150,
        "an instruction exceeded the paper's PFU area budget"
    );
}
