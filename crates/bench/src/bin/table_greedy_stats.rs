//! §4.1 statistics table — "the greedy algorithm identifies between 6 and
//! 43 distinct extended instructions, and sequence lengths range from 2
//! to 8 instructions."

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};
use t1000_core::ExtractConfig;

fn main() {
    let _t = Timer::start("greedy selection statistics (§4.1)");
    // A selection-analysis table: greedy selections plus the baseline run
    // (for dynamic-coverage normalisation), no fused simulations.
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        plan.push_selection(w, ExtractConfig::default(), SelectionSpec::Greedy);
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("table_greedy_stats");

    println!("# Greedy selection statistics (paper §4.1)");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "bench", "#confs", "#sites", "min len", "max len", "dyn cover"
    );
    let mut all_min = usize::MAX;
    let mut all_max = 0usize;
    for info in &run.workloads {
        let base = Cell::new(
            info.name,
            SelectionSpec::Baseline,
            MachineSpec::with_pfus(0, 0),
        );
        let sel = run
            .selections
            .iter()
            .find(|s| s.workload == info.name)
            .expect("greedy record");
        let (min_len, max_len) = sel.seq_len_range();
        all_min = all_min.min(min_len);
        all_max = all_max.max(max_len);
        // Fraction of dynamic base instructions covered by fused sequences.
        let cover =
            sel.total_gain() as f64 / run.cell(base).expect("baseline").base_instructions as f64;
        println!(
            "{:>10} {:>8} {:>8} {:>8} {:>8} {:>9.1}%",
            info.name,
            sel.num_confs,
            sel.num_sites,
            min_len,
            max_len,
            100.0 * cover
        );
    }
    println!();
    println!(
        "# sequence lengths span {all_min}–{all_max} (paper: 2–8); conf counts per benchmark above (paper: 6–43)"
    );
}
