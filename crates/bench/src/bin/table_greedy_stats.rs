//! §4.1 statistics table — "the greedy algorithm identifies between 6 and
//! 43 distinct extended instructions, and sequence lengths range from 2
//! to 8 instructions."

use t1000_bench::{prepare_all, scale_from_env, Timer};

fn main() {
    let _t = Timer::start("greedy selection statistics (§4.1)");
    let prepared = prepare_all(scale_from_env());

    println!("# Greedy selection statistics (paper §4.1)");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "bench", "#confs", "#sites", "min len", "max len", "dyn cover"
    );
    let mut all_min = usize::MAX;
    let mut all_max = 0usize;
    for p in &prepared {
        let sel = p.session.greedy();
        let min_len = sel.confs.iter().map(|c| c.seq_len).min().unwrap_or(0);
        let max_len = sel.confs.iter().map(|c| c.seq_len).max().unwrap_or(0);
        all_min = all_min.min(min_len);
        all_max = all_max.max(max_len);
        // Fraction of dynamic base instructions covered by fused sequences.
        let total_gain: u64 = sel.confs.iter().map(|c| c.total_gain).sum();
        let cover = total_gain as f64 / p.baseline.timing.base_instructions as f64;
        println!(
            "{:>10} {:>8} {:>8} {:>8} {:>8} {:>9.1}%",
            p.name,
            sel.num_confs(),
            sel.fusion.num_sites(),
            min_len,
            max_len,
            100.0 * cover
        );
    }
    println!();
    println!(
        "# sequence lengths span {all_min}–{all_max} (paper: 2–8); conf counts per benchmark above (paper: 6–43)"
    );
}
