//! Ablation — PFU configuration replacement policy.
//!
//! The paper specifies LRU replacement (§2.2). This sweep compares LRU,
//! FIFO and random replacement for the *greedy* selection at 2 PFUs
//! (where replacement actually matters — the selective algorithm barely
//! reconfigures at all).

use t1000_bench::{prepare_all, run_verified, scale_from_env, speedup, Timer};
use t1000_cpu::{CpuConfig, PfuReplacement};

fn main() {
    let _t = Timer::start("PFU replacement-policy sweep");
    let prepared = prepare_all(scale_from_env());

    println!("# PFU replacement ablation: greedy selection, 2 PFUs, 10-cy reconfig");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}   (speedup; reconfigs in parens)",
        "bench", "lru", "fifo", "random"
    );
    for p in &prepared {
        let sel = p.session.greedy();
        let mut cells = Vec::new();
        for policy in [PfuReplacement::Lru, PfuReplacement::Fifo, PfuReplacement::Random] {
            let mut cfg = CpuConfig::with_pfus(2).reconfig(10);
            cfg.pfu_replacement = policy;
            let run = run_verified(p, &sel, cfg);
            cells.push((speedup(p, &run), run.timing.pfu.reconfigurations));
        }
        println!(
            "{:>10}  {:>8.3}  {:>8.3}  {:>8.3}   ({} / {} / {})",
            p.name, cells[0].0, cells[1].0, cells[2].0, cells[0].1, cells[1].1, cells[2].1
        );
    }
}
