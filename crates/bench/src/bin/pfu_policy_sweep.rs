//! Ablation — PFU configuration replacement policy.
//!
//! The paper specifies LRU replacement (§2.2). This sweep compares LRU,
//! FIFO and random replacement for the *greedy* selection at 2 PFUs
//! (where replacement actually matters — the selective algorithm barely
//! reconfigures at all).

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};
use t1000_cpu::PfuReplacement;

const POLICIES: [PfuReplacement; 3] = [
    PfuReplacement::Lru,
    PfuReplacement::Fifo,
    PfuReplacement::Random,
];

fn cell(w: &'static str, policy: PfuReplacement) -> Cell {
    let machine = MachineSpec {
        replacement: policy,
        ..MachineSpec::with_pfus(2, 10)
    };
    Cell::new(w, SelectionSpec::Greedy, machine)
}

fn main() {
    let _t = Timer::start("PFU replacement-policy sweep");
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        for policy in POLICIES {
            plan.push(cell(w, policy));
        }
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("pfu_policy_sweep");

    println!("# PFU replacement ablation: greedy selection, 2 PFUs, 10-cy reconfig");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}   (speedup; reconfigs in parens)",
        "bench", "lru", "fifo", "random"
    );
    for info in &run.workloads {
        let cells: Vec<_> = POLICIES
            .iter()
            .map(|&p| {
                let c = cell(info.name, p);
                (
                    run.speedup(c).expect("cell"),
                    run.cell(c).expect("cell").reconfigurations,
                )
            })
            .collect();
        println!(
            "{:>10}  {:>8.3}  {:>8.3}  {:>8.3}   ({} / {} / {})",
            info.name, cells[0].0, cells[1].0, cells[2].0, cells[0].1, cells[1].1, cells[2].1
        );
    }
}
