//! Figure 2 — speedups using PFUs with the **greedy** selection algorithm.
//!
//! Three bars per benchmark, as in the paper:
//! 1. the baseline superscalar (normalised to 1),
//! 2. T1000 with unlimited PFUs and zero reconfiguration cost
//!    (best case: paper reports 4.5 %–44 % speedups),
//! 3. T1000 with 2 PFUs and a 10-cycle reconfiguration penalty
//!    (the greedy algorithm thrashes: "substantially worse than the
//!    original processor", §4.1).

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, fmt_row, scale_from_env, Timer};

fn main() {
    let _t = Timer::start("Fig. 2 (greedy selection)");
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        plan.push(Cell::new(
            w,
            SelectionSpec::Greedy,
            MachineSpec::unlimited(0),
        ));
        plan.push(Cell::new(
            w,
            SelectionSpec::Greedy,
            MachineSpec::with_pfus(2, 10),
        ));
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("fig2");

    println!("# Figure 2: execution-time speedup, greedy selection");
    println!("# columns: baseline | T1000 unlimited PFUs (0-cycle reconfig) | T1000 2 PFUs (10-cycle reconfig)");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}   {:>8} {:>12}",
        "bench", "base", "unlim", "2pfu", "#confs", "reconfigs@2"
    );
    for info in &run.workloads {
        let unl = Cell::new(info.name, SelectionSpec::Greedy, MachineSpec::unlimited(0));
        let two = Cell::new(
            info.name,
            SelectionSpec::Greedy,
            MachineSpec::with_pfus(2, 10),
        );
        println!(
            "{}   {:>7} {:>12}",
            fmt_row(
                info.name,
                &[
                    1.0,
                    run.speedup(unl).expect("cell"),
                    run.speedup(two).expect("cell"),
                ]
            ),
            run.selection(unl).expect("greedy record").num_confs,
            run.cell(two).expect("cell").reconfigurations,
        );
    }
}
