//! Figure 2 — speedups using PFUs with the **greedy** selection algorithm.
//!
//! Three bars per benchmark, as in the paper:
//! 1. the baseline superscalar (normalised to 1),
//! 2. T1000 with unlimited PFUs and zero reconfiguration cost
//!    (best case: paper reports 4.5 %–44 % speedups),
//! 3. T1000 with 2 PFUs and a 10-cycle reconfiguration penalty
//!    (the greedy algorithm thrashes: "substantially worse than the
//!    original processor", §4.1).

use t1000_bench::{fmt_row, prepare_all, run_verified, speedup, scale_from_env, Timer};
use t1000_cpu::CpuConfig;

fn main() {
    let _t = Timer::start("Fig. 2 (greedy selection)");
    let prepared = prepare_all(scale_from_env());

    println!("# Figure 2: execution-time speedup, greedy selection");
    println!("# columns: baseline | T1000 unlimited PFUs (0-cycle reconfig) | T1000 2 PFUs (10-cycle reconfig)");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}   {:>8} {:>12}",
        "bench", "base", "unlim", "2pfu", "#confs", "reconfigs@2"
    );
    for p in &prepared {
        let sel = p.session.greedy();
        let unlimited = run_verified(p, &sel, CpuConfig::unlimited_pfus().reconfig(0));
        let two = run_verified(p, &sel, CpuConfig::with_pfus(2).reconfig(10));
        println!(
            "{}   {:>7} {:>12}",
            fmt_row(
                p.name,
                &[1.0, speedup(p, &unlimited), speedup(p, &two)]
            ),
            sel.num_confs(),
            two.timing.pfu.reconfigurations,
        );
    }
}
