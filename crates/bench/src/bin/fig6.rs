//! Figure 6 — speedups achieved using the **selective** algorithm.
//!
//! Four bars per benchmark, as in the paper: baseline, T1000 with 2 PFUs,
//! with 4 PFUs, and with unlimited PFUs — all with a 10-cycle
//! reconfiguration cost. The paper reports 2 %–27 % speedups at 2 PFUs and
//! "four PFUs are typically enough to achieve almost the same performance
//! improvement as the optimistic speed-ups" (§5.2).

use t1000_bench::{fmt_row, prepare_all, run_verified, scale_from_env, speedup, Timer};
use t1000_core::SelectConfig;
use t1000_cpu::CpuConfig;

fn main() {
    let _t = Timer::start("Fig. 6 (selective selection)");
    let prepared = prepare_all(scale_from_env());

    println!("# Figure 6: execution-time speedup, selective algorithm (10-cycle reconfig)");
    println!("# columns: baseline | 2 PFUs | 4 PFUs | unlimited PFUs");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}  {:>8}   {:>12}",
        "bench", "base", "2pfu", "4pfu", "unlim", "reconfigs@2"
    );
    for p in &prepared {
        let mut cells = vec![1.0];
        let mut reconf2 = 0;
        for pfus in [Some(2usize), Some(4), None] {
            let sel = p
                .session
                .selective(&SelectConfig { pfus, gain_threshold: 0.005 });
            let cpu = match pfus {
                Some(n) => CpuConfig::with_pfus(n).reconfig(10),
                None => CpuConfig::unlimited_pfus().reconfig(10),
            };
            let run = run_verified(p, &sel, cpu);
            if pfus == Some(2) {
                reconf2 = run.timing.pfu.reconfigurations;
            }
            cells.push(speedup(p, &run));
        }
        println!("{}   {:>12}", fmt_row(p.name, &cells), reconf2);
    }
}
