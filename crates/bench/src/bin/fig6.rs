//! Figure 6 — speedups achieved using the **selective** algorithm.
//!
//! Four bars per benchmark, as in the paper: baseline, T1000 with 2 PFUs,
//! with 4 PFUs, and with unlimited PFUs — all with a 10-cycle
//! reconfiguration cost. The paper reports 2 %–27 % speedups at 2 PFUs and
//! "four PFUs are typically enough to achieve almost the same performance
//! improvement as the optimistic speed-ups" (§5.2).

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, fmt_row, scale_from_env, Timer};

fn cells(w: &'static str) -> [Cell; 3] {
    [
        Cell::new(
            w,
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 10),
        ),
        Cell::new(
            w,
            SelectionSpec::selective_std(Some(4)),
            MachineSpec::with_pfus(4, 10),
        ),
        Cell::new(
            w,
            SelectionSpec::selective_std(None),
            MachineSpec::unlimited(10),
        ),
    ]
}

fn main() {
    let _t = Timer::start("Fig. 6 (selective selection)");
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        plan.extend(cells(w));
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("fig6");

    println!("# Figure 6: execution-time speedup, selective algorithm (10-cycle reconfig)");
    println!("# columns: baseline | 2 PFUs | 4 PFUs | unlimited PFUs");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}  {:>8}   {:>12}",
        "bench", "base", "2pfu", "4pfu", "unlim", "reconfigs@2"
    );
    for info in &run.workloads {
        let cs = cells(info.name);
        let row = [
            1.0,
            run.speedup(cs[0]).expect("cell"),
            run.speedup(cs[1]).expect("cell"),
            run.speedup(cs[2]).expect("cell"),
        ];
        println!(
            "{}   {:>12}",
            fmt_row(info.name, &row),
            run.cell(cs[0]).expect("cell").reconfigurations
        );
    }
}
