//! Runs every experiment and emits a Markdown report (the body of
//! EXPERIMENTS.md). `T1000_SCALE=test` gives a fast smoke run.

use t1000_bench::{prepare_all, run_verified, scale_from_env, speedup, Timer};
use t1000_core::SelectConfig;
use t1000_cpu::CpuConfig;
use t1000_workloads::Scale;

fn main() {
    let scale = scale_from_env();
    let _t = Timer::start("all experiments");
    let prepared = prepare_all(scale);

    println!("# T1000 experiment report");
    println!();
    println!(
        "Scale: {} | machine: 4-wide OoO, 64-entry RUU, perfect branch prediction, paper caches/TLBs",
        if scale == Scale::Test { "test" } else { "full (paper)" }
    );
    println!();

    // Workload inventory.
    println!("## Workloads");
    println!();
    println!("| bench | dynamic instrs | baseline cycles | baseline IPC |");
    println!("|---|---:|---:|---:|");
    for p in &prepared {
        println!(
            "| {} | {} | {} | {:.2} |",
            p.name,
            p.baseline.timing.base_instructions,
            p.baseline.timing.cycles,
            p.baseline.timing.base_ipc
        );
    }
    println!();

    // Figure 2.
    println!("## Figure 2 — greedy selection");
    println!();
    println!("| bench | unlimited PFUs, 0-cy reconfig | 2 PFUs, 10-cy reconfig | #confs |");
    println!("|---|---:|---:|---:|");
    for p in &prepared {
        let sel = p.session.greedy();
        let unl = run_verified(p, &sel, CpuConfig::unlimited_pfus().reconfig(0));
        let two = run_verified(p, &sel, CpuConfig::with_pfus(2).reconfig(10));
        println!(
            "| {} | {:.3} | {:.3} | {} |",
            p.name,
            speedup(p, &unl),
            speedup(p, &two),
            sel.num_confs()
        );
    }
    println!();

    // §4.1 table.
    println!("## §4.1 — greedy statistics");
    println!();
    println!("| bench | #confs | #sites | len range |");
    println!("|---|---:|---:|---|");
    for p in &prepared {
        let sel = p.session.greedy();
        let min = sel.confs.iter().map(|c| c.seq_len).min().unwrap_or(0);
        let max = sel.confs.iter().map(|c| c.seq_len).max().unwrap_or(0);
        println!(
            "| {} | {} | {} | {min}–{max} |",
            p.name,
            sel.num_confs(),
            sel.fusion.num_sites()
        );
    }
    println!();

    // Figure 6.
    println!("## Figure 6 — selective algorithm (10-cy reconfig)");
    println!();
    println!("| bench | 2 PFUs | 4 PFUs | unlimited |");
    println!("|---|---:|---:|---:|");
    for p in &prepared {
        let mut cells = Vec::new();
        for pfus in [Some(2usize), Some(4), None] {
            let sel = p
                .session
                .selective(&SelectConfig { pfus, gain_threshold: 0.005 });
            let cpu = match pfus {
                Some(n) => CpuConfig::with_pfus(n).reconfig(10),
                None => CpuConfig::unlimited_pfus().reconfig(10),
            };
            cells.push(speedup(p, &run_verified(p, &sel, cpu)));
        }
        println!(
            "| {} | {:.3} | {:.3} | {:.3} |",
            p.name, cells[0], cells[1], cells[2]
        );
    }
    println!();

    // Figure 7.
    println!("## Figure 7 — hardware cost of selected instructions");
    println!();
    let mut luts: Vec<u32> = Vec::new();
    for p in &prepared {
        let sel = p
            .session
            .selective(&SelectConfig { pfus: Some(4), gain_threshold: 0.005 });
        luts.extend(sel.confs.iter().map(|c| c.cost.luts));
    }
    let max = luts.iter().copied().max().unwrap_or(0);
    println!("| bucket | instructions |");
    println!("|---|---:|");
    for lo in (0..=max).step_by(20) {
        let n = luts.iter().filter(|&&l| l >= lo && l < lo + 20).count();
        println!("| {}–{} LUTs | {} |", lo, lo + 19, n);
    }
    println!();
    println!("Max: {max} LUTs over {} instructions (paper: max 105, all fit 150-LUT PFUs).", luts.len());
    println!();

    // §5.2 sweep.
    println!("## §5.2 — reconfiguration-cost robustness (2 PFUs, selective)");
    println!();
    println!("| bench | 0 | 10 | 100 | 500 cycles |");
    println!("|---|---:|---:|---:|---:|");
    for p in &prepared {
        let sel = p
            .session
            .selective(&SelectConfig { pfus: Some(2), gain_threshold: 0.005 });
        let mut cells = Vec::new();
        for c in [0u32, 10, 100, 500] {
            cells.push(speedup(p, &run_verified(p, &sel, CpuConfig::with_pfus(2).reconfig(c))));
        }
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
            p.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
}
