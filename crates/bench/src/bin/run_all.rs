//! Runs every experiment and emits a Markdown report (the body of
//! EXPERIMENTS.md) plus the `BENCH_results.json` artifact.
//! `T1000_SCALE=test` gives a fast smoke run.
//!
//! The heavy lifting lives in the shared experiment engine: one plan
//! covering all figures/tables, deduplicated so each distinct
//! (workload, selection, machine) job runs exactly once across a worker
//! pool. This binary just renders the results.

use t1000_bench::{engine, results, scale_from_env, Timer};

fn main() {
    let scale = scale_from_env();
    let run = {
        let _t = Timer::start("all experiments");
        engine::execute_run_all(scale)
    };

    let s = &run.stats;
    eprintln!(
        "[t1000-bench] engine: {} cells requested, {} simulated ({} deduped), \
         {} selection jobs ({} cache hits), {} threads",
        s.cells_requested,
        s.cells_simulated,
        s.cells_deduped,
        s.selection_jobs,
        s.selection_hits,
        s.threads
    );
    eprintln!(
        "[t1000-bench] phases: prepare {:.1}s | select {:.1}s ({:.1}s compute) | simulate {:.1}s",
        s.prepare_secs, s.select_secs, s.selection_compute_secs, s.simulate_secs
    );

    let json_path =
        std::env::var("T1000_RESULTS_JSON").unwrap_or_else(|_| "BENCH_results.json".to_string());
    let path = std::path::Path::new(&json_path);
    results::write_json(&run, path).unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
    eprintln!("[t1000-bench] wrote {json_path}");

    print!("{}", results::render_markdown(&run));

    // Failed cells are recorded in the artifact (and rendered as n/a
    // above); surface them on stderr and refuse a clean exit.
    if !run.failures.is_empty() {
        eprint!("{}", results::render_failures(&run.failures));
        std::process::exit(1);
    }
}
