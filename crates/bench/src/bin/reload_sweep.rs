//! Reconfiguration-hiding pareto sweep — reload cost × prefetch depth ×
//! PFU count (schema v6's config-plane model).
//!
//! For each machine point the sweep runs both selection strategies and
//! reports the geomean speedup next to the reload cycles the config
//! planes *hid* (overlapped with execution via next-config prefetch into
//! the shadow plane) and the cycles that stayed *exposed* as pipeline
//! stalls. The paper's §5.2 robustness story is the `prefetch=0` column;
//! the point of this sweep is the other columns: a thrashing greedy
//! selection recovers most of its reload bill once loads are prefetched,
//! while the reload-aware selective algorithm never ran up the bill in
//! the first place.

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};

const RELOAD_CYCLES: [u32; 2] = [10, 500];
const PFU_COUNTS: [usize; 3] = [1, 2, 4];
/// Prefetch depth 0 is the legacy blocking machine (single plane);
/// nonzero depths run double-buffered.
const PREFETCH: [u32; 2] = [0, 2];

fn specs() -> [(&'static str, SelectionSpec); 2] {
    [
        ("greedy", SelectionSpec::Greedy),
        ("selective", SelectionSpec::selective_std(Some(2))),
    ]
}

fn machine(pfus: usize, reload: u32, prefetch: u32) -> MachineSpec {
    let m = MachineSpec::with_pfus(pfus, reload);
    if prefetch == 0 {
        m
    } else {
        m.config_plane(2, prefetch, 0.0)
    }
}

fn main() {
    let _t = Timer::start("reload×prefetch×PFU pareto sweep");
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        for (_, spec) in specs() {
            for pfus in PFU_COUNTS {
                for reload in RELOAD_CYCLES {
                    for prefetch in PREFETCH {
                        plan.push(Cell::new(w, spec, machine(pfus, reload, prefetch)));
                    }
                }
            }
        }
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("reload_sweep");

    println!("# Reload-cost × prefetch-depth × PFU-count pareto sweep");
    println!("# hidden/exposed = PFU reload cycles overlapped vs stalled, summed over workloads");
    println!(
        "{:>9} {:>5} {:>7} {:>9} {:>10} {:>12} {:>12}",
        "algo", "pfus", "reload", "prefetch", "geomean", "hidden", "exposed"
    );
    let mut greedy_hidden = 0u64;
    for (label, spec) in specs() {
        for pfus in PFU_COUNTS {
            for reload in RELOAD_CYCLES {
                for prefetch in PREFETCH {
                    let mut log_sum = 0.0f64;
                    let mut n = 0u32;
                    let mut hidden = 0u64;
                    let mut exposed = 0u64;
                    for info in &run.workloads {
                        let cell = Cell::new(info.name, spec, machine(pfus, reload, prefetch));
                        let s = run.speedup(cell).expect("cell");
                        let c = run.cell(cell).expect("cell");
                        log_sum += s.ln();
                        n += 1;
                        hidden += c.pfu_hidden_reload_cycles;
                        exposed += c.pfu_exposed_reload_cycles;
                    }
                    if label == "greedy" {
                        greedy_hidden += hidden;
                    }
                    println!(
                        "{label:>9} {pfus:>5} {reload:>7} {prefetch:>9} {:>10.3} {hidden:>12} {exposed:>12}",
                        (log_sum / f64::from(n)).exp()
                    );
                }
            }
        }
    }
    // The sweep's reason to exist: with prefetch enabled, the config
    // planes must actually hide reload traffic somewhere — the greedy
    // strategy reloads the most, so it is the canonical witness.
    assert!(
        greedy_hidden > 0,
        "prefetch-enabled greedy cells hid no reload cycles — the config-plane model is inert"
    );
    println!("# greedy hidden-reload cycles across the sweep: {greedy_hidden}");
}
