//! Ablation — the perfect-branch-prediction assumption (§3.1).
//!
//! Re-runs the Fig. 6 selective experiment (2 PFUs) with a realistic
//! bimodal predictor and reports how the PFU speedup changes. Because
//! mispredictions dilate baseline and T1000 runs alike, the *relative*
//! benefit of extended instructions shrinks only modestly — evidence the
//! paper's assumption does not drive its conclusions.

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};
use t1000_cpu::BranchModel;

const BIMODAL: BranchModel = BranchModel::Bimodal {
    entries: 2048,
    penalty: 6,
};

fn cell(w: &'static str, branch: BranchModel) -> Cell {
    let machine = MachineSpec {
        branch,
        ..MachineSpec::with_pfus(2, 10)
    };
    Cell::new(w, SelectionSpec::selective_std(Some(2)), machine)
}

fn main() {
    let _t = Timer::start("branch-prediction sensitivity");
    // Each speedup is normalised against a baseline with the *same*
    // predictor: the engine derives the bimodal baseline cells itself.
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        plan.push(cell(w, BranchModel::Perfect));
        plan.push(cell(w, BIMODAL));
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("branch_sweep");

    println!("# Branch-prediction ablation: selective, 2 PFUs, 10-cy reconfig");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}",
        "bench", "perfect", "bimodal", "accuracy"
    );
    for info in &run.workloads {
        let bi = cell(info.name, BIMODAL);
        println!(
            "{:>10}  {:>10.3}  {:>10.3}  {:>9.1}%",
            info.name,
            run.speedup(cell(info.name, BranchModel::Perfect))
                .expect("cell"),
            run.speedup(bi).expect("cell"),
            100.0 * run.cell(bi).expect("cell").branch_accuracy
        );
    }
}
