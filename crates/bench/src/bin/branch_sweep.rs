//! Ablation — the perfect-branch-prediction assumption (§3.1).
//!
//! Re-runs the Fig. 6 selective experiment (2 PFUs) with a realistic
//! bimodal predictor and reports how the PFU speedup changes. Because
//! mispredictions dilate baseline and T1000 runs alike, the *relative*
//! benefit of extended instructions shrinks only modestly — evidence the
//! paper's assumption does not drive its conclusions.

use t1000_bench::{prepare_all, scale_from_env, Timer};
use t1000_core::SelectConfig;
use t1000_cpu::{BranchModel, CpuConfig};

fn main() {
    let _t = Timer::start("branch-prediction sensitivity");
    let prepared = prepare_all(scale_from_env());

    println!("# Branch-prediction ablation: selective, 2 PFUs, 10-cy reconfig");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}",
        "bench", "perfect", "bimodal", "accuracy"
    );
    for p in &prepared {
        let sel = p
            .session
            .selective(&SelectConfig { pfus: Some(2), gain_threshold: 0.005 });
        let bimodal = BranchModel::Bimodal { entries: 2048, penalty: 6 };

        // Perfect prediction: reuse the prepared baseline.
        let t_perfect = p
            .session
            .run_with(&sel, CpuConfig::with_pfus(2).reconfig(10))
            .unwrap();
        let s_perfect = p.baseline.timing.cycles as f64 / t_perfect.timing.cycles as f64;

        // Bimodal: both baseline and T1000 re-run under the predictor.
        let mut base_cfg = CpuConfig::baseline();
        base_cfg.branch = bimodal;
        let b_bi = p.session.run_baseline(base_cfg).unwrap();
        let mut t_cfg = CpuConfig::with_pfus(2).reconfig(10);
        t_cfg.branch = bimodal;
        let t_bi = p.session.run_with(&sel, t_cfg).unwrap();
        assert_eq!(t_bi.sys, b_bi.sys);
        let s_bi = b_bi.timing.cycles as f64 / t_bi.timing.cycles as f64;

        println!(
            "{:>10}  {:>10.3}  {:>10.3}  {:>9.1}%",
            p.name,
            s_perfect,
            s_bi,
            100.0 * t_bi.timing.branch.accuracy()
        );
    }
}
