//! Ablation — the perfect-branch-prediction assumption (§3.1).
//!
//! Re-runs the Fig. 6 selective experiment (2 PFUs) across the predictor
//! ladder: perfect prediction (the paper's model), a static
//! backward-taken/forward-not-taken heuristic, a 2-bit bimodal table,
//! and a gshare predictor with a global history register. Because
//! mispredictions dilate baseline and T1000 runs alike, the *relative*
//! benefit of extended instructions shrinks only modestly — evidence the
//! paper's assumption does not drive its conclusions — and the ladder
//! orders exactly as expected (static < bimodal < gshare accuracy).

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};
use t1000_cpu::BranchModel;

const STATIC: BranchModel = BranchModel::Static { penalty: 6 };
const BIMODAL: BranchModel = BranchModel::Bimodal {
    entries: 2048,
    penalty: 6,
};
const GSHARE: BranchModel = BranchModel::Gshare {
    entries: 4096,
    penalty: 6,
};

fn predictors() -> [(&'static str, BranchModel); 4] {
    [
        ("perfect", BranchModel::Perfect),
        ("static", STATIC),
        ("bimodal", BIMODAL),
        ("gshare", GSHARE),
    ]
}

fn cell(w: &'static str, branch: BranchModel) -> Cell {
    let machine = MachineSpec {
        branch,
        ..MachineSpec::with_pfus(2, 10)
    };
    Cell::new(w, SelectionSpec::selective_std(Some(2)), machine)
}

fn main() {
    let _t = Timer::start("branch-prediction sensitivity");
    // Each speedup is normalised against a baseline with the *same*
    // predictor: the engine derives the matching baseline cells itself.
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        for (_, b) in predictors() {
            plan.push(cell(w, b));
        }
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("branch_sweep");

    println!("# Branch-prediction ablation: selective, 2 PFUs, 10-cy reconfig");
    println!("# speedup per predictor, then each real predictor's hit rate");
    print!("{:>10}", "bench");
    for (label, _) in predictors() {
        print!("  {label:>8}");
    }
    for (label, _) in &predictors()[1..] {
        print!("  {:>7}%", label);
    }
    println!();
    for info in &run.workloads {
        let mut row = format!("{:>10}", info.name);
        for (_, b) in predictors() {
            row.push_str(&format!(
                "  {:>8.3}",
                run.speedup(cell(info.name, b)).expect("cell")
            ));
        }
        for (_, b) in &predictors()[1..] {
            row.push_str(&format!(
                "  {:>7.1}%",
                100.0 * run.cell(cell(info.name, *b)).expect("cell").branch_accuracy
            ));
        }
        println!("{row}");
    }
}
