//! §5.2 claim — "our experiments show that we retain our excellent
//! speedups even with reconfiguration times as high as 500 cycles."
//!
//! Sweeps the PFU reconfiguration penalty for the selective algorithm at
//! 2 PFUs, and contrasts with the greedy algorithm, whose performance
//! collapses as the penalty grows.

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};

const PENALTIES: [u32; 6] = [0, 10, 50, 100, 250, 500];

fn specs() -> [(&'static str, SelectionSpec); 2] {
    [
        ("selective", SelectionSpec::selective_std(Some(2))),
        ("greedy", SelectionSpec::Greedy),
    ]
}

fn main() {
    let _t = Timer::start("reconfiguration-cost sweep (§5.2)");
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        for (_, spec) in specs() {
            for c in PENALTIES {
                plan.push(Cell::new(w, spec, MachineSpec::with_pfus(2, c)));
            }
        }
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("reconfig_sweep");

    println!("# Reconfiguration-penalty sweep, 2 PFUs");
    println!("# selective speedups should stay nearly flat; greedy collapses");
    print!("{:>10} {:>9}", "bench", "algo");
    for c in PENALTIES {
        print!("  {c:>8}");
    }
    println!();
    for info in &run.workloads {
        for (label, spec) in specs() {
            let mut row = format!("{:>10} {label:>9}", info.name);
            for c in PENALTIES {
                let s = run
                    .speedup(Cell::new(info.name, spec, MachineSpec::with_pfus(2, c)))
                    .expect("cell");
                row.push_str(&format!("  {s:>8.3}"));
            }
            println!("{row}");
        }
    }
}
