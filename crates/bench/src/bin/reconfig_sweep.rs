//! §5.2 claim — "our experiments show that we retain our excellent
//! speedups even with reconfiguration times as high as 500 cycles."
//!
//! Sweeps the PFU reconfiguration penalty for the selective algorithm at
//! 2 PFUs, and contrasts with the greedy algorithm, whose performance
//! collapses as the penalty grows.

use t1000_bench::{prepare_all, run_verified, scale_from_env, speedup, Timer};
use t1000_core::SelectConfig;
use t1000_cpu::CpuConfig;

const PENALTIES: [u32; 6] = [0, 10, 50, 100, 250, 500];

fn main() {
    let _t = Timer::start("reconfiguration-cost sweep (§5.2)");
    let prepared = prepare_all(scale_from_env());

    println!("# Reconfiguration-penalty sweep, 2 PFUs");
    println!("# selective speedups should stay nearly flat; greedy collapses");
    print!("{:>10} {:>9}", "bench", "algo");
    for c in PENALTIES {
        print!("  {c:>8}");
    }
    println!();
    for p in &prepared {
        let sel = p
            .session
            .selective(&SelectConfig { pfus: Some(2), gain_threshold: 0.005 });
        let greedy = p.session.greedy();
        for (label, s) in [("selective", &sel), ("greedy", &greedy)] {
            let cells: Vec<f64> = PENALTIES
                .iter()
                .map(|&c| {
                    let run = run_verified(p, s, CpuConfig::with_pfus(2).reconfig(c));
                    speedup(p, &run)
                })
                .collect();
            let mut row = format!("{:>10} {label:>9}", p.name);
            for c in &cells {
                row.push_str(&format!("  {c:>8.3}"));
            }
            println!("{row}");
        }
    }
}
