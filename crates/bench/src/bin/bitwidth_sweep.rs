//! Ablation — the candidate bitwidth threshold.
//!
//! The paper fixes candidates at "bitwidths of 18 bits or less, but this
//! is a parameter that can be varied" (§4). This sweep varies it and
//! reports selective-algorithm speedups at 4 PFUs: narrow thresholds
//! exclude profitable sequences; beyond the workloads' natural widths the
//! curve saturates.

use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use t1000_bench::{engine, scale_from_env, Timer};
use t1000_core::ExtractConfig;

const WIDTHS: [u8; 5] = [8, 12, 18, 24, 32];

fn cell(w: &'static str, width: u8) -> Cell {
    Cell {
        workload: w,
        extract: ExtractConfig {
            max_width: width,
            ..Default::default()
        },
        selection: SelectionSpec::selective_std(Some(4)),
        machine: MachineSpec::with_pfus(4, 10),
    }
}

fn main() {
    let _t = Timer::start("bitwidth-threshold sweep");
    let mut plan = Plan::new();
    for w in t1000_bench::plan::workload_names() {
        for width in WIDTHS {
            plan.push(cell(w, width));
        }
    }
    let run = engine::execute(&plan, scale_from_env());
    run.expect_healthy("bitwidth_sweep");

    println!("# Bitwidth-threshold ablation, selective algorithm, 4 PFUs");
    print!("{:>10}", "bench");
    for w in WIDTHS {
        print!("  {:>7}b", w);
    }
    println!("  (speedup over baseline)");
    for info in &run.workloads {
        let mut row = format!("{:>10}", info.name);
        for width in WIDTHS {
            row.push_str(&format!(
                "  {:>8.3}",
                run.speedup(cell(info.name, width)).expect("cell")
            ));
        }
        println!("{row}");
    }
}
