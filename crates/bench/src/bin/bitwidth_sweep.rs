//! Ablation — the candidate bitwidth threshold.
//!
//! The paper fixes candidates at "bitwidths of 18 bits or less, but this
//! is a parameter that can be varied" (§4). This sweep varies it and
//! reports selective-algorithm speedups at 4 PFUs: narrow thresholds
//! exclude profitable sequences; beyond the workloads' natural widths the
//! curve saturates.

use t1000_bench::{run_verified, scale_from_env, speedup, Timer};
use t1000_core::{ExtractConfig, SelectConfig, Session};
use t1000_cpu::CpuConfig;

const WIDTHS: [u8; 5] = [8, 12, 18, 24, 32];

fn main() {
    let _t = Timer::start("bitwidth-threshold sweep");
    let workloads = t1000_workloads::all(scale_from_env());

    println!("# Bitwidth-threshold ablation, selective algorithm, 4 PFUs");
    print!("{:>10}", "bench");
    for w in WIDTHS {
        print!("  {:>7}b", w);
    }
    println!("  (speedup over baseline)");

    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move || {
                    let mut cells = Vec::new();
                    for width in WIDTHS {
                        let program = w.program().unwrap();
                        let extract = ExtractConfig { max_width: width, ..Default::default() };
                        let session = Session::with_extract(program, extract).unwrap();
                        let baseline = session.run_baseline(CpuConfig::baseline()).unwrap();
                        let sel = session
                            .selective(&SelectConfig { pfus: Some(4), gain_threshold: 0.005 });
                        let p = t1000_bench::Prepared { name: w.name, session, baseline };
                        let run = run_verified(&p, &sel, CpuConfig::with_pfus(4).reconfig(10));
                        cells.push(speedup(&p, &run));
                    }
                    (w.name, cells)
                })
            })
            .collect();
        for h in handles {
            let (name, cells) = h.join().unwrap();
            let mut row = format!("{name:>10}");
            for c in cells {
                row.push_str(&format!("  {c:>8.3}"));
            }
            println!("{row}");
        }
    });
}
