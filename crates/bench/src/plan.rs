//! Experiment planning: the job-graph vocabulary of the harness.
//!
//! Every number in the paper's figures and tables is the result of one
//! *cell*: simulate `workload` under `selection` on `machine`, with
//! candidate extraction governed by `extract`. A [`Plan`] is a
//! deduplicated set of cells; the engine derives the implied work — one
//! profiling session per (workload, extraction config), one selection job
//! per distinct selection, one simulation per distinct cell, plus the
//! baseline cell each speedup is normalised against — and never runs the
//! same job twice, no matter how many figures request it.

use std::collections::HashSet;
use t1000_core::{ExtractConfig, SelectConfig, StrategySpec};
use t1000_cpu::{BranchModel, CpuConfig, PfuCount, PfuReplacement};

/// Which fusion map a cell simulates.
///
/// `Selective` stores the gain threshold's bit pattern so the spec is
/// `Eq`/`Hash` (two thresholds are the same job exactly when they drive
/// the selector identically — same criterion as the session cache).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SelectionSpec {
    /// No extended instructions: the run every speedup is measured against.
    Baseline,
    /// The greedy algorithm (paper §4).
    Greedy,
    /// The selective algorithm (paper §5).
    Selective {
        pfus: Option<usize>,
        gain_threshold_bits: u64,
        /// `SelectConfig::reload_weight` as bits (`0` = off, identical to
        /// the pre-reload-objective spec).
        reload_weight_bits: u64,
    },
    /// Budget-constrained knapsack selection over `t1000-hwcost` LUT
    /// estimates (`t1000_core::BudgetKnapsack`).
    Knapsack {
        lut_budget: u32,
        /// Reload-traffic weight as bits (`0` = off).
        reload_weight_bits: u64,
    },
}

impl SelectionSpec {
    /// Selective spec from a plain threshold.
    pub fn selective(pfus: Option<usize>, gain_threshold: f64) -> SelectionSpec {
        SelectionSpec::Selective {
            pfus,
            gain_threshold_bits: gain_threshold.to_bits(),
            reload_weight_bits: 0,
        }
    }

    /// Selective spec with the §5.3 reload-traffic charge.
    pub fn selective_reload(
        pfus: Option<usize>,
        gain_threshold: f64,
        reload_weight: f64,
    ) -> SelectionSpec {
        SelectionSpec::Selective {
            pfus,
            gain_threshold_bits: gain_threshold.to_bits(),
            reload_weight_bits: reload_weight.to_bits(),
        }
    }

    /// The paper's standard selective configuration (0.5 % gain threshold).
    pub fn selective_std(pfus: Option<usize>) -> SelectionSpec {
        SelectionSpec::selective(pfus, 0.005)
    }

    /// Knapsack spec for a total-LUT budget.
    pub fn knapsack(lut_budget: u32) -> SelectionSpec {
        SelectionSpec::Knapsack {
            lut_budget,
            reload_weight_bits: 0,
        }
    }

    /// The strategy the selection pipeline should run for this spec
    /// (`None` for baseline cells, which have no selection job). This is
    /// the bench plan's strategy axis: the returned spec doubles as the
    /// session's memo-cache key.
    pub fn strategy_spec(&self) -> Option<StrategySpec> {
        match *self {
            SelectionSpec::Baseline => None,
            SelectionSpec::Greedy => Some(StrategySpec::Greedy),
            SelectionSpec::Selective {
                pfus,
                gain_threshold_bits,
                reload_weight_bits,
            } => Some(StrategySpec::Selective {
                pfus,
                gain_threshold_bits,
                reload_weight_bits,
            }),
            SelectionSpec::Knapsack {
                lut_budget,
                reload_weight_bits,
            } => Some(StrategySpec::BudgetKnapsack {
                lut_budget,
                reload_weight_bits,
            }),
        }
    }

    /// Stable strategy identifier for reports and JSON (`baseline` for
    /// the baseline spec).
    pub fn strategy_id(&self) -> String {
        match self.strategy_spec() {
            Some(s) => s.id(),
            None => "baseline".into(),
        }
    }

    /// The `SelectConfig` to hand to the selector (`None` for baseline
    /// and greedy specs).
    pub fn select_config(&self) -> Option<SelectConfig> {
        match *self {
            SelectionSpec::Selective {
                pfus,
                gain_threshold_bits,
                reload_weight_bits,
            } => Some(SelectConfig {
                pfus,
                gain_threshold: f64::from_bits(gain_threshold_bits),
                reload_weight: f64::from_bits(reload_weight_bits),
            }),
            _ => None,
        }
    }

    /// Short name used in reports and JSON
    /// (`baseline`/`greedy`/`selective`/`knapsack`).
    pub fn algorithm(&self) -> &'static str {
        match self {
            SelectionSpec::Baseline => "baseline",
            SelectionSpec::Greedy => "greedy",
            SelectionSpec::Selective { .. } => "selective",
            SelectionSpec::Knapsack { .. } => "knapsack",
        }
    }
}

/// The machine a cell runs on: the paper's 4-wide core with the axes the
/// experiments vary. `issue_width: None` keeps the paper machine;
/// `Some(w)` sets fetch/dispatch/issue/commit width to `w` (width sweep).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MachineSpec {
    pub pfus: PfuCount,
    pub reconfig_cycles: u32,
    pub replacement: PfuReplacement,
    pub branch: BranchModel,
    pub issue_width: Option<u32>,
    /// Configuration planes per PFU (1 = single-plane blocking loads;
    /// 2 = double-buffered shadow plane).
    pub pfu_planes: u32,
    /// Next-configuration prefetch depth (0 = off).
    pub pfu_prefetch: u32,
    /// Stream-compression ratio (cycles per word) as bits, `0` = off —
    /// stored as a bit pattern so the spec stays `Eq`/`Hash`.
    pub conf_compress_bits: u64,
}

impl MachineSpec {
    /// T1000 with `n` PFUs at the given reconfiguration penalty.
    pub fn with_pfus(n: usize, reconfig_cycles: u32) -> MachineSpec {
        MachineSpec {
            pfus: PfuCount::Fixed(n),
            reconfig_cycles,
            replacement: PfuReplacement::Lru,
            branch: BranchModel::Perfect,
            issue_width: None,
            pfu_planes: 1,
            pfu_prefetch: 0,
            conf_compress_bits: 0,
        }
    }

    /// T1000 with unlimited PFUs at the given reconfiguration penalty.
    pub fn unlimited(reconfig_cycles: u32) -> MachineSpec {
        MachineSpec {
            pfus: PfuCount::Unlimited,
            ..MachineSpec::with_pfus(0, reconfig_cycles)
        }
    }

    /// This spec with the reconfiguration-hiding knobs set: `planes`
    /// configuration planes per PFU, `prefetch` upcoming `Conf` tags
    /// prefetched from the fetch stream, and (when > 0) `conf_compress`
    /// reload cycles per stream word instead of the flat penalty.
    pub fn config_plane(self, planes: u32, prefetch: u32, conf_compress: f64) -> MachineSpec {
        MachineSpec {
            pfu_planes: planes,
            pfu_prefetch: prefetch,
            conf_compress_bits: conf_compress.to_bits(),
            ..self
        }
    }

    /// The baseline machine this spec's speedups are normalised against:
    /// the identical core with the PFU array removed. Branch model and
    /// issue width are preserved — a bimodal or narrow T1000 is compared
    /// against a bimodal or narrow superscalar. The config-plane knobs
    /// are stripped with the rest of the PFU hardware.
    pub fn baseline_of(&self) -> MachineSpec {
        MachineSpec {
            branch: self.branch,
            issue_width: self.issue_width,
            ..MachineSpec::with_pfus(0, 0)
        }
    }

    /// Concrete simulator configuration.
    pub fn cpu_config(&self) -> CpuConfig {
        let mut cfg = CpuConfig {
            pfus: self.pfus,
            reconfig_cycles: self.reconfig_cycles,
            pfu_replacement: self.replacement,
            branch: self.branch,
            pfu_planes: self.pfu_planes,
            pfu_prefetch: self.pfu_prefetch,
            conf_compress: f64::from_bits(self.conf_compress_bits),
            ..CpuConfig::default()
        };
        if let Some(w) = self.issue_width {
            cfg.fetch_width = w;
            cfg.dispatch_width = w;
            cfg.issue_width = w;
            cfg.commit_width = w;
            cfg.int_alus = w.max(2);
        }
        cfg
    }
}

/// One unit of experimental work: simulate `workload` under `selection`
/// on `machine`, with candidates extracted per `extract`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cell {
    pub workload: &'static str,
    pub extract: ExtractConfig,
    pub selection: SelectionSpec,
    pub machine: MachineSpec,
}

impl Cell {
    /// A cell with the paper's default extraction parameters.
    pub fn new(workload: &'static str, selection: SelectionSpec, machine: MachineSpec) -> Cell {
        Cell {
            workload,
            extract: ExtractConfig::default(),
            selection,
            machine,
        }
    }

    /// The baseline cell this cell's speedup is measured against.
    pub fn baseline_cell(&self) -> Cell {
        Cell {
            selection: SelectionSpec::Baseline,
            machine: self.machine.baseline_of(),
            ..*self
        }
    }
}

/// An ordered, deduplicated set of cells. Push cells in report order;
/// duplicates (including baselines implied by earlier cells) are dropped.
#[derive(Default)]
pub struct Plan {
    cells: Vec<Cell>,
    seen: HashSet<Cell>,
    /// Selection jobs requested without a fused simulation (Fig. 7 and
    /// the §4.1 table analyse selections but never run them).
    selection_only: Vec<(&'static str, ExtractConfig, SelectionSpec)>,
    /// Cells requested, counting duplicates — the dedup numerator.
    requested: usize,
    /// Requests answered by an already-planned cell.
    deduped: usize,
}

impl Plan {
    pub fn new() -> Plan {
        Plan::default()
    }

    /// Adds `cell` and its implied baseline cell.
    pub fn push(&mut self, cell: Cell) {
        self.requested += 1;
        if self.seen.contains(&cell) {
            self.deduped += 1;
        }
        let base = cell.baseline_cell();
        if self.seen.insert(base) {
            self.cells.push(base);
        }
        if self.seen.insert(cell) {
            self.cells.push(cell);
        }
    }

    pub fn extend(&mut self, cells: impl IntoIterator<Item = Cell>) {
        for c in cells {
            self.push(c);
        }
    }

    /// Requests a selection job (and the workload's baseline cell, for
    /// normalisation) without simulating the fused program.
    pub fn push_selection(
        &mut self,
        workload: &'static str,
        extract: ExtractConfig,
        spec: SelectionSpec,
    ) {
        let base = Cell {
            workload,
            extract,
            selection: SelectionSpec::Baseline,
            machine: MachineSpec::with_pfus(0, 0),
        };
        self.requested += 1;
        if self.seen.insert(base) {
            self.cells.push(base);
        }
        self.selection_only.push((workload, extract, spec));
    }

    /// Selection-only jobs requested via [`Plan::push_selection`].
    pub fn selection_only(&self) -> &[(&'static str, ExtractConfig, SelectionSpec)] {
        &self.selection_only
    }

    /// Unique cells, in first-push order (baselines precede their users).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Cells requested via [`Plan::push`], counting duplicates but not
    /// implied baselines.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Requests that were answered by an already-planned cell.
    pub fn deduped(&self) -> usize {
        self.deduped
    }

    /// This plan with every PFU-bearing machine rewritten to carry the
    /// reconfiguration-hiding knobs (`t1000 bench --pfu-planes` /
    /// `--pfu-prefetch` / `--conf-compress`). Baseline (0-PFU) machines
    /// are left untouched — each rewritten cell re-implies the same
    /// normaliser, so speedups stay comparable to the default artifact.
    pub fn with_config_plane(&self, planes: u32, prefetch: u32, conf_compress: f64) -> Plan {
        let mut out = Plan::new();
        for c in &self.cells {
            if c.selection == SelectionSpec::Baseline {
                continue; // re-implied by the cells that use it
            }
            let mut cell = *c;
            if cell.machine.pfus != PfuCount::Fixed(0) {
                cell.machine = cell.machine.config_plane(planes, prefetch, conf_compress);
            }
            out.push(cell);
        }
        for (w, x, s) in &self.selection_only {
            out.push_selection(w, *x, *s);
        }
        out
    }
}

/// The standard workload list, in report order.
pub fn workload_names() -> Vec<&'static str> {
    t1000_workloads::NAMES.to_vec()
}

/// The full `run_all` plan: every cell behind the Markdown report
/// (workload inventory, Fig. 2, §4.1, Fig. 6, Fig. 7, §5.2).
pub fn run_all_plan() -> Plan {
    let mut plan = Plan::new();
    for w in workload_names() {
        // Figure 2: greedy, best case and 2-PFU thrashing case.
        plan.push(Cell::new(
            w,
            SelectionSpec::Greedy,
            MachineSpec::unlimited(0),
        ));
        plan.push(Cell::new(
            w,
            SelectionSpec::Greedy,
            MachineSpec::with_pfus(2, 10),
        ));
        // Figure 6: selective at 2/4/unlimited PFUs, 10-cycle reconfig.
        plan.push(Cell::new(
            w,
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 10),
        ));
        plan.push(Cell::new(
            w,
            SelectionSpec::selective_std(Some(4)),
            MachineSpec::with_pfus(4, 10),
        ));
        plan.push(Cell::new(
            w,
            SelectionSpec::selective_std(None),
            MachineSpec::unlimited(10),
        ));
        // Figure 7 needs the 4-PFU selective *selection* (no extra sim:
        // its cell is the Fig. 6 4-PFU cell, already pushed).
        // §5.2: reconfiguration sweep, selective at 2 PFUs.
        for cycles in [0, 10, 100, 500] {
            plan.push(Cell::new(
                w,
                SelectionSpec::selective_std(Some(2)),
                MachineSpec::with_pfus(2, cycles),
            ));
        }
    }
    plan
}

/// LUT budgets the strategy sweep exercises: one tight enough to force
/// the knapsack to arbitrate, one roomy enough to approach greedy.
pub const KNAPSACK_BUDGETS: [u32; 2] = [256, 1024];

/// The strategy-axis extension of [`run_all_plan`]: knapsack cells at
/// each budget of [`KNAPSACK_BUDGETS`] on the 4-PFU machine. Kept out of
/// [`run_all_plan`] so the default full-scale artifact stays comparable
/// with earlier runs (the golden-equivalence guarantee); `t1000 bench
/// --all --strategies` appends these cells.
pub fn strategy_sweep_plan(plan: &mut Plan) {
    for w in workload_names() {
        for budget in KNAPSACK_BUDGETS {
            plan.push(Cell::new(
                w,
                SelectionSpec::knapsack(budget),
                MachineSpec::with_pfus(4, 10),
            ));
        }
    }
}

/// [`run_all_plan`] plus the strategy sweep.
pub fn run_all_plan_with_strategies() -> Plan {
    let mut plan = run_all_plan();
    strategy_sweep_plan(&mut plan);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_dedups_cells_and_baselines() {
        let mut p = Plan::new();
        let c = Cell::new("epic", SelectionSpec::Greedy, MachineSpec::with_pfus(2, 10));
        p.push(c);
        p.push(c); // duplicate
        p.push(Cell::new(
            "epic",
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 10),
        ));
        // 1 shared baseline + 2 distinct experiment cells.
        assert_eq!(p.cells().len(), 3);
        assert_eq!(p.requested(), 3);
        assert_eq!(p.cells()[0].selection, SelectionSpec::Baseline);
    }

    #[test]
    fn baseline_cell_strips_pfus_but_keeps_branch_and_width() {
        let mut m = MachineSpec::with_pfus(4, 500);
        m.branch = BranchModel::Bimodal {
            entries: 2048,
            penalty: 6,
        };
        m.issue_width = Some(8);
        let b = Cell::new("gsm_dec", SelectionSpec::Greedy, m).baseline_cell();
        assert_eq!(b.machine.pfus, PfuCount::Fixed(0));
        assert_eq!(b.machine.branch, m.branch);
        assert_eq!(b.machine.issue_width, Some(8));
        assert_eq!(b.selection, SelectionSpec::Baseline);
    }

    #[test]
    fn run_all_plan_computes_each_distinct_job_once() {
        let plan = run_all_plan();
        let per_workload = plan.cells().len() / 8;
        assert_eq!(plan.cells().len() % 8, 0);
        // Per workload: baseline + greedy×2 + selective(2,4,unl)@10 +
        // selective(2)@{0,100,500} = 9 unique sims (the §5.2 10-cycle cell
        // dedups against Fig. 6's).
        assert_eq!(per_workload, 9);
        // Per-workload requests before dedup: 8 unique + 1 repeat
        // (the §5.2 10-cycle cell is also Fig. 6's 2-PFU cell).
        assert_eq!(plan.requested(), 8 * 9);
        let mut sel_jobs = HashSet::new();
        for c in plan.cells() {
            if c.selection != SelectionSpec::Baseline {
                sel_jobs.insert((c.workload, c.extract, c.selection));
            }
        }
        assert_eq!(sel_jobs.len(), 8 * 4); // greedy, sel@2, sel@4, sel@unl
    }

    #[test]
    fn strategy_sweep_extends_but_never_perturbs_the_run_all_plan() {
        let base = run_all_plan();
        let extended = run_all_plan_with_strategies();
        // The base plan is a prefix: existing cells keep their order, so
        // the default artifact's cell list is untouched.
        assert_eq!(&extended.cells()[..base.cells().len()], base.cells());
        let extra = &extended.cells()[base.cells().len()..];
        // 8 workloads × 2 budgets, all knapsack (baselines already exist).
        assert_eq!(extra.len(), 8 * KNAPSACK_BUDGETS.len());
        for c in extra {
            assert!(matches!(c.selection, SelectionSpec::Knapsack { .. }));
            assert_eq!(c.machine, MachineSpec::with_pfus(4, 10));
        }
    }

    #[test]
    fn strategy_spec_maps_every_selection_spec() {
        assert_eq!(SelectionSpec::Baseline.strategy_spec(), None);
        assert_eq!(
            SelectionSpec::Greedy.strategy_spec(),
            Some(StrategySpec::Greedy)
        );
        assert_eq!(
            SelectionSpec::selective_std(Some(2)).strategy_spec(),
            Some(StrategySpec::Selective {
                pfus: Some(2),
                gain_threshold_bits: 0.005f64.to_bits(),
                reload_weight_bits: 0,
            })
        );
        assert_eq!(
            SelectionSpec::knapsack(512).strategy_spec(),
            Some(StrategySpec::BudgetKnapsack {
                lut_budget: 512,
                reload_weight_bits: 0,
            })
        );
        assert_eq!(SelectionSpec::Baseline.strategy_id(), "baseline");
        assert_eq!(
            SelectionSpec::knapsack(512).strategy_id(),
            "knapsack(luts=512)"
        );
        assert_eq!(SelectionSpec::knapsack(512).algorithm(), "knapsack");
    }

    #[test]
    fn config_plane_knobs_flow_into_cpu_config_and_not_the_baseline() {
        let m = MachineSpec::with_pfus(2, 10).config_plane(2, 3, 0.25);
        let cfg = m.cpu_config();
        assert_eq!(cfg.pfu_planes, 2);
        assert_eq!(cfg.pfu_prefetch, 3);
        assert!((cfg.conf_compress - 0.25).abs() < 1e-12);
        let b = m.baseline_of();
        assert_eq!(b.pfu_planes, 1);
        assert_eq!(b.pfu_prefetch, 0);
        assert_eq!(b.conf_compress_bits, 0);
        // Default knobs leave the spec equal to the legacy constructor.
        assert_eq!(m.config_plane(1, 0, 0.0), MachineSpec::with_pfus(2, 10));
    }

    #[test]
    fn machine_spec_builds_the_expected_cpu_config() {
        let cfg = MachineSpec::with_pfus(2, 100).cpu_config();
        assert_eq!(cfg.pfus.limit(), Some(2));
        assert_eq!(cfg.reconfig_cycles, 100);
        assert_eq!(cfg.issue_width, 4);
        let narrow = MachineSpec {
            issue_width: Some(1),
            ..MachineSpec::with_pfus(2, 10)
        };
        let cfg = narrow.cpu_config();
        assert_eq!(cfg.fetch_width, 1);
        assert_eq!(cfg.int_alus, 2);
    }
}
