//! # t1000-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation. Each
//! binary prints one artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig2` | Fig. 2 — greedy speedups (unlimited PFUs; 2 PFUs thrash) |
//! | `table_greedy_stats` | §4.1 — greedy instruction counts and lengths |
//! | `fig6` | Fig. 6 — selective speedups with 2/4/unlimited PFUs |
//! | `fig7` | Fig. 7 — LUT-count histogram of selected instructions |
//! | `reconfig_sweep` | §5.2 — robustness up to 500-cycle reconfiguration |
//! | `bitwidth_sweep` | ablation: candidate bitwidth threshold |
//! | `ports_sweep` | ablation: PFU input-port budget |
//! | `run_all` | everything above, for EXPERIMENTS.md |
//!
//! Run with `--release`; full-scale runs simulate millions of cycles.

// Robustness gate: library code must surface failures as typed errors,
// not unwrap/expect panics. Tests (and the legacy panicking helpers
// explicitly allow-listed below) are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod engine;
pub mod fault;
pub mod json;
pub mod plan;
pub mod results;
pub mod runstats;
pub mod shard;

use std::time::Instant;
use t1000_core::{Error, Selection, Session};
use t1000_cpu::{CpuConfig, RunResult};
use t1000_workloads::{Scale, Workload};

/// Scale selection from the environment: `T1000_SCALE=test` switches the
/// harness to small inputs (used by integration tests and CI smoke runs).
pub fn scale_from_env() -> Scale {
    match std::env::var("T1000_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    }
}

/// One benchmark's sessions and baseline run, shared across experiments.
pub struct Prepared {
    pub name: &'static str,
    pub session: Session,
    pub baseline: RunResult,
}

/// Assembles, profiles and baselines one workload.
pub fn prepare(w: &Workload) -> Result<Prepared, Error> {
    let program = w.program().map_err(Error::Asm)?;
    let session = Session::new(program)?;
    let baseline = session.run_baseline(CpuConfig::baseline())?;
    // The harness refuses to report results for an incorrect simulation.
    assert_eq!(
        baseline.sys.checksum,
        w.expected_checksum(),
        "{}: simulator checksum diverges from the Rust reference",
        w.name
    );
    Ok(Prepared {
        name: w.name,
        session,
        baseline,
    })
}

/// Prepares every benchmark at `scale`, in parallel (one thread each).
// Legacy convenience for the figure binaries: workers deliberately panic
// on broken workloads (they have no error channel), so join() only fails
// after a panic that is itself the intended abort.
#[allow(clippy::unwrap_used)]
pub fn prepare_all(scale: Scale) -> Vec<Prepared> {
    let workloads = t1000_workloads::all(scale);
    std::thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| s.spawn(move || prepare(w).unwrap_or_else(|e| panic!("{}: {e}", w.name))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Runs one selection on one machine configuration and verifies
/// architectural results against the baseline.
pub fn run_verified(p: &Prepared, sel: &Selection, cpu: CpuConfig) -> RunResult {
    let run = p
        .session
        .run_with(sel, cpu)
        .unwrap_or_else(|e| panic!("{}: {e}", p.name));
    assert_eq!(
        run.sys, p.baseline.sys,
        "{}: fused run changed architectural results",
        p.name
    );
    run
}

/// Execution-time speedup over the prepared baseline (1.0 = no change,
/// >1 = faster), the y-axis of Figs. 2 and 6.
pub fn speedup(p: &Prepared, run: &RunResult) -> f64 {
    p.baseline.timing.cycles as f64 / run.timing.cycles as f64
}

/// Formats a speedup table row.
pub fn fmt_row(name: &str, cells: &[f64]) -> String {
    let mut s = format!("{name:>10}");
    for c in cells {
        s.push_str(&format!("  {c:>8.3}"));
    }
    s
}

/// [`fmt_row`] over possibly-missing cells: a failed measurement renders
/// as `n/a` instead of aborting the whole table.
pub fn fmt_row_opt(name: &str, cells: &[Option<f64>]) -> String {
    let mut s = format!("{name:>10}");
    for c in cells {
        match c {
            Some(v) => s.push_str(&format!("  {v:>8.3}")),
            None => s.push_str(&format!("  {:>8}", "n/a")),
        }
    }
    s
}

/// Simple wall-clock section timer for harness progress output.
pub struct Timer(Instant, String);

impl Timer {
    pub fn start(label: &str) -> Timer {
        eprintln!("[t1000-bench] {label}...");
        Timer(Instant::now(), label.to_string())
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        eprintln!(
            "[t1000-bench] {} done in {:.1}s",
            self.1,
            self.0.elapsed().as_secs_f64()
        );
    }
}
