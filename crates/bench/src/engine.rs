//! The shared experiment engine.
//!
//! Executes a [`Plan`] in three phases, each fanned
//! out over a scoped-thread worker pool:
//!
//! 1. **prepare** — one profiling [`Session`] per distinct
//!    (workload, extraction config), checksum-verified against the Rust
//!    reference;
//! 2. **select** — one selection job per distinct
//!    (workload, extraction config, selection spec), answered through the
//!    session's memoizing cache;
//! 3. **simulate** — one timing simulation per cell, with architectural
//!    results verified against the workload's baseline run.
//!
//! Every figure binary and `run_all` is a thin view over the resulting
//! [`EngineRun`]; none of them re-run selections or simulations.
//!
//! The engine is fault-tolerant: each cell runs under `catch_unwind`
//! with bounded deterministic retry, so one poisoned cell records a
//! [`CellOutcome::Failed`] while every other cell completes. Watchdogs
//! ([`EngineConfig::max_cycles`] fuel, [`EngineConfig::wall_limit`])
//! bound divergent work, completed cells stream to a checkpoint for
//! `--resume`, and a [`FaultPlan`] can deterministically inject panics
//! and PFU configuration faults for testing (see `docs/ROBUSTNESS.md`).
//!
//! A one-cell experiment end to end (the engine adds the implied
//! PFU-less baseline cell automatically):
//!
//! ```
//! use t1000_bench::engine::execute;
//! use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
//! use t1000_workloads::Scale;
//!
//! let mut plan = Plan::new();
//! plan.push(Cell::new(
//!     "gsm_dec",
//!     SelectionSpec::selective_std(Some(2)),
//!     MachineSpec::with_pfus(2, 10),
//! ));
//! let run = execute(&plan, Scale::Test);
//! assert!(run.failures.is_empty());
//! assert!(run.cells.len() >= 2); // the cell plus its implied baseline
//! for cell in &run.cells {
//!     // Checksum-verified against the Rust reference, and every cycle
//!     // attributed: busy + Σ stalls == total.
//!     assert!(cell.attr.checks_out());
//!     assert_eq!(cell.attr.total_cycles, cell.cycles);
//! }
//! ```

use crate::checkpoint;
use crate::fault::FaultPlan;
use crate::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use t1000_core::{ExtractConfig, Selection, Session};
use t1000_cpu::{AttrCollector, CycleAttribution, ExecError};
use t1000_workloads::{Scale, Workload};

/// Worker-pool size: `T1000_THREADS` if set, else the machine's
/// available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("T1000_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `threads` scoped workers,
/// preserving input order. Items are claimed via an atomic cursor, so a
/// slow job never blocks the queue behind it.
// Workers are panic-isolated by their callers (cell bodies run under
// `quiet_catch_unwind`), so `join` only fails on a bug in the pool
// itself — the unwrap/expect here are genuine assertions, not error
// handling.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.drain(..).flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker failed to fill its slot"))
        .collect()
}

// ---------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------

thread_local! {
    static QUIET_PANIC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent while the
/// current thread is inside [`quiet_catch_unwind`] and delegates to the
/// previous hook otherwise — isolated cell panics become typed failures
/// without spamming stderr, while genuine panics elsewhere keep their
/// backtrace.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANIC.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(message)`. The session's
/// interior mutexes recover from poisoning (see `SelectionCache`), so
/// unwinding past them is safe.
fn quiet_catch_unwind<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    QUIET_PANIC.with(|q| q.set(true));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    QUIET_PANIC.with(|q| q.set(false));
    out.map_err(panic_message)
}

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

/// Why a cell failed. The taxonomy is closed and each cause knows whether
/// retrying can help: transient causes (an isolated panic) are retried on
/// the fixed backoff schedule; deterministic causes (bad workload, fuel
/// exhaustion, checksum divergence) fail immediately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The cell names a workload the harness does not know.
    UnknownWorkload,
    /// Assembly/profiling of the workload failed.
    Prepare(String),
    /// The selection job for this cell failed.
    Selection(String),
    /// The timing simulation failed.
    Simulate(String),
    /// Simulation fuel exhausted (`EngineConfig::max_cycles`).
    Timeout { max_cycles: u64 },
    /// The engine's wall-clock watchdog expired before the cell started.
    WallClock,
    /// The simulated checksum diverges from the Rust reference.
    ChecksumMismatch { got: u64, expected: u64 },
    /// The fused run changed architectural results vs. the baseline.
    SemanticsChanged,
    /// The cell's worker panicked (message attached).
    Panic(String),
}

impl FailureCause {
    /// Whether a retry can plausibly succeed. Only panics are treated as
    /// transient; every other cause is deterministic for a fixed input.
    pub fn retryable(&self) -> bool {
        matches!(self, FailureCause::Panic(_))
    }

    /// Stable snake_case tag used in the JSON artifact.
    pub fn kind(&self) -> &'static str {
        match self {
            FailureCause::UnknownWorkload => "unknown_workload",
            FailureCause::Prepare(_) => "prepare",
            FailureCause::Selection(_) => "selection",
            FailureCause::Simulate(_) => "simulate",
            FailureCause::Timeout { .. } => "timeout",
            FailureCause::WallClock => "wall_clock",
            FailureCause::ChecksumMismatch { .. } => "checksum_mismatch",
            FailureCause::SemanticsChanged => "semantics_changed",
            FailureCause::Panic(_) => "panic",
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::UnknownWorkload => write!(f, "unknown workload"),
            FailureCause::Prepare(e) => write!(f, "prepare failed: {e}"),
            FailureCause::Selection(e) => write!(f, "selection failed: {e}"),
            FailureCause::Simulate(e) => write!(f, "simulation failed: {e}"),
            FailureCause::Timeout { max_cycles } => {
                write!(f, "simulation fuel exhausted ({max_cycles} cycles)")
            }
            FailureCause::WallClock => write!(f, "wall-clock watchdog expired"),
            FailureCause::ChecksumMismatch { got, expected } => write!(
                f,
                "checksum 0x{got:016x} diverges from reference 0x{expected:016x}"
            ),
            FailureCause::SemanticsChanged => {
                write!(f, "fused run changed architectural results")
            }
            FailureCause::Panic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

/// One cell's failure record: which cell, why, and after how many
/// attempts.
#[derive(Clone, Debug)]
pub struct EngineError {
    pub cell: Cell,
    pub cause: FailureCause,
    /// Attempts made (0 = failed before the first attempt, e.g. a
    /// cascading prepare/selection failure or the wall-clock watchdog).
    pub attempts: u32,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: {} (attempts: {})",
            self.cell.workload,
            self.cell.selection.algorithm(),
            self.cause,
            self.attempts
        )
    }
}

/// What became of one planned cell.
pub enum CellOutcome {
    /// The simulation completed and verified.
    Completed(Box<CellResult>),
    /// The cell failed; the remaining cells ran anyway.
    Failed(EngineError),
}

// ---------------------------------------------------------------------
// Engine configuration
// ---------------------------------------------------------------------

/// Environment variable holding the default retry policy as `N[:M]`
/// (`N` attempts, optional flat backoff of `M` milliseconds) — the
/// fallback when `t1000 bench --retries/--backoff-ms` are not given.
pub const RETRY_ENV: &str = "T1000_RETRY";

/// Bounded deterministic retry: up to `max_attempts` tries per cell, with
/// a fixed backoff schedule between them — no randomness, so a retried
/// run produces the same artifact as an untroubled one. Shared by the
/// engine's local cell retry, artifact-write retry, and the shard
/// coordinator's remote-transport reconnects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per retryable failure (1 = no retry).
    pub max_attempts: u32,
    /// Milliseconds slept before attempt 2, 3, ... (the last entry
    /// repeats for further attempts).
    pub backoff_ms: &'static [u64],
    /// Flat override (`--backoff-ms M`): when set, every inter-attempt
    /// wait is exactly this many milliseconds instead of the schedule.
    pub backoff_override_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: &[10, 50],
            backoff_override_ms: None,
        }
    }
}

impl RetryPolicy {
    /// The fixed delay before `attempt` (1-based; attempt 1 never waits).
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        if let Some(ms) = self.backoff_override_ms {
            return Duration::from_millis(ms);
        }
        let i = (attempt - 2) as usize;
        let ms = self
            .backoff_ms
            .get(i)
            .or(self.backoff_ms.last())
            .copied()
            .unwrap_or(0);
        Duration::from_millis(ms)
    }

    /// Parses the [`RETRY_ENV`] grammar `N[:M]`: `N` total attempts
    /// (at least 1), optionally followed by a flat backoff of `M`
    /// milliseconds between attempts.
    pub fn parse_spec(spec: &str) -> Result<RetryPolicy, String> {
        let spec = spec.trim();
        let (attempts, backoff) = match spec.split_once(':') {
            Some((n, m)) => (n, Some(m)),
            None => (spec, None),
        };
        let max_attempts: u32 = attempts
            .parse()
            .map_err(|_| format!("bad retry spec {spec:?}: expected N[:M]"))?;
        if max_attempts == 0 {
            return Err(format!("bad retry spec {spec:?}: attempts must be >= 1"));
        }
        let backoff_override_ms = match backoff {
            Some(m) => Some(
                m.parse::<u64>()
                    .map_err(|_| format!("bad retry spec {spec:?}: `{m}` is not milliseconds"))?,
            ),
            None => None,
        };
        Ok(RetryPolicy {
            max_attempts,
            backoff_override_ms,
            ..RetryPolicy::default()
        })
    }
}

/// Knobs governing one engine invocation. `Default` is the clean path:
/// no fuel limit, no wall-clock watchdog, no faults, no checkpoint.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Retry/backoff policy for transient (panic) failures.
    pub retry: RetryPolicy,
    /// Per-simulation cycle fuel (0 = unlimited). Threaded into
    /// `CpuConfig::max_cycles`; exhaustion fails the cell with
    /// [`FailureCause::Timeout`].
    pub max_cycles: u64,
    /// Engine-level wall-clock watchdog: cells not yet started when the
    /// deadline passes are marked [`FailureCause::WallClock`] and skipped.
    pub wall_limit: Option<Duration>,
    /// Deterministic fault injection (see [`crate::fault`]).
    pub faults: FaultPlan,
    /// Zero the wall-clock seconds fields in [`EngineStats`] — and the
    /// per-cell `host_ns`/`sim_khz` measurements — so repeated runs
    /// produce byte-identical artifacts (used by `--resume` tests).
    pub deterministic: bool,
    /// Disable the steady-state hot-loop replay fast path
    /// ([`t1000_cpu::CpuConfig::fast_path`], on by default) for every
    /// simulation in this run. The results are bit-identical either way;
    /// this knob exists to measure the accurate path's host throughput
    /// (`--no-fast-path`).
    pub no_fast_path: bool,
    /// Flush completed cells to this checkpoint file as they finish.
    pub checkpoint: Option<PathBuf>,
    /// Restore completed cells from the checkpoint instead of
    /// re-simulating them.
    pub resume: bool,
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Summary of one extended instruction, for Fig. 7 and the JSON artifact.
#[derive(Clone, Copy, Debug)]
pub struct ConfSummary {
    pub luts: u32,
    pub depth: u32,
    pub width: u8,
    pub seq_len: usize,
    pub num_sites: usize,
    pub total_gain: u64,
}

/// One selection job's outcome (shared by every cell that simulates it).
pub struct SelectionRecord {
    pub workload: &'static str,
    pub extract: ExtractConfig,
    pub spec: SelectionSpec,
    pub num_confs: usize,
    pub num_sites: usize,
    pub confs: Vec<ConfSummary>,
    /// The materialized selection. `Some` when this process ran the
    /// selection job itself; `None` when the record was reconstructed
    /// from another process's summaries (the shard-merge path), where
    /// only the summary fields are needed to render the artifact.
    selection: Option<Arc<Selection>>,
}

impl SelectionRecord {
    /// Builds the record summarising `selection` (one [`ConfSummary`] per
    /// chosen configuration). Used by the engine's select phase and by
    /// the serving layer's `select` method.
    pub fn summarize(
        workload: &'static str,
        extract: ExtractConfig,
        spec: SelectionSpec,
        selection: Arc<Selection>,
    ) -> SelectionRecord {
        let confs = selection
            .confs
            .iter()
            .map(|c| ConfSummary {
                luts: c.cost.luts,
                depth: c.cost.depth,
                width: c.width,
                seq_len: c.seq_len,
                num_sites: c.num_sites,
                total_gain: c.total_gain,
            })
            .collect();
        SelectionRecord {
            workload,
            extract,
            spec,
            num_confs: selection.num_confs(),
            num_sites: selection.fusion.num_sites(),
            confs,
            selection: Some(selection),
        }
    }

    /// Rebuilds a record from summary data alone — the shard-merge path,
    /// where the selection job ran in a worker process and only its
    /// summaries travelled over the wire. The record renders into the
    /// artifact identically to one built by [`SelectionRecord::summarize`]
    /// in-process; [`SelectionRecord::selection`] returns `None`.
    pub fn from_summaries(
        workload: &'static str,
        extract: ExtractConfig,
        spec: SelectionSpec,
        num_confs: usize,
        num_sites: usize,
        confs: Vec<ConfSummary>,
    ) -> SelectionRecord {
        SelectionRecord {
            workload,
            extract,
            spec,
            num_confs,
            num_sites,
            confs,
            selection: None,
        }
    }

    /// Smallest/largest fused sequence length (0 if nothing was selected).
    pub fn seq_len_range(&self) -> (usize, usize) {
        let min = self.confs.iter().map(|c| c.seq_len).min().unwrap_or(0);
        let max = self.confs.iter().map(|c| c.seq_len).max().unwrap_or(0);
        (min, max)
    }

    /// Total estimated dynamic cycles saved by the selection.
    pub fn total_gain(&self) -> u64 {
        self.confs.iter().map(|c| c.total_gain).sum()
    }

    /// The underlying selection, when this process materialized it
    /// (`None` for records rebuilt from wire summaries).
    pub fn selection(&self) -> Option<&Selection> {
        self.selection.as_deref()
    }
}

/// One simulated cell's measurements.
#[derive(Clone)]
pub struct CellResult {
    pub cell: Cell,
    pub cycles: u64,
    pub base_instructions: u64,
    pub base_ipc: f64,
    pub reconfigurations: u64,
    pub conf_hits: u64,
    pub ext_executed: u64,
    /// PFU configuration loads that failed and fell back to the scalar
    /// sequence (nonzero only under `pfu@N` fault injection).
    pub pfu_load_faults: u64,
    /// Demand uses whose configuration was already streaming (or loaded)
    /// in a shadow plane when the extended instruction arrived (schema
    /// v6; nonzero only with `--pfu-prefetch`/`--pfu-planes 2`).
    pub pfu_prefetch_hits: u64,
    /// Reload cycles overlapped with useful execution by the
    /// config-plane model (schema v6).
    pub pfu_hidden_reload_cycles: u64,
    /// Reload cycles the pipeline actually stalled for (schema v6).
    pub pfu_exposed_reload_cycles: u64,
    /// Total configuration-stream words fetched across all reloads
    /// (schema v6).
    pub pfu_stream_words: u64,
    pub branch_accuracy: f64,
    pub checksum: u64,
    /// Host wall-clock nanoseconds the timing simulation took (schema
    /// v5). Zeroed under [`EngineConfig::deterministic`].
    pub host_ns: u64,
    /// Host throughput in simulated kilocycles per host second (schema
    /// v5): `cycles / host_seconds / 1000`. The CI-tracked metric.
    pub sim_khz: f64,
    /// Hot-loop replay fast-path counters (schema v5; all zero when the
    /// fast path is disabled).
    pub fast: t1000_cpu::FastPathStats,
    /// Where the cell's cycles went: every simulation runs under an
    /// aggregate [`AttrCollector`], so
    /// `attr.busy_cycles + Σ attr.stalls == cycles` for every cell —
    /// the schema artifact's mechanism check.
    pub attr: CycleAttribution,
}

impl CellResult {
    /// Re-attaches `cell` to measurements restored from a checkpoint —
    /// shared by the engine's `--resume` path and the shard
    /// coordinator's resume-under-sharding path.
    pub fn from_restored(cell: Cell, r: &checkpoint::RestoredCell) -> CellResult {
        CellResult {
            cell,
            cycles: r.cycles,
            base_instructions: r.base_instructions,
            base_ipc: r.base_ipc,
            reconfigurations: r.reconfigurations,
            conf_hits: r.conf_hits,
            ext_executed: r.ext_executed,
            pfu_load_faults: r.pfu_load_faults,
            pfu_prefetch_hits: r.pfu_prefetch_hits,
            pfu_hidden_reload_cycles: r.pfu_hidden_reload_cycles,
            pfu_exposed_reload_cycles: r.pfu_exposed_reload_cycles,
            pfu_stream_words: r.pfu_stream_words,
            branch_accuracy: r.branch_accuracy,
            checksum: r.checksum,
            host_ns: r.host_ns,
            sim_khz: r.sim_khz,
            fast: r.fast,
            attr: r.attr.clone(),
        }
    }
}

/// Simulated kilocycles per host second (`cycles / host_secs / 1000`);
/// 0 when the host time was not measured (or zeroed for determinism).
pub fn sim_khz(cycles: u64, host_ns: u64) -> f64 {
    if host_ns == 0 {
        0.0
    } else {
        cycles as f64 * 1e6 / host_ns as f64
    }
}

/// Engine bookkeeping: how much work the plan implied, how much was
/// actually run, and where the wall-clock went.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Cells requested by the plan's callers (counting duplicates).
    pub cells_requested: usize,
    /// Distinct cells simulated (including implied baselines).
    pub cells_simulated: usize,
    /// Distinct selection jobs executed.
    pub selection_jobs: usize,
    /// Session-cache hits/misses summed over all sessions.
    pub selection_hits: u64,
    pub selection_misses: u64,
    /// Seconds inside the selection algorithms (cache misses only).
    pub selection_compute_secs: f64,
    /// Wall-clock per phase.
    pub prepare_secs: f64,
    pub select_secs: f64,
    pub simulate_secs: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Requested cells answered by an already-planned simulation.
    pub cells_deduped: usize,
    /// Retry attempts consumed across all cells.
    pub retries: u64,
    /// Cells that ended in [`CellOutcome::Failed`].
    pub failed_cells: usize,
    /// Cells restored from a `--resume` checkpoint instead of simulated.
    pub cells_restored: usize,
}

/// Everything one engine invocation produced.
pub struct EngineRun {
    pub scale: Scale,
    pub workloads: Vec<WorkloadInfo>,
    pub selections: Vec<SelectionRecord>,
    pub cells: Vec<CellResult>,
    /// Cells that failed (panic, timeout, cascade...), in plan order.
    /// Empty on a healthy run.
    pub failures: Vec<EngineError>,
    pub stats: EngineStats,
    cell_index: HashMap<Cell, usize>,
    selection_index: HashMap<(&'static str, ExtractConfig, SelectionSpec), usize>,
}

/// Identity and reference data for one workload.
pub struct WorkloadInfo {
    pub name: &'static str,
    pub expected_checksum: u64,
}

impl EngineRun {
    /// Assembles a run from parts produced elsewhere — the shard
    /// coordinator's merge path, where cells and selection summaries
    /// arrive from worker processes. Indexes are rebuilt here, so the
    /// assembled run answers [`EngineRun::cell`]/[`EngineRun::speedup`]/
    /// [`EngineRun::selection`] exactly like one produced by
    /// [`execute_with`]; callers are responsible for supplying `cells`,
    /// `selections` and `failures` in the same (plan/canonical) order an
    /// in-process run would, which is what makes merged artifacts
    /// byte-identical.
    pub fn assemble(
        scale: Scale,
        workloads: Vec<WorkloadInfo>,
        selections: Vec<SelectionRecord>,
        cells: Vec<CellResult>,
        failures: Vec<EngineError>,
        stats: EngineStats,
    ) -> EngineRun {
        let cell_index = cells.iter().enumerate().map(|(i, c)| (c.cell, i)).collect();
        let selection_index = selections
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.workload, s.extract, s.spec), i))
            .collect();
        EngineRun {
            scale,
            workloads,
            selections,
            cells,
            failures,
            stats,
            cell_index,
            selection_index,
        }
    }

    /// The measurements for `cell`, or `None` if the cell was not in the
    /// executed plan or failed.
    pub fn cell(&self, cell: Cell) -> Option<&CellResult> {
        self.cell_index.get(&cell).map(|&i| &self.cells[i])
    }

    /// The baseline measurements `cell` is normalised against, if they
    /// completed.
    pub fn baseline(&self, cell: Cell) -> Option<&CellResult> {
        self.cell(cell.baseline_cell())
    }

    /// Execution-time speedup of `cell` over its baseline (>1 = faster).
    /// `None` if either measurement is missing.
    pub fn speedup(&self, cell: Cell) -> Option<f64> {
        Some(self.baseline(cell)?.cycles as f64 / self.cell(cell)?.cycles as f64)
    }

    /// The selection record backing `cell` (None for baseline cells and
    /// failed selection jobs).
    pub fn selection(&self, cell: Cell) -> Option<&SelectionRecord> {
        self.selection_index
            .get(&(cell.workload, cell.extract, cell.selection))
            .map(|&i| &self.selections[i])
    }

    /// Aborts with the failure table unless every cell completed. The
    /// contract of the single-purpose figure binaries, which have no
    /// partial-output mode; `run_all` and the CLI report failures
    /// gracefully instead.
    pub fn expect_healthy(&self, what: &str) -> &EngineRun {
        if !self.failures.is_empty() {
            eprint!("{}", crate::results::render_failures(&self.failures));
            panic!("{what}: {} cell(s) failed", self.failures.len());
        }
        self
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Executes `plan` at `scale` with the default (clean-path)
/// [`EngineConfig`] and returns every measurement it implies. Failures
/// are recorded in [`EngineRun::failures`], never panicked.
pub fn execute(plan: &Plan, scale: Scale) -> EngineRun {
    execute_with(plan, scale, &EngineConfig::default())
}

/// The plan's distinct selection jobs in canonical order: first
/// appearance over the cells, then the selection-only extras, baseline
/// specs excluded. Both the engine's select phase and the shard
/// coordinator/worker wire protocol index selection jobs by position in
/// this list, which is why it is derived from the plan alone.
pub fn selection_keys(plan: &Plan) -> Vec<(&'static str, ExtractConfig, SelectionSpec)> {
    let mut keys: Vec<(&'static str, ExtractConfig, SelectionSpec)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let cell_keys = plan
        .cells()
        .iter()
        .map(|c| (c.workload, c.extract, c.selection));
    for key in cell_keys.chain(plan.selection_only().iter().copied()) {
        if key.2 != SelectionSpec::Baseline && seen.insert(key) {
            keys.push(key);
        }
    }
    keys
}

/// [`execute`] with explicit robustness configuration.
pub fn execute_with(plan: &Plan, scale: Scale, config: &EngineConfig) -> EngineRun {
    let threads = num_threads();
    let cells = plan.cells();

    // ---- Phase 1: prepare one session per (workload, extract). --------
    let t0 = Instant::now();
    let mut session_keys: Vec<(&'static str, ExtractConfig)> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for c in cells {
            if seen.insert((c.workload, c.extract)) {
                session_keys.push((c.workload, c.extract));
            }
        }
    }
    let run_opts = config.run_options();
    let sessions: HashMap<(&'static str, ExtractConfig), Result<CellRunner, FailureCause>> =
        session_keys
            .iter()
            .zip(parallel_map(&session_keys, threads, |&(name, extract)| {
                quiet_catch_unwind(|| CellRunner::for_workload(name, extract, scale, &run_opts))
                    .unwrap_or_else(|msg| Err(FailureCause::Panic(msg)))
            }))
            .map(|(&k, v)| (k, v))
            .collect();
    let prepare_secs = t0.elapsed().as_secs_f64();

    // ---- Phase 2: run each distinct selection job once. ----------------
    let t0 = Instant::now();
    let selection_keys = selection_keys(plan);
    let selection_results: Vec<Result<SelectionRecord, FailureCause>> =
        parallel_map(&selection_keys, threads, |&(name, extract, spec)| {
            let prepared = match &sessions[&(name, extract)] {
                Ok(p) => p,
                Err(cause) => return Err(cause.clone()),
            };
            let Some(sspec) = spec.strategy_spec() else {
                return Err(FailureCause::Selection(
                    "baseline cells have no selection job".into(),
                ));
            };
            quiet_catch_unwind(|| {
                let selection = prepared.session().select_shared(&sspec);
                SelectionRecord::summarize(name, extract, spec, selection)
            })
            .map_err(FailureCause::Panic)
        });
    let mut selections: Vec<SelectionRecord> = Vec::new();
    let mut selection_index: HashMap<(&'static str, ExtractConfig, SelectionSpec), usize> =
        HashMap::new();
    let mut selection_failures: HashMap<
        (&'static str, ExtractConfig, SelectionSpec),
        FailureCause,
    > = HashMap::new();
    let num_selection_jobs = selection_keys.len();
    for (key, result) in selection_keys.into_iter().zip(selection_results) {
        match result {
            Ok(record) => {
                selection_index.insert(key, selections.len());
                selections.push(record);
            }
            Err(cause) => {
                selection_failures.insert(key, cause);
            }
        }
    }
    let select_secs = t0.elapsed().as_secs_f64();

    // ---- Phase 3: simulate every cell, isolated and checkpointed. ------
    let t0 = Instant::now();
    let restored: HashMap<String, checkpoint::RestoredCell> = match &config.checkpoint {
        Some(path) if config.resume && path.exists() => match checkpoint::load(path, scale) {
            Ok(map) => map,
            Err(e) => {
                eprintln!("[t1000-bench] ignoring unusable checkpoint: {e}");
                HashMap::new()
            }
        },
        _ => HashMap::new(),
    };
    let completed: Mutex<BTreeMap<usize, CellResult>> = Mutex::new(BTreeMap::new());
    let retries = AtomicU64::new(0);
    let cells_restored = AtomicUsize::new(0);
    let checkpoint_writes = AtomicU32::new(0);
    let deadline = config.wall_limit.map(|d| Instant::now() + d);

    // After each completion, flush the whole completed set atomically —
    // a kill at any instant leaves a loadable checkpoint.
    let record_completed = |idx: usize, result: &CellResult| {
        let mut done = completed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        done.insert(idx, result.clone());
        if let Some(path) = &config.checkpoint {
            let attempt = checkpoint_writes.fetch_add(1, Ordering::Relaxed) + 1;
            if config.faults.checkpoint_write_fails(attempt) {
                eprintln!(
                    "[t1000-bench] injected checkpoint I/O failure (write {attempt}); continuing"
                );
            } else if let Err(e) = checkpoint::write(path, scale, &done) {
                // A failed flush loses resume granularity, never results.
                eprintln!("[t1000-bench] checkpoint write failed: {e}; continuing");
            }
        }
    };

    let indexed: Vec<(usize, Cell)> = cells.iter().copied().enumerate().collect();
    let outcomes: Vec<CellOutcome> = parallel_map(&indexed, threads, |&(idx, cell)| {
        if let Some(r) = restored.get(&checkpoint::cell_key(&cell)) {
            cells_restored.fetch_add(1, Ordering::Relaxed);
            let result = CellResult::from_restored(cell, r);
            record_completed(idx, &result);
            return CellOutcome::Completed(Box::new(result));
        }
        let fail = |cause: FailureCause, attempts: u32| {
            CellOutcome::Failed(EngineError {
                cell,
                cause,
                attempts,
            })
        };
        let prepared = match &sessions[&(cell.workload, cell.extract)] {
            Ok(p) => p,
            Err(cause) => return fail(cause.clone(), 0),
        };
        let selection_key = (cell.workload, cell.extract, cell.selection);
        if let Some(cause) = selection_failures.get(&selection_key) {
            return fail(FailureCause::Selection(cause.to_string()), 0);
        }
        let mut attempt = 0u32;
        loop {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return fail(FailureCause::WallClock, attempt);
                }
            }
            attempt += 1;
            if attempt > 1 {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(config.retry.backoff_before(attempt));
            }
            let result = quiet_catch_unwind(|| {
                simulate_cell(
                    idx,
                    attempt,
                    cell,
                    prepared,
                    &selections,
                    &selection_index,
                    config,
                )
            });
            let cause = match result {
                Ok(Ok(result)) => {
                    record_completed(idx, &result);
                    return CellOutcome::Completed(Box::new(result));
                }
                Ok(Err(cause)) => cause,
                Err(msg) => FailureCause::Panic(msg),
            };
            if !cause.retryable() || attempt >= config.retry.max_attempts {
                return fail(cause, attempt);
            }
        }
    });
    let simulate_secs = t0.elapsed().as_secs_f64();

    // ---- Bookkeeping. ---------------------------------------------------
    let mut selection_hits = 0;
    let mut selection_misses = 0;
    let mut selection_compute_secs = 0.0;
    for p in sessions.values().flatten() {
        let s = p.session().selection_cache_stats();
        selection_hits += s.hits;
        selection_misses += s.misses;
        selection_compute_secs += s.compute_secs();
    }
    let mut results: Vec<CellResult> = Vec::new();
    let mut failures: Vec<EngineError> = Vec::new();
    let mut cell_index: HashMap<Cell, usize> = HashMap::new();
    for outcome in outcomes {
        match outcome {
            CellOutcome::Completed(r) => {
                cell_index.insert(r.cell, results.len());
                results.push(*r);
            }
            CellOutcome::Failed(e) => failures.push(e),
        }
    }
    let workloads = workload_infos(scale, cells);

    let mut stats = EngineStats {
        cells_requested: plan.requested(),
        cells_simulated: results.len(),
        selection_jobs: num_selection_jobs,
        selection_hits,
        selection_misses,
        selection_compute_secs,
        prepare_secs,
        select_secs,
        simulate_secs,
        threads,
        cells_deduped: plan.deduped(),
        retries: retries.load(Ordering::Relaxed),
        failed_cells: failures.len(),
        cells_restored: cells_restored.load(Ordering::Relaxed),
    };
    if config.deterministic {
        // Wall-clock is the only nondeterministic content in the
        // artifact; zeroing it makes repeated runs byte-identical.
        stats.selection_compute_secs = 0.0;
        stats.prepare_secs = 0.0;
        stats.select_secs = 0.0;
        stats.simulate_secs = 0.0;
        for r in &mut results {
            r.host_ns = 0;
            r.sim_khz = 0.0;
        }
    }

    EngineRun {
        scale,
        workloads,
        selections,
        cells: results,
        failures,
        stats,
        cell_index,
        selection_index,
    }
}

/// Per-simulation knobs a [`CellRunner`] threads into every
/// [`t1000_cpu::CpuConfig`] it builds: the cycle-fuel watchdog and the
/// fast-path switch. Extracted from [`EngineConfig`] so the runner can
/// serve requests that carry their own limits (the `t1000 serve` daemon).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RunOptions {
    /// Cycle fuel per simulation (0 = unlimited); exhaustion fails the
    /// cell with [`FailureCause::Timeout`].
    pub max_cycles: u64,
    /// Disable the hot-loop replay fast path (results are bit-identical
    /// either way; see `docs/FASTPATH.md`).
    pub no_fast_path: bool,
}

impl EngineConfig {
    /// The per-simulation slice of this engine configuration.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            max_cycles: self.max_cycles,
            no_fast_path: self.no_fast_path,
        }
    }
}

/// Runs experiment cells for one prepared program, outside any batch
/// plan — the per-cell execution engine extracted from the engine's
/// phase machinery so that long-running services can call it one
/// request at a time ([`crate::plan::Cell`] in, [`CellResult`] out).
///
/// A runner owns a profiled [`Session`] plus the canonical baseline
/// (PFU-less) reference run, which pins the architectural checksum every
/// fused simulation is verified against. The batch engine builds one per
/// (workload, extract) in its prepare phase; the `t1000 serve` daemon
/// builds them on demand from a process-wide
/// [`t1000_core::SessionStore`] and keeps them warm across requests.
///
/// ```
/// use t1000_bench::engine::{CellRunner, RunOptions};
/// use t1000_bench::plan::{Cell, MachineSpec, SelectionSpec};
/// use t1000_core::ExtractConfig;
/// use t1000_workloads::Scale;
///
/// let opts = RunOptions::default();
/// let runner =
///     CellRunner::for_workload("gsm_dec", ExtractConfig::default(), Scale::Test, &opts).unwrap();
/// let cell = Cell::new(
///     "gsm_dec",
///     SelectionSpec::selective_std(Some(2)),
///     MachineSpec::with_pfus(2, 10),
/// );
/// let result = runner.run_cell(cell, &opts).unwrap();
/// assert!(result.cycles < runner.baseline_cycles()); // fusion pays off
/// assert_eq!(result.checksum, runner.expected_checksum()); // and verifies
/// assert!(result.attr.checks_out()); // every cycle attributed
/// ```
pub struct CellRunner {
    session: Arc<Session>,
    expected_checksum: u64,
    /// The canonical baseline run: pins the architectural reference every
    /// fused run is verified against, and doubles as the default
    /// baseline cell's result.
    reference: t1000_cpu::RunResult,
    /// Cycle attribution of the reference run (the baseline cell's attr).
    reference_attr: CycleAttribution,
    /// Host nanoseconds the reference simulation took (the baseline
    /// cell's `host_ns`).
    reference_host_ns: u64,
    /// The options the reference run used; the reference is only reused
    /// for baseline cells requested under identical options.
    prepare_opts: RunOptions,
}

fn exec_cause(e: t1000_core::Error, deterministic: fn(String) -> FailureCause) -> FailureCause {
    match e {
        t1000_core::Error::Exec(ExecError::CycleLimit(n)) => {
            FailureCause::Timeout { max_cycles: n }
        }
        t1000_core::Error::SemanticsChanged { .. } => FailureCause::SemanticsChanged,
        other => deterministic(other.to_string()),
    }
}

impl CellRunner {
    /// Prepares a runner for a registry workload: assemble, profile,
    /// simulate the canonical baseline, and verify its checksum against
    /// the workload's bit-exact Rust reference.
    pub fn for_workload(
        name: &'static str,
        extract: ExtractConfig,
        scale: Scale,
        opts: &RunOptions,
    ) -> Result<CellRunner, FailureCause> {
        let workload =
            t1000_workloads::by_name(name, scale).ok_or(FailureCause::UnknownWorkload)?;
        let program = workload
            .program()
            .map_err(|e| FailureCause::Prepare(e.to_string()))?;
        let session = Session::with_extract(program, extract)
            .map_err(|e| exec_cause(e, FailureCause::Prepare))?;
        CellRunner::from_session(Arc::new(session), Some(workload.expected_checksum()), opts)
    }

    /// Prepares a runner for an already-built session (the serving path:
    /// the session typically comes from a shared
    /// [`t1000_core::SessionStore`]). Runs the canonical baseline; when
    /// `expected_checksum` is `None` — an ad-hoc program with no external
    /// reference — the baseline run's own checksum becomes the
    /// expectation every fused run must reproduce.
    pub fn from_session(
        session: Arc<Session>,
        expected_checksum: Option<u64>,
        opts: &RunOptions,
    ) -> Result<CellRunner, FailureCause> {
        // One canonical run pins the architectural reference.
        let mut sink = AttrCollector::new();
        let cpu = Self::cpu_for(&MachineSpec::with_pfus(0, 0), opts);
        let t0 = Instant::now();
        let reference = session
            .run_baseline_observed(cpu, &mut sink)
            .map_err(|e| exec_cause(e, FailureCause::Prepare))?;
        let reference_host_ns = t0.elapsed().as_nanos() as u64;
        let expected = expected_checksum.unwrap_or(reference.sys.checksum);
        if reference.sys.checksum != expected {
            return Err(FailureCause::ChecksumMismatch {
                got: reference.sys.checksum,
                expected,
            });
        }
        Ok(CellRunner {
            session,
            expected_checksum: expected,
            reference,
            reference_attr: sink.attr,
            reference_host_ns,
            prepare_opts: *opts,
        })
    }

    /// The underlying (shared) session.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// The checksum every run of this program must produce.
    pub fn expected_checksum(&self) -> u64 {
        self.expected_checksum
    }

    /// Cycles of the canonical (PFU-less, default-machine) baseline run —
    /// the normaliser for speedups on default-machine cells.
    pub fn baseline_cycles(&self) -> u64 {
        self.reference.timing.cycles
    }

    fn cpu_for(machine: &MachineSpec, opts: &RunOptions) -> t1000_cpu::CpuConfig {
        let mut cpu = machine.cpu_config();
        cpu.max_cycles = opts.max_cycles;
        cpu.fast_path = !opts.no_fast_path;
        cpu
    }

    /// Resolves `spec`'s selection through the session's memo cache,
    /// panic-isolated (a selector panic becomes [`FailureCause::Panic`]).
    /// Baseline specs have no selection job and fail typed.
    pub fn select(&self, spec: &SelectionSpec) -> Result<Arc<Selection>, FailureCause> {
        let Some(sspec) = spec.strategy_spec() else {
            return Err(FailureCause::Selection(
                "baseline cells have no selection job".into(),
            ));
        };
        quiet_catch_unwind(|| self.session.select_shared(&sspec)).map_err(FailureCause::Panic)
    }

    /// Simulates `cell` with a pre-resolved `selection` (`None` =
    /// baseline). This is the batch engine's entry point: the engine
    /// resolves selections in its select phase, so a simulation never
    /// touches the memo cache and cache counters stay deterministic
    /// under `--resume`. The canonical baseline cell reuses the
    /// reference run when `opts` match the prepare-time options.
    pub fn run_cell_with(
        &self,
        cell: Cell,
        selection: Option<&Selection>,
        opts: &RunOptions,
    ) -> Result<CellResult, FailureCause> {
        let (run, attr, host_ns) = if selection.is_none()
            && cell.selection == SelectionSpec::Baseline
            && cell.machine == MachineSpec::with_pfus(0, 0)
            && *opts == self.prepare_opts
        {
            // The canonical baseline was already simulated during prepare
            // (it pins the architectural reference) — reuse it. The
            // prepare run used the same options, so the reuse is exact.
            (
                self.reference.clone(),
                self.reference_attr.clone(),
                self.reference_host_ns,
            )
        } else {
            let cpu = Self::cpu_for(&cell.machine, opts);
            let mut sink = AttrCollector::new();
            let t0 = Instant::now();
            let run = match selection {
                Some(s) => self.session.run_with_observed(s, cpu, &mut sink),
                None => self.session.run_baseline_observed(cpu, &mut sink),
            }
            .map_err(|e| exec_cause(e, FailureCause::Simulate))?;
            (run, sink.attr, t0.elapsed().as_nanos() as u64)
        };
        self.finish(cell, run, attr, host_ns)
    }

    /// Simulates `cell` with every configuration of `selection` failing
    /// to load — the graceful-degradation (scalar fallback) path the
    /// engine's `pfu@N` fault injection exercises.
    pub fn run_cell_degraded(
        &self,
        cell: Cell,
        selection: &Selection,
        opts: &RunOptions,
    ) -> Result<CellResult, FailureCause> {
        let cpu = Self::cpu_for(&cell.machine, opts);
        let faulted: Vec<u16> = selection.confs.iter().map(|c| c.conf).collect();
        let mut sink = AttrCollector::new();
        let t0 = Instant::now();
        let run = self
            .session
            .run_degraded_observed(selection, cpu, &faulted, &mut sink)
            .map_err(|e| exec_cause(e, FailureCause::Simulate))?;
        self.finish(cell, run, sink.attr, t0.elapsed().as_nanos() as u64)
    }

    /// Simulates `cell`, resolving its selection through the session's
    /// memo cache first — the one-call form for callers outside a batch
    /// plan (cache hits/misses are recorded, which is exactly what the
    /// serving layer's `cache_stats` wants to observe).
    pub fn run_cell(&self, cell: Cell, opts: &RunOptions) -> Result<CellResult, FailureCause> {
        let selection = match cell.selection {
            SelectionSpec::Baseline => None,
            _ => Some(self.select(&cell.selection)?),
        };
        self.run_cell_with(cell, selection.as_deref(), opts)
    }

    /// [`CellRunner::run_cell`] under the engine's full robustness
    /// machinery: `catch_unwind` panic isolation, bounded deterministic
    /// retry for transient causes, and an optional wall-clock deadline
    /// checked before each attempt ([`FailureCause::WallClock`] when it
    /// has passed). The daemon's per-request execution path.
    // The error carries the full cell key on purpose (callers report it
    // without keeping the request around); one per request, never hot.
    #[allow(clippy::result_large_err)]
    pub fn run_cell_isolated(
        &self,
        cell: Cell,
        opts: &RunOptions,
        retry: &RetryPolicy,
        deadline: Option<Instant>,
    ) -> Result<CellResult, EngineError> {
        let selection = match cell.selection {
            SelectionSpec::Baseline => None,
            _ => match self.select(&cell.selection) {
                Ok(s) => Some(s),
                Err(cause) => {
                    return Err(EngineError {
                        cell,
                        cause,
                        attempts: 0,
                    })
                }
            },
        };
        let mut attempt = 0u32;
        loop {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(EngineError {
                        cell,
                        cause: FailureCause::WallClock,
                        attempts: attempt,
                    });
                }
            }
            attempt += 1;
            if attempt > 1 {
                std::thread::sleep(retry.backoff_before(attempt));
            }
            let cause =
                match quiet_catch_unwind(|| self.run_cell_with(cell, selection.as_deref(), opts)) {
                    Ok(Ok(result)) => return Ok(result),
                    Ok(Err(cause)) => cause,
                    Err(msg) => FailureCause::Panic(msg),
                };
            if !cause.retryable() || attempt >= retry.max_attempts {
                return Err(EngineError {
                    cell,
                    cause,
                    attempts: attempt,
                });
            }
        }
    }

    /// Verification + measurement extraction shared by every run path.
    fn finish(
        &self,
        cell: Cell,
        run: t1000_cpu::RunResult,
        attr: CycleAttribution,
        host_ns: u64,
    ) -> Result<CellResult, FailureCause> {
        debug_assert!(attr.checks_out() && attr.total_cycles == run.timing.cycles);
        if run.sys.checksum != self.expected_checksum {
            return Err(FailureCause::ChecksumMismatch {
                got: run.sys.checksum,
                expected: self.expected_checksum,
            });
        }
        if run.sys != self.reference.sys {
            return Err(FailureCause::SemanticsChanged);
        }
        Ok(CellResult {
            cell,
            cycles: run.timing.cycles,
            base_instructions: run.timing.base_instructions,
            base_ipc: run.timing.base_ipc,
            reconfigurations: run.timing.pfu.reconfigurations,
            conf_hits: run.timing.pfu.conf_hits,
            ext_executed: run.timing.pfu.ext_executed,
            pfu_load_faults: run.timing.pfu.load_faults,
            pfu_prefetch_hits: run.timing.pfu.prefetch_hits,
            pfu_hidden_reload_cycles: run.timing.pfu.hidden_reload_cycles,
            pfu_exposed_reload_cycles: run.timing.pfu.exposed_reload_cycles,
            pfu_stream_words: run.timing.pfu.stream_words,
            branch_accuracy: run.timing.branch.accuracy(),
            checksum: run.sys.checksum,
            host_ns,
            sim_khz: sim_khz(run.timing.cycles, host_ns),
            fast: run.timing.fast,
            attr,
        })
    }
}

/// Simulates one cell (one attempt) for the batch engine. Injected faults
/// fire here: `panic@N` panics before the simulation starts; `pfu@N`
/// fails every configuration load of the cell's selection, exercising the
/// graceful-degradation (scalar fallback) path.
fn simulate_cell(
    idx: usize,
    attempt: u32,
    cell: Cell,
    runner: &CellRunner,
    selections: &[SelectionRecord],
    selection_index: &HashMap<(&'static str, ExtractConfig, SelectionSpec), usize>,
    config: &EngineConfig,
) -> Result<CellResult, FailureCause> {
    if config.faults.cell_panics(idx, attempt) {
        panic!("injected fault: cell {idx} attempt {attempt}");
    }
    if config.faults.cell_aborts(idx) {
        // A real crash, not an unwind: `catch_unwind` cannot see this.
        // The shard coordinator's worker-respawn path is what survives it.
        eprintln!("[t1000-bench] injected abort: cell {idx}");
        std::process::abort();
    }
    let opts = config.run_options();
    match selection_index.get(&(cell.workload, cell.extract, cell.selection)) {
        Some(&i) => {
            let record = &selections[i];
            let Some(selection) = record.selection() else {
                return Err(FailureCause::Selection(
                    "selection record has no materialized selection".into(),
                ));
            };
            if config.faults.pfu_fault(idx) {
                runner.run_cell_degraded(cell, selection, &opts)
            } else {
                runner.run_cell_with(cell, Some(selection), &opts)
            }
        }
        None => runner.run_cell_with(cell, None, &opts),
    }
}

/// Identity/reference rows for every registry workload `cells` touches,
/// in registry order — the artifact's `workloads` array. Public so the
/// shard coordinator can compute it from the plan without running
/// anything.
pub fn workload_infos(scale: Scale, cells: &[Cell]) -> Vec<WorkloadInfo> {
    let mut seen = std::collections::HashSet::new();
    let mut infos = Vec::new();
    for name in t1000_workloads::NAMES {
        if cells.iter().any(|c| c.workload == name) && seen.insert(name) {
            let Some(w): Option<Workload> = t1000_workloads::by_name(name, scale) else {
                continue;
            };
            infos.push(WorkloadInfo {
                name,
                expected_checksum: w.expected_checksum(),
            });
        }
    }
    infos
}

/// Convenience: execute the full `run_all` plan on the clean path.
pub fn execute_run_all(scale: Scale) -> EngineRun {
    execute(&crate::plan::run_all_plan(), scale)
}

/// [`execute_run_all`] with explicit robustness configuration.
pub fn execute_run_all_with(scale: Scale, config: &EngineConfig) -> EngineRun {
    execute_with(&crate::plan::run_all_plan(), scale, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::MachineSpec;

    #[test]
    fn parallel_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 3, 8] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn retry_policy_backoff_follows_the_schedule_or_the_override() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(1), Duration::ZERO);
        assert_eq!(p.backoff_before(2), Duration::from_millis(10));
        assert_eq!(p.backoff_before(3), Duration::from_millis(50));
        // The last schedule entry repeats for further attempts.
        assert_eq!(p.backoff_before(9), Duration::from_millis(50));
        let flat = RetryPolicy {
            backoff_override_ms: Some(7),
            ..RetryPolicy::default()
        };
        assert_eq!(flat.backoff_before(1), Duration::ZERO);
        assert_eq!(flat.backoff_before(2), Duration::from_millis(7));
        assert_eq!(flat.backoff_before(9), Duration::from_millis(7));
    }

    #[test]
    fn retry_policy_parses_the_env_spec() {
        assert_eq!(
            RetryPolicy::parse_spec("5"),
            Ok(RetryPolicy {
                max_attempts: 5,
                ..RetryPolicy::default()
            })
        );
        assert_eq!(
            RetryPolicy::parse_spec(" 4:20 "),
            Ok(RetryPolicy {
                max_attempts: 4,
                backoff_override_ms: Some(20),
                ..RetryPolicy::default()
            })
        );
        for bad in ["", "0", "0:10", "three", "3:", "3:fast"] {
            assert!(RetryPolicy::parse_spec(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn retry_backoff_is_fixed_and_deterministic() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_before(1), Duration::ZERO);
        assert_eq!(r.backoff_before(2), Duration::from_millis(10));
        assert_eq!(r.backoff_before(3), Duration::from_millis(50));
        // The schedule's last entry repeats.
        assert_eq!(r.backoff_before(9), Duration::from_millis(50));
    }

    #[test]
    fn failure_causes_know_their_retryability() {
        assert!(FailureCause::Panic("boom".into()).retryable());
        for cause in [
            FailureCause::UnknownWorkload,
            FailureCause::Timeout { max_cycles: 5 },
            FailureCause::WallClock,
            FailureCause::ChecksumMismatch {
                got: 1,
                expected: 2,
            },
            FailureCause::SemanticsChanged,
        ] {
            assert!(!cause.retryable(), "{cause:?} must not retry");
        }
    }

    #[test]
    fn quiet_catch_unwind_returns_the_message() {
        assert_eq!(quiet_catch_unwind(|| 7), Ok(7));
        let err = quiet_catch_unwind(|| -> u32 { panic!("kaboom {}", 1 + 1) });
        assert_eq!(err, Err("kaboom 2".to_string()));
    }

    #[test]
    fn engine_runs_a_small_plan_and_dedups() {
        let mut plan = Plan::new();
        let cell = Cell::new(
            "gsm_dec",
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 10),
        );
        plan.push(cell);
        plan.push(cell); // duplicate request
        plan.push(Cell::new(
            "gsm_dec",
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 100),
        ));
        let run = execute(&plan, Scale::Test);
        assert!(run.failures.is_empty());

        // 1 baseline + 2 machine points, one selection job.
        assert_eq!(run.stats.cells_simulated, 3);
        assert_eq!(run.stats.cells_requested, 3);
        assert_eq!(run.stats.selection_jobs, 1);
        assert_eq!(run.stats.selection_misses, 1);
        assert_eq!(run.stats.retries, 0);
        assert_eq!(run.stats.failed_cells, 0);

        // Speedups are well-formed and the baseline is its own unit.
        let s = run.speedup(cell).expect("speedup");
        assert!(s > 0.5 && s < 8.0, "speedup {s}");
        assert_eq!(run.speedup(cell.baseline_cell()), Some(1.0));
        assert_eq!(
            run.speedup(Cell::new(
                "epic",
                SelectionSpec::Greedy,
                MachineSpec::with_pfus(2, 10)
            )),
            None
        );

        // Checksums verified against the workload reference.
        let expected = t1000_workloads::by_name("gsm_dec", Scale::Test)
            .unwrap()
            .expected_checksum();
        for c in &run.cells {
            assert_eq!(c.checksum, expected);
            assert_eq!(c.pfu_load_faults, 0);
        }

        // The selection record is reachable from the cell.
        let rec = run.selection(cell).expect("selection record");
        assert_eq!(rec.num_confs, rec.confs.len());
        assert!(run.selection(cell.baseline_cell()).is_none());
    }

    #[test]
    fn engine_matches_direct_session_results() {
        // The engine must report exactly what a hand-rolled run computes.
        let mut plan = Plan::new();
        let cell = Cell::new("epic", SelectionSpec::Greedy, MachineSpec::with_pfus(2, 10));
        plan.push(cell);
        let run = execute(&plan, Scale::Test);

        let w = t1000_workloads::by_name("epic", Scale::Test).unwrap();
        let session = Session::new(w.program().unwrap()).unwrap();
        let sel = session.greedy();
        let base = session
            .run_baseline(t1000_cpu::CpuConfig::baseline())
            .unwrap();
        let fused = session
            .run_with(&sel, t1000_cpu::CpuConfig::with_pfus(2).reconfig(10))
            .unwrap();

        assert_eq!(run.cell(cell).expect("cell").cycles, fused.timing.cycles);
        assert_eq!(
            run.baseline(cell).expect("baseline").cycles,
            base.timing.cycles
        );
        let expect = base.timing.cycles as f64 / fused.timing.cycles as f64;
        assert!((run.speedup(cell).expect("speedup") - expect).abs() < 1e-12);
    }

    #[test]
    fn unknown_workload_fails_its_cells_only() {
        let mut plan = Plan::new();
        let bad = Cell::new(
            "no_such_workload",
            SelectionSpec::Greedy,
            MachineSpec::with_pfus(2, 10),
        );
        let good = Cell::new(
            "gsm_dec",
            SelectionSpec::Greedy,
            MachineSpec::with_pfus(2, 10),
        );
        plan.push(bad);
        plan.push(good);
        let run = execute(&plan, Scale::Test);
        // The bad workload's baseline + fused cell fail; gsm_dec completes.
        assert_eq!(run.stats.failed_cells, 2);
        assert!(run
            .failures
            .iter()
            .all(|e| e.cell.workload == "no_such_workload"));
        assert!(run.speedup(good).is_some());
        assert!(run.cell(bad).is_none());
    }

    #[test]
    fn wall_clock_watchdog_skips_unstarted_cells() {
        let mut plan = Plan::new();
        plan.push(Cell::new(
            "gsm_dec",
            SelectionSpec::Greedy,
            MachineSpec::with_pfus(2, 10),
        ));
        let config = EngineConfig {
            wall_limit: Some(Duration::ZERO),
            ..EngineConfig::default()
        };
        let run = execute_with(&plan, Scale::Test, &config);
        assert!(run.cells.is_empty());
        assert_eq!(run.stats.failed_cells, 2);
        assert!(run
            .failures
            .iter()
            .all(|e| e.cause == FailureCause::WallClock && e.attempts == 0));
    }
}
