//! The shared experiment engine.
//!
//! Executes a [`Plan`] in three phases, each fanned
//! out over a scoped-thread worker pool:
//!
//! 1. **prepare** — one profiling [`Session`] per distinct
//!    (workload, extraction config), checksum-verified against the Rust
//!    reference;
//! 2. **select** — one selection job per distinct
//!    (workload, extraction config, selection spec), answered through the
//!    session's memoizing cache;
//! 3. **simulate** — one timing simulation per cell, with architectural
//!    results verified against the workload's baseline run.
//!
//! Every figure binary and `run_all` is a thin view over the resulting
//! [`EngineRun`]; none of them re-run selections or simulations.
//!
//! A one-cell experiment end to end (the engine adds the implied
//! PFU-less baseline cell automatically):
//!
//! ```
//! use t1000_bench::engine::execute;
//! use t1000_bench::plan::{Cell, MachineSpec, Plan, SelectionSpec};
//! use t1000_workloads::Scale;
//!
//! let mut plan = Plan::new();
//! plan.push(Cell::new(
//!     "gsm_dec",
//!     SelectionSpec::selective_std(Some(2)),
//!     MachineSpec::with_pfus(2, 10),
//! ));
//! let run = execute(&plan, Scale::Test);
//! assert!(run.cells.len() >= 2); // the cell plus its implied baseline
//! for cell in &run.cells {
//!     // Checksum-verified against the Rust reference, and every cycle
//!     // attributed: busy + Σ stalls == total.
//!     assert!(cell.attr.checks_out());
//!     assert_eq!(cell.attr.total_cycles, cell.cycles);
//! }
//! ```

use crate::plan::{Cell, MachineSpec, Plan, SelectionSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use t1000_core::{ExtractConfig, Selection, Session};
use t1000_cpu::{AttrCollector, CycleAttribution};
use t1000_workloads::{Scale, Workload};

/// Worker-pool size: `T1000_THREADS` if set, else the machine's
/// available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("T1000_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `threads` scoped workers,
/// preserving input order. Items are claimed via an atomic cursor, so a
/// slow job never blocks the queue behind it.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.drain(..).flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker failed to fill its slot"))
        .collect()
}

/// Summary of one extended instruction, for Fig. 7 and the JSON artifact.
#[derive(Clone, Copy, Debug)]
pub struct ConfSummary {
    pub luts: u32,
    pub depth: u32,
    pub width: u8,
    pub seq_len: usize,
    pub num_sites: usize,
    pub total_gain: u64,
}

/// One selection job's outcome (shared by every cell that simulates it).
pub struct SelectionRecord {
    pub workload: &'static str,
    pub extract: ExtractConfig,
    pub spec: SelectionSpec,
    pub num_confs: usize,
    pub num_sites: usize,
    pub confs: Vec<ConfSummary>,
    selection: Arc<Selection>,
}

impl SelectionRecord {
    /// Smallest/largest fused sequence length (0 if nothing was selected).
    pub fn seq_len_range(&self) -> (usize, usize) {
        let min = self.confs.iter().map(|c| c.seq_len).min().unwrap_or(0);
        let max = self.confs.iter().map(|c| c.seq_len).max().unwrap_or(0);
        (min, max)
    }

    /// Total estimated dynamic cycles saved by the selection.
    pub fn total_gain(&self) -> u64 {
        self.confs.iter().map(|c| c.total_gain).sum()
    }

    /// The underlying selection (for callers needing the full catalogue).
    pub fn selection(&self) -> &Selection {
        &self.selection
    }
}

/// One simulated cell's measurements.
pub struct CellResult {
    pub cell: Cell,
    pub cycles: u64,
    pub base_instructions: u64,
    pub base_ipc: f64,
    pub reconfigurations: u64,
    pub conf_hits: u64,
    pub ext_executed: u64,
    pub branch_accuracy: f64,
    pub checksum: u64,
    /// Where the cell's cycles went: every simulation runs under an
    /// aggregate [`AttrCollector`], so
    /// `attr.busy_cycles + Σ attr.stalls == cycles` for every cell —
    /// the schema-v2 artifact's mechanism check.
    pub attr: CycleAttribution,
}

/// Engine bookkeeping: how much work the plan implied, how much was
/// actually run, and where the wall-clock went.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Cells requested by the plan's callers (counting duplicates).
    pub cells_requested: usize,
    /// Distinct cells simulated (including implied baselines).
    pub cells_simulated: usize,
    /// Distinct selection jobs executed.
    pub selection_jobs: usize,
    /// Session-cache hits/misses summed over all sessions.
    pub selection_hits: u64,
    pub selection_misses: u64,
    /// Seconds inside the selection algorithms (cache misses only).
    pub selection_compute_secs: f64,
    /// Wall-clock per phase.
    pub prepare_secs: f64,
    pub select_secs: f64,
    pub simulate_secs: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Requested cells answered by an already-planned simulation.
    pub cells_deduped: usize,
}

/// Everything one engine invocation produced.
pub struct EngineRun {
    pub scale: Scale,
    pub workloads: Vec<WorkloadInfo>,
    pub selections: Vec<SelectionRecord>,
    pub cells: Vec<CellResult>,
    pub stats: EngineStats,
    cell_index: HashMap<Cell, usize>,
    selection_index: HashMap<(&'static str, ExtractConfig, SelectionSpec), usize>,
}

/// Identity and reference data for one workload.
pub struct WorkloadInfo {
    pub name: &'static str,
    pub expected_checksum: u64,
}

impl EngineRun {
    /// The measurements for `cell`.
    ///
    /// # Panics
    /// Panics if the cell was not in the executed plan — a bug in the
    /// calling view, not a runtime condition.
    pub fn cell(&self, cell: Cell) -> &CellResult {
        match self.cell_index.get(&cell) {
            Some(&i) => &self.cells[i],
            None => panic!("cell not in plan: {cell:?}"),
        }
    }

    /// The baseline measurements `cell` is normalised against.
    pub fn baseline(&self, cell: Cell) -> &CellResult {
        self.cell(cell.baseline_cell())
    }

    /// Execution-time speedup of `cell` over its baseline (>1 = faster).
    pub fn speedup(&self, cell: Cell) -> f64 {
        self.baseline(cell).cycles as f64 / self.cell(cell).cycles as f64
    }

    /// The selection record backing `cell` (None for baseline cells).
    pub fn selection(&self, cell: Cell) -> Option<&SelectionRecord> {
        self.selection_index
            .get(&(cell.workload, cell.extract, cell.selection))
            .map(|&i| &self.selections[i])
    }
}

/// Executes `plan` at `scale` and returns every measurement it implies.
///
/// # Panics
/// Panics if a workload is unknown, a program fails to assemble, or any
/// simulation diverges from the Rust reference checksums — the harness
/// refuses to report results for an incorrect simulation.
pub fn execute(plan: &Plan, scale: Scale) -> EngineRun {
    let threads = num_threads();
    let cells = plan.cells();

    // ---- Phase 1: prepare one session per (workload, extract). --------
    let t0 = Instant::now();
    let mut session_keys: Vec<(&'static str, ExtractConfig)> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for c in cells {
            if seen.insert((c.workload, c.extract)) {
                session_keys.push((c.workload, c.extract));
            }
        }
    }
    let sessions: HashMap<(&'static str, ExtractConfig), PreparedSession> = session_keys
        .iter()
        .zip(parallel_map(&session_keys, threads, |&(name, extract)| {
            prepare_session(name, extract, scale)
        }))
        .map(|(&k, v)| (k, v))
        .collect();
    let prepare_secs = t0.elapsed().as_secs_f64();

    // ---- Phase 2: run each distinct selection job once. ----------------
    let t0 = Instant::now();
    let mut selection_keys: Vec<(&'static str, ExtractConfig, SelectionSpec)> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        let cell_keys = cells.iter().map(|c| (c.workload, c.extract, c.selection));
        for key in cell_keys.chain(plan.selection_only().iter().copied()) {
            if key.2 != SelectionSpec::Baseline && seen.insert(key) {
                selection_keys.push(key);
            }
        }
    }
    let selections: Vec<SelectionRecord> =
        parallel_map(&selection_keys, threads, |&(name, extract, spec)| {
            let session = &sessions[&(name, extract)].session;
            let selection = match spec.select_config() {
                Some(cfg) => session.selective_shared(&cfg),
                None => session.greedy_shared(),
            };
            summarize_selection(name, extract, spec, selection)
        });
    let selection_index: HashMap<_, _> = selection_keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();
    let select_secs = t0.elapsed().as_secs_f64();

    // ---- Phase 3: simulate every cell. ---------------------------------
    let t0 = Instant::now();
    let results: Vec<CellResult> = parallel_map(cells, threads, |&cell| {
        let prepared = &sessions[&(cell.workload, cell.extract)];
        let (run, attr) = if cell.selection == SelectionSpec::Baseline
            && cell.machine == MachineSpec::with_pfus(0, 0)
        {
            // The canonical baseline was already simulated during prepare
            // (it pins the architectural reference) — reuse it.
            (prepared.reference.clone(), prepared.reference_attr.clone())
        } else {
            let cpu = cell.machine.cpu_config();
            let mut sink = AttrCollector::new();
            let run = match selection_index.get(&(cell.workload, cell.extract, cell.selection)) {
                Some(&i) => {
                    prepared
                        .session
                        .run_with_observed(&selections[i].selection, cpu, &mut sink)
                }
                None => prepared.session.run_baseline_observed(cpu, &mut sink),
            }
            .unwrap_or_else(|e| panic!("{}: {e}", cell.workload));
            (run, sink.attr)
        };
        debug_assert!(attr.checks_out() && attr.total_cycles == run.timing.cycles);
        assert_eq!(
            run.sys.checksum, prepared.expected_checksum,
            "{}: simulation diverged from the Rust reference",
            cell.workload
        );
        assert_eq!(
            run.sys, prepared.reference.sys,
            "{}: fused run changed architectural results",
            cell.workload
        );
        CellResult {
            cell,
            cycles: run.timing.cycles,
            base_instructions: run.timing.base_instructions,
            base_ipc: run.timing.base_ipc,
            reconfigurations: run.timing.pfu.reconfigurations,
            conf_hits: run.timing.pfu.conf_hits,
            ext_executed: run.timing.pfu.ext_executed,
            branch_accuracy: run.timing.branch.accuracy(),
            checksum: run.sys.checksum,
            attr,
        }
    });
    let simulate_secs = t0.elapsed().as_secs_f64();

    // ---- Bookkeeping. ---------------------------------------------------
    let mut selection_hits = 0;
    let mut selection_misses = 0;
    let mut selection_compute_secs = 0.0;
    for p in sessions.values() {
        let s = p.session.selection_cache_stats();
        selection_hits += s.hits;
        selection_misses += s.misses;
        selection_compute_secs += s.compute_secs();
    }
    let cell_index: HashMap<Cell, usize> = cells.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let workloads = workload_infos(scale, cells);

    EngineRun {
        scale,
        workloads,
        selections,
        cells: results,
        stats: EngineStats {
            cells_requested: plan.requested(),
            cells_simulated: cells.len(),
            selection_jobs: selection_keys.len(),
            selection_hits,
            selection_misses,
            selection_compute_secs,
            prepare_secs,
            select_secs,
            simulate_secs,
            threads,
            cells_deduped: plan.deduped(),
        },
        cell_index,
        selection_index,
    }
}

struct PreparedSession {
    session: Session,
    expected_checksum: u64,
    /// The canonical baseline run: pins the architectural reference every
    /// fused run is verified against, and doubles as the default
    /// baseline cell's result.
    reference: t1000_cpu::RunResult,
    /// Cycle attribution of the reference run (the baseline cell's attr).
    reference_attr: CycleAttribution,
}

fn prepare_session(name: &'static str, extract: ExtractConfig, scale: Scale) -> PreparedSession {
    let workload =
        t1000_workloads::by_name(name, scale).unwrap_or_else(|| panic!("unknown workload {name}"));
    let program = workload.program().unwrap_or_else(|e| panic!("{name}: {e}"));
    let session = Session::with_extract(program, extract).unwrap_or_else(|e| panic!("{name}: {e}"));
    // One canonical run pins the architectural reference for this session.
    let mut sink = AttrCollector::new();
    let reference = session
        .run_baseline_observed(MachineSpec::with_pfus(0, 0).cpu_config(), &mut sink)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let expected = workload.expected_checksum();
    assert_eq!(
        reference.sys.checksum, expected,
        "{name}: simulator checksum diverges from the Rust reference"
    );
    PreparedSession {
        session,
        expected_checksum: expected,
        reference,
        reference_attr: sink.attr,
    }
}

fn summarize_selection(
    workload: &'static str,
    extract: ExtractConfig,
    spec: SelectionSpec,
    selection: Arc<Selection>,
) -> SelectionRecord {
    let confs = selection
        .confs
        .iter()
        .map(|c| ConfSummary {
            luts: c.cost.luts,
            depth: c.cost.depth,
            width: c.width,
            seq_len: c.seq_len,
            num_sites: c.num_sites,
            total_gain: c.total_gain,
        })
        .collect();
    SelectionRecord {
        workload,
        extract,
        spec,
        num_confs: selection.num_confs(),
        num_sites: selection.fusion.num_sites(),
        confs,
        selection,
    }
}

fn workload_infos(scale: Scale, cells: &[Cell]) -> Vec<WorkloadInfo> {
    let mut seen = std::collections::HashSet::new();
    let mut infos = Vec::new();
    for name in t1000_workloads::NAMES {
        if cells.iter().any(|c| c.workload == name) && seen.insert(name) {
            let w: Workload = t1000_workloads::by_name(name, scale).unwrap();
            infos.push(WorkloadInfo {
                name,
                expected_checksum: w.expected_checksum(),
            });
        }
    }
    infos
}

/// Convenience: execute the full `run_all` plan.
pub fn execute_run_all(scale: Scale) -> EngineRun {
    execute(&crate::plan::run_all_plan(), scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::MachineSpec;

    #[test]
    fn parallel_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 3, 8] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn engine_runs_a_small_plan_and_dedups() {
        let mut plan = Plan::new();
        let cell = Cell::new(
            "gsm_dec",
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 10),
        );
        plan.push(cell);
        plan.push(cell); // duplicate request
        plan.push(Cell::new(
            "gsm_dec",
            SelectionSpec::selective_std(Some(2)),
            MachineSpec::with_pfus(2, 100),
        ));
        let run = execute(&plan, Scale::Test);

        // 1 baseline + 2 machine points, one selection job.
        assert_eq!(run.stats.cells_simulated, 3);
        assert_eq!(run.stats.cells_requested, 3);
        assert_eq!(run.stats.selection_jobs, 1);
        assert_eq!(run.stats.selection_misses, 1);

        // Speedups are well-formed and the baseline is its own unit.
        let s = run.speedup(cell);
        assert!(s > 0.5 && s < 8.0, "speedup {s}");
        assert_eq!(run.speedup(cell.baseline_cell()), 1.0);

        // Checksums verified against the workload reference.
        let expected = t1000_workloads::by_name("gsm_dec", Scale::Test)
            .unwrap()
            .expected_checksum();
        for c in &run.cells {
            assert_eq!(c.checksum, expected);
        }

        // The selection record is reachable from the cell.
        let rec = run.selection(cell).expect("selection record");
        assert_eq!(rec.num_confs, rec.confs.len());
        assert!(run.selection(cell.baseline_cell()).is_none());
    }

    #[test]
    fn engine_matches_direct_session_results() {
        // The engine must report exactly what a hand-rolled run computes.
        let mut plan = Plan::new();
        let cell = Cell::new("epic", SelectionSpec::Greedy, MachineSpec::with_pfus(2, 10));
        plan.push(cell);
        let run = execute(&plan, Scale::Test);

        let w = t1000_workloads::by_name("epic", Scale::Test).unwrap();
        let session = Session::new(w.program().unwrap()).unwrap();
        let sel = session.greedy();
        let base = session
            .run_baseline(t1000_cpu::CpuConfig::baseline())
            .unwrap();
        let fused = session
            .run_with(&sel, t1000_cpu::CpuConfig::with_pfus(2).reconfig(10))
            .unwrap();

        assert_eq!(run.cell(cell).cycles, fused.timing.cycles);
        assert_eq!(run.baseline(cell).cycles, base.timing.cycles);
        let expect = base.timing.cycles as f64 / fused.timing.cycles as f64;
        assert!((run.speedup(cell) - expect).abs() < 1e-12);
    }
}
