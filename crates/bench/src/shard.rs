//! Multi-process execution: shard a bench plan's cell space across
//! worker processes and merge the streamed results into one artifact.
//!
//! The coordinator (`t1000 bench --all --shards N`) partitions the plan's
//! cells deterministically ([`partition`]), spawns `N` `t1000 worker`
//! processes — each a full engine with its own `SessionStore`, pinned to
//! one OS thread — and merges the per-cell schema-v5 documents they
//! stream back over newline-delimited JSON-RPC framing (the same framing
//! `t1000 serve` speaks). The merge ([`MergeState`]) verifies every
//! document twice — a wire checksum ([`t1000_core::stable_hash64`] of the
//! document bytes) and the workload's architectural reference checksum —
//! and assembles an [`EngineRun`] whose artifact is **byte-identical**
//! (modulo wall-clock fields, zeroed under `--deterministic`) to the one
//! a single-process run produces.
//!
//! Wire protocol, one JSON document per line:
//!
//! coordinator → worker (one request, then EOF):
//!
//! ```text
//! {"id":0,"method":"run_shard","params":{"plan":"run_all","scale":"test",
//!  "cells":[0,3,5],"selections":[],"deterministic":true,
//!  "no_fast_path":false,"max_cycles":0,"inject":""}}
//! ```
//!
//! worker → coordinator (streamed, then a final id-0 envelope):
//!
//! ```text
//! {"method":"selection","params":{"index":0,"record":{...}}}
//! {"method":"cell","params":{"index":3,"check":"0x…","doc":{...}}}
//! {"method":"cell_failed","params":{"index":5,"kind":"panic","payload":"…","attempts":3}}
//! {"id":0,"result":{"cells":2,"failed":1,"retries":2,...}}
//! ```
//!
//! `index` is always a *global* position: into `plan.cells()` for cells
//! and failures, into [`engine::selection_keys`] for selection records —
//! both derivable from the plan name alone, which is why the wire never
//! carries cell descriptions. Worker crashes (detected as EOF-without-
//! final-response or a nonzero exit) leave their unfinished cells in
//! [`MergeState::missing`]; the coordinator retries them on one
//! replacement worker (with `abort@N` injections stripped) and maps
//! anything still missing into [`FailureCause::Panic`] on the schema-v3
//! `failed_cells` path. See `docs/SERVING.md` and `docs/ARCHITECTURE.md`.

use crate::checkpoint;
use crate::engine::{
    self, CellResult, ConfSummary, EngineConfig, EngineError, EngineRun, EngineStats, FailureCause,
    SelectionRecord,
};
use crate::fault::FaultPlan;
use crate::json::Json;
use crate::plan::{Cell, Plan, SelectionSpec};
use crate::results;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use t1000_core::{stable_hash64, ExtractConfig};
use t1000_workloads::Scale;

/// Plans a worker can rebuild from the name on the wire. Sharded
/// execution ships the plan *name*, not the cells: both sides derive the
/// identical cell list (and selection-key list) from the same pure
/// function, so a one-word identifier plus global indices is a complete,
/// tamper-evident description of the work.
pub fn plan_by_name(name: &str) -> Option<Plan> {
    match name {
        "run_all" => Some(crate::plan::run_all_plan()),
        "run_all_strategies" => Some(crate::plan::run_all_plan_with_strategies()),
        _ => None,
    }
}

fn scale_str(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Full => "full",
    }
}

fn parse_hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

/// Deterministic, group-atomic partition of `indices` (global positions
/// into `plan.cells()`) across `shards` workers: cells are grouped by
/// (workload, extraction config) in first-appearance order over the
/// *full* plan, and group `i` goes to shard `i % shards`. Group-atomicity
/// means each profiling session is built by exactly one worker, every
/// selection job lands whole on one shard, and every cell travels with
/// the baseline it is normalised against. Grouping over the full plan
/// (not `indices`) keeps the assignment stable under `--resume`, where
/// already-completed cells are simply absent from `indices`.
pub fn partition(plan: &Plan, indices: &[usize], shards: usize) -> Vec<Vec<usize>> {
    let cells = plan.cells();
    let groups = group_map(plan);
    let shards = shards.max(1);
    let mut out = vec![Vec::new(); shards];
    for &i in indices {
        let g = groups[&(cells[i].workload, cells[i].extract)];
        out[g % shards].push(i);
    }
    for shard in &mut out {
        shard.sort_unstable();
    }
    out
}

/// (workload, extraction config) → group index, in first-appearance
/// order over the full plan — the one numbering both [`partition`] and
/// the selection-key assignment agree on.
fn group_map(plan: &Plan) -> HashMap<(&'static str, ExtractConfig), usize> {
    let mut groups: HashMap<(&'static str, ExtractConfig), usize> = HashMap::new();
    for c in plan.cells() {
        let next = groups.len();
        groups.entry((c.workload, c.extract)).or_insert(next);
    }
    groups
}

/// Assigns selection-key indices (into [`engine::selection_keys`]) to
/// shards by the same group → `group % shards` rule as [`partition`], so
/// every selection job lands on the shard that owns its group's cells.
/// Needed because the merged artifact records *all* selection jobs even
/// when `--resume` restored every cell that depends on them — exactly as
/// the single-process engine recomputes selections on resume.
pub fn partition_selections(plan: &Plan, keys: &[usize], shards: usize) -> Vec<Vec<usize>> {
    let all = engine::selection_keys(plan);
    let groups = group_map(plan);
    let shards = shards.max(1);
    let mut out = vec![Vec::new(); shards];
    for &k in keys {
        let (workload, extract, _) = all[k];
        let g = groups[&(workload, extract)];
        out[g % shards].push(k);
    }
    for shard in &mut out {
        shard.sort_unstable();
    }
    out
}

/// Local cell indices a worker's sub-plan will assign to `assigned`
/// (global indices): mirrors [`Plan::push`], where an implied baseline
/// occupies its own slot the first time it is (explicitly or implicitly)
/// reached. Needed to rewrite `--inject` arms into worker-local
/// numbering — exact for any assignment, group-atomic or not.
fn local_indices(plan_cells: &[Cell], assigned: &[usize]) -> HashMap<usize, usize> {
    let mut order: Vec<Cell> = Vec::new();
    let mut seen: HashSet<Cell> = HashSet::new();
    for &g in assigned {
        let cell = plan_cells[g];
        let base = cell.baseline_cell();
        if seen.insert(base) {
            order.push(base);
        }
        if seen.insert(cell) {
            order.push(cell);
        }
    }
    let pos: HashMap<Cell, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    assigned.iter().map(|&g| (g, pos[&plan_cells[g]])).collect()
}

/// The slice of `faults` a worker assigned `cells` should receive, with
/// per-cell arms rewritten from global to worker-local indices.
fn local_faults(faults: &FaultPlan, plan_cells: &[Cell], assigned: &[usize]) -> FaultPlan {
    let map = local_indices(plan_cells, assigned);
    faults.remap_cells(|g| map.get(&g).copied())
}

// ---------------------------------------------------------------------
// FailureCause wire round-trip
// ---------------------------------------------------------------------

/// Encodes a failure cause as `(kind, payload)` for the wire. `kind` is
/// the artifact's stable snake_case tag ([`FailureCause::kind`]); the
/// payload carries the variant's data so [`cause_from_wire`] rebuilds a
/// cause whose `kind()`/`Display`/`retryable()` are identical — which is
/// what keeps merged `failed_cells` entries byte-identical.
pub fn cause_to_wire(cause: &FailureCause) -> (&'static str, String) {
    let payload = match cause {
        FailureCause::Prepare(m)
        | FailureCause::Selection(m)
        | FailureCause::Simulate(m)
        | FailureCause::Panic(m) => m.clone(),
        FailureCause::Timeout { max_cycles } => max_cycles.to_string(),
        FailureCause::ChecksumMismatch { got, expected } => {
            format!("0x{got:016x},0x{expected:016x}")
        }
        FailureCause::UnknownWorkload
        | FailureCause::WallClock
        | FailureCause::SemanticsChanged => String::new(),
    };
    (cause.kind(), payload)
}

/// Decodes a `(kind, payload)` pair produced by [`cause_to_wire`].
pub fn cause_from_wire(kind: &str, payload: &str) -> Result<FailureCause, String> {
    match kind {
        "unknown_workload" => Ok(FailureCause::UnknownWorkload),
        "prepare" => Ok(FailureCause::Prepare(payload.to_string())),
        "selection" => Ok(FailureCause::Selection(payload.to_string())),
        "simulate" => Ok(FailureCause::Simulate(payload.to_string())),
        "timeout" => payload
            .parse()
            .map(|max_cycles| FailureCause::Timeout { max_cycles })
            .map_err(|_| format!("bad timeout payload {payload:?}")),
        "wall_clock" => Ok(FailureCause::WallClock),
        "checksum_mismatch" => {
            let (got, expected) = payload
                .split_once(',')
                .ok_or_else(|| format!("bad checksum_mismatch payload {payload:?}"))?;
            match (parse_hex64(got), parse_hex64(expected)) {
                (Some(got), Some(expected)) => Ok(FailureCause::ChecksumMismatch { got, expected }),
                _ => Err(format!("bad checksum_mismatch payload {payload:?}")),
            }
        }
        "semantics_changed" => Ok(FailureCause::SemanticsChanged),
        "panic" => Ok(FailureCause::Panic(payload.to_string())),
        other => Err(format!("unknown failure kind {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Wire documents
// ---------------------------------------------------------------------

/// The coordinator's one request to a worker. `selections` lists the
/// global selection-key indices the worker must compute *in addition* to
/// the jobs its assigned cells already imply — needed under `--resume`,
/// where a fully-restored group still owes its selection records.
pub fn shard_request(
    plan_name: &str,
    scale: Scale,
    cells: &[usize],
    selections: &[usize],
    config: &EngineConfig,
    faults: &FaultPlan,
) -> Json {
    Json::obj(vec![
        ("id", Json::UInt(0)),
        ("method", Json::Str("run_shard".to_string())),
        (
            "params",
            Json::obj(vec![
                ("plan", Json::Str(plan_name.to_string())),
                ("scale", Json::Str(scale_str(scale).to_string())),
                (
                    "cells",
                    Json::Arr(cells.iter().map(|&i| Json::UInt(i as u64)).collect()),
                ),
                (
                    "selections",
                    Json::Arr(selections.iter().map(|&i| Json::UInt(i as u64)).collect()),
                ),
                ("deterministic", Json::Bool(config.deterministic)),
                ("no_fast_path", Json::Bool(config.no_fast_path)),
                ("max_cycles", Json::UInt(config.max_cycles)),
                ("inject", Json::Str(faults.render())),
            ]),
        ),
    ])
}

/// A worker's per-cell event: the global index, the schema-v5 cell
/// document (`speedup` null — the coordinator recomputes it against the
/// merged baseline), and the wire checksum: [`stable_hash64`] over the
/// document's compact rendering, verified at merge time.
pub fn cell_event(index: usize, result: &CellResult) -> Json {
    let doc = results::cell_result_json(result, None);
    let check = stable_hash64(doc.to_string_compact().as_bytes());
    Json::obj(vec![
        ("method", Json::Str("cell".to_string())),
        (
            "params",
            Json::obj(vec![
                ("index", Json::UInt(index as u64)),
                ("check", Json::Str(format!("0x{check:016x}"))),
                ("doc", doc),
            ]),
        ),
    ])
}

/// A worker's per-selection event: the global selection-key index and the
/// record's schema-v5 summary document.
pub fn selection_event(index: usize, record: &SelectionRecord) -> Json {
    Json::obj(vec![
        ("method", Json::Str("selection".to_string())),
        (
            "params",
            Json::obj(vec![
                ("index", Json::UInt(index as u64)),
                ("record", results::selection_json(record)),
            ]),
        ),
    ])
}

/// A worker's per-failure event ([`cause_to_wire`] encoding).
pub fn failure_event(index: usize, error: &EngineError) -> Json {
    let (kind, payload) = cause_to_wire(&error.cause);
    Json::obj(vec![
        ("method", Json::Str("cell_failed".to_string())),
        (
            "params",
            Json::obj(vec![
                ("index", Json::UInt(index as u64)),
                ("kind", Json::Str(kind.to_string())),
                ("payload", Json::Str(payload)),
                ("attempts", Json::UInt(u64::from(error.attempts))),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// Runs the `t1000 worker` protocol: read one `run_shard` request line
/// from `input`, execute the assigned cells on an in-process engine, and
/// stream `selection`/`cell`/`cell_failed` events to `output` followed by
/// the final id-0 result envelope. Returns the process exit code (a
/// malformed request gets an error envelope and a nonzero code).
pub fn run_worker(mut input: impl BufRead, output: &mut impl Write) -> i32 {
    let mut line = String::new();
    let request = match input.read_line(&mut line) {
        Ok(0) => Err("no request on stdin".to_string()),
        Ok(_) => Ok(line.trim().to_string()),
        Err(e) => Err(format!("reading request: {e}")),
    };
    match request.and_then(|line| worker_serve(&line, output)) {
        Ok(()) => 0,
        Err(msg) => {
            let envelope = Json::obj(vec![
                ("id", Json::UInt(0)),
                (
                    "error",
                    Json::obj(vec![
                        ("code", Json::UInt(400)),
                        ("message", Json::Str(msg.clone())),
                    ]),
                ),
            ]);
            let _ = writeln!(output, "{}", envelope.to_string_compact());
            let _ = output.flush();
            eprintln!("[t1000-worker] bad request: {msg}");
            2
        }
    }
}

fn worker_serve(line: &str, output: &mut impl Write) -> Result<(), String> {
    let req = Json::parse(line).map_err(|e| e.to_string())?;
    match req.get("method").and_then(Json::as_str) {
        Some("run_shard") => {}
        other => return Err(format!("expected method run_shard, got {other:?}")),
    }
    let params = req.get("params").ok_or("missing params")?;
    let plan_name = params
        .get("plan")
        .and_then(Json::as_str)
        .ok_or("missing plan")?;
    let plan = plan_by_name(plan_name).ok_or_else(|| format!("unknown plan {plan_name:?}"))?;
    let scale = match params.get("scale").and_then(Json::as_str) {
        Some("test") => Scale::Test,
        Some("full") => Scale::Full,
        other => return Err(format!("bad scale {other:?}")),
    };
    let cells = plan.cells();
    let mut indices: Vec<usize> = Vec::new();
    for v in params
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing cells")?
    {
        let i = v.as_u64().ok_or("bad cell index")? as usize;
        if i >= cells.len() {
            return Err(format!(
                "cell index {i} out of range (plan has {})",
                cells.len()
            ));
        }
        indices.push(i);
    }
    let keys = engine::selection_keys(&plan);
    let mut key_indices: Vec<usize> = Vec::new();
    for v in params
        .get("selections")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        let k = v.as_u64().ok_or("bad selection index")? as usize;
        if k >= keys.len() {
            return Err(format!(
                "selection index {k} out of range (plan has {})",
                keys.len()
            ));
        }
        key_indices.push(k);
    }
    let faults = match params.get("inject").and_then(Json::as_str) {
        Some(text) => FaultPlan::parse(text)?,
        None => FaultPlan::none(),
    };
    let config = EngineConfig {
        max_cycles: params.get("max_cycles").and_then(Json::as_u64).unwrap_or(0),
        deterministic: params
            .get("deterministic")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        no_fast_path: params
            .get("no_fast_path")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        faults,
        ..EngineConfig::default()
    };

    // The sub-plan: assigned cells pushed in global order. For the
    // coordinator's group-atomic partitions this reproduces exactly the
    // assigned set (every baseline travels with its group and precedes
    // its users); for arbitrary assignments the plan machinery adds the
    // implied baselines, which are simulated but filtered out below.
    let mut sub = Plan::new();
    for &i in &indices {
        sub.push(cells[i]);
    }
    // Explicitly-requested selection jobs (resume path). `push_selection`
    // appends the implied baseline cell after the assigned ones, so the
    // fault plan's local indices stay valid; the extra baseline result is
    // filtered from the wire by the assigned-set check below.
    for &k in &key_indices {
        let (workload, extract, spec) = keys[k];
        sub.push_selection(workload, extract, spec);
    }
    let run = engine::execute_with(&sub, scale, &config);

    // Map everything back to global numbering before it hits the wire.
    let global_cell: HashMap<Cell, usize> =
        cells.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let global_selection: HashMap<(&'static str, ExtractConfig, SelectionSpec), usize> =
        keys.into_iter().enumerate().map(|(i, k)| (k, i)).collect();
    let assigned: HashSet<usize> = indices.iter().copied().collect();

    let mut emit = |doc: Json| -> Result<(), String> {
        writeln!(output, "{}", doc.to_string_compact()).map_err(|e| e.to_string())
    };
    for s in &run.selections {
        if let Some(&gi) = global_selection.get(&(s.workload, s.extract, s.spec)) {
            emit(selection_event(gi, s))?;
        }
    }
    for c in &run.cells {
        match global_cell.get(&c.cell) {
            Some(&gi) if assigned.contains(&gi) => emit(cell_event(gi, c))?,
            _ => {}
        }
    }
    for e in &run.failures {
        match global_cell.get(&e.cell) {
            Some(&gi) if assigned.contains(&gi) => emit(failure_event(gi, e))?,
            _ => {}
        }
    }
    let stats = &run.stats;
    emit(Json::obj(vec![
        ("id", Json::UInt(0)),
        (
            "result",
            Json::obj(vec![
                ("cells", Json::UInt(run.cells.len() as u64)),
                ("failed", Json::UInt(run.failures.len() as u64)),
                ("retries", Json::UInt(stats.retries)),
                ("prepare_secs", Json::Float(stats.prepare_secs)),
                ("select_secs", Json::Float(stats.select_secs)),
                ("simulate_secs", Json::Float(stats.simulate_secs)),
                (
                    "selection_compute_secs",
                    Json::Float(stats.selection_compute_secs),
                ),
            ]),
        ),
    ]))?;
    output.flush().map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------

/// A worker's final self-reported totals (wall-clock and retry counters;
/// everything else in the merged stats is derived from the plan).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    pub retries: u64,
    pub prepare_secs: f64,
    pub select_secs: f64,
    pub simulate_secs: f64,
    pub selection_compute_secs: f64,
}

/// What one worker output line turned out to be.
#[derive(Debug)]
pub enum WireLine {
    /// A cell document was verified and merged.
    Cell,
    /// Any other event (selection record, recorded failure).
    Event,
    /// The shard's final id-0 result envelope.
    Done(ShardStats),
    /// The worker rejected the request with an error envelope.
    Failed(String),
}

/// Merges worker-streamed documents back into one [`EngineRun`].
/// Process-free by construction: the coordinator feeds it lines read from
/// worker pipes, and tests feed it events synthesized from in-process
/// runs — the merge math is identical.
pub struct MergeState {
    scale: Scale,
    cells: Vec<Cell>,
    keys: Vec<(&'static str, ExtractConfig, SelectionSpec)>,
    /// Workload → architectural reference checksum, recomputed locally —
    /// a worker cannot vouch for its own results.
    expected: HashMap<&'static str, u64>,
    merged: BTreeMap<usize, CellResult>,
    selections: BTreeMap<usize, SelectionRecord>,
    failures: BTreeMap<usize, (FailureCause, u32)>,
    restored: usize,
}

impl MergeState {
    pub fn new(plan: &Plan, scale: Scale) -> MergeState {
        let cells = plan.cells().to_vec();
        let expected = engine::workload_infos(scale, &cells)
            .into_iter()
            .map(|w| (w.name, w.expected_checksum))
            .collect();
        MergeState {
            scale,
            keys: engine::selection_keys(plan),
            cells,
            expected,
            merged: BTreeMap::new(),
            selections: BTreeMap::new(),
            failures: BTreeMap::new(),
            restored: 0,
        }
    }

    /// Pre-populates a cell restored from the coordinator's `--resume`
    /// checkpoint, so no shard is asked to re-simulate it.
    pub fn restore(&mut self, index: usize, result: CellResult) {
        if self.merged.insert(index, result).is_none() {
            self.restored += 1;
        }
    }

    /// Cells restored via [`MergeState::restore`].
    pub fn restored_count(&self) -> usize {
        self.restored
    }

    /// The merged cells so far, keyed by global plan index — the
    /// coordinator's checkpoint body.
    pub fn completed(&self) -> &BTreeMap<usize, CellResult> {
        &self.merged
    }

    /// Cells neither merged nor recorded as failed — the coordinator's
    /// crash-retry work list.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|i| !self.merged.contains_key(i) && !self.failures.contains_key(i))
            .collect()
    }

    /// Selection keys with no merged record yet — what the resume path
    /// assigns explicitly and the crash-retry worker recomputes.
    pub fn missing_selections(&self) -> Vec<usize> {
        (0..self.keys.len())
            .filter(|k| !self.selections.contains_key(k))
            .collect()
    }

    /// Records a coordinator-observed failure for a cell no worker
    /// reported (a crash that survived the retry wave).
    pub fn fail(&mut self, index: usize, cause: FailureCause, attempts: u32) {
        if index < self.cells.len() && !self.merged.contains_key(&index) {
            self.failures.entry(index).or_insert((cause, attempts));
        }
    }

    /// Dispatches one worker output line. A verification failure (wire
    /// checksum, architectural checksum, malformed document) is an `Err`:
    /// the line is rejected, the cell stays [`MergeState::missing`], and
    /// the coordinator's retry/report machinery picks it up.
    pub fn on_line(&mut self, line: &str) -> Result<WireLine, String> {
        let doc = Json::parse(line).map_err(|e| format!("bad worker line: {e}"))?;
        if let Some(result) = doc.get("result") {
            let f = |k: &str| result.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            return Ok(WireLine::Done(ShardStats {
                retries: result.get("retries").and_then(Json::as_u64).unwrap_or(0),
                prepare_secs: f("prepare_secs"),
                select_secs: f("select_secs"),
                simulate_secs: f("simulate_secs"),
                selection_compute_secs: f("selection_compute_secs"),
            }));
        }
        if let Some(err) = doc.get("error") {
            let msg = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            return Ok(WireLine::Failed(msg));
        }
        let params = doc.get("params").ok_or("worker event missing params")?;
        let index = params
            .get("index")
            .and_then(Json::as_u64)
            .ok_or("worker event missing index")? as usize;
        match doc.get("method").and_then(Json::as_str) {
            Some("cell") => {
                self.on_cell(index, params)?;
                Ok(WireLine::Cell)
            }
            Some("selection") => {
                self.on_selection(index, params)?;
                Ok(WireLine::Event)
            }
            Some("cell_failed") => {
                self.on_cell_failed(index, params)?;
                Ok(WireLine::Event)
            }
            other => Err(format!("unknown worker event {other:?}")),
        }
    }

    fn on_cell(&mut self, index: usize, params: &Json) -> Result<(), String> {
        let cell = *self
            .cells
            .get(index)
            .ok_or_else(|| format!("cell index {index} out of range"))?;
        let doc = params.get("doc").ok_or("cell event missing doc")?;
        let claimed = params
            .get("check")
            .and_then(Json::as_str)
            .and_then(parse_hex64)
            .ok_or("cell event missing check")?;
        let got = stable_hash64(doc.to_string_compact().as_bytes());
        if got != claimed {
            return Err(format!(
                "cell {index}: wire checksum 0x{got:016x} != claimed 0x{claimed:016x}"
            ));
        }
        let result = results::cell_result_from_json(doc, cell)?;
        // Defense in depth: the wire hash proves transport integrity; the
        // architectural checksum proves the simulation itself converged on
        // the locally recomputed workload reference.
        if let Some(&reference) = self.expected.get(cell.workload) {
            if result.checksum != reference {
                return Err(format!(
                    "cell {index} ({}): checksum 0x{:016x} diverges from reference 0x{reference:016x}",
                    cell.workload, result.checksum
                ));
            }
        }
        // Duplicate deliveries (a cell re-run on the retry worker after a
        // mid-stream crash) are deterministic replicas; first write wins.
        self.merged.entry(index).or_insert(result);
        Ok(())
    }

    fn on_selection(&mut self, index: usize, params: &Json) -> Result<(), String> {
        let &(workload, extract, spec) = self
            .keys
            .get(index)
            .ok_or_else(|| format!("selection index {index} out of range"))?;
        let rec = params
            .get("record")
            .ok_or("selection event missing record")?;
        let u = |k: &str| -> Result<u64, String> {
            rec.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("selection {index}: bad {k}"))
        };
        let confs_json = rec
            .get("confs")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("selection {index}: missing confs"))?;
        let mut confs = Vec::with_capacity(confs_json.len());
        for c in confs_json {
            let cu = |k: &str| -> Result<u64, String> {
                c.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("selection {index}: bad conf {k}"))
            };
            confs.push(ConfSummary {
                luts: cu("luts")? as u32,
                depth: cu("depth")? as u32,
                width: cu("width")? as u8,
                seq_len: cu("seq_len")? as usize,
                num_sites: cu("num_sites")? as usize,
                total_gain: cu("total_gain")?,
            });
        }
        let record = SelectionRecord::from_summaries(
            workload,
            extract,
            spec,
            u("num_confs")? as usize,
            u("num_sites")? as usize,
            confs,
        );
        self.selections.entry(index).or_insert(record);
        Ok(())
    }

    fn on_cell_failed(&mut self, index: usize, params: &Json) -> Result<(), String> {
        if index >= self.cells.len() {
            return Err(format!("cell index {index} out of range"));
        }
        let kind = params
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("cell_failed event missing kind")?;
        let payload = params.get("payload").and_then(Json::as_str).unwrap_or("");
        let attempts = params.get("attempts").and_then(Json::as_u64).unwrap_or(0) as u32;
        let cause = cause_from_wire(kind, payload)?;
        self.failures.entry(index).or_insert((cause, attempts));
        Ok(())
    }

    /// Assembles the merged run with *canonical* engine stats — the
    /// numbers the in-process engine would report for `plan`: dedup
    /// counters from the plan, one selection-cache miss per selection
    /// job, the coordinator's own thread count. The coordinator is a pure
    /// merge (it computes nothing), so deriving these from the plan
    /// rather than summing worker-local views is what keeps the merged
    /// artifact byte-identical to the single-process one. Only wall-clock
    /// totals and in-cell retry counts come from the workers, and
    /// `deterministic` zeroes the former.
    pub fn finish(self, plan: &Plan, totals: ShardStats, deterministic: bool) -> EngineRun {
        let MergeState {
            scale,
            cells,
            keys,
            expected: _,
            merged,
            selections,
            failures,
            restored,
        } = self;
        let workloads = engine::workload_infos(scale, &cells);
        let mut merged_cells: Vec<CellResult> = merged.into_values().collect();
        if deterministic {
            // Workers zero their own wall-clock before it hits the wire,
            // but checkpoint-restored cells still carry the interrupted
            // run's real timings — zero them the same way the in-process
            // engine does at assembly.
            for r in &mut merged_cells {
                r.host_ns = 0;
                r.sim_khz = 0.0;
            }
        }
        let merged_selections: Vec<SelectionRecord> = selections.into_values().collect();
        let merged_failures: Vec<EngineError> = failures
            .into_iter()
            .map(|(i, (cause, attempts))| EngineError {
                cell: cells[i],
                cause,
                attempts,
            })
            .collect();
        let selection_jobs = keys.len();
        let mut stats = EngineStats {
            cells_requested: plan.requested(),
            cells_simulated: merged_cells.len(),
            selection_jobs,
            selection_hits: 0,
            selection_misses: selection_jobs as u64,
            selection_compute_secs: totals.selection_compute_secs,
            prepare_secs: totals.prepare_secs,
            select_secs: totals.select_secs,
            simulate_secs: totals.simulate_secs,
            threads: engine::num_threads(),
            cells_deduped: plan.deduped(),
            retries: totals.retries,
            failed_cells: merged_failures.len(),
            cells_restored: restored,
        };
        if deterministic {
            stats.selection_compute_secs = 0.0;
            stats.prepare_secs = 0.0;
            stats.select_secs = 0.0;
            stats.simulate_secs = 0.0;
        }
        EngineRun::assemble(
            scale,
            workloads,
            merged_selections,
            merged_cells,
            merged_failures,
            stats,
        )
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Everything a coordinator run produced: the merged run plus the shard
/// topology sidecar (written next to the artifact as
/// `<artifact>.shards.json`, asserted by `--expect shards=N`).
pub struct ShardedRun {
    pub run: EngineRun,
    pub sidecar: Json,
}

struct WaveCtx<'a> {
    exe: &'a std::path::Path,
    plan_name: &'a str,
    scale: Scale,
    config: &'a EngineConfig,
    merge: &'a Mutex<MergeState>,
    totals: &'a Mutex<ShardStats>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Executes `plan` (named `plan_name` on the wire) across `shards`
/// worker processes and merges the streamed results. Honors the
/// coordinator-side parts of `config` — checkpoint/resume, fault
/// injection (cell arms are forwarded to the owning worker, I/O arms
/// stay local), determinism — and forwards the per-simulation knobs to
/// every worker. Workers run single-threaded (`T1000_THREADS=1`): the
/// process is the unit of parallelism, so `--shards N` vs `--shards 1`
/// is an apples-to-apples scaling comparison.
pub fn run_sharded(
    plan: &Plan,
    plan_name: &str,
    scale: Scale,
    shards: usize,
    config: &EngineConfig,
) -> Result<ShardedRun, String> {
    let shards = shards.max(1);
    if !plan.selection_only().is_empty() {
        return Err("sharded execution supports cell-only plans".to_string());
    }
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the t1000 binary: {e}"))?;

    let mut merge = MergeState::new(plan, scale);
    // Resume: cells any previous run — sharded or single-process, the
    // checkpoint format is shared — already completed are restored and
    // never assigned to a worker.
    if let Some(path) = &config.checkpoint {
        if config.resume && path.exists() {
            match checkpoint::load(path, scale) {
                Ok(restored) => {
                    for (i, cell) in plan.cells().iter().enumerate() {
                        if let Some(r) = restored.get(&checkpoint::cell_key(cell)) {
                            merge.restore(i, CellResult::from_restored(*cell, r));
                        }
                    }
                }
                Err(e) => eprintln!("[t1000-bench] ignoring unusable checkpoint: {e}"),
            }
        }
    }
    let restored_cells = merge.restored_count();

    let remaining = merge.missing();
    let assignment = partition(plan, &remaining, shards);
    let per_shard: Vec<usize> = assignment.iter().map(Vec::len).collect();

    // Selection keys no remaining cell implies (their whole group was
    // restored from the checkpoint) still owe their records: the
    // single-process engine recomputes every selection on resume, and
    // byte-identity demands we do too. Assign each orphan key to the
    // shard that owns its group; on a fresh run this set is empty.
    let all_keys = engine::selection_keys(plan);
    let key_index: HashMap<(&'static str, ExtractConfig, SelectionSpec), usize> = all_keys
        .iter()
        .copied()
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();
    let covered: HashSet<usize> = remaining
        .iter()
        .filter_map(|&i| {
            let c = plan.cells()[i];
            key_index
                .get(&(c.workload, c.extract, c.selection))
                .copied()
        })
        .collect();
    let orphans: Vec<usize> = (0..all_keys.len())
        .filter(|k| !covered.contains(k))
        .collect();
    let key_assignment = partition_selections(plan, &orphans, shards);

    let merge = Mutex::new(merge);
    let totals = Mutex::new(ShardStats::default());
    let checkpoint_writes = AtomicU32::new(0);
    // Mirrors the in-process engine: after every completed cell, flush
    // the whole completed set atomically (same `io@checkpoint` fault
    // accounting, same kill-anywhere recovery guarantee).
    let flush = |m: &MergeState| {
        if let Some(path) = &config.checkpoint {
            let attempt = checkpoint_writes.fetch_add(1, Ordering::Relaxed) + 1;
            if config.faults.checkpoint_write_fails(attempt) {
                eprintln!(
                    "[t1000-bench] injected checkpoint I/O failure (write {attempt}); continuing"
                );
            } else if let Err(e) = checkpoint::write(path, scale, m.completed()) {
                eprintln!("[t1000-bench] checkpoint write failed: {e}; continuing");
            }
        }
    };
    let ctx = WaveCtx {
        exe: &exe,
        plan_name,
        scale,
        config,
        merge: &merge,
        totals: &totals,
    };

    let wave: Vec<(usize, Vec<usize>, Vec<usize>, FaultPlan)> = assignment
        .into_iter()
        .zip(key_assignment)
        .enumerate()
        .filter(|(_, (cells, keys))| !cells.is_empty() || !keys.is_empty())
        .map(|(s, (cells, keys))| {
            let local = local_faults(&config.faults, plan.cells(), &cells);
            (s, cells, keys, local)
        })
        .collect();
    let crashed = drive_wave(&ctx, &wave, &flush);
    let mut worker_crashes = crashed.len();

    // Crash recovery: every cell (and selection record) still
    // unaccounted for is retried on one replacement worker, with
    // process-abort injections stripped so the retry can complete.
    // Anything missing after that is reported on the schema-v3
    // `failed_cells` path.
    let mut retried: Vec<usize> = Vec::new();
    let (missing, missing_sel) = {
        let m = lock(&merge);
        (m.missing(), m.missing_selections())
    };
    if !missing.is_empty() || !missing_sel.is_empty() {
        eprintln!(
            "[t1000-bench] {} cell(s) and {} selection(s) unaccounted for after the first wave; retrying on a fresh worker",
            missing.len(),
            missing_sel.len()
        );
        let stripped = config.faults.without_aborts();
        let local = local_faults(&stripped, plan.cells(), &missing);
        retried = missing.clone();
        let retry_wave = vec![(shards, missing, missing_sel, local)];
        worker_crashes += drive_wave(&ctx, &retry_wave, &flush).len();
        let mut m = lock(&merge);
        for i in m.missing() {
            m.fail(
                i,
                FailureCause::Panic(format!("worker process crashed before completing cell {i}")),
                1,
            );
        }
    }

    let totals = totals
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let merge = merge
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let run = merge.finish(plan, totals, config.deterministic);
    let sidecar = Json::obj(vec![
        ("schema_version", Json::UInt(1)),
        ("kind", Json::Str("t1000.bench-shards".to_string())),
        ("shards", Json::UInt(shards as u64)),
        (
            "cells_per_shard",
            Json::Arr(per_shard.iter().map(|&n| Json::UInt(n as u64)).collect()),
        ),
        ("cells_restored", Json::UInt(restored_cells as u64)),
        ("worker_crashes", Json::UInt(worker_crashes as u64)),
        (
            "retried_cells",
            Json::Arr(retried.iter().map(|&i| Json::UInt(i as u64)).collect()),
        ),
    ]);
    Ok(ShardedRun { run, sidecar })
}

/// Spawns one worker per wave entry, drives them concurrently, and
/// returns the shard labels whose workers crashed (nonzero exit, or EOF
/// before the final response).
fn drive_wave(
    ctx: &WaveCtx<'_>,
    wave: &[(usize, Vec<usize>, Vec<usize>, FaultPlan)],
    flush: &(dyn Fn(&MergeState) + Sync),
) -> Vec<usize> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = wave
            .iter()
            .map(|(shard, cells, keys, faults)| {
                scope.spawn(move || (*shard, drive_one(ctx, *shard, cells, keys, faults, flush)))
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| {
                let (shard, result) = h
                    .join()
                    .unwrap_or((usize::MAX, Err("worker driver thread panicked".to_string())));
                match result {
                    Ok(()) => None,
                    Err(e) => {
                        eprintln!("[t1000-bench] shard {shard}: {e}");
                        Some(shard)
                    }
                }
            })
            .collect()
    })
}

fn drive_one(
    ctx: &WaveCtx<'_>,
    shard: usize,
    cells: &[usize],
    keys: &[usize],
    faults: &FaultPlan,
    flush: &(dyn Fn(&MergeState) + Sync),
) -> Result<(), String> {
    let mut child = std::process::Command::new(ctx.exe)
        .arg("worker")
        // One OS process is the unit of parallelism: each worker's
        // engine runs single-threaded.
        .env("T1000_THREADS", "1")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning worker: {e}"))?;
    let request = shard_request(ctx.plan_name, ctx.scale, cells, keys, ctx.config, faults);
    if let Some(mut stdin) = child.stdin.take() {
        // A worker that died before reading surfaces below as EOF.
        let _ = writeln!(stdin, "{}", request.to_string_compact());
    } // dropping stdin closes the pipe: the worker sees exactly one line
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("worker stdout unavailable".to_string());
    };
    let mut done = false;
    let mut refusal = None;
    for line in std::io::BufReader::new(stdout).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut m = lock(ctx.merge);
        match m.on_line(&line) {
            Ok(WireLine::Cell) => flush(&m),
            Ok(WireLine::Event) => {}
            Ok(WireLine::Done(s)) => {
                drop(m);
                let mut t = lock(ctx.totals);
                t.retries += s.retries;
                t.prepare_secs += s.prepare_secs;
                t.select_secs += s.select_secs;
                t.simulate_secs += s.simulate_secs;
                t.selection_compute_secs += s.selection_compute_secs;
                done = true;
            }
            Ok(WireLine::Failed(msg)) => refusal = Some(msg),
            Err(e) => eprintln!("[t1000-bench] shard {shard}: rejected worker line: {e}"),
        }
    }
    let status = child
        .wait()
        .map_err(|e| format!("waiting for worker: {e}"))?;
    if let Some(msg) = refusal {
        return Err(format!("worker rejected the request: {msg}"));
    }
    if !done {
        return Err(format!("worker exited without a final response ({status})"));
    }
    if !status.success() {
        return Err(format!("worker exited with {status}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_with;
    use crate::plan::{run_all_plan, MachineSpec};
    use crate::results::to_json;
    use proptest::prelude::*;

    fn small_plan() -> Plan {
        let mut plan = Plan::new();
        for w in ["gsm_dec", "g721_enc"] {
            plan.push(Cell::new(
                w,
                SelectionSpec::selective_std(Some(2)),
                MachineSpec::with_pfus(2, 10),
            ));
            plan.push(Cell::new(
                w,
                SelectionSpec::Greedy,
                MachineSpec::with_pfus(2, 10),
            ));
        }
        plan
    }

    fn det_config() -> EngineConfig {
        EngineConfig {
            deterministic: true,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn partition_is_total_group_atomic_and_baseline_closed() {
        let plan = run_all_plan();
        let all: Vec<usize> = (0..plan.cells().len()).collect();
        for shards in [1, 3, 4, 8, 64] {
            let parts = partition(&plan, &all, shards);
            assert_eq!(parts.len(), shards);
            let mut seen = vec![false; all.len()];
            for part in &parts {
                let set: std::collections::HashSet<usize> = part.iter().copied().collect();
                for &i in part {
                    assert!(!seen[i], "cell {i} assigned twice");
                    seen[i] = true;
                    // Group-atomicity: the whole (workload, extract) group
                    // — in particular every cell's baseline — co-locates.
                    let base = plan.cells()[i].baseline_cell();
                    let bi = plan.cells().iter().position(|&c| c == base).unwrap();
                    assert!(set.contains(&bi), "cell {i} split from its baseline");
                }
            }
            assert!(seen.iter().all(|&b| b), "partition dropped a cell");
        }
        // Deterministic: same inputs, same assignment.
        assert_eq!(partition(&plan, &all, 4), partition(&plan, &all, 4));
    }

    #[test]
    fn causes_round_trip_over_the_wire() {
        for cause in [
            FailureCause::UnknownWorkload,
            FailureCause::Prepare("p".into()),
            FailureCause::Selection("s".into()),
            FailureCause::Simulate("m".into()),
            FailureCause::Timeout { max_cycles: 123 },
            FailureCause::WallClock,
            FailureCause::ChecksumMismatch {
                got: 0xdead,
                expected: 0xbeef,
            },
            FailureCause::SemanticsChanged,
            FailureCause::Panic("boom".into()),
        ] {
            let (kind, payload) = cause_to_wire(&cause);
            let back = cause_from_wire(kind, &payload).expect("round trip");
            assert_eq!(back, cause);
        }
        assert!(cause_from_wire("gremlin", "").is_err());
        assert!(cause_from_wire("timeout", "x").is_err());
        assert!(cause_from_wire("checksum_mismatch", "0xzz,0x1").is_err());
    }

    /// Runs each part's cells in-process, pushes the results through the
    /// wire rendering + parsing, and merges — the exact merge math the
    /// coordinator runs, minus the OS processes.
    fn merge_via_wire(plan: &Plan, parts: &[Vec<usize>]) -> EngineRun {
        let mut merge = MergeState::new(plan, Scale::Test);
        let global_cell: HashMap<Cell, usize> = plan
            .cells()
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let global_selection: HashMap<_, usize> = engine::selection_keys(plan)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i))
            .collect();
        for part in parts {
            if part.is_empty() {
                continue;
            }
            let mut sub = Plan::new();
            for &i in part {
                sub.push(plan.cells()[i]);
            }
            let run = execute_with(&sub, Scale::Test, &det_config());
            assert!(run.failures.is_empty());
            let assigned: HashSet<usize> = part.iter().copied().collect();
            for s in &run.selections {
                let gi = global_selection[&(s.workload, s.extract, s.spec)];
                let line = selection_event(gi, s).to_string_compact();
                assert!(matches!(merge.on_line(&line).unwrap(), WireLine::Event));
            }
            for c in &run.cells {
                let gi = global_cell[&c.cell];
                if !assigned.contains(&gi) {
                    continue; // implied baseline owned by another part
                }
                let line = cell_event(gi, c).to_string_compact();
                assert!(matches!(merge.on_line(&line).unwrap(), WireLine::Cell));
            }
        }
        merge.finish(plan, ShardStats::default(), true)
    }

    #[test]
    fn sharded_merge_reproduces_the_single_process_artifact() {
        let plan = small_plan();
        let reference =
            to_json(&execute_with(&plan, Scale::Test, &det_config())).to_string_pretty();
        let all: Vec<usize> = (0..plan.cells().len()).collect();
        for shards in [1, 2, 3] {
            let parts = partition(&plan, &all, shards);
            let merged = merge_via_wire(&plan, &parts);
            assert_eq!(
                to_json(&merged).to_string_pretty(),
                reference,
                "shards={shards}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        // ANY assignment of cells to shards — group-atomic or not, even
        // ones that split a baseline from its users — merges to the
        // byte-identical single-process artifact.
        #[test]
        fn any_partition_merges_to_the_canonical_artifact(
            assign in prop::collection::vec(0usize..3, 6)
        ) {
            let plan = small_plan();
            prop_assert_eq!(plan.cells().len(), assign.len());
            let mut parts = vec![Vec::new(); 3];
            for (i, &s) in assign.iter().enumerate() {
                parts[s].push(i);
            }
            let reference = to_json(&execute_with(&plan, Scale::Test, &det_config()))
                .to_string_pretty();
            let merged = merge_via_wire(&plan, &parts);
            prop_assert_eq!(to_json(&merged).to_string_pretty(), reference);
        }
    }

    #[test]
    fn merge_rejects_corrupted_cell_documents() {
        let plan = small_plan();
        let run = execute_with(&plan, Scale::Test, &det_config());
        let target = &run.cells[1]; // a fused (non-baseline) cell
        let gi = plan.cells().iter().position(|&c| c == target.cell).unwrap();

        // Tampered measurement under an unchanged wire checksum: caught
        // by the transport-integrity hash before any parsing.
        let mut merge = MergeState::new(&plan, Scale::Test);
        let line = cell_event(gi, target).to_string_compact().replace(
            &format!("\"cycles\":{}", target.cycles),
            &format!("\"cycles\":{}", target.cycles + 1),
        );
        let err = merge.on_line(&line).unwrap_err();
        assert!(err.contains("wire checksum"), "{err}");

        // A consistent document whose *architectural* checksum diverges
        // from the local reference: caught by the registry re-check.
        let mut lying = target.clone();
        lying.checksum ^= 1;
        let err = merge
            .on_line(&cell_event(gi, &lying).to_string_compact())
            .unwrap_err();
        assert!(err.contains("diverges from reference"), "{err}");

        // Either way the cell is still missing — retryable, not merged.
        assert!(merge.missing().contains(&gi));

        // And a malformed line is an error, not a panic.
        assert!(merge.on_line("{\"method\":\"cell\"}").is_err());
        assert!(merge.on_line("not json").is_err());
    }

    #[test]
    fn coordinator_marks_unreported_cells_as_crashed() {
        let plan = small_plan();
        let mut merge = MergeState::new(&plan, Scale::Test);
        assert_eq!(merge.missing().len(), plan.cells().len());
        merge.fail(2, FailureCause::Panic("worker process crashed".into()), 1);
        assert!(!merge.missing().contains(&2));
        let run = merge.finish(&plan, ShardStats::default(), true);
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].cell, plan.cells()[2]);
        assert_eq!(run.stats.failed_cells, 1);
        assert!(run.failures[0].cause.retryable());
    }

    #[test]
    fn worker_streams_exactly_the_assigned_cells() {
        // One group of the full run_all plan, through the real worker
        // entry point (in-memory pipes instead of a process).
        let plan = run_all_plan();
        let all: Vec<usize> = (0..plan.cells().len()).collect();
        let indices = partition(&plan, &all, 8)[0].clone();
        assert!(!indices.is_empty());
        let req = shard_request(
            "run_all",
            Scale::Test,
            &indices,
            &[],
            &det_config(),
            &FaultPlan::none(),
        );
        let mut out = Vec::new();
        let code = run_worker(
            format!("{}\n", req.to_string_compact()).as_bytes(),
            &mut out,
        );
        assert_eq!(code, 0);
        let text = String::from_utf8(out).unwrap();
        let mut merge = MergeState::new(&plan, Scale::Test);
        let mut done = false;
        for line in text.lines() {
            if let WireLine::Done(_) = merge.on_line(line).unwrap() {
                done = true;
            }
        }
        assert!(done, "worker must end with the final envelope");
        let completed: Vec<usize> = merge.completed().keys().copied().collect();
        assert_eq!(completed, indices);

        // A malformed request earns an error envelope and a nonzero exit.
        let mut out = Vec::new();
        let code = run_worker(&b"{\"method\":\"nope\"}\n"[..], &mut out);
        assert_ne!(code, 0);
        assert!(String::from_utf8(out).unwrap().contains("\"error\""));
    }

    #[test]
    fn fault_arms_are_localized_per_shard() {
        let plan = small_plan();
        let all: Vec<usize> = (0..plan.cells().len()).collect();
        let parts = partition(&plan, &all, 2);
        // One global arm per shard: each worker sees exactly its own,
        // renumbered to its sub-plan.
        let g0 = parts[0][1]; // a non-baseline-first index on shard 0
        let g1 = parts[1][0];
        let faults = FaultPlan::parse(&format!("pfu@{g0},abort@{g1}")).unwrap();
        let f0 = local_faults(&faults, plan.cells(), &parts[0]);
        let f1 = local_faults(&faults, plan.cells(), &parts[1]);
        assert_eq!(f0.render(), "pfu@1");
        assert_eq!(f1.render(), "abort@0");
    }
}
